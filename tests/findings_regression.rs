//! Findings-regression suite: the two tuning-landscape shapes the paper's
//! figures hinge on, locked down via the autotuner's own evaluator so a
//! cost-model or runtime change that flattens them fails loudly.
//!
//! * Fig. 7 — for a kernels-only (non-overlappable) workload, spatial
//!   sharing alone never beats the undivided reference, and past the sweet
//!   spot ever-finer partitions climb again: a U over `P` whose floor is
//!   `ref`.
//! * Fig. 10 — starving partitions (`T < P`) walks the makespan up in
//!   cliffs: each halving of the task count below `P` leaves more
//!   partitions idle.
//!
//! Shape assertions only — absolute numbers live in `EXPERIMENTS.md`.

use mic_streams::apps::tunable::{TunableHbench, TunablePartitionMicro};
use mic_streams::micsim::PlatformConfig;
use mic_streams::tune::{Evaluator, SimEvaluator};

/// One shared evaluator per app: buffer handles cached inside a `Tunable`
/// belong to the context they were allocated in.
fn secs_at(
    eval: &mut SimEvaluator,
    app: &mut dyn mic_streams::apps::tunable::Tunable,
    p: usize,
    t: usize,
) -> f64 {
    eval.evaluate(app, p, t)
        .unwrap_or_else(|| panic!("({p},{t}) must be feasible"))
        .seconds
}

#[test]
fn fig7_partitioning_a_nonoverlappable_kernel_is_a_u_with_ref_at_the_floor() {
    // Fig. 7's setup: task granularity fixed (128 tiles), resource
    // granularity swept — including counts that do not divide the 56 usable
    // cores, whose core sharing builds the right flank. `ref` is the
    // non-tiled single-stream run, `(P, T) = (1, 1)`.
    let mut app = TunablePartitionMicro::new(1 << 22, 100);
    let mut eval = SimEvaluator::new(PlatformConfig::phi_31sp()).unwrap();
    let reference = secs_at(&mut eval, &mut app, 1, 1);
    let t = 128;
    let ps = [2usize, 4, 8, 16, 32, 64];
    let curve: Vec<f64> = ps
        .iter()
        .map(|&p| secs_at(&mut eval, &mut app, p, t))
        .collect();
    for (p, s) in ps.iter().zip(&curve) {
        println!("P={p:2}: {:.4} ms (ref {:.4})", s * 1e3, reference * 1e3);
        assert!(
            *s > reference,
            "spatial sharing alone must not beat ref: P={p} {s} <= {reference}"
        );
    }
    // U-shape: the minimum is interior, and both extremes sit measurably
    // above the valley.
    let min_idx = curve
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    assert!(
        min_idx != 0 && min_idx != ps.len() - 1,
        "minimum must be interior: {curve:?}"
    );
    let valley = curve[min_idx];
    assert!(
        curve[0] > valley * 1.2 && curve[ps.len() - 1] > valley * 1.2,
        "both flanks must rise well above the valley: {curve:?}"
    );
}

#[test]
fn fig10_starving_partitions_raises_the_makespan_in_cliffs() {
    let mut app = TunableHbench::new(1 << 20, 64, None);
    let mut eval = SimEvaluator::new(PlatformConfig::phi_31sp()).unwrap();
    let p = 8;
    // T ≥ P keeps every partition fed; halving T below P idles half the
    // remaining partitions each step.
    let fed = secs_at(&mut eval, &mut app, p, p);
    let t4 = secs_at(&mut eval, &mut app, p, 4);
    let t2 = secs_at(&mut eval, &mut app, p, 2);
    let t1 = secs_at(&mut eval, &mut app, p, 1);
    println!(
        "P={p}: T=8 {:.3} ms, T=4 {:.3} ms, T=2 {:.3} ms, T=1 {:.3} ms",
        fed * 1e3,
        t4 * 1e3,
        t2 * 1e3,
        t1 * 1e3
    );
    assert!(t4 > fed * 1.3, "T=P/2 must be a cliff: {t4} vs {fed}");
    assert!(t2 > t4 * 1.3, "T=P/4 must be another cliff: {t2} vs {t4}");
    assert!(t1 > t2 * 1.3, "T=P/8 must be another cliff: {t1} vs {t2}");
    // Oversubscription past T = P is at worst mildly harmful, never a
    // cliff of its own.
    let t16 = secs_at(&mut eval, &mut app, p, 16);
    assert!(t16 < fed * 1.3, "T=2P must not cliff: {t16} vs fed {fed}");
}
