//! Property-based tests over the runtime: random tiled programs must
//! simulate deterministically, respect FIFO/dependency semantics, and
//! produce identical numeric results natively regardless of partitioning.

use mic_streams::hstreams::kernel::KernelDesc;
use mic_streams::hstreams::Context;
use mic_streams::micsim::compute::KernelProfile;
use mic_streams::micsim::PlatformConfig;
use proptest::prelude::*;

fn prof() -> KernelProfile {
    KernelProfile::streaming("k", 0.32e9)
}

/// Build a random but *valid* tiled pipeline: `tiles` tasks over `p`
/// partitions, each `h2d -> kernel(scale by tile index) -> d2h`.
fn tiled_program(
    p: usize,
    tiles: usize,
    elems: usize,
) -> (Context, Vec<mic_streams::hstreams::BufId>) {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(p)
        .build()
        .unwrap();
    let mut outs = Vec::new();
    for t in 0..tiles {
        let a = ctx.alloc(format!("a{t}"), elems);
        let b = ctx.alloc(format!("b{t}"), elems);
        let s = ctx.stream(t % ctx.stream_count()).unwrap();
        let scale = (t + 1) as f32;
        ctx.write_host(a, &vec![1.0; elems]).unwrap();
        ctx.h2d(s, a).unwrap();
        ctx.kernel(
            s,
            KernelDesc::simulated(format!("k{t}"), prof(), elems as f64)
                .reading([a])
                .writing([b])
                .with_native(move |k| {
                    for (o, i) in k.writes[0].iter_mut().zip(k.reads[0]) {
                        *o = i * scale;
                    }
                }),
        )
        .unwrap();
        ctx.d2h(s, b).unwrap();
        outs.push(b);
    }
    (ctx, outs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Determinism: the same program simulates to the same makespan, twice.
    #[test]
    fn simulation_is_deterministic(p in 1usize..16, tiles in 1usize..24) {
        let (ctx, _) = tiled_program(p, tiles, 256);
        let m1 = ctx.run_sim().unwrap().makespan();
        let m2 = ctx.run_sim().unwrap().makespan();
        prop_assert_eq!(m1, m2);
    }

    /// The makespan respects two lower bounds: total link time (serial
    /// link), and the longest single task chain.
    #[test]
    fn makespan_respects_lower_bounds(p in 1usize..8, tiles in 1usize..16) {
        let elems = 1usize << 16;
        let (ctx, _) = tiled_program(p, tiles, elems);
        let report = ctx.run_sim().unwrap();
        let stats = report.overlap();
        prop_assert!(report.makespan() >= stats.link_busy);
        prop_assert!(report.makespan() >= stats.ideal_makespan());
        // All link traffic: 2 transfers per tile.
        prop_assert!(stats.link_busy.nanos() > 0);
    }

    /// Per-stream FIFO: in the simulated timeline, actions of one stream
    /// never overlap and appear in enqueue order.
    #[test]
    fn stream_fifo_holds_in_timeline(p in 1usize..6, tiles in 2usize..12) {
        let (ctx, _) = tiled_program(p, tiles, 1024);
        let report = ctx.run_sim().unwrap();
        // Tasks of tile t live on stream t % p; group records per tile chain
        // (h2d, kernel, d2h appear consecutively per tile in task order).
        let recs = &report.timeline.records;
        for chunk in recs.chunks(3) {
            if chunk.len() == 3 {
                prop_assert!(chunk[0].finish <= chunk[1].start);
                prop_assert!(chunk[1].finish <= chunk[2].start);
            }
        }
    }

    /// Native execution computes the same results for every partitioning.
    #[test]
    fn native_results_independent_of_partitioning(p in 1usize..5, tiles in 1usize..8) {
        let elems = 128usize;
        let (ctx, outs) = tiled_program(p, tiles, elems);
        ctx.run_native().unwrap();
        for (t, b) in outs.iter().enumerate() {
            let got = ctx.read_host(*b).unwrap();
            let want = vec![(t + 1) as f32; elems];
            prop_assert_eq!(got, want);
        }
    }

    /// Buffer sizes survive the byte/element round trip for any length.
    #[test]
    fn buffer_byte_accounting(len in 0usize..100_000) {
        let mut ctx = Context::builder(PlatformConfig::phi_31sp()).build().unwrap();
        let b = ctx.alloc("b", len);
        prop_assert_eq!(ctx.buffer(b).unwrap().bytes(), len as u64 * 4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Barriers partition the timeline: nothing enqueued after a barrier
    /// starts before everything enqueued before it finished.
    #[test]
    fn barrier_orders_everything(p in 2usize..6, pre in 1usize..6, post in 1usize..6) {
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(p)
            .build()
            .unwrap();
        for t in 0..pre {
            let a = ctx.alloc(format!("pre{t}"), 4096);
            let s = ctx.stream(t % p).unwrap();
            ctx.h2d(s, a).unwrap();
        }
        ctx.barrier();
        for t in 0..post {
            let a = ctx.alloc(format!("post{t}"), 4096);
            let s = ctx.stream(t % p).unwrap();
            ctx.h2d(s, a).unwrap();
        }
        let report = ctx.run_sim().unwrap();
        let recs = &report.timeline.records;
        let barrier_finish = recs
            .iter()
            .find(|r| r.label.starts_with("barrier"))
            .unwrap()
            .finish;
        for r in recs {
            if r.label.starts_with("h2d") {
                if r.task.0 < pre + p {
                    // pre-barrier transfers (first `pre` tasks)
                    if r.task.0 < pre {
                        prop_assert!(r.finish <= barrier_finish);
                    }
                } else {
                    prop_assert!(r.start >= barrier_finish);
                }
            }
        }
    }
}
