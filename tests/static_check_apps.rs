//! Static-analysis sweep over every shipped app builder: each of the six
//! `Tunable`s must record a race- and deadlock-free program at *every*
//! feasible `(T, P)` candidate the tuner would try, with checking enforced
//! exactly as the executors run it.
//!
//! Beyond cleanliness this locks down sync *structure*:
//!
//! * overlappable apps (hbench, MM, CF, NN) must actually expose
//!   cross-stream transfer/kernel concurrency to the analyzer — a
//!   regression that serializes their pipelines fails here before it
//!   shows up as a flat tuning landscape;
//! * non-overlappable apps (kmeans, partition-micro) must show **zero**
//!   concurrent transfer/kernel pairs: their stages are barrier-separated
//!   by design, and an accidental overlap edge would mean a missing sync.

use mic_streams::apps::tunable::{
    Tunable, TunableCf, TunableHbench, TunableKmeans, TunableMm, TunableNn, TunablePartitionMicro,
};
use mic_streams::hstreams::context::Context;
use mic_streams::micsim::PlatformConfig;
use mic_streams::tune::candidates::{partition_candidates, tile_candidates};
use mic_streams::tune::TuneBounds;

/// Small bounds so the sweep stays fast while still covering multi-stream,
/// multi-partition shapes (including the non-dividing P = 7 case).
fn bounds() -> TuneBounds {
    TuneBounds {
        max_partitions: 8,
        max_tiles: 16,
        max_multiple: 2,
    }
}

/// Sweep one app across every feasible candidate, asserting cleanliness at
/// each, and return the total cross-stream concurrent transfer/kernel pair
/// count accumulated over the sweep plus the number of trials analyzed.
fn sweep(app: &mut dyn Tunable) -> (usize, usize) {
    let platform = PlatformConfig::phi_31sp();
    let ps = partition_candidates(&platform.device, bounds().max_partitions);
    let mut ctx = Context::builder(platform).build().unwrap();
    let mut pairs = 0usize;
    let mut trials = 0usize;
    for &p in &ps {
        for t in tile_candidates(p, &bounds()) {
            if !app.feasible(t) {
                continue;
            }
            ctx.replan(p).unwrap();
            app.record(&mut ctx, t).unwrap();
            let analysis = ctx.analyze();
            assert!(
                analysis.report.is_clean(),
                "{} at (T={t}, P={p}) must analyze clean:\n{}",
                app.name(),
                analysis.report.render()
            );
            let overlap = analysis.overlap_summary();
            if app.overlappable() {
                pairs += overlap.concurrent_transfer_kernel_pairs;
            } else {
                assert_eq!(
                    overlap.concurrent_transfer_kernel_pairs,
                    0,
                    "{} is barrier-separated by design, yet (T={t}, P={p}) \
                     exposes transfer/kernel overlap to the analyzer",
                    app.name()
                );
            }
            trials += 1;
        }
    }
    assert!(trials > 0, "{}: no feasible candidates swept", app.name());
    (pairs, trials)
}

fn assert_overlappable_clean(app: &mut dyn Tunable) {
    let (pairs, trials) = sweep(app);
    assert!(
        pairs > 0,
        "{}: swept {trials} candidates without the analyzer seeing a single \
         concurrent transfer/kernel pair — the pipeline has been serialized",
        app.name()
    );
}

#[test]
fn hbench_is_clean_and_overlapped_at_every_candidate() {
    assert_overlappable_clean(&mut TunableHbench::new(1 << 12, 1, None));
}

#[test]
fn mm_is_clean_and_overlapped_at_every_candidate() {
    assert_overlappable_clean(&mut TunableMm::new(48, None));
}

#[test]
fn cf_is_clean_and_overlapped_at_every_candidate() {
    assert_overlappable_clean(&mut TunableCf::new(48, None));
}

#[test]
fn nn_is_clean_and_overlapped_at_every_candidate() {
    assert_overlappable_clean(&mut TunableNn::new(1 << 12, None));
}

#[test]
fn kmeans_is_clean_with_no_cross_stage_overlap() {
    sweep(&mut TunableKmeans::new(1 << 12, 4, 2, None));
}

#[test]
fn partition_micro_is_clean_with_no_cross_stage_overlap() {
    sweep(&mut TunablePartitionMicro::new(1 << 12, 1));
}

/// The analyzer must stay cheap enough to run before every execution:
/// on the CF task graph (the densest event structure we ship) a full
/// analysis is microseconds-scale. The bound here is deliberately loose
/// (debug builds, CI jitter); `EXPERIMENTS.md` records measured numbers.
#[test]
fn analyzer_cost_on_cf_is_negligible() {
    let mut app = TunableCf::new(96, None);
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .build()
        .unwrap();
    ctx.replan(8).unwrap();
    app.record(&mut ctx, 16).unwrap();
    let analysis = ctx.analyze();
    assert!(analysis.report.is_clean(), "{}", analysis.report.render());
    let stats = &analysis.report.stats;
    eprintln!(
        "cf n=96 T=16 P=8: {} actions, {} hb nodes, {} hb edges, analyzed in {:?}",
        stats.actions, stats.hb_nodes, stats.hb_edges, stats.elapsed
    );
    assert!(
        stats.elapsed.as_millis() < 250,
        "analysis took {:?} — no longer pre-execution-cheap",
        stats.elapsed
    );
}
