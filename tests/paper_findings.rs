//! The paper's six concluding observations, each asserted at test scale
//! against the simulator. These are the repository's "does it reproduce the
//! paper" gates; `EXPERIMENTS.md` records the full-scale numbers.

use mic_streams::apps::hbench::{
    overlap_program, partition_program, transfer_program, OverlapVariant,
};
use mic_streams::apps::{hotspot, kmeans, mm};
use mic_streams::micsim::{PlatformConfig, SimDuration};

const MB: u64 = 1 << 20;

/// Finding 1: data transfers in both directions cannot run concurrently.
#[test]
fn finding1_transfers_serialize() {
    let t = |hd: usize, dh: usize| {
        transfer_program(PlatformConfig::phi_31sp(), hd, dh, MB)
            .unwrap()
            .run_sim()
            .unwrap()
            .makespan()
    };
    // ID case flat == serial link; sum == CC case.
    let id_a = t(4, 12);
    let id_b = t(12, 4);
    let diff = id_a.nanos().abs_diff(id_b.nanos()) as f64 / id_a.nanos() as f64;
    assert!(diff < 0.02, "ID case must be flat: {id_a} vs {id_b}");
    let one_way = t(16, 0);
    let both = t(16, 16);
    let ratio = both.nanos() as f64 / one_way.nanos() as f64;
    assert!(
        (ratio - 2.0).abs() < 0.1,
        "serial: CC ≈ 2x one-way, got {ratio}"
    );
}

/// Finding 2: transfers overlap kernels, but never fully.
#[test]
fn finding2_partial_overlap() {
    let elems = 4 << 20;
    let run = |v| {
        overlap_program(PlatformConfig::phi_31sp(), elems, 40, 4, v)
            .unwrap()
            .run_sim()
            .unwrap()
            .makespan()
    };
    let data = run(OverlapVariant::Data);
    let kernel = run(OverlapVariant::Kernel);
    let serial = run(OverlapVariant::DataKernel);
    let streamed = run(OverlapVariant::Streamed { tiles: 16 });
    let ideal = data.max(kernel);
    assert!(streamed < serial, "overlap exists");
    assert!(streamed > ideal, "full overlap unattainable");
}

/// Finding 3: spatial sharing alone does not speed up a non-overlappable
/// kernel — the non-tiled reference beats every tiled configuration.
#[test]
fn finding3_spatial_sharing_alone_no_gain() {
    let tiled_best = [1usize, 2, 4, 8, 16, 32]
        .iter()
        .map(|&p| {
            partition_program(PlatformConfig::phi_31sp(), 64, 32 << 10, 50, p, true)
                .unwrap()
                .run_sim()
                .unwrap()
                .makespan()
        })
        .min()
        .unwrap();
    let non_tiled = partition_program(PlatformConfig::phi_31sp(), 64, 32 << 10, 50, 1, false)
        .unwrap()
        .run_sim()
        .unwrap()
        .makespan();
    assert!(
        non_tiled < tiled_best,
        "ref {non_tiled} must beat best tiled {tiled_best}"
    );
}

/// Finding 4: being overlappable is a must — MM (overlappable) gains,
/// Hotspot (non-overlappable) does not.
#[test]
fn finding4_overlappable_is_a_must() {
    let (wo, _) = mm::simulate(
        &mm::MmConfig {
            n: 2000,
            tiles_per_dim: 1,
        },
        PlatformConfig::phi_31sp(),
        1,
    )
    .unwrap();
    let (w, _) = mm::simulate(
        &mm::MmConfig {
            n: 2000,
            tiles_per_dim: 8,
        },
        PlatformConfig::phi_31sp(),
        8,
    )
    .unwrap();
    assert!(w < wo, "overlappable MM gains from streams");

    let hs = hotspot::HotspotConfig {
        rows: 2048,
        cols: 2048,
        iterations: 10,
        tiles: 1,
    };
    let hs_wo = hotspot::simulate(&hs, PlatformConfig::phi_31sp(), 1).unwrap();
    let hs_w = hotspot::simulate(
        &hotspot::HotspotConfig { tiles: 8, ..hs },
        PlatformConfig::phi_31sp(),
        4,
    )
    .unwrap();
    let change = (hs_wo / hs_w - 1.0).abs();
    assert!(
        change < 0.35,
        "non-overlappable Hotspot stays within noise of w/o: {:.1}%",
        (hs_wo / hs_w - 1.0) * 100.0
    );
}

/// Finding 5: both granularities matter — bad T or bad P costs real factors.
#[test]
fn finding5_granularity_matters() {
    let run = |p: usize, tpd: usize| {
        mm::simulate(
            &mm::MmConfig {
                n: 2000,
                tiles_per_dim: tpd,
            },
            PlatformConfig::phi_31sp(),
            p,
        )
        .unwrap()
        .0
    };
    let good = run(4, 4);
    // T < P: idle partitions.
    let starved = run(8, 2);
    assert!(
        starved > good * 1.2,
        "T<P starves partitions: {starved} vs {good}"
    );
    // Misaligned P: core sharing.
    let misaligned = run(13, 4);
    let aligned = run(14, 4);
    assert!(
        misaligned > aligned * 1.1,
        "misaligned P pays contention: {misaligned} vs {aligned}"
    );
}

/// Finding 6: a non-overlappable app (Kmeans) can still gain — from the
/// reduced per-invocation allocation cost.
#[test]
fn finding6_kmeans_gains_via_alloc() {
    let base = kmeans::KmeansConfig {
        points: 200_000,
        dims: 34,
        k: 8,
        iterations: 10,
        tiles: 1,
        alloc_micros: 5,
    };
    let wo = kmeans::simulate(&base, PlatformConfig::phi_31sp(), 1).unwrap();
    let w = kmeans::simulate(
        &kmeans::KmeansConfig { tiles: 4, ..base },
        PlatformConfig::phi_31sp(),
        4,
    )
    .unwrap();
    assert!(
        w < wo,
        "kmeans (non-overlappable) still gains from streams: {w} vs {wo}"
    );
}

/// Sanity: every simulated makespan in this file is positive and finite.
#[test]
fn simulated_times_are_sane() {
    let t = transfer_program(PlatformConfig::phi_31sp(), 1, 1, MB)
        .unwrap()
        .run_sim()
        .unwrap()
        .makespan();
    assert!(t > SimDuration::ZERO);
    assert!(t < SimDuration::from_millis(100));
}
