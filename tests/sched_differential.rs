//! Differential suite for the scheduler refactor: `Fifo` must be
//! bit-identical to the pre-refactor executors on all six shipped apps,
//! and the non-FIFO schedulers must run the same work to the same
//! numerical results.
//!
//! "Pre-refactor" behavior is the default path — `Fifo` declines to
//! schedule, so both executors fall through to the exact code that ran
//! before the `sched` module existed. The pin here is that an *explicit*
//! `Fifo` selection stays on that path: identical sim timelines
//! (deterministic, so equality is exact) and identical native
//! action/byte accounting with zero steals.

use mic_streams::apps::mm::{self, MmConfig};
use mic_streams::apps::tunable::{
    Tunable, TunableCf, TunableHbench, TunableKmeans, TunableMm, TunableNn, TunablePartitionMicro,
};
use mic_streams::hstreams::context::Context;
use mic_streams::hstreams::executor::native::NativeConfig;
use mic_streams::hstreams::SchedulerKind;
use mic_streams::micsim::engine::TaskRecord;
use mic_streams::micsim::PlatformConfig;

const PARTITIONS: usize = 4;

/// The six shipped apps at one modest feasible `(P, T)` each.
fn apps() -> Vec<(&'static str, Box<dyn Tunable>, usize)> {
    vec![
        (
            "hbench",
            Box::new(TunableHbench::new(1 << 10, 1, Some(9))) as Box<dyn Tunable>,
            8,
        ),
        ("mm", Box::new(TunableMm::new(32, Some(9))), 4),
        ("cholesky", Box::new(TunableCf::new(32, Some(9))), 4),
        ("nn", Box::new(TunableNn::new(1 << 10, Some(9))), 8),
        (
            "kmeans",
            Box::new(TunableKmeans::new(1 << 10, 4, 2, Some(9))),
            8,
        ),
        (
            "partition-micro",
            Box::new(TunablePartitionMicro::new(1 << 10, 1)),
            8,
        ),
    ]
}

fn recorded_ctx(app: &mut dyn Tunable, tiles: usize) -> Context {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(PARTITIONS)
        .build()
        .unwrap();
    assert!(app.feasible(tiles), "chosen tile count must be feasible");
    app.record(&mut ctx, tiles).unwrap();
    ctx
}

fn sim_records(ctx: &Context) -> Vec<TaskRecord> {
    ctx.run_sim().unwrap().timeline.records.clone()
}

#[test]
fn fifo_sim_timelines_are_bit_identical_to_the_default_path_on_all_six_apps() {
    for (name, mut app, tiles) in apps() {
        let mut ctx = recorded_ctx(app.as_mut(), tiles);
        let default_records = sim_records(&ctx);
        ctx.set_scheduler(SchedulerKind::Fifo);
        let fifo_records = sim_records(&ctx);
        assert_eq!(
            default_records, fifo_records,
            "{name}: explicit Fifo must replay the default timeline exactly"
        );
        // Determinism backstop: the comparison above is only meaningful
        // because repeated sim runs are bit-identical.
        assert_eq!(
            fifo_records,
            sim_records(&ctx),
            "{name}: sim not deterministic"
        );
    }
}

#[test]
fn scheduled_sim_runs_complete_on_all_six_apps() {
    for (name, mut app, tiles) in apps() {
        let mut ctx = recorded_ctx(app.as_mut(), tiles);
        ctx.set_scheduler(SchedulerKind::Fifo);
        let fifo = ctx.run_sim().unwrap().makespan();
        for kind in [SchedulerKind::ListHeft, SchedulerKind::WorkSteal] {
            ctx.set_scheduler(kind);
            let makespan = ctx.run_sim().unwrap().makespan();
            assert!(
                makespan > mic_streams::micsim::time::SimDuration::ZERO,
                "{name}/{kind}: empty timeline"
            );
            // The 5% regression gate lives in bench_sched; here we only pin
            // that scheduling never blows a workload up.
            assert!(
                makespan.as_secs_f64() <= fifo.as_secs_f64() * 1.5,
                "{name}/{kind}: scheduled makespan {makespan} vs fifo {fifo}"
            );
        }
    }
}

#[test]
fn fifo_native_runs_match_the_default_path_on_all_six_apps() {
    for (name, mut app, tiles) in apps() {
        let ctx = recorded_ctx(app.as_mut(), tiles);
        let default_report = ctx.run_native().unwrap();
        let fifo_report = ctx
            .run_native_with(&NativeConfig {
                scheduler: Some(SchedulerKind::Fifo),
                ..NativeConfig::default()
            })
            .unwrap();
        assert_eq!(
            default_report.actions_executed, fifo_report.actions_executed,
            "{name}: explicit Fifo executed different work than the default"
        );
        assert_eq!(
            default_report.bytes_transferred, fifo_report.bytes_transferred,
            "{name}: explicit Fifo moved different bytes than the default"
        );
        assert_eq!(fifo_report.steals, 0, "{name}: FIFO must never steal");
    }
}

#[test]
fn mm_native_outputs_are_bit_identical_across_all_schedulers() {
    let cfg = MmConfig {
        n: 48,
        tiles_per_dim: 2,
    };
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(PARTITIONS)
        .build()
        .unwrap();
    let bufs = mm::build(&mut ctx, &cfg).unwrap();
    mm::fill_inputs(&ctx, &cfg, &bufs, 2026).unwrap();
    ctx.run_native().unwrap();
    let expected = mm::collect_result(&ctx, &cfg, &bufs).unwrap().data;
    for kind in SchedulerKind::all() {
        ctx.run_native_with(&NativeConfig {
            scheduler: Some(kind),
            ..NativeConfig::default()
        })
        .unwrap();
        let got = mm::collect_result(&ctx, &cfg, &bufs).unwrap().data;
        assert_eq!(got, expected, "{kind}: scheduled MM output diverged");
    }
}
