//! Failure-path integration tests: the runtime must reject or contain bad
//! programs rather than hang, corrupt data, or crash the process.

use mic_streams::hstreams::kernel::KernelDesc;
use mic_streams::hstreams::{BufId, Context, Error};
use mic_streams::micsim::compute::KernelProfile;
use mic_streams::micsim::PlatformConfig;

fn prof() -> KernelProfile {
    KernelProfile::streaming("k", 1e9)
}

#[test]
fn device_memory_exhaustion_is_reported_not_simulated() {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .build()
        .unwrap();
    // 9 GiB of logical buffers on an 8 GiB card.
    for i in 0..9 {
        ctx.alloc(format!("g{i}"), 1 << 28); // 1 GiB each
    }
    match ctx.run_sim() {
        Err(Error::Platform(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("OOM"), "got: {msg}");
        }
        other => panic!("expected OOM, got {other:?}"),
    }
}

#[test]
fn invalid_handles_rejected_at_enqueue() {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .build()
        .unwrap();
    let s = ctx.stream(0).unwrap();
    assert!(matches!(
        ctx.h2d(s, BufId(99)),
        Err(Error::UnknownBuffer(_))
    ));
    assert!(matches!(
        ctx.wait_event(s, mic_streams::hstreams::EventId(0)),
        Err(Error::UnknownEvent(_))
    ));
    let bad_kernel = KernelDesc::simulated("k", prof(), 1.0).reading([BufId(7)]);
    assert!(ctx.kernel(s, bad_kernel).is_err());
}

#[test]
fn read_write_aliasing_rejected() {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .build()
        .unwrap();
    let a = ctx.alloc("a", 4);
    let s = ctx.stream(0).unwrap();
    let aliased = KernelDesc::simulated("alias", prof(), 1.0)
        .reading([a])
        .writing([a]);
    assert!(matches!(
        ctx.kernel(s, aliased),
        Err(Error::ReadWriteConflict { .. })
    ));
}

#[test]
fn panicking_kernel_contained_and_other_streams_complete() {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(2)
        .build()
        .unwrap();
    let ok_out = ctx.alloc("ok", 1);
    let bad_out = ctx.alloc("bad", 1);
    let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
    ctx.kernel(
        s0,
        KernelDesc::simulated("boom", prof(), 1.0)
            .writing([bad_out])
            .with_native(|_| panic!("injected failure")),
    )
    .unwrap();
    ctx.kernel(
        s1,
        KernelDesc::simulated("survivor", prof(), 1.0)
            .writing([ok_out])
            .with_native(|k| k.writes[0][0] = 7.0),
    )
    .unwrap();
    ctx.d2h(s1, ok_out).unwrap();
    let err = ctx.run_native().unwrap_err();
    assert!(matches!(err, Error::KernelPanicked { ref kernel } if kernel == "boom"));
    // The healthy stream's work still landed.
    assert_eq!(ctx.read_host(ok_out).unwrap(), vec![7.0]);
}

#[test]
fn missing_native_body_rejected_before_any_execution() {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .build()
        .unwrap();
    let a = ctx.alloc("a", 4);
    let s = ctx.stream(0).unwrap();
    ctx.write_host(a, &[1.0, 1.0, 1.0, 1.0]).unwrap();
    ctx.kernel(
        s,
        KernelDesc::simulated("sim-only", prof(), 1.0).writing([a]),
    )
    .unwrap();
    assert!(matches!(
        ctx.run_native(),
        Err(Error::MissingNativeBody { .. })
    ));
    // Nothing ran: host data untouched.
    assert_eq!(ctx.read_host(a).unwrap(), vec![1.0; 4]);
}

#[test]
fn event_deadlock_detected_by_simulator() {
    // Build the cycle through program surgery (the public API cannot create
    // it directly because events are recorded before they are waited on).
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(2)
        .build()
        .unwrap();
    let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
    let _e0 = ctx.record_event(s0).unwrap();
    let _e1 = ctx.record_event(s1).unwrap();
    // s0 waits e1 (fine), s1 waits e0 (fine) — but both waits precede the
    // records after the swap below... the public API keeps this legal, so
    // assert the legal version at least completes.
    ctx.wait_event(s0, _e1).unwrap();
    ctx.wait_event(s1, _e0).unwrap();
    let report = ctx.run_sim().unwrap();
    assert_eq!(report.makespan().nanos(), 0, "all-control program is free");
}

#[test]
fn too_many_partitions_rejected() {
    let err = Context::builder(PlatformConfig::phi_31sp())
        .partitions(500)
        .build()
        .unwrap_err();
    assert!(matches!(err, Error::Platform(_)));
}

#[test]
fn zero_length_buffers_flow_through_both_executors() {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .build()
        .unwrap();
    let empty = ctx.alloc("empty", 0);
    let s = ctx.stream(0).unwrap();
    ctx.h2d(s, empty).unwrap();
    ctx.d2h(s, empty).unwrap();
    let sim = ctx.run_sim().unwrap();
    assert!(sim.makespan().nanos() > 0, "latency still paid");
    ctx.run_native().unwrap();
}
