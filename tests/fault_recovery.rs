//! End-to-end acceptance: a seeded fault plan that kills several transfers
//! and one kernel inside the streamed MM pipeline must not change the
//! numerical result. Retries absorb the transfer failures; partition
//! isolation plus one replay pass absorbs the kernel panic.

use std::sync::Arc;

use mic_streams::apps::mm::{self, MmConfig};
use mic_streams::hstreams::action::Action;
use mic_streams::hstreams::{Context, FaultPlan, NativeConfig};
use mic_streams::micsim::PlatformConfig;

#[test]
fn streamed_mm_survives_transfer_failures_and_a_kernel_panic() {
    let cfg_mm = MmConfig {
        n: 48,
        tiles_per_dim: 2,
    };
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(2)
        .build()
        .unwrap();
    let bufs = mm::build(&mut ctx, &cfg_mm).unwrap();
    let (a, b) = mm::fill_inputs(&ctx, &cfg_mm, &bufs, 42).unwrap();

    // Fault-free baseline, checked against the serial reference.
    ctx.run_native().unwrap();
    let clean = mm::collect_result(&ctx, &cfg_mm, &bufs).unwrap();
    let reference = mm::reference(&a, &b);
    for (got, want) in clean.data.iter().zip(&reference.data) {
        assert!((got - want).abs() <= 1e-3 * want.abs().max(1.0));
    }

    // Force faults at real sites of the recorded program: stream 0's first
    // three transfers each fail twice (recoverable under the default
    // 3-retry budget) and stream 1's first kernel panics (recoverable via
    // isolation + replay). The panic lives on the *other* stream so no
    // forced-fail transfer sits downstream of it — a tainted transfer is
    // skipped outright, never retried.
    let mut transfer_sites = Vec::new();
    let mut kernel_site = None;
    for s in &ctx.program().streams {
        for (ai, action) in s.actions.iter().enumerate() {
            match action {
                Action::Transfer { .. } if s.id.0 == 0 && transfer_sites.len() < 3 => {
                    transfer_sites.push((s.id.0, ai));
                }
                Action::Kernel(_) if s.id.0 == 1 && kernel_site.is_none() => {
                    kernel_site = Some((s.id.0, ai));
                }
                _ => {}
            }
        }
    }
    assert_eq!(transfer_sites.len(), 3, "program has >= 3 transfers");
    let (ks, ka) = kernel_site.expect("program has a kernel");
    let mut plan = FaultPlan::seeded(2026)
        .transfer_failures(0.0, 2)
        .panic_kernel_at(ks, ka);
    for &(s, ai) in &transfer_sites {
        plan = plan.fail_transfer_at(s, ai);
    }

    let native_cfg = NativeConfig {
        fault: Some(Arc::new(plan)),
        ..NativeConfig::default()
    };
    let resilient = ctx
        .run_native_resilient(&native_cfg)
        .expect("retries + replay recover the run");

    // The recovery actually exercised both paths...
    assert_eq!(resilient.faults.transfer_retries, 6, "2 retries x 3 sites");
    assert_eq!(resilient.faults.transfers_failed, 0);
    assert_eq!(resilient.faults.injected_kernel_panics, 1);
    assert_eq!(resilient.faults.lost_partitions, 1);
    assert_eq!(resilient.degraded_runs(), 1);
    assert!(resilient.replayed_actions() >= 2);

    // ...and the output is numerically identical to the fault-free run.
    let recovered = mm::collect_result(&ctx, &cfg_mm, &bufs).unwrap();
    assert_eq!(
        recovered.data, clean.data,
        "faulted + recovered result must match the clean run bit-for-bit"
    );
}
