//! Minimized reproducers from differential-fuzzing findings.
//!
//! Each constant below is a genome (`stream_fuzz::ProgramSpec` text
//! format) that `fuzz_smoke` shrank from a three-oracle disagreement.
//! After the underlying bug is fixed the case stays here forever: the
//! test replays it through the **full** oracle stack and fails on any
//! disagreement, so the bug cannot quietly return. New findings printed
//! by `fuzz_smoke` get appended as new named constants + tests.

use mic_streams::fuzz::{CaseOutcome, Harness, ProgramSpec};
use mic_streams::hstreams::check::{analyze, CheckCode, CheckEnv};

/// Parse a committed genome, repair it, and run the full differential
/// case (checker + sim ×2 + native ×2 + reference interpreter).
fn replay(text: &str) -> CaseOutcome {
    let mut spec = ProgramSpec::parse(text).expect("committed genome must parse");
    spec.repair();
    Harness::new().run_case(&spec, true)
}

/// Found 2026-08-07 by `fuzz_smoke` (ops `add-lane`/`add-wait`, shrunk
/// from a 4-lane mutant): five unordered racing pairs pile onto device
/// buffer 1, overflowing `MAX_RACES_PER_GROUP`. The checker's overflow
/// summary diagnostic carried `code: Race` with **no partner site**, so
/// the hazard witness degenerated to the pair `a / a` and its two
/// schedules could not bracket anything (`witness-order-invalid`).
/// Fixed by making the summary name a representative unlisted pair.
const RACE_OVERFLOW_SUMMARY: &str = "\
streamfuzz v1
partitions 2
scheduler fifo
placements 0 1 0
lane k dev 1 r 1 w 2
lane h2d 1 ; k dev 1 r 0 w 1
lane h2d 1
end
";

/// Found 2026-08-07 by the full-oracle determinism test (op
/// `toggle-host` on a `build_synced` capture): `panic_kernel_at` aimed at
/// a **host** kernel was injected by the native executor (which checks
/// the plan for every kernel) but silently skipped by the simulator,
/// whose host-kernel arm never consulted the fault plan — sim reported
/// success while native reported `KernelPanicked`. Fixed by injecting in
/// the sim's host arm too (as `KernelPanicked`: no partition to lose).
const HOST_KERNEL_PANIC_INJECTION: &str = "\
streamfuzz v1
partitions 1
scheduler fifo
placements 0
lane h2d 12 ; k host 2 r 12 w 13
fault 7 1 panic 0 1
end
";

#[test]
fn injected_host_kernel_panic_fells_both_executors() {
    let out = replay(HOST_KERNEL_PANIC_INJECTION);
    assert!(!out.rejected, "the program itself is clean");
    assert!(
        out.disagreement.is_none(),
        "regressed: {:?}",
        out.disagreement
    );
    assert!(
        out.signals.contains("fault:sim:panic"),
        "the sim must observe the injected panic, got {:?}",
        out.signals
    );
}

#[test]
fn race_overflow_summary_still_witnesses_a_real_pair() {
    let out = replay(RACE_OVERFLOW_SUMMARY);
    assert!(out.rejected, "the racy pile-up must be rejected");
    assert!(
        out.disagreement.is_none(),
        "regressed: {:?}",
        out.disagreement
    );
    assert!(
        out.signals.iter().any(|s| s.starts_with("witness:race-")),
        "the first race error must produce a bracketing witness, got {:?}",
        out.signals
    );
}

/// The checker-level face of the same bug: every `Race` diagnostic —
/// overflow summaries included — must name at least one partner site,
/// because the witness builder schedules the claimed pair both ways.
#[test]
fn every_race_diagnostic_names_a_partner_site() {
    let mut spec = ProgramSpec::parse(RACE_OVERFLOW_SUMMARY).unwrap();
    spec.repair();
    let program = spec.to_program();
    let env = CheckEnv::permissive(&program);
    let analysis = analyze(&program, &env);
    let mut races = 0;
    for d in analysis.report.errors() {
        if d.code == CheckCode::Race {
            races += 1;
            assert!(
                !d.related.is_empty(),
                "pair-less race diagnostic: {}",
                d.message
            );
        }
    }
    assert!(races > 4, "the genome must overflow the per-group race cap");
}
