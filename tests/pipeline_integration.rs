//! Cross-crate integration: full application pipelines through the public
//! facade, on both executors, validated end to end.

use mic_streams::apps::{cholesky, hotspot, kmeans, mm, nn, srad, util};
use mic_streams::hstreams::Context;
use mic_streams::micsim::PlatformConfig;

#[test]
fn all_six_apps_validate_natively_through_the_facade() {
    // MM
    {
        let cfg = mm::MmConfig {
            n: 48,
            tiles_per_dim: 3,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let bufs = mm::build(&mut ctx, &cfg).unwrap();
        let (a, b) = mm::fill_inputs(&ctx, &cfg, &bufs, 1).unwrap();
        ctx.run_native().unwrap();
        let c = mm::collect_result(&ctx, &cfg, &bufs).unwrap();
        util::assert_close(&c.data, &mm::reference(&a, &b).data, 2e-3, "mm");
    }
    // CF
    {
        let cfg = cholesky::CfConfig {
            n: 36,
            tiles_per_dim: 3,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(3)
            .build()
            .unwrap();
        let bufs = cholesky::build(&mut ctx, &cfg).unwrap();
        let a = cholesky::fill_inputs(&ctx, &cfg, &bufs, 2).unwrap();
        ctx.run_native().unwrap();
        let l = cholesky::collect_result(&ctx, &cfg, &bufs).unwrap();
        util::assert_close(&l, &cholesky::reference(&a, cfg.n), 2e-3, "cf");
    }
    // Kmeans
    {
        let cfg = kmeans::KmeansConfig {
            points: 256,
            dims: 4,
            k: 4,
            iterations: 4,
            tiles: 4,
            alloc_micros: 5,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let bufs = kmeans::build(&mut ctx, &cfg).unwrap();
        let data = kmeans::fill_inputs(&ctx, &cfg, &bufs, 3).unwrap();
        ctx.run_native().unwrap();
        util::assert_close(
            &ctx.read_host(bufs.centroids).unwrap(),
            &kmeans::reference(&cfg, &data),
            1e-3,
            "kmeans",
        );
    }
    // Hotspot
    {
        let cfg = hotspot::HotspotConfig {
            rows: 20,
            cols: 16,
            iterations: 4,
            tiles: 3,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let bufs = hotspot::build(&mut ctx, &cfg).unwrap();
        let (t0, p0) = hotspot::fill_inputs(&ctx, &cfg, &bufs, 4).unwrap();
        ctx.run_native().unwrap();
        util::assert_close(
            &hotspot::collect_result(&ctx, &cfg, &bufs).unwrap(),
            &hotspot::reference(&cfg, &t0, &p0),
            1e-3,
            "hotspot",
        );
    }
    // NN
    {
        let cfg = nn::NnConfig {
            records: 1024,
            tiles: 4,
            k: 5,
            target: (40.0, 120.0),
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let bufs = nn::build(&mut ctx, &cfg).unwrap();
        let data = nn::fill_inputs(&ctx, &cfg, &bufs, 5).unwrap();
        ctx.run_native().unwrap();
        let got = nn::select_neighbors(&ctx, &cfg, &bufs).unwrap();
        assert_eq!(got, nn::reference(&cfg, &data));
    }
    // SRAD
    {
        let cfg = srad::SradConfig {
            rows: 18,
            cols: 14,
            lambda: 0.5,
            iterations: 3,
            tiles: 3,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let bufs = srad::build(&mut ctx, &cfg).unwrap();
        let img = srad::fill_inputs(&ctx, &cfg, &bufs, 6).unwrap();
        ctx.run_native().unwrap();
        util::assert_close(
            &srad::collect_result(&ctx, &cfg, &bufs).unwrap(),
            &srad::reference(&cfg, &img),
            5e-3,
            "srad",
        );
    }
}

#[test]
fn sim_and_native_agree_on_program_semantics() {
    // The same event/barrier-ordered program must produce the same data
    // natively, and the simulator must accept it (same validation path) and
    // honour the orderings in its timeline.
    let build = || {
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(3)
            .build()
            .unwrap();
        let x = ctx.alloc("x", 8);
        let y = ctx.alloc("y", 8);
        let z = ctx.alloc("z", 8);
        let (s0, s1, s2) = (
            ctx.stream(0).unwrap(),
            ctx.stream(1).unwrap(),
            ctx.stream(2).unwrap(),
        );
        use mic_streams::hstreams::kernel::KernelDesc;
        use mic_streams::micsim::compute::KernelProfile;
        let prof = || KernelProfile::streaming("k", 1e9);
        ctx.kernel(
            s0,
            KernelDesc::simulated("fill", prof(), 8.0)
                .writing([x])
                .with_native(|k| k.writes[0].iter_mut().for_each(|v| *v = 2.0)),
        )
        .unwrap();
        let e = ctx.record_event(s0).unwrap();
        ctx.wait_event(s1, e).unwrap();
        ctx.kernel(
            s1,
            KernelDesc::simulated("double", prof(), 8.0)
                .reading([x])
                .writing([y])
                .with_native(|k| {
                    for (o, i) in k.writes[0].iter_mut().zip(k.reads[0]) {
                        *o = i * 3.0;
                    }
                }),
        )
        .unwrap();
        ctx.barrier();
        ctx.kernel(
            s2,
            KernelDesc::simulated("sum", prof(), 8.0)
                .reading([x, y])
                .writing([z])
                .with_native(|k| {
                    for i in 0..k.writes[0].len() {
                        k.writes[0][i] = k.reads[0][i] + k.reads[1][i];
                    }
                }),
        )
        .unwrap();
        ctx.d2h(s2, z).unwrap();
        (ctx, z)
    };

    let (ctx, z) = build();
    let sim = ctx.run_sim().unwrap();
    // Timeline ordering: "sum" starts after both "fill" and "double" end.
    let rec = |name: &str| {
        sim.timeline
            .records
            .iter()
            .find(|r| r.label == name)
            .unwrap()
            .clone()
    };
    assert!(rec("sum").start >= rec("fill").finish);
    assert!(rec("sum").start >= rec("double").finish);

    let (ctx2, z2) = build();
    ctx2.run_native().unwrap();
    assert_eq!(ctx2.read_host(z2).unwrap(), vec![8.0; 8]);
    let _ = z;
}

#[test]
fn overlappable_flow_beats_staged_flow_in_sim() {
    use mic_streams::hstreams::plan::{enqueue_tiles, FlowMode, TileTask};
    use mic_streams::hstreams::KernelDesc;
    use mic_streams::micsim::compute::KernelProfile;

    let makespan = |mode| {
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(4)
            .build()
            .unwrap();
        let tasks: Vec<TileTask> = (0..12)
            .map(|t| {
                let a = ctx.alloc(format!("a{t}"), 1 << 20);
                let b = ctx.alloc(format!("b{t}"), 1 << 20);
                TileTask {
                    inputs: vec![a],
                    kernel: KernelDesc::simulated(
                        format!("k{t}"),
                        KernelProfile::streaming("k", 0.32e9),
                        (1 << 20) as f64 * 40.0,
                    )
                    .reading([a])
                    .writing([b]),
                    outputs: vec![b],
                }
            })
            .collect();
        enqueue_tiles(&mut ctx, tasks, mode).unwrap();
        ctx.run_sim().unwrap().makespan()
    };
    assert!(makespan(FlowMode::Overlappable) < makespan(FlowMode::Staged));
}

#[test]
fn tuner_integrates_with_apps() {
    use mic_streams::tune::candidates::{pruned_space, TuneBounds};
    use mic_streams::tune::search::search;

    let bounds = TuneBounds {
        max_partitions: 8,
        max_tiles: 32,
        max_multiple: 4,
    };
    let space = pruned_space(&mic_streams::micsim::DeviceSpec::phi_31sp(), &bounds);
    let out = search(&space, |p, t| {
        let cfg = kmeans::KmeansConfig {
            points: 16_000,
            dims: 8,
            k: 4,
            iterations: 3,
            tiles: t,
            alloc_micros: 5,
        };
        kmeans::simulate(&cfg, PlatformConfig::phi_31sp(), p).ok()
    });
    assert!(out.evaluations > 0);
    assert!(out.best_value > 0.0);
    assert!(out.best.0 >= 2 && 56 % out.best.0 == 0);
}
