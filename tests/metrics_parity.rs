//! Telemetry parity and determinism across the executors.
//!
//! * **Parity**: for every shipped app, the sim and native executors must
//!   export the identical instrument catalog and the identical labelled
//!   series set — the exported shape is a function of the run geometry,
//!   never of which executor ran or what the program did. This is the
//!   differential check the metrics layer was designed around: a counter
//!   added to one executor but not the other fails here, not in a
//!   dashboard three PRs later.
//! * **Determinism**: the sim executor prices instruments off simulated
//!   time, so two identical runs must export **byte-identical** JSONL and
//!   OpenMetrics text (no wall clock, no RNG, no iteration-order leaks).

use mic_streams::apps::tunable::{
    Tunable, TunableCf, TunableHbench, TunableKmeans, TunableMm, TunableNn, TunablePartitionMicro,
};
use mic_streams::hstreams::context::Context;
use mic_streams::hstreams::MetricsSnapshot;
use mic_streams::micsim::PlatformConfig;

const PARTITIONS: usize = 2;
const TASKS: usize = 4;

/// The six apps at small native-runnable problem sizes (fill seeds set so
/// the native kernels have real inputs), paired with a feasible task count.
fn apps() -> Vec<Box<dyn Tunable>> {
    vec![
        Box::new(TunableHbench::new(1 << 10, 2, Some(7))),
        Box::new(TunableMm::new(32, Some(7))),
        Box::new(TunableCf::new(32, Some(7))),
        Box::new(TunableNn::new(1 << 10, Some(7))),
        Box::new(TunableKmeans::new(1 << 10, 8, 2, Some(7))),
        Box::new(TunablePartitionMicro::new(1 << 10, 2)),
    ]
}

fn metered_context() -> Context {
    Context::builder(PlatformConfig::phi_31sp())
        .partitions(PARTITIONS)
        .metrics(true)
        .build()
        .unwrap()
}

fn record(app: &mut dyn Tunable) -> Context {
    let mut ctx = metered_context();
    assert!(
        app.feasible(TASKS),
        "{} must accept T={TASKS} for this test's geometry",
        app.name()
    );
    app.record(&mut ctx, TASKS).unwrap();
    ctx
}

fn shape(snap: &MetricsSnapshot) -> (Vec<String>, Vec<String>) {
    (snap.instrument_names(), snap.series_names())
}

#[test]
fn every_app_exports_the_same_instrument_set_on_both_executors() {
    let mut expected_catalog: Option<Vec<String>> = None;
    for mut app in apps() {
        let ctx = record(app.as_mut());
        let sim = ctx.run_sim().unwrap();
        let native = ctx.run_native().unwrap();
        let sim_snap = sim.metrics.expect("sim metrics enabled");
        let native_snap = native.metrics.expect("native metrics enabled");
        assert_eq!(
            shape(&sim_snap),
            shape(&native_snap),
            "{}: executors disagree on the exported metric shape",
            app.name()
        );
        // The catalog is also app-independent: same geometry, same names.
        let names = sim_snap.instrument_names();
        match &expected_catalog {
            None => expected_catalog = Some(names),
            Some(expected) => assert_eq!(
                expected,
                &names,
                "{}: instrument catalog differs from the other apps'",
                app.name()
            ),
        }
    }
    let catalog = expected_catalog.unwrap();
    for required in [
        "launch_overhead_us",
        "kernel_time_us",
        "transfer_time_us",
        "queue_wait_us",
        "bytes_transferred",
        "actions_executed",
        "makespan_us",
        "hidden_transfer_fraction",
    ] {
        assert!(
            catalog.iter().any(|n| n == required),
            "instrument catalog lost {required}: {catalog:?}"
        );
    }
}

#[test]
fn sim_metrics_exports_are_byte_identical_across_runs() {
    let export = |app: &mut dyn Tunable| {
        let ctx = record(app);
        let snap = ctx.run_sim().unwrap().metrics.expect("metrics enabled");
        (snap.to_jsonl(), snap.to_openmetrics())
    };
    // Two runs from two independently built contexts — nothing shared, so
    // any divergence is nondeterminism inside the executor or exporters.
    let (jsonl_a, om_a) = export(&mut TunableMm::new(32, Some(7)));
    let (jsonl_b, om_b) = export(&mut TunableMm::new(32, Some(7)));
    assert_eq!(jsonl_a, jsonl_b, "sim JSONL export must be deterministic");
    assert_eq!(om_a, om_b, "sim OpenMetrics export must be deterministic");
}
