#!/usr/bin/env bash
# Repo verification gate: formatting, lints, build, and the tier-1 tests
# (ROADMAP.md). Run from the repo root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings, plus curated pedantic subset)"
cargo clippy --workspace --all-targets -- -D warnings \
  -W clippy::needless_pass_by_value \
  -W clippy::semicolon_if_nothing_returned \
  -W clippy::redundant_closure_for_method_calls

echo "==> unsafe-code audit (every unsafe site carries a SAFETY comment)"
unaudited=0
while IFS=: read -r file line _; do
  start=$(( line > 6 ? line - 6 : 1 ))
  if ! sed -n "${start},${line}p" "$file" | grep -q "SAFETY"; then
    echo "  missing SAFETY comment: $file:$line"
    unaudited=1
  fi
done < <(grep -rnE 'unsafe (impl|fn)|unsafe ?\{' crates --include='*.rs' \
           | grep -vE ':[[:space:]]*(//|//!|///)')
[ "$unaudited" -eq 0 ] || { echo "unsafe audit failed"; exit 1; }

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> build examples"
cargo build --release --examples

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> fault-injection suite"
cargo test -q -p hstreams --test fault_injection

echo "==> static-analyzer suites (check_suite, proptest, app sweep)"
cargo test -q -p hstreams --test check_suite
cargo test -q -p hstreams --test proptest_check
cargo test -q --test static_check_apps

echo "==> differential fuzz smoke (quick: corpus replay + 2 fixed-seed sessions agree)"
cargo run --release -p mic-bench --bin fuzz_smoke -- --quick
cargo test -q --test fuzz_regressions

echo "==> snapshot BENCH trajectory (baseline for the advisory compare)"
BASELINE_DIR="$(mktemp -d)"
trap 'rm -rf "$BASELINE_DIR"' EXIT
cp results/BENCH_*.json "$BASELINE_DIR"/ 2>/dev/null || \
  echo "  (no prior BENCH_*.json — first run, advisory compare will be a no-op)"

echo "==> chaos suite (quick: retry + degraded recovery keep MM's output exact)"
cargo run --release -p mic-bench --bin chaos -- --quick

echo "==> sim-vs-native trace comparator (tiny workload)"
cargo run --release -p mic-bench --bin native_vs_sim_trace -- --quick

echo "==> autotuner gates (quick: parity, cache, one runtime)"
cargo run --release -p mic-bench --bin autotune -- --quick

echo "==> scheduler bench (quick: HEFT/WorkSteal within 5% of FIFO on every app)"
cargo run --release -p mic-bench --bin bench_sched -- --quick

echo "==> metrics-overhead gate (quick: pool speedup >= 2x, metrics <= 1.5 us/launch)"
cargo run --release -p mic-bench --bin bench_native_runtime -- --quick

echo "==> serving gate (quick: 8 tenants, Jain >= 0.9, chaos isolation bit-exact)"
cargo run --release -p mic-bench --bin bench_serve -- --quick

echo "==> optimizer gate (quick: certified elision fixpoint, sound static bound, winner-preserving pruning)"
cargo run --release -p mic-bench --bin bench_opt -- --quick

echo "==> bench result envelopes (schema_version/bench/mode on every BENCH_*.json)"
cargo run --release -p mic-bench --bin bench_compare

echo "==> advisory perf diff (fresh quick benches vs pre-run trajectory)"
cargo run --release -p mic-bench --bin bench_compare -- \
  --baseline "$BASELINE_DIR" --current results --advisory

echo "verify: OK"
