//! Streamed tiled matrix multiplication on the **native** executor: the
//! kernels really run on partitioned host thread pools, the "PCIe link" is
//! a serialized copy engine, and the result is validated against a serial
//! reference.
//!
//! Run with: `cargo run --release --example tiled_matmul`

use hstreams::{Context, NativeConfig};
use mic_apps::mm::{self, MmConfig};
use mic_apps::util::max_rel_diff;
use micsim::PlatformConfig;
use std::time::Instant;

/// Throttle the copy engine to PCIe-gen2-ish speed so the link is a real
/// resource, as on the original platform (unthrottled host memcpy would be
/// too fast to matter).
const LINK_BW: f64 = 50.0e6;

fn run(n: usize, tiles_per_dim: usize, partitions: usize) -> (f64, f64) {
    let cfg = MmConfig { n, tiles_per_dim };
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(partitions)
        .build()
        .expect("context");
    let bufs = mm::build(&mut ctx, &cfg).expect("build");
    let (a, b) = mm::fill_inputs(&ctx, &cfg, &bufs, 42).expect("inputs");

    let t0 = Instant::now();
    let report = ctx
        .run_native_with(&NativeConfig {
            link_bandwidth: Some(LINK_BW),
            ..NativeConfig::default()
        })
        .expect("native run");
    let wall = t0.elapsed().as_secs_f64();

    let c = mm::collect_result(&ctx, &cfg, &bufs).expect("collect");
    let want = mm::reference(&a, &b);
    let err = max_rel_diff(&c.data, &want.data, 1.0);
    assert!(err < 5e-3, "validation failed: max rel err {err}");
    println!(
        "  n={n} T={:>3} P={partitions}: {:7.1} ms wall, {} actions, {} B moved, max rel err {err:.2e}",
        tiles_per_dim * tiles_per_dim,
        wall * 1e3,
        report.actions_executed,
        report.bytes_transferred,
    );
    (wall, cfg.flops())
}

fn main() {
    let n = 512;
    println!("streamed MM on the native executor (n = {n}), validated vs serial:");
    let (serial_wall, _) = run(n, 1, 1);
    let (streamed_wall, flops) = run(n, 4, 4);
    println!(
        "\nnon-streamed: {:.1} ms | streamed: {:.1} ms | speedup {:.2}x | {:.2} host GFLOPS",
        serial_wall * 1e3,
        streamed_wall * 1e3,
        serial_wall / streamed_wall,
        flops / streamed_wall / 1e9
    );
    println!(
        "(the copy engine is throttled to {:.0} MB/s to stand in for PCIe; \
         the streamed version wins by overlapping those transfers with \
         kernels in other streams — the paper's temporal sharing, for real)",
        LINK_BW / 1e6
    );
}
