//! Pick `(P, T)` for Cholesky with the paper's Sec. V-C heuristics and
//! compare against a wider sweep: the pruned candidate set must land near
//! the sweep's optimum at a fraction of the evaluations.
//!
//! Run with: `cargo run --release --example autotune_cholesky`

use mic_apps::cholesky::{simulate, CfConfig};
use micsim::device::DeviceSpec;
use micsim::PlatformConfig;
use stream_tune::candidates::{pruned_space, CandidateSpace, TuneBounds};
use stream_tune::search::search;

fn main() {
    let n = 9600usize;
    // T here is tiles-per-dimension squared; only divisors of n make sense.
    let tpds: Vec<usize> = (1..=24).filter(|t| n.is_multiple_of(*t)).collect();

    // Objective: simulated seconds for (P, tiles_per_dim encoded in T).
    let objective = |p: usize, tpd: usize| -> Option<f64> {
        if !n.is_multiple_of(tpd) {
            return None;
        }
        simulate(
            &CfConfig {
                n,
                tiles_per_dim: tpd,
            },
            PlatformConfig::phi_31sp(),
            p,
        )
        .ok()
        .map(|(secs, _)| secs)
    };

    // Wide sweep: P in 1..=56 x all valid tpd.
    let wide = CandidateSpace {
        pairs: (1..=56)
            .flat_map(|p| tpds.iter().map(move |&t| (p, t)))
            .collect(),
    };
    let t0 = std::time::Instant::now();
    let full = search(&wide, objective);
    let wide_wall = t0.elapsed();

    // Pruned: P from the core-divisor set; tpd such that tpd^2 is a
    // multiple-ish of P is not meaningful for CF's 2-D tiling, so the
    // heuristic keeps every valid tpd but only the aligned P values.
    let bounds = TuneBounds {
        max_partitions: 56,
        max_tiles: *tpds.last().unwrap(),
        max_multiple: 1,
    };
    let _ = bounds;
    let aligned_p = stream_tune::candidates::partition_candidates(&DeviceSpec::phi_31sp(), 56);
    let pruned = CandidateSpace {
        pairs: aligned_p
            .iter()
            .flat_map(|&p| tpds.iter().map(move |&t| (p, t)))
            .collect(),
    };
    let t0 = std::time::Instant::now();
    let fast = search(&pruned, objective);
    let fast_wall = t0.elapsed();

    println!("| search | best (P, tiles/dim) | time (s) | evals | wall |");
    println!("|---|---|---|---|---|");
    println!(
        "| wide sweep | {:?} | {:.3} | {} | {wide_wall:.1?} |",
        full.best, full.best_value, full.evaluations
    );
    println!(
        "| Sec. V-C pruned | {:?} | {:.3} | {} | {fast_wall:.1?} |",
        fast.best, fast.best_value, fast.evaluations
    );
    println!(
        "\npruned search: {:.1}x fewer evaluations, optimum within {:.2}%",
        full.evaluations as f64 / fast.evaluations as f64,
        (fast.best_value / full.best_value - 1.0) * 100.0
    );
    let _ = pruned_space(&DeviceSpec::phi_31sp(), &TuneBounds::default());
}
