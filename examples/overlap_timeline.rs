//! Visualize temporal sharing: the same tiled workload with an overlappable
//! flow (per-tile `H2D → EXE → D2H` pipelines) and with the stage-barrier
//! flow of a non-overlappable app, as per-resource Gantt charts.
//!
//! Run with: `cargo run --release --example overlap_timeline`

use hstreams::plan::{enqueue_tiles, FlowMode, TileTask};
use hstreams::{Context, KernelDesc};
use micsim::compute::KernelProfile;
use micsim::PlatformConfig;

fn build(mode: FlowMode) -> hstreams::SimReport {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(4)
        .build()
        .expect("context");
    let mut tasks = Vec::new();
    for t in 0..8 {
        let a = ctx.alloc(format!("a{t}"), 1 << 20);
        let b = ctx.alloc(format!("b{t}"), 1 << 20);
        tasks.push(TileTask {
            inputs: vec![a],
            kernel: KernelDesc::simulated(
                format!("x{t}"),
                KernelProfile::streaming("x", 0.32e9),
                (1 << 20) as f64 * 60.0,
            )
            .reading([a])
            .writing([b]),
            outputs: vec![b],
        });
    }
    enqueue_tiles(&mut ctx, tasks, mode).expect("enqueue");
    ctx.run_sim().expect("sim")
}

fn show(title: &str, report: &hstreams::SimReport) {
    let stats = report.overlap();
    println!("== {title} ==");
    println!(
        "makespan {}   link busy {}   compute busy {}   hidden {:.0}%",
        report.makespan(),
        stats.link_busy,
        stats.compute_busy,
        stats.hidden_fraction() * 100.0
    );
    println!("{}", report.gantt(110));
    let breakdown = report.critical_path_breakdown();
    let total: f64 = breakdown.iter().map(|(_, d)| d.as_millis_f64()).sum();
    print!("critical path: ");
    for (label, d) in &breakdown {
        print!(
            "{label} {:.1} ms ({:.0}%)  ",
            d.as_millis_f64(),
            d.as_millis_f64() / total * 100.0
        );
    }
    println!("\n");
}

fn main() {
    let overlappable = build(FlowMode::Overlappable);
    let staged = build(FlowMode::Staged);
    show("overlappable flow (MM/CF/NN style)", &overlappable);
    show(
        "stage-synchronized flow (Hotspot/Kmeans/SRAD style)",
        &staged,
    );
    println!(
        "speedup of the overlappable flow: {:.2}x (paper finding #4: being \
         overlappable is a must for stream benefits)",
        staged.makespan().nanos() as f64 / overlappable.makespan().nanos() as f64
    );
}
