//! Cholesky Factorization on one vs two simulated MICs — the Sec. VI /
//! Fig. 11 story: the same streamed code runs unmodified on two cards and
//! gains substantially, but stays below the projected 2× because separate
//! memories force extra tile transfers and cross-card synchronization.
//!
//! Run with: `cargo run --release --example multi_device`

use mic_apps::cholesky::{simulate, CfConfig};
use micsim::PlatformConfig;

fn main() {
    println!("| dataset | 1-mic GFLOPS | 2-mics GFLOPS | projected | achieved/projected |");
    println!("|---|---|---|---|---|");
    for (n, tpd) in [(14000usize, 14usize), (16000, 16)] {
        let cfg = CfConfig {
            n,
            tiles_per_dim: tpd,
        };
        let (_, one) = simulate(&cfg, PlatformConfig::phi_31sp(), 4).expect("1-mic sim");
        let (_, two) = simulate(&cfg, PlatformConfig::phi_31sp_multi(2), 4).expect("2-mic sim");
        println!(
            "| {n}^2 | {one:.0} | {two:.0} | {:.0} | {:.0}% |",
            2.0 * one,
            two / (2.0 * one) * 100.0
        );
    }
    println!(
        "\nThe gap to the projection is the cost of mirroring factored tiles \
         between the cards' separate memories plus pricier cross-card barriers \
         — exactly the two causes the paper names."
    );
}
