//! Export a simulated timeline as a Chrome trace (open in
//! `chrome://tracing` or https://ui.perfetto.dev): every transfer, kernel
//! and barrier of a streamed Cholesky run, one row per resource.
//!
//! Run with: `cargo run --release --example export_trace`

use hstreams::Context;
use mic_apps::cholesky::{build, CfConfig};
use micsim::trace::chrome_trace;
use micsim::PlatformConfig;

fn main() -> hstreams::Result<()> {
    let cfg = CfConfig {
        n: 4800,
        tiles_per_dim: 6,
    };
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(4)
        .build()?;
    build(&mut ctx, &cfg)?;
    let report = ctx.run_sim()?;

    let json = chrome_trace(&report.timeline, &report.names);
    let path = std::path::Path::new("results");
    std::fs::create_dir_all(path).expect("create results dir");
    let file = path.join("cholesky_trace.json");
    std::fs::write(&file, &json).expect("write trace");

    let stats = report.overlap();
    println!(
        "simulated {} tasks in {} ({:.0}% of link traffic hidden under compute)",
        report.timeline.records.len(),
        report.makespan(),
        stats.hidden_fraction() * 100.0
    );
    println!("wrote {} ({} bytes)", file.display(), json.len());
    println!("open it at chrome://tracing or https://ui.perfetto.dev");
    Ok(())
}
