//! Export timelines as Chrome traces (open in `chrome://tracing` or
//! https://ui.perfetto.dev): a streamed Cholesky run, **simulated and
//! natively executed**, one row per resource. Both exports come from the
//! same `Timeline` type — the native one is recorded by
//! `NativeConfig { trace: true }` — so the two files line up lane for lane
//! and the hidden fractions are computed by identical code.
//!
//! Run with: `cargo run --release --example export_trace`

use hstreams::{Context, NativeConfig};
use mic_apps::cholesky::{build, fill_inputs, CfConfig};
use micsim::trace::chrome_trace;
use micsim::PlatformConfig;

fn main() -> hstreams::Result<()> {
    let path = std::path::Path::new("results");
    std::fs::create_dir_all(path).expect("create results dir");

    // Paper-scale simulated run.
    let cfg = CfConfig {
        n: 4800,
        tiles_per_dim: 6,
    };
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(4)
        .build()?;
    build(&mut ctx, &cfg)?;
    let report = ctx.run_sim()?;

    let json = chrome_trace(&report.timeline, &report.names);
    let file = path.join("cholesky_trace.json");
    std::fs::write(&file, &json).expect("write trace");

    let sim_stats = report.overlap();
    println!(
        "simulated {} tasks in {} ({:.0}% of link traffic hidden under compute)",
        report.timeline.records.len(),
        report.makespan(),
        sim_stats.hidden_fraction() * 100.0
    );
    println!("wrote {} ({} bytes)", file.display(), json.len());

    // The same flow, natively executed at a host-tractable size, traced
    // into the identical timeline representation. Both executors run the
    // *same* recorded program, with the native copy engine throttled to the
    // simulator's link bandwidth.
    let cfg = CfConfig {
        n: 1536,
        tiles_per_dim: 6,
    };
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(4)
        .build()?;
    let bufs = build(&mut ctx, &cfg)?;
    fill_inputs(&ctx, &cfg, &bufs, 7)?;
    let sim_small = ctx.run_sim()?.overlap();
    let native = ctx.run_native_with(&NativeConfig {
        trace: true,
        link_bandwidth: Some(ctx.config().link.bandwidth),
        ..NativeConfig::default()
    })?;
    let trace = native.trace.expect("trace requested");
    let native_json = trace.chrome_trace();
    let native_file = path.join("cholesky_trace_native.json");
    std::fs::write(&native_file, &native_json).expect("write native trace");

    let native_stats = trace.overlap();
    println!(
        "natively executed {} tasks in {:?} on this host",
        trace.timeline.records.len(),
        native.wall,
    );
    println!(
        "hidden fraction, same program (n={}): sim {:.0}% vs native {:.0}%",
        cfg.n,
        sim_small.hidden_fraction() * 100.0,
        native_stats.hidden_fraction() * 100.0
    );
    println!(
        "wrote {} ({} bytes)",
        native_file.display(),
        native_json.len()
    );
    println!("open them at chrome://tracing or https://ui.perfetto.dev");
    Ok(())
}
