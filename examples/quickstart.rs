//! Quickstart: pipeline a tiled vector workload over four partitions on the
//! simulated Xeon Phi, then print the timeline, the overlap statistics and
//! a Gantt chart.
//!
//! Run with: `cargo run --release --example quickstart`

use hstreams::kernel::KernelDesc;
use hstreams::Context;
use micsim::compute::KernelProfile;
use micsim::PlatformConfig;

fn main() -> hstreams::Result<()> {
    // A context = the card partitioned into 4 core groups, 1 stream each.
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(4)
        .build()?;
    println!(
        "platform: {} usable cores, {} streams",
        ctx.config().device.usable_cores(),
        ctx.stream_count()
    );

    // Tile a 64 MiB saxpy-style workload into 16 tasks, round-robin over
    // the streams: H2D -> EXE -> D2H per tile.
    let elems_per_tile = 1 << 20;
    for t in 0..16 {
        let a = ctx.alloc(format!("a{t}"), elems_per_tile);
        let b = ctx.alloc(format!("b{t}"), elems_per_tile);
        let s = ctx.stream(t % 4)?;
        ctx.h2d(s, a)?;
        ctx.kernel(
            s,
            KernelDesc::simulated(
                format!("saxpy{t}"),
                KernelProfile::streaming("saxpy", 0.32e9),
                elems_per_tile as f64 * 50.0,
            )
            .reading([a])
            .writing([b]),
        )?;
        ctx.d2h(s, b)?;
    }

    // Price it on the calibrated simulator.
    let report = ctx.run_sim()?;
    let stats = report.overlap();
    println!("\nmakespan        : {}", report.makespan());
    println!("link busy       : {}", stats.link_busy);
    println!("compute busy    : {}", stats.compute_busy);
    println!(
        "transfers hidden: {:.0}% (ideal lower bound {})",
        stats.hidden_fraction() * 100.0,
        stats.ideal_makespan()
    );
    println!("\n{}", report.gantt(100));

    // The same program, single stream: the non-streamed baseline.
    let mut serial = Context::builder(PlatformConfig::phi_31sp()).build()?;
    for t in 0..16 {
        let a = serial.alloc(format!("a{t}"), elems_per_tile);
        let b = serial.alloc(format!("b{t}"), elems_per_tile);
        let s = serial.stream(0)?;
        serial.h2d(s, a)?;
        serial.kernel(
            s,
            KernelDesc::simulated(
                format!("saxpy{t}"),
                KernelProfile::streaming("saxpy", 0.32e9),
                elems_per_tile as f64 * 50.0,
            )
            .reading([a])
            .writing([b]),
        )?;
        serial.d2h(s, b)?;
    }
    let base = serial.run_sim()?;
    println!(
        "single stream would take {} — multiple streams save {:.0}%",
        base.makespan(),
        (1.0 - report.makespan().nanos() as f64 / base.makespan().nanos() as f64) * 100.0
    );
    Ok(())
}
