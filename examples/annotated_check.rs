//! Static analysis in action: record a two-stream program with a missing
//! synchronization edge, let the analyzer refuse it, and print the
//! compiler-style annotated listing that points at the offending actions.
//! Then add the one `record_event`/`wait_event` pair the analyzer asked
//! for and watch the same program run clean.
//!
//! Run with: `cargo run --release --example annotated_check`

use hstreams::kernel::KernelDesc;
use hstreams::{Context, Error};
use micsim::compute::KernelProfile;
use micsim::PlatformConfig;

fn kernel(label: &str) -> KernelDesc {
    KernelDesc::simulated(label, KernelProfile::streaming("stage", 1e9), 1e6)
}

fn main() -> hstreams::Result<()> {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(2)
        .build()?;

    // Producer on stream 0 fills `a`; consumer on stream 1 reads it into
    // `b` — but nothing orders the two streams, so the read races the
    // upload and the producing kernel.
    let a = ctx.alloc("a", 1 << 16);
    let b = ctx.alloc("b", 1 << 16);
    let (s0, s1) = (ctx.stream(0)?, ctx.stream(1)?);
    ctx.h2d(s0, a)?;
    ctx.kernel(s0, kernel("produce").writing([a]))?;
    ctx.kernel(s1, kernel("consume").reading([a]).writing([b]))?;
    ctx.d2h(s1, b)?;

    // Executors run this analysis by default and refuse; `analyze()` runs
    // it on demand so we can render the annotated listing ourselves.
    let analysis = ctx.analyze();
    println!("--- annotated program (racy) ---");
    print!("{}", ctx.program().dump_annotated(&analysis.report));

    match ctx.run_sim() {
        Err(Error::Check(report)) => {
            println!("\nexecutor refused: {}", report.summary());
        }
        other => panic!("expected the check to reject the program: {other:?}"),
    }

    // The fix the diagnostics point at: one cross-stream event edge from
    // the producer to the consumer. Re-record with it and run.
    ctx.reset_program();
    ctx.h2d(s0, a)?;
    ctx.kernel(s0, kernel("produce").writing([a]))?;
    let ready = ctx.record_event(s0)?;
    ctx.wait_event(s1, ready)?;
    ctx.kernel(s1, kernel("consume").reading([a]).writing([b]))?;
    ctx.d2h(s1, b)?;

    let analysis = ctx.analyze();
    println!("\n--- annotated program (synchronized) ---");
    print!("{}", ctx.program().dump_annotated(&analysis.report));
    let report = ctx.run_sim()?;
    println!("\nran clean: makespan {:?}", report.makespan());
    Ok(())
}
