//! Workload partitioning *plus* multiple streams — the combination the
//! paper points at in its related-work discussion ("Ultimately, we need to
//! leverage both workload partitioning and multiple streams to minimize the
//! end-to-end execution time").
//!
//! The runtime's host-kernel support makes this a one-flag change: some of
//! MM's row blocks run as host kernels on the Xeon (no transfers at all),
//! the rest stream to the simulated Phi. The sweep shows the end-to-end
//! optimum at a split that loads both processors.
//!
//! Run with: `cargo run --release --example hybrid_host_device`

use hstreams::kernel::KernelDesc;
use hstreams::Context;
use mic_apps::profiles;
use micsim::PlatformConfig;

/// Build MM with the first `host_rows` C-rows computed host-side and the
/// rest streamed to the card in `tiles` row-block tasks, then simulate.
fn simulate_split(n: usize, host_rows: usize, tiles: usize) -> f64 {
    // Two streams per partition: stream 1 (partition 0's second stream)
    // hosts the Xeon-side kernel — host kernels occupy the *host* resource,
    // not the partition, so partition 0 keeps serving device tiles through
    // stream 0 in parallel.
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(4)
        .streams_per_partition(2)
        .build()
        .expect("context");
    let device_rows = n - host_rows;
    let host_stream = ctx.stream(1).expect("stream");
    let device_streams: Vec<_> = (0..ctx.stream_count())
        .filter(|&i| i != 1)
        .map(|i| ctx.stream(i).expect("stream"))
        .collect();

    // Host part: one kernel over the host rows; operands already live on
    // the host, so no transfers at all.
    if host_rows > 0 {
        let a_host = ctx.alloc("A_host", host_rows * n);
        let b_host = ctx.alloc("B_host", n * n);
        let c_host = ctx.alloc("C_host", host_rows * n);
        let work = 2.0 * host_rows as f64 * n as f64 * n as f64;
        ctx.kernel(
            host_stream,
            KernelDesc::simulated("mm_host", profiles::mm_gemm(), work)
                .on_host()
                .reading([a_host, b_host])
                .writing([c_host]),
        )
        .expect("host kernel");
    }

    // Device part: B once, then row blocks pipelined over the streams.
    if device_rows > 0 {
        let b_dev = ctx.alloc("B_dev", n * n);
        let s0 = device_streams[0];
        ctx.h2d(s0, b_dev).expect("h2d B");
        let e_b = ctx.record_event(s0).expect("event");
        let rows_per_tile = device_rows.div_ceil(tiles);
        let mut done = 0usize;
        let mut t = 0usize;
        while done < device_rows {
            let rows = rows_per_tile.min(device_rows - done);
            let a = ctx.alloc(format!("A{t}"), rows * n);
            let c = ctx.alloc(format!("C{t}"), rows * n);
            let s = device_streams[t % device_streams.len()];
            ctx.h2d(s, a).expect("h2d A");
            if s != s0 {
                ctx.wait_event(s, e_b).expect("wait B");
            }
            let work = 2.0 * rows as f64 * n as f64 * n as f64;
            ctx.kernel(
                s,
                KernelDesc::simulated(format!("mm_dev{t}"), profiles::mm_gemm(), work)
                    .reading([a, b_dev])
                    .writing([c]),
            )
            .expect("device kernel");
            ctx.d2h(s, c).expect("d2h C");
            done += rows;
            t += 1;
        }
    }

    ctx.run_sim().expect("sim").makespan().as_secs_f64()
}

fn main() {
    let n = 6000usize;
    println!("hybrid MM (n = {n}): host share swept, device part streamed (P=4, 16 tiles)\n");
    println!("| host share | host rows | makespan (ms) |");
    println!("|---|---|---|");
    let mut best = (0usize, f64::INFINITY);
    for pct in [0usize, 5, 10, 15, 20, 30, 50, 100] {
        let host_rows = n * pct / 100;
        let secs = simulate_split(n, host_rows, 16);
        if secs < best.1 {
            best = (pct, secs);
        }
        println!("| {pct:>3} % | {host_rows:>5} | {:.1} |", secs * 1e3);
    }
    println!(
        "\nbest split: {} % on the host — the Xeon is worth ~{:.0} device \
         thread-equivalents, so loading it shaves the device's makespan \
         until the host becomes the bottleneck (the paper's 'leverage both \
         workload partitioning and multiple streams').",
        best.0,
        PlatformConfig::phi_31sp().host_equivalents
    );
}
