//! # mic-streams — multiple streams for MIC-style heterogeneous platforms
//!
//! Facade crate for the reproduction of *"Evaluating the Performance Impact
//! of Multiple Streams on the MIC-based Heterogeneous Platform"* (Li et al.,
//! 2016). It re-exports the member crates:
//!
//! * [`hstreams`] — the multiple-streams runtime (the paper's mechanism):
//!   streams, partitions, buffers, and two executors — a calibrated
//!   simulator of the Xeon Phi platform and a real host thread-pool backend.
//! * [`micsim`] — the platform simulator substrate.
//! * [`apps`] — hBench plus the six applications the paper evaluates.
//! * [`tune`] — the Sec. V-C search-space pruning heuristics.
//! * [`fuzz`] — coverage-guided differential fuzzing of the runtime and
//!   checker (the three-oracle agreement harness).
//! * [`serve`] — multi-tenant stream service: elastic partition leasing,
//!   fair-share dispatch, and per-lease fault isolation.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for the paper-vs-measured record.

#![warn(missing_docs)]

pub use hstreams;
pub use micsim;

/// The seven workloads evaluated in the paper.
pub use mic_apps as apps;

/// Task- and resource-granularity selection heuristics.
pub use stream_tune as tune;

/// Coverage-guided differential fuzzing: checker, simulator and native
/// executor as three oracles that must agree on every program.
pub use stream_fuzz as fuzz;

/// Multi-tenant stream service: admission control, elastic partition
/// leasing, and DRR fair-share scheduling over one shared device.
pub use stream_serve as serve;
