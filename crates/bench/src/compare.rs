//! Regression detection over the `BENCH_*.json` trajectory.
//!
//! Two documents (a committed baseline and a fresh run) are flattened to
//! dotted-path leaves and compared per-metric with noise bands:
//!
//! * time-like keys (`*_us`, `*_ms`, `*seconds*`, `*_overhead*`,
//!   `*_delta`) regress when the current value exceeds the baseline by
//!   more than the relative tolerance plus a unit-scaled absolute floor;
//! * `speedup` (and `*_speedup`) regresses when it *drops* beyond the
//!   band;
//! * booleans regress on any `true -> false` flip (gates, output
//!   identity);
//! * everything else (counts, configuration echoes) is informational.
//!
//! Documents must carry the same [`crate::schema::BENCH_SCHEMA_VERSION`]
//! — a mismatch is a hard error, not a finding, because the values may
//! have changed meaning. When `mode` differs (quick vs full) numeric
//! comparisons are skipped — the repetition budgets are incomparable —
//! and only boolean gates are checked.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::schema::BENCH_SCHEMA_VERSION;

/// A comparable leaf value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Flat {
    /// Numeric leaf.
    Num(f64),
    /// Boolean leaf.
    Bool(bool),
}

/// How a finding should be treated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Outside the noise band in the bad direction — fails the gate.
    Regression,
    /// Outside the noise band in the good direction.
    Improvement,
    /// Changed, but not a gated metric.
    Info,
}

/// One per-metric comparison result.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Dotted path of the leaf, e.g. `apps[hbench/native].seconds`.
    pub path: String,
    /// Verdict.
    pub severity: Severity,
    /// Human-readable `baseline -> current` description.
    pub detail: String,
}

/// Tunables for the comparison.
#[derive(Clone, Copy, Debug)]
pub struct CompareOptions {
    /// Relative noise band (0.30 = 30%) applied to gated numerics.
    pub tolerance: f64,
}

impl Default for CompareOptions {
    fn default() -> CompareOptions {
        CompareOptions { tolerance: 0.30 }
    }
}

/// Check a parsed document's envelope against the current schema.
///
/// # Errors
/// Returns a message naming `file` when `schema_version` is missing or
/// differs from [`BENCH_SCHEMA_VERSION`] — the caller should surface it
/// verbatim and refuse to compare.
pub fn check_schema(doc: &Json, file: &str) -> Result<(), String> {
    match doc.get("schema_version").and_then(Json::as_u64) {
        Some(v) if v == BENCH_SCHEMA_VERSION => Ok(()),
        Some(v) => Err(format!(
            "{file}: schema_version {v} != supported {BENCH_SCHEMA_VERSION}; \
             regenerate the file with the current bench binaries before comparing"
        )),
        None => Err(format!(
            "{file}: missing schema_version; pre-schema result files cannot be \
             compared — regenerate with the current bench binaries"
        )),
    }
}

/// Keys used to give array elements stable identities instead of
/// positional indices, tried in order.
const ID_KEYS: [&str; 5] = ["app", "strategy", "name", "evaluator", "problem"];

fn element_id(v: &Json, index: usize) -> String {
    let parts: Vec<&str> = ID_KEYS
        .iter()
        .filter_map(|k| v.get(k).and_then(Json::as_str))
        .collect();
    if parts.is_empty() {
        index.to_string()
    } else {
        parts.join("/")
    }
}

/// Flatten a document to `path -> leaf` pairs. The embedded `metrics`
/// block is skipped — it is a telemetry dump whose per-run values are
/// not gate metrics (the overhead gate reads the dedicated top-level
/// fields instead).
#[must_use]
pub fn flatten(doc: &Json) -> BTreeMap<String, Flat> {
    let mut out = BTreeMap::new();
    walk(doc, String::new(), &mut out);
    out
}

fn walk(v: &Json, path: String, out: &mut BTreeMap<String, Flat>) {
    match v {
        Json::Num(n) => {
            out.insert(path, Flat::Num(*n));
        }
        Json::Bool(b) => {
            out.insert(path, Flat::Bool(*b));
        }
        Json::Obj(fields) => {
            for (k, child) in fields {
                if k == "metrics" {
                    continue;
                }
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                walk(child, sub, out);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                walk(child, format!("{path}[{}]", element_id(child, i)), out);
            }
        }
        Json::Null | Json::Str(_) => {}
    }
}

fn leaf_key(path: &str) -> &str {
    path.rsplit('.').next().unwrap_or(path)
}

/// Direction a gated numeric can regress in.
enum Gate {
    HigherIsWorse { abs_floor: f64 },
    LowerIsWorse,
    Ungated,
}

fn classify(path: &str) -> Gate {
    let key = leaf_key(path);
    if key == "speedup" || key.ends_with("_speedup") {
        return Gate::LowerIsWorse;
    }
    if key.ends_with("_us") {
        return Gate::HigherIsWorse { abs_floor: 0.5 };
    }
    if key.ends_with("_ms") {
        return Gate::HigherIsWorse { abs_floor: 0.1 };
    }
    if key.contains("seconds") {
        return Gate::HigherIsWorse { abs_floor: 1e-3 };
    }
    if key.contains("overhead") || key.ends_with("_delta") {
        return Gate::HigherIsWorse { abs_floor: 0.05 };
    }
    Gate::Ungated
}

/// Compare two parsed documents.
///
/// # Errors
/// Propagates [`check_schema`] failures for either side.
pub fn compare_docs(
    baseline: &Json,
    current: &Json,
    opts: CompareOptions,
) -> Result<Vec<Finding>, String> {
    check_schema(baseline, "baseline")?;
    check_schema(current, "current")?;
    let base_mode = baseline.get("mode").and_then(Json::as_str).unwrap_or("");
    let cur_mode = current.get("mode").and_then(Json::as_str).unwrap_or("");
    let numeric_comparable = base_mode == cur_mode;

    let base = flatten(baseline);
    let cur = flatten(current);
    let mut findings = Vec::new();
    if !numeric_comparable {
        findings.push(Finding {
            path: "mode".to_string(),
            severity: Severity::Info,
            detail: format!(
                "baseline is \"{base_mode}\" but current is \"{cur_mode}\"; \
                 numeric metrics skipped, only boolean gates checked"
            ),
        });
    }

    for (path, b) in &base {
        let Some(c) = cur.get(path) else {
            findings.push(Finding {
                path: path.clone(),
                severity: Severity::Info,
                detail: "present in baseline, missing in current".to_string(),
            });
            continue;
        };
        match (b, c) {
            (Flat::Bool(was), Flat::Bool(now)) => {
                if was != now {
                    findings.push(Finding {
                        path: path.clone(),
                        severity: if *was && !*now {
                            Severity::Regression
                        } else {
                            Severity::Improvement
                        },
                        detail: format!("{was} -> {now}"),
                    });
                }
            }
            (Flat::Num(was), Flat::Num(now)) => {
                if !numeric_comparable {
                    continue;
                }
                let verdict = judge(path, *was, *now, opts.tolerance);
                if let Some((severity, detail)) = verdict {
                    findings.push(Finding {
                        path: path.clone(),
                        severity,
                        detail,
                    });
                }
            }
            _ => findings.push(Finding {
                path: path.clone(),
                severity: Severity::Info,
                detail: "leaf changed type between baseline and current".to_string(),
            }),
        }
    }
    for path in cur.keys() {
        if !base.contains_key(path) {
            findings.push(Finding {
                path: path.clone(),
                severity: Severity::Info,
                detail: "new metric, absent from baseline".to_string(),
            });
        }
    }
    Ok(findings)
}

#[allow(clippy::float_cmp)]
fn judge(path: &str, was: f64, now: f64, tol: f64) -> Option<(Severity, String)> {
    if !was.is_finite() || !now.is_finite() {
        // Every band comparison against NaN (or a band derived from an
        // infinite baseline) is false, so a non-finite value would slip
        // through all gates without a verdict. Fail closed instead.
        let severity = match classify(path) {
            Gate::Ungated => Severity::Info,
            Gate::HigherIsWorse { .. } | Gate::LowerIsWorse => Severity::Regression,
        };
        return Some((
            severity,
            format!("{was} -> {now} (non-finite value; band cannot judge)"),
        ));
    }
    match classify(path) {
        Gate::HigherIsWorse { abs_floor } => {
            let ceiling = was * (1.0 + tol) + abs_floor;
            let floor = was * (1.0 - tol) - abs_floor;
            if now > ceiling {
                Some((
                    Severity::Regression,
                    format!("{was} -> {now} (band allows up to {ceiling:.4})"),
                ))
            } else if now < floor {
                Some((Severity::Improvement, format!("{was} -> {now}")))
            } else {
                None
            }
        }
        Gate::LowerIsWorse => {
            if now < was * (1.0 - tol) {
                Some((
                    Severity::Regression,
                    format!(
                        "{was} -> {now} (band allows down to {:.4})",
                        was * (1.0 - tol)
                    ),
                ))
            } else if now > was * (1.0 + tol) {
                Some((Severity::Improvement, format!("{was} -> {now}")))
            } else {
                None
            }
        }
        Gate::Ungated => {
            if was == now {
                None
            } else {
                Some((Severity::Info, format!("{was} -> {now}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn doc(extra: &str) -> Json {
        parse(&format!(
            "{{\"schema_version\": {BENCH_SCHEMA_VERSION}, \"bench\": \"t\", \"mode\": \"full\"{extra}}}"
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_produce_no_findings() {
        let a = doc(", \"x_ms\": 1.0, \"pass\": true");
        let out = compare_docs(&a, &a, CompareOptions::default()).unwrap();
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn time_regression_beyond_band_is_flagged() {
        let a = doc(", \"lat_ms\": 1.0");
        let b = doc(", \"lat_ms\": 1.5");
        let out = compare_docs(&a, &b, CompareOptions::default()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Regression);
        // Within the band: 30% + 0.1ms floor.
        let c = doc(", \"lat_ms\": 1.35");
        assert!(compare_docs(&a, &c, CompareOptions::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn speedup_drop_is_a_regression_and_gain_is_not() {
        let a = doc(", \"speedup\": 12.0");
        let drop = doc(", \"speedup\": 7.0");
        let gain = doc(", \"speedup\": 20.0");
        let out = compare_docs(&a, &drop, CompareOptions::default()).unwrap();
        assert_eq!(out[0].severity, Severity::Regression);
        let out = compare_docs(&a, &gain, CompareOptions::default()).unwrap();
        assert_eq!(out[0].severity, Severity::Improvement);
    }

    #[test]
    fn bool_flip_true_to_false_regresses_even_across_modes() {
        let a = doc(", \"retry_output_identical\": true, \"clean_ms\": 0.3");
        // Quick current: numeric skipped, bool still gated.
        let b = parse(&format!(
            "{{\"schema_version\": {BENCH_SCHEMA_VERSION}, \"bench\": \"t\", \"mode\": \"quick\", \"retry_output_identical\": false, \"clean_ms\": 9.9}}"
        ))
        .unwrap();
        let out = compare_docs(&a, &b, CompareOptions::default()).unwrap();
        assert!(out
            .iter()
            .any(|f| f.path == "retry_output_identical" && f.severity == Severity::Regression));
        assert!(
            !out.iter().any(|f| f.path == "clean_ms"),
            "cross-mode numeric must be skipped: {out:?}"
        );
    }

    #[test]
    fn schema_mismatch_is_a_hard_error() {
        let a = doc(", \"x_ms\": 1.0");
        let old = parse("{\"schema_version\": 999, \"mode\": \"full\"}").unwrap();
        let err = compare_docs(&a, &old, CompareOptions::default()).unwrap_err();
        assert!(err.contains("999"), "{err}");
        let missing = parse("{\"mode\": \"full\"}").unwrap();
        assert!(compare_docs(&missing, &a, CompareOptions::default()).is_err());
    }

    #[test]
    fn array_elements_are_identified_by_name_keys() {
        let a = doc(", \"apps\": [{\"app\": \"mm\", \"sim_fifo_ms\": 0.2}]");
        let flat = flatten(&a);
        assert!(flat.contains_key("apps[mm].sim_fifo_ms"), "{flat:?}");
    }

    /// End-to-end synthetic regression: two results written through the
    /// real [`crate::schema::BenchJson`] writer, identical except for one
    /// injected slowdown, must produce exactly one regression finding —
    /// this is the acceptance drill for the verify-time advisory compare.
    #[test]
    fn injected_regression_in_real_bench_output_is_caught() {
        let write = |launch_us: f64, pass: bool| {
            let mut j = crate::schema::BenchJson::new("native_runtime_launch_overhead", "full");
            j.u64("partitions", 4)
                .f64("pooled_per_launch_us", launch_us, 4)
                .f64("speedup", 6.0, 3)
                .bool("pass", pass)
                .metrics(&hstreams::MetricsRegistry::new().snapshot());
            parse(&j.finish()).expect("writer emits valid json")
        };
        let baseline = write(1.0, true);
        let healthy = write(1.2, true);
        assert!(
            compare_docs(&baseline, &healthy, CompareOptions::default())
                .unwrap()
                .is_empty(),
            "within-band drift must stay green"
        );
        let regressed = write(4.0, false);
        let out = compare_docs(&baseline, &regressed, CompareOptions::default()).unwrap();
        let regressions: Vec<&Finding> = out
            .iter()
            .filter(|f| f.severity == Severity::Regression)
            .collect();
        assert_eq!(regressions.len(), 2, "{out:?}");
        assert!(regressions.iter().any(|f| f.path == "pooled_per_launch_us"));
        assert!(regressions.iter().any(|f| f.path == "pass"));
    }

    #[test]
    fn metrics_block_is_not_compared() {
        let a = doc(", \"metrics\": {\"series\": [{\"name\": \"x\", \"value\": 1}]}");
        let b = doc(", \"metrics\": {\"series\": [{\"name\": \"x\", \"value\": 999}]}");
        assert!(compare_docs(&a, &b, CompareOptions::default())
            .unwrap()
            .is_empty());
    }
}
