//! Versioned builder for the machine-readable `BENCH_*.json` results.
//!
//! Every gate bench writes its result file through [`BenchJson`] so the
//! files share a stable envelope: `schema_version` and `mode` come first,
//! followed by the bench's own fields and an optional embedded `metrics`
//! block ([`hstreams::MetricsSnapshot`]). `bench_compare` refuses files
//! whose `schema_version` it does not understand, so bumping the constant
//! here is the signal that the result shape changed incompatibly.

use std::fs;
use std::io::Write as _;

use hstreams::MetricsSnapshot;

/// Current version of the `BENCH_*.json` envelope. Bump when a change
/// would make old/new files incomparable (renamed keys, changed units).
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Incremental builder for one `BENCH_*.json` document.
///
/// Fields are emitted in insertion order, two-space indented, one per
/// line — the same shape the hand-written `format!` blocks used to
/// produce, so diffs against committed results stay readable.
#[derive(Debug)]
pub struct BenchJson {
    body: String,
}

impl BenchJson {
    /// Start a document for bench `bench` in `mode` (`"full"`/`"quick"`).
    /// The envelope keys `schema_version`, `bench`, `mode` are emitted
    /// first so readers can dispatch before parsing the rest.
    #[must_use]
    pub fn new(bench: &str, mode: &str) -> BenchJson {
        let mut b = BenchJson {
            body: String::new(),
        };
        b.push_raw("schema_version", &BENCH_SCHEMA_VERSION.to_string());
        b.push_raw("bench", &format!("\"{bench}\""));
        b.push_raw("mode", &format!("\"{mode}\""));
        b
    }

    fn push_raw(&mut self, key: &str, raw: &str) {
        if !self.body.is_empty() {
            self.body.push_str(",\n");
        }
        self.body.push_str(&format!("  \"{key}\": {raw}"));
    }

    /// Add an unsigned integer field.
    pub fn u64(&mut self, key: &str, v: u64) -> &mut BenchJson {
        self.push_raw(key, &v.to_string());
        self
    }

    /// Add a float field rendered with `prec` decimal places.
    pub fn f64(&mut self, key: &str, v: f64, prec: usize) -> &mut BenchJson {
        let safe = if v.is_finite() { v } else { 0.0 };
        self.push_raw(key, &format!("{safe:.prec$}"));
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut BenchJson {
        self.push_raw(key, &v.to_string());
        self
    }

    /// Add a string field.
    pub fn str(&mut self, key: &str, v: &str) -> &mut BenchJson {
        self.push_raw(key, &format!("\"{v}\""));
        self
    }

    /// Add a field whose value is pre-rendered JSON (arrays, nested
    /// objects). The caller is responsible for its validity.
    pub fn raw(&mut self, key: &str, raw: &str) -> &mut BenchJson {
        self.push_raw(key, raw);
        self
    }

    /// Embed a metric snapshot under the `"metrics"` key.
    pub fn metrics(&mut self, snap: &MetricsSnapshot) -> &mut BenchJson {
        self.push_raw("metrics", &snap.to_json_value(2));
        self
    }

    /// Render the finished document (trailing newline included).
    #[must_use]
    pub fn finish(&self) -> String {
        format!("{{\n{}\n}}\n", self.body)
    }

    /// Write the document as `<name>` under [`crate::results_dir`],
    /// creating the directory if needed. IO failures are warnings — a
    /// bench's pass/fail verdict never depends on the filesystem.
    pub fn write(&self, name: &str) {
        let dir = crate::results_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(name);
        match fs::File::create(&path) {
            Ok(mut f) => {
                if let Err(e) = f.write_all(self.finish().as_bytes()) {
                    eprintln!("warning: write {} failed: {e}", path.display());
                } else {
                    println!("[wrote {}]", path.display());
                }
            }
            Err(e) => eprintln!("warning: create {} failed: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_keys_come_first() {
        let mut b = BenchJson::new("demo", "quick");
        b.u64("n", 7)
            .f64("ms", 1.23456, 3)
            .bool("pass", true)
            .str("who", "x");
        let text = b.finish();
        let first = text.lines().nth(1).unwrap();
        assert_eq!(
            first.trim(),
            format!("\"schema_version\": {BENCH_SCHEMA_VERSION},")
        );
        assert!(text.contains("\"bench\": \"demo\""));
        assert!(text.contains("\"mode\": \"quick\""));
        assert!(text.contains("\"ms\": 1.235"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn non_finite_floats_are_sanitized() {
        let mut b = BenchJson::new("demo", "full");
        b.f64("bad", f64::NAN, 2);
        assert!(b.finish().contains("\"bad\": 0.00"));
    }

    #[test]
    fn parses_back_with_own_parser() {
        let mut b = BenchJson::new("demo", "full");
        b.u64("n", 3)
            .raw("arr", "[1, 2, 3]")
            .metrics(&hstreams::MetricsRegistry::new().snapshot());
        let doc = crate::json::parse(&b.finish()).expect("valid json");
        assert_eq!(
            doc.get("schema_version")
                .and_then(crate::json::Json::as_u64),
            Some(1)
        );
        assert_eq!(
            doc.get("bench").and_then(crate::json::Json::as_str),
            Some("demo")
        );
        assert!(doc.get("metrics").is_some());
    }
}
