//! Minimal recursive-descent JSON parser for reading `BENCH_*.json`
//! files back.
//!
//! The offline workspace has no serde, and the bench results are small
//! hand-written documents, so a few hundred lines of parser is the whole
//! dependency. Covers the full JSON grammar except `\u` escapes beyond
//! the BMP surrogate-free range; numbers are held as `f64` (every value
//! the benches emit fits exactly).

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, duplicate keys kept as-is.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if numeric and whole.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields, if an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parse error: message plus byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing whitespace is allowed,
/// trailing content is an error.
///
/// # Errors
/// Returns a [`ParseError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("valid utf8 slice"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_document() {
        let doc = parse(r#"{"a": [1, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        let arr = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn reads_committed_style_document() {
        let doc = parse(
            "{\n  \"bench\": \"sched\",\n  \"apps\": [\n    {\"app\": \"mm\", \"sim_fifo_ms\": 0.2129}\n  ],\n  \"pass\": true\n}\n",
        )
        .unwrap();
        let apps = doc.get("apps").and_then(Json::as_array).unwrap();
        assert_eq!(
            apps[0].get("sim_fifo_ms").and_then(Json::as_f64),
            Some(0.2129)
        );
        assert_eq!(doc.get("pass").and_then(Json::as_bool), Some(true));
    }
}
