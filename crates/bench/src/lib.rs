//! # mic-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see `src/bin/fig*.rs`), plus
//! shared reporting helpers. Every binary prints the figure's series as a
//! markdown table on stdout and writes a CSV under `results/` (override
//! with the `RESULTS_DIR` environment variable).
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig05_transfer_overlap` | Fig. 5 — H2D/D2H serialization |
//! | `fig06_compute_overlap` | Fig. 6 — transfer/kernel overlap |
//! | `fig07_partition_micro` | Fig. 7 — resource granularity |
//! | `fig08_overall` | Fig. 8 — w/ vs w/o for all six apps |
//! | `fig09_partitions` | Fig. 9 — partition sweeps |
//! | `fig10_tiles` | Fig. 10 — tile sweeps |
//! | `fig11_multi_mic` | Fig. 11 — CF on multiple MICs |
//! | `table_search_space` | Sec. V-C — pruning heuristics |
//! | `table_model_vs_search` | (ext) tuning strategies head-to-head |
//! | `ablation_platform` | (ext) mechanism-to-figure ablations |
//! | `native_overlap_study` | (ext) Fig. 6 regimes on the native executor |
//! | `native_vs_sim_trace` | (ext) same program, sim vs traced-native overlap |
//! | `ext_multi_mic_scaling` | (ext) Sec. VI on 1–4 cards |
//! | `autotune` | (ext) closed-loop `(T, P)` tuning: exhaustive vs pruned vs model-seeded, sim + native |
//! | `bench_opt` | (ext) sync-elision exactness + static-cost-bound soundness gates over the six apps |
//! | `bench_compare` | (ext) `BENCH_*.json` envelope validation + noise-banded perf diff of two result sets |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compare;
pub mod json;
pub mod schema;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// One plotted series: a name and `(x-label, value)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// `(x, y)` points; `x` is kept textual so dataset labels like
    /// `"6000^2"` survive.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: impl std::fmt::Display, y: f64) {
        self.points.push((x.to_string(), y));
    }
}

/// A figure: titled collection of series over a common x-axis.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Identifier, e.g. `"fig05"`. Also the CSV file stem.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Axis labels.
    pub x_label: String,
    /// Unit of the values.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Create an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Figure {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Render as a markdown table (series as columns, x as rows).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("| {} |", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {} ({}) |", s.name, self.y_label));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        let rows = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for r in 0..rows {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(r).map(|(x, _)| x.clone()))
                .unwrap_or_default();
            out.push_str(&format!("| {x} |"));
            for s in &self.series {
                match s.points.get(r) {
                    Some((_, y)) => out.push_str(&format!(" {y:.4} |")),
                    None => out.push_str(" - |"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (`x,series1,series2,...`).
    pub fn to_csv(&self) -> String {
        let mut out = self.x_label.to_string();
        for s in &self.series {
            out.push_str(&format!(",{}", s.name));
        }
        out.push('\n');
        let rows = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for r in 0..rows {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(r).map(|(x, _)| x.clone()))
                .unwrap_or_default();
            out.push_str(&x);
            for s in &self.series {
                match s.points.get(r) {
                    Some((_, y)) => out.push_str(&format!(",{y}")),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Print the markdown table and write `<id>.csv` to the results dir.
    pub fn emit(&self) {
        println!("{}", self.to_markdown());
        let dir = results_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{}.csv", self.id));
        match fs::File::create(&path) {
            Ok(mut f) => {
                if let Err(e) = f.write_all(self.to_csv().as_bytes()) {
                    eprintln!("warning: write {} failed: {e}", path.display());
                } else {
                    println!("[wrote {}]\n", path.display());
                }
            }
            Err(e) => eprintln!("warning: create {} failed: {e}", path.display()),
        }
    }
}

/// Where CSVs land: `$RESULTS_DIR` or `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut fig = Figure::new("figX", "test", "x", "ms");
        let mut a = Series::new("a");
        a.push(1, 10.0);
        a.push(2, 20.0);
        let mut b = Series::new("b");
        b.push(1, 1.5);
        fig.add(a);
        fig.add(b);
        fig
    }

    #[test]
    fn markdown_has_all_series() {
        let md = sample().to_markdown();
        assert!(md.contains("| x | a (ms) | b (ms) |"));
        assert!(md.contains("| 1 | 10.0000 | 1.5000 |"));
        assert!(md.contains("| 2 | 20.0000 | - |"), "{md}");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,1.5");
        assert_eq!(lines[2], "2,20,");
    }

    #[test]
    fn results_dir_env_override() {
        // No env manipulation (tests run in parallel); just check default.
        assert!(results_dir().ends_with("results") || results_dir().is_absolute());
    }
}
