//! Fig. 6 — overlapping data transfers with computation.
//!
//! hBench with 16 MiB arrays A (H2D) and B (D2H); the kernel iterates
//! `B[i] = A[i] + α` 20..60 times. Series:
//! * `Data` — both transfers only (flat);
//! * `Kernel` — kernel only (linear in iterations; crosses Data at ~40);
//! * `Data+Kernel` — fully serial single stream;
//! * `Streamed` — 16 tiles over 4 partitions;
//! * `Ideal` — max(Data, Kernel), the perfect-overlap bound.
//!
//! The paper's finding #2: `Streamed` sits between `Ideal` and
//! `Data+Kernel` — overlap happens but full overlap is unattainable.

use mic_apps::hbench::{overlap_program, OverlapVariant};
use mic_bench::{Figure, Series};
use micsim::PlatformConfig;

fn main() {
    let elems = 4 << 20; // 16 MiB of f32
    let run = |iters: usize, variant: OverlapVariant| -> f64 {
        overlap_program(PlatformConfig::phi_31sp(), elems, iters, 4, variant)
            .expect("build")
            .run_sim()
            .expect("sim")
            .makespan()
            .as_millis_f64()
    };
    let mut fig = Figure::new(
        "fig06",
        "overlap of data transfers and computation vs kernel iterations",
        "#iterations",
        "ms",
    );
    let mut data = Series::new("Data");
    let mut kernel = Series::new("Kernel");
    let mut serial = Series::new("Data+Kernel");
    let mut streamed = Series::new("Streamed");
    let mut ideal = Series::new("Ideal");
    for iters in (20..=60).step_by(5) {
        let d = run(iters, OverlapVariant::Data);
        let k = run(iters, OverlapVariant::Kernel);
        data.push(iters, d);
        kernel.push(iters, k);
        serial.push(iters, run(iters, OverlapVariant::DataKernel));
        streamed.push(iters, run(iters, OverlapVariant::Streamed { tiles: 16 }));
        ideal.push(iters, d.max(k));
    }
    fig.add(data);
    fig.add(kernel);
    fig.add(serial);
    fig.add(streamed);
    fig.add(ideal);
    fig.emit();
    println!(
        "Paper check: Kernel crosses Data near 40 iterations; Streamed lies \
         strictly between Ideal and Data+Kernel (full overlap unattainable)."
    );
}
