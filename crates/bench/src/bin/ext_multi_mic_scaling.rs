//! Extension of Fig. 11 / Sec. VI — the paper closes with "we plan to
//! further evaluate the performance impact on multiple Phis" and "run more
//! experiments with a wide range of applications": MM and CF across 1–4
//! simulated cards, with scaling efficiency against the linear projection.
//!
//! Both apps run unmodified — the runtime's residency tracker inserts the
//! extra cross-card tile transfers, and cross-card synchronization
//! costs more — so the efficiency loss is exactly the paper's two causes.

use mic_apps::{cholesky, mm};
use mic_bench::{Figure, Series};
use micsim::PlatformConfig;

fn main() {
    let mut fig = Figure::new(
        "ext_multi_mic_scaling",
        "MM and CF GFLOPS on 1-4 simulated MICs (P=4 per card)",
        "cards",
        "GFLOPS",
    );
    let mut mm_s = Series::new("MM (n=8000, T=256)");
    let mut mm_eff = Series::new("MM efficiency %");
    let mut cf_s = Series::new("CF (n=16000, T=256)");
    let mut cf_eff = Series::new("CF efficiency %");

    let mut mm_base = 0.0;
    let mut cf_base = 0.0;
    for cards in 1..=4usize {
        let platform = PlatformConfig::phi_31sp_multi(cards);
        let (_, mm_gf) = mm::simulate(
            &mm::MmConfig {
                n: 8000,
                tiles_per_dim: 16,
            },
            platform.clone(),
            4,
        )
        .unwrap();
        let (_, cf_gf) = cholesky::simulate(
            &cholesky::CfConfig {
                n: 16000,
                tiles_per_dim: 16,
            },
            platform,
            4,
        )
        .unwrap();
        if cards == 1 {
            mm_base = mm_gf;
            cf_base = cf_gf;
        }
        mm_s.push(cards, mm_gf);
        cf_s.push(cards, cf_gf);
        mm_eff.push(cards, mm_gf / (mm_base * cards as f64) * 100.0);
        cf_eff.push(cards, cf_gf / (cf_base * cards as f64) * 100.0);
    }
    fig.add(mm_s);
    fig.add(mm_eff);
    fig.add(cf_s);
    fig.add(cf_eff);
    fig.emit();
    println!(
        "Efficiency falls with card count: every extra card adds mirror \
         transfers on the serial links and stretches the cross-card barriers \
         (CF) / panel broadcast (MM). MM scales better than CF — fewer \
         synchronization points."
    );
}
