//! Perf-regression gate over the `BENCH_*.json` trajectory.
//!
//! Two modes:
//!
//! * **Validate** (no directories given): read every `BENCH_*.json`
//!   under the results dir (`$RESULTS_DIR` or `./results`), check it
//!   parses and carries the current `schema_version` plus `bench`/`mode`
//!   envelope. Exit 1 on any violation — this keeps the committed
//!   history ingestible.
//! * **Compare** (`--baseline DIR --current DIR`): for each
//!   `BENCH_*.json` present in both directories, flag per-metric changes
//!   beyond the noise bands (see `mic_bench::compare`). Regressions exit
//!   1 unless `--advisory` (or its alias `--quick`) is given, which
//!   reports them as warnings — the mode verify.sh uses to diff fresh
//!   quick benches against the committed full-mode history without
//!   failing the build on repetition-budget noise.
//!
//! `--tolerance 0.4` widens the relative noise band (default 0.30).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mic_bench::compare::{check_schema, compare_docs, CompareOptions, Severity};
use mic_bench::json::{parse, Json};

fn bench_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))
}

fn validate(dir: &Path) -> ExitCode {
    let files = bench_files(dir);
    if files.is_empty() {
        eprintln!("bench_compare: no BENCH_*.json under {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut bad = 0;
    for path in &files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let verdict = load(path).and_then(|doc| {
            check_schema(&doc, &name)?;
            for key in ["bench", "mode"] {
                if doc.get(key).and_then(Json::as_str).is_none() {
                    return Err(format!("{name}: missing \"{key}\" in envelope"));
                }
            }
            Ok(doc)
        });
        match verdict {
            Ok(doc) => {
                let mode = doc.get("mode").and_then(Json::as_str).unwrap_or("?");
                println!("  ok   {name} (mode: {mode})");
            }
            Err(e) => {
                eprintln!("  FAIL {e}");
                bad += 1;
            }
        }
    }
    if bad == 0 {
        println!("bench_compare: {} result files valid", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_compare: {bad} invalid result file(s)");
        ExitCode::FAILURE
    }
}

fn compare(
    baseline_dir: &Path,
    current_dir: &Path,
    opts: CompareOptions,
    advisory: bool,
) -> ExitCode {
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for cur_path in bench_files(current_dir) {
        let name = cur_path.file_name().unwrap().to_string_lossy().into_owned();
        let base_path = baseline_dir.join(&name);
        if !base_path.exists() {
            println!("  skip {name}: no baseline");
            continue;
        }
        let pair = load(&base_path).and_then(|b| load(&cur_path).map(|c| (b, c)));
        let (base, cur) = match pair {
            Ok(p) => p,
            Err(e) => {
                eprintln!("  FAIL {e}");
                regressions += 1;
                continue;
            }
        };
        match compare_docs(&base, &cur, opts) {
            Ok(findings) => {
                compared += 1;
                let n_reg = findings
                    .iter()
                    .filter(|f| f.severity == Severity::Regression)
                    .count();
                if findings.is_empty() {
                    println!("  ok   {name}: within noise bands");
                }
                for f in &findings {
                    let tag = match f.severity {
                        Severity::Regression => "REGRESSION",
                        Severity::Improvement => "improved",
                        Severity::Info => "info",
                    };
                    println!("  {tag:<10} {name}: {} — {}", f.path, f.detail);
                }
                regressions += n_reg;
            }
            Err(e) => {
                eprintln!("  FAIL {name}: {e}");
                regressions += 1;
            }
        }
    }
    if compared == 0 && regressions == 0 {
        eprintln!(
            "bench_compare: nothing to compare between {} and {}",
            baseline_dir.display(),
            current_dir.display()
        );
        // A fresh checkout has no trajectory yet; that only fails the
        // strict gate, not an advisory diff.
        return if advisory {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if regressions > 0 {
        let verdict = if advisory { "advisory" } else { "gate" };
        eprintln!("bench_compare ({verdict}): {regressions} regression(s) beyond noise bands");
        if !advisory {
            return ExitCode::FAILURE;
        }
    } else {
        println!("bench_compare: no regressions across {compared} file(s)");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut advisory = false;
    let mut opts = CompareOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--current" => current = args.next().map(PathBuf::from),
            "--advisory" | "--quick" => advisory = true,
            "--tolerance" => {
                opts.tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(opts.tolerance);
            }
            other => {
                eprintln!(
                    "bench_compare: unknown argument '{other}'\n\
                     usage: bench_compare [--baseline DIR --current DIR] [--advisory|--quick] [--tolerance F]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    match (baseline, current) {
        (Some(b), Some(c)) => compare(&b, &c, opts, advisory),
        (None, None) => validate(&mic_bench::results_dir()),
        _ => {
            eprintln!("bench_compare: --baseline and --current must be given together");
            ExitCode::FAILURE
        }
    }
}
