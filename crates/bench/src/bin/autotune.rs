//! Closed-loop `(T, P)` autotuner driver: exhaustive vs pruned vs
//! model-seeded search, on the simulator and on the pooled native executor.
//!
//! Full mode tunes all five tunable apps on the simulator under paper-scale
//! bounds, then hBench on the native executor under small bounds; `--quick`
//! runs only the small hBench comparison on both backends (wired into
//! `scripts/verify.sh`). Both modes write
//! `results/BENCH_autotune.json`, per-app `(P, T)` landscape CSVs from the
//! exhaustive sweep, and enforce the acceptance gates:
//!
//! * pruned and model-seeded evaluate ≤ 1/8 of the exhaustive grid while
//!   landing within 5 % of the exhaustive optimum (every overlappable app);
//! * the native evaluator reuses one persistent runtime (thread count
//!   stable across all trials);
//! * repeating a native tuning pass is served entirely from the
//!   measurement cache (zero evaluator calls).

use std::io::Write;

use mic_apps::tunable::{Tunable, TunableCf, TunableHbench, TunableKmeans, TunableMm, TunableNn};
use micsim::PlatformConfig;
use stream_tune::evaluator::{Evaluator, NativeEvaluator, SimEvaluator};
use stream_tune::tuner::{RepeatPolicy, Strategy, TuneOutcome, Tuner};
use stream_tune::{partition_class, TuneBounds};

const STRATEGIES: [Strategy; 3] = [
    Strategy::Exhaustive,
    Strategy::Pruned,
    Strategy::ModelSeeded,
];

/// One app's three-strategy comparison on one evaluator.
struct AppResult {
    app: &'static str,
    problem: String,
    overlappable: bool,
    backend: &'static str,
    /// Whether the 5 % optimum-delta gate applies (paper-scale apps yes,
    /// the overhead-dominated quick workload no — see [`AppResult::gates_pass`]).
    delta_gated: bool,
    outcomes: Vec<TuneOutcome>,
}

impl AppResult {
    fn exhaustive(&self) -> &TuneOutcome {
        &self.outcomes[0]
    }

    /// Gate: every cheap strategy visits ≤ 1/8 of the grid's
    /// configurations, and — when `require_delta` — lands within 5 % of
    /// the exhaustive optimum. The delta gate applies to the paper-scale
    /// apps; the deliberately overhead-dominated quick workload keeps its
    /// true optimum at the excluded `P = 1`, so only the budget gate holds
    /// there.
    fn gates_pass(&self) -> bool {
        let full = self.exhaustive();
        self.outcomes[1..].iter().all(|o| {
            (!self.delta_gated || o.winner_seconds <= full.winner_seconds * 1.05)
                && o.candidates_visited * 8 <= full.grid_size
        })
    }
}

fn tune_all(
    app: &mut dyn Tunable,
    eval: &mut dyn Evaluator,
    platform: &PlatformConfig,
    bounds: &TuneBounds,
    policy: RepeatPolicy,
    delta_gated: bool,
) -> AppResult {
    let outcomes: Vec<TuneOutcome> = STRATEGIES
        .iter()
        .map(|&s| {
            // Fresh cache per strategy: evaluation counts stay honest.
            let mut tuner = Tuner::new(policy);
            tuner.tune(app, eval, platform, bounds, s)
        })
        .collect();
    AppResult {
        app: app.name(),
        problem: app.problem(),
        overlappable: app.overlappable(),
        backend: eval.backend(),
        delta_gated,
        outcomes,
    }
}

fn print_result(r: &AppResult) {
    let full = r.exhaustive();
    println!(
        "### {} ({}) on {} — grid {} candidates",
        r.app, r.problem, r.backend, full.grid_size
    );
    println!("| strategy | winner (P,T) | seconds | configs | runs | of grid |");
    println!("|---|---|---|---|---|---|");
    for o in &r.outcomes {
        println!(
            "| {} | ({}, {}) | {:.6} | {} | {} | {:.1}% |",
            o.strategy.label(),
            o.winner.0,
            o.winner.1,
            o.winner_seconds,
            o.candidates_visited,
            o.evaluator_calls,
            100.0 * o.candidates_visited as f64 / o.grid_size as f64
        );
    }
    let delta = |o: &TuneOutcome| 100.0 * (o.winner_seconds / full.winner_seconds - 1.0);
    println!(
        "winner delta vs exhaustive: pruned {:+.2}%, model-seeded {:+.2}%  [{}]\n",
        delta(&r.outcomes[1]),
        delta(&r.outcomes[2]),
        if r.gates_pass() { "PASS" } else { "FAIL" }
    );
}

/// Write the exhaustive `(P, T)` landscape of one app as CSV.
fn write_landscape(r: &AppResult) {
    let dir = mic_bench::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let mut csv = String::from("p,t,seconds,hidden_fraction\n");
    for rec in &r.exhaustive().landscape {
        csv.push_str(&format!(
            "{},{},{},{}\n",
            rec.partitions, rec.tiles, rec.seconds, rec.hidden_fraction
        ));
    }
    let path = dir.join(format!("autotune_landscape_{}.csv", r.app));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            if let Err(e) = f.write_all(csv.as_bytes()) {
                eprintln!("warning: write {} failed: {e}", path.display());
            } else {
                println!("[wrote {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: create {} failed: {e}", path.display()),
    }
}

fn json_outcome(o: &TuneOutcome) -> String {
    format!(
        "{{\"strategy\": \"{}\", \"winner_p\": {}, \"winner_t\": {}, \"seconds\": {:.9}, \"evaluations\": {}, \"visited\": {}, \"grid_size\": {}}}",
        o.strategy.label(),
        o.winner.0,
        o.winner.1,
        o.winner_seconds,
        o.evaluator_calls,
        o.candidates_visited,
        o.grid_size
    )
}

fn json_app(r: &AppResult) -> String {
    let outcomes: Vec<String> = r.outcomes.iter().map(json_outcome).collect();
    let full = r.exhaustive();
    let delta = |o: &TuneOutcome| o.winner_seconds / full.winner_seconds - 1.0;
    format!(
        "    {{\n      \"app\": \"{}\",\n      \"problem\": \"{}\",\n      \"overlappable\": {},\n      \"evaluator\": \"{}\",\n      \"pruned_delta\": {:.6},\n      \"model_seeded_delta\": {:.6},\n      \"gates_pass\": {},\n      \"strategies\": [\n        {}\n      ]\n    }}",
        r.app,
        r.problem,
        r.overlappable,
        r.backend,
        delta(&r.outcomes[1]),
        delta(&r.outcomes[2]),
        r.gates_pass(),
        outcomes.join(",\n        ")
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let platform = PlatformConfig::phi_31sp();
    let mut results: Vec<AppResult> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    if !quick {
        // Sim, paper-scale bounds, all five tunable apps. The data-parallel
        // apps use the paper's `T = m·P, m ≤ 8` rule; CF is a task graph
        // whose lookahead wants many more tiles than streams (its optimum
        // sits near `T/P ≈ 72`, cf. Fig. 8's tpd sweep), so its pruned
        // space keeps the same divisor-aligned `P` but lets the multiple
        // run up to the tile cap.
        let dp_bounds = TuneBounds {
            max_partitions: 56,
            max_tiles: 64,
            max_multiple: 8,
        };
        let cf_bounds = TuneBounds {
            max_partitions: 56,
            max_tiles: 196,
            max_multiple: 98,
        };
        let mut apps: Vec<(Box<dyn Tunable>, TuneBounds)> = vec![
            (Box::new(TunableHbench::new(1 << 22, 24, None)), dp_bounds),
            (Box::new(TunableMm::new(840, None)), dp_bounds),
            (Box::new(TunableCf::new(16800, None)), cf_bounds),
            (Box::new(TunableNn::new(1 << 20, None)), dp_bounds),
            (Box::new(TunableKmeans::new(1 << 15, 8, 3, None)), dp_bounds),
        ];
        for (app, bounds) in &mut apps {
            let mut eval = SimEvaluator::new(platform.clone()).expect("sim evaluator");
            let delta_gated = app.overlappable();
            let r = tune_all(
                app.as_mut(),
                &mut eval,
                &platform,
                bounds,
                RepeatPolicy::sim(),
                delta_gated,
            );
            print_result(&r);
            write_landscape(&r);
            if !r.gates_pass() {
                failures.push(format!("{} ({}) gates failed", r.app, r.backend));
            }
            results.push(r);
        }
    }

    // hBench on both evaluators, small bounds — the `--quick` payload and
    // the full run's sim-vs-native parity section.
    let bounds = TuneBounds {
        max_partitions: 8,
        max_tiles: 16,
        max_multiple: 2,
    };
    // Small on purpose: at this size per-action overhead (launch, stream
    // sync) dominates both backends, so coarse granularity wins decisively
    // on each — the parity check needs a landscape whose signal clears
    // native wall-clock noise, not a photo-finish.
    let elems = 1 << 14;
    let iters = 4;

    let mut sim_app = TunableHbench::new(elems, iters, None);
    let mut sim_eval = SimEvaluator::new(platform.clone()).expect("sim evaluator");
    let sim_r = tune_all(
        &mut sim_app,
        &mut sim_eval,
        &platform,
        &bounds,
        RepeatPolicy::sim(),
        false,
    );
    print_result(&sim_r);
    if quick {
        write_landscape(&sim_r);
    }
    if !sim_r.gates_pass() {
        failures.push("hbench-quick (sim) gates failed".into());
    }

    let mut native_app = TunableHbench::new(elems, iters, Some(42));
    let mut native_eval =
        NativeEvaluator::new(platform.clone(), bounds.max_partitions).expect("native evaluator");
    // Warm the persistent runtime (first trial pays pool spawn + page-in).
    native_eval
        .evaluate(&mut native_app, 2, 2)
        .expect("warmup trial");
    let native_r = tune_all(
        &mut native_app,
        &mut native_eval,
        &platform,
        &bounds,
        RepeatPolicy::native(),
        false,
    );
    print_result(&native_r);
    let threads = native_eval.thread_count();

    // Parity: both backends should settle on the same partition class.
    let sim_class = partition_class(&platform.device, sim_r.outcomes[1].winner.0);
    let native_class = partition_class(&platform.device, native_r.outcomes[1].winner.0);
    let parity = sim_class == native_class;
    println!(
        "parity: sim pruned winner P={} ({sim_class:?}), native pruned winner P={} ({native_class:?}) => {}",
        sim_r.outcomes[1].winner.0,
        native_r.outcomes[1].winner.0,
        if parity { "same class" } else { "DIFFERENT" }
    );

    // Cache: a repeated native pruned pass must cost zero evaluator calls.
    let mut tuner = Tuner::new(RepeatPolicy::native());
    let first = tuner.tune(
        &mut native_app,
        &mut native_eval,
        &platform,
        &bounds,
        Strategy::Pruned,
    );
    let second = tuner.tune(
        &mut native_app,
        &mut native_eval,
        &platform,
        &bounds,
        Strategy::Pruned,
    );
    let cache_ok = second.evaluator_calls == 0 && tuner.cache.hits() >= first.candidates_visited;
    println!(
        "cache: first native pass {} calls, repeat pass {} calls, {} hits => {}",
        first.evaluator_calls,
        second.evaluator_calls,
        tuner.cache.hits(),
        if cache_ok {
            "served from cache"
        } else {
            "CACHE MISSED"
        }
    );
    let threads_stable = native_eval.thread_count() == threads && threads.is_some();
    println!(
        "native runtime: {:?} threads, stable across {} trials => {}",
        threads,
        native_r
            .outcomes
            .iter()
            .map(|o| o.evaluator_calls)
            .sum::<usize>()
            + first.evaluator_calls,
        if threads_stable {
            "one runtime"
        } else {
            "RESPAWNED"
        }
    );

    if !parity {
        failures.push("sim/native partition-class parity failed".into());
    }
    if !cache_ok {
        failures.push("repeated native pass not served from cache".into());
    }
    if !threads_stable {
        failures.push("native runtime thread count changed between trials".into());
    }
    results.push(sim_r);
    results.push(native_r);

    let apps_json: Vec<String> = results.iter().map(json_app).collect();
    let mut json =
        mic_bench::schema::BenchJson::new("autotune", if quick { "quick" } else { "full" });
    json.bool("parity_same_class", parity)
        .u64("cache_repeat_calls", second.evaluator_calls as u64)
        .u64("native_threads", threads.unwrap_or(0) as u64)
        .bool("pass", failures.is_empty())
        .raw("apps", &format!("[\n{}\n  ]", apps_json.join(",\n")))
        // Trial/cache-hit telemetry from the cache-replay tuner: the
        // repeat pass makes every lookup a hit, which is the shape the
        // cache gate asserts on.
        .metrics(&tuner.metrics_snapshot());
    json.write("BENCH_autotune.json");

    if !failures.is_empty() {
        eprintln!("autotune gates FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("autotune gates passed");
}
