//! Fig. 9 — how the number of partitions impacts each application
//! (task granularity fixed per the paper's captions).
//!
//! Expected shapes:
//! * MM/CF: spikes where P divides 56 (core-aligned partitions);
//! * Kmeans: monotone drop (per-iteration alloc cost ∝ threads/partition);
//! * Hotspot: dip near P = 33..37 (≤2-core partitions, cache-friendly);
//! * NN: sharp drop until P = 4, then flat (link-bound);
//! * SRAD: U-shape (spatial sharing only, barrier costs grow with streams).

use mic_apps::{cholesky, hotspot, kmeans, mm, nn, srad};
use mic_bench::{Figure, Series};
use micsim::PlatformConfig;

fn phi() -> PlatformConfig {
    PlatformConfig::phi_31sp()
}

fn main() {
    let sweep: Vec<usize> = (1..=56).collect();

    // (a) MM: D = 6000, T = 500x500 tiles (12 per dim).
    {
        let mut fig = Figure::new(
            "fig09a_mm",
            "MM GFLOPS vs partitions (D=6000, T=500^2)",
            "P",
            "GFLOPS",
        );
        let mut s = Series::new("MM");
        for &p in &sweep {
            let (_, gf) = mm::simulate(
                &mm::MmConfig {
                    n: 6000,
                    tiles_per_dim: 12,
                },
                phi(),
                p,
            )
            .unwrap();
            s.push(p, gf);
        }
        fig.add(s);
        fig.emit();
    }

    // (b) CF: D = 9600, T = 800x800 tiles.
    {
        let mut fig = Figure::new(
            "fig09b_cf",
            "CF GFLOPS vs partitions (D=9600, T=800^2)",
            "P",
            "GFLOPS",
        );
        let mut s = Series::new("CF");
        for &p in &sweep {
            let (_, gf) = cholesky::simulate(
                &cholesky::CfConfig {
                    n: 9600,
                    tiles_per_dim: 12,
                },
                phi(),
                p,
            )
            .unwrap();
            s.push(p, gf);
        }
        fig.add(s);
        fig.emit();
    }

    // (c) Kmeans: D = 1 120 000, tile = 20 000 points (56 tiles), 100 iters.
    {
        let mut fig = Figure::new("fig09c_kmeans", "Kmeans time vs partitions", "P", "s");
        let mut s = Series::new("Kmeans");
        let cfg = kmeans::KmeansConfig::paper_fig9();
        for &p in &sweep {
            s.push(p, kmeans::simulate(&cfg, phi(), p).unwrap());
        }
        fig.add(s);
        fig.emit();
    }

    // (d) Hotspot: 16384^2 grid, 1024^2 tiles (256 row blocks), 50 iters.
    {
        let mut fig = Figure::new("fig09d_hotspot", "Hotspot time vs partitions", "P", "s");
        let mut s = Series::new("Hotspot");
        let cfg = hotspot::HotspotConfig {
            rows: 16384,
            cols: 16384,
            iterations: 50,
            tiles: 256,
        };
        for &p in &sweep {
            s.push(p, hotspot::simulate(&cfg, phi(), p).unwrap());
        }
        fig.add(s);
        fig.emit();
    }

    // (e) NN: 5 242 880 records, T = 512.
    {
        let mut fig = Figure::new("fig09e_nn", "NN time vs partitions", "P", "ms");
        let mut s = Series::new("NN");
        let cfg = nn::NnConfig::paper_fig9();
        for &p in &sweep {
            s.push(p, nn::simulate(&cfg, phi(), p).unwrap());
        }
        fig.add(s);
        fig.emit();
    }

    // (f) SRAD: 10000^2 image, T = 20x20 = 400 tiles, 100 iters.
    {
        let mut fig = Figure::new("fig09f_srad", "SRAD time vs partitions", "P", "s");
        let mut s = Series::new("SRAD");
        let cfg = srad::SradConfig {
            rows: 10000,
            cols: 10000,
            lambda: 0.5,
            iterations: 100,
            tiles: 400,
        };
        for &p in &sweep {
            s.push(p, srad::simulate(&cfg, phi(), p).unwrap());
        }
        fig.add(s);
        fig.emit();
    }

    println!(
        "Paper check: MM/CF peak at P ∈ {{2,4,7,8,14,28,56}}; Kmeans falls \
         monotonically; Hotspot dips at P≈33-37; NN flattens after P=4; \
         SRAD is U-shaped."
    );
}
