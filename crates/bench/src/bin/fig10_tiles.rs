//! Fig. 10 — how the number of tiles impacts each application (P = 4).
//!
//! Expected shapes: a cliff at T < P (idle partitions), a broad optimum at
//! small multiples of P (T = 4 for most apps, T = 100 for CF, T = 400 for
//! SRAD), and decay at very large T (per-task launch overhead, shrinking
//! per-thread work). NN is nearly flat — it is transfer-bound.

use mic_apps::{cholesky, hotspot, kmeans, mm, nn, srad};
use mic_bench::{Figure, Series};
use micsim::PlatformConfig;

fn phi() -> PlatformConfig {
    PlatformConfig::phi_31sp()
}

fn main() {
    // (a) MM: D = 6000, P = 4; tiles per dim chosen so tpd | 6000.
    {
        let mut fig = Figure::new(
            "fig10a_mm",
            "MM GFLOPS vs tiles (D=6000, P=4)",
            "T",
            "GFLOPS",
        );
        let mut s = Series::new("MM");
        for tpd in [1usize, 2, 3, 4, 5, 6, 10, 12, 15, 20] {
            let (_, gf) = mm::simulate(
                &mm::MmConfig {
                    n: 6000,
                    tiles_per_dim: tpd,
                },
                phi(),
                4,
            )
            .unwrap();
            s.push(tpd * tpd, gf);
        }
        fig.add(s);
        fig.emit();
    }

    // (b) CF: D = 9600, P = 4.
    {
        let mut fig = Figure::new(
            "fig10b_cf",
            "CF GFLOPS vs tiles (D=9600, P=4)",
            "T",
            "GFLOPS",
        );
        let mut s = Series::new("CF");
        for tpd in [2usize, 3, 4, 5, 6, 8, 10, 12, 15, 16, 20] {
            let (_, gf) = cholesky::simulate(
                &cholesky::CfConfig {
                    n: 9600,
                    tiles_per_dim: tpd,
                },
                phi(),
                4,
            )
            .unwrap();
            s.push(tpd * tpd, gf);
        }
        fig.add(s);
        fig.emit();
    }

    // (c) Kmeans: D = 1 120 000, P = 4, paper's T list.
    {
        let mut fig = Figure::new("fig10c_kmeans", "Kmeans time vs tiles (P=4)", "T", "s");
        let mut s = Series::new("Kmeans");
        for t in [1usize, 2, 4, 8, 16, 20, 28, 32, 56, 112, 224] {
            let cfg = kmeans::KmeansConfig {
                points: 1_120_000,
                dims: 34,
                k: 8,
                iterations: 100,
                tiles: t,
                alloc_micros: 5,
            };
            s.push(t, kmeans::simulate(&cfg, phi(), 4).unwrap());
        }
        fig.add(s);
        fig.emit();
    }

    // (d) Hotspot: 16384^2, 50 iters, P = 4; tile counts as squares like
    // the paper's axis.
    {
        let mut fig = Figure::new("fig10d_hotspot", "Hotspot time vs tiles (P=4)", "T", "s");
        let mut s = Series::new("Hotspot");
        for t in [1usize, 4, 16, 64, 256, 1024, 2048, 4096, 8192, 16384] {
            let cfg = hotspot::HotspotConfig {
                rows: 16384,
                cols: 16384,
                iterations: 50,
                tiles: t,
            };
            s.push(t, hotspot::simulate(&cfg, phi(), 4).unwrap());
        }
        fig.add(s);
        fig.emit();
    }

    // (e) NN: 5 242 880 records, P = 4, T = 2^0 .. 2^11.
    {
        let mut fig = Figure::new("fig10e_nn", "NN time vs tiles (P=4)", "T", "ms");
        let mut s = Series::new("NN");
        for exp in 0..=11usize {
            let cfg = nn::NnConfig {
                records: 5_242_880,
                tiles: 1 << exp,
                k: 10,
                target: (40.0, 120.0),
            };
            s.push(1 << exp, nn::simulate(&cfg, phi(), 4).unwrap());
        }
        fig.add(s);
        fig.emit();
    }

    // (f) SRAD: 10000^2, 100 iters, P = 4, squares up to 100^2.
    {
        let mut fig = Figure::new("fig10f_srad", "SRAD time vs tiles (P=4)", "T", "s");
        let mut s = Series::new("SRAD");
        for t in [1usize, 4, 9, 16, 25, 100, 169, 400, 625, 2500, 10000] {
            let cfg = srad::SradConfig {
                rows: 10000,
                cols: 10000,
                lambda: 0.5,
                iterations: 100,
                tiles: t,
            };
            s.push(t, srad::simulate(&cfg, phi(), 4).unwrap());
        }
        fig.add(s);
        fig.emit();
    }

    println!(
        "Paper check: sharp cliff at T=1 (3 of 4 partitions idle); optimum \
         at small multiples of P; decay at very large T; NN ~flat."
    );
}
