//! Sim-vs-native timeline comparator (extension): run the same streamed MM
//! program through both executors, capture both as engine `Timeline`s (the
//! native one via `NativeConfig { trace: true }`), and compare the overlap
//! statistics the paper's figures are built from. Writes each native
//! timeline as a Chrome trace under `results/native_trace_*.json` and the
//! overlap deltas as `results/native_vs_sim_trace.csv`.
//!
//! Also asserts **telemetry parity**: with metrics enabled, the sim and
//! native executors must export the identical instrument catalog and
//! labelled series set for the same program (the values differ — one is
//! modelled, one measured — but the shape may not).
//!
//! Pass `--quick` for a small single-configuration run (used by
//! `scripts/verify.sh`).

use hstreams::{Context, NativeConfig};
use mic_apps::mm::{self, MmConfig};
use mic_bench::{results_dir, Figure, Series};
use micsim::PlatformConfig;

struct Row {
    partitions: usize,
    sim_hidden: f64,
    native_hidden: f64,
    sim_link_busy_ms: f64,
    native_link_busy_ms: f64,
}

fn compare(n: usize, tiles_per_dim: usize, partitions: usize) -> Row {
    let cfg = MmConfig { n, tiles_per_dim };
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(partitions)
        .metrics(true)
        .build()
        .unwrap();
    let bufs = mm::build(&mut ctx, &cfg).unwrap();
    mm::fill_inputs(&ctx, &cfg, &bufs, 7).unwrap();

    let sim = ctx.run_sim().unwrap();
    let sim_stats = sim.overlap();

    // Throttle the native copy engine to the simulator's modelled link
    // bandwidth so the two executors price transfers comparably.
    let native_cfg = NativeConfig {
        trace: true,
        link_bandwidth: Some(ctx.config().link.bandwidth),
        ..NativeConfig::default()
    };
    let report = ctx.run_native_with(&native_cfg).unwrap();
    let trace = report.trace.expect("trace requested");
    let native_stats = trace.overlap();

    // Agreement check: both timelines must name the same kernels — the
    // executors ran the same program, so the label sets must coincide.
    let kernel_labels = |records: &[micsim::engine::TaskRecord]| {
        let mut labels: Vec<String> = records
            .iter()
            .filter(|r| r.label.contains("gemm"))
            .map(|r| r.label.clone())
            .collect();
        labels.sort();
        labels.dedup();
        labels
    };
    let sim_kernels = kernel_labels(&sim.timeline.records);
    let native_kernels = kernel_labels(&trace.timeline.records);
    assert_eq!(
        sim_kernels, native_kernels,
        "sim and native timelines disagree on the kernel set"
    );

    // Telemetry parity check: both executors must export the identical
    // instrument catalog AND the identical labelled series set — the
    // exported shape is a function of the geometry, not of which executor
    // ran, so any drift here is a bug in one executor's instrumentation.
    let sim_metrics = sim.metrics.as_ref().expect("sim metrics enabled");
    let native_metrics = report.metrics.as_ref().expect("native metrics enabled");
    assert_eq!(
        sim_metrics.instrument_names(),
        native_metrics.instrument_names(),
        "sim and native executors disagree on the instrument catalog"
    );
    assert_eq!(
        sim_metrics.series_names(),
        native_metrics.series_names(),
        "sim and native executors disagree on the labelled series set"
    );
    println!(
        "p={partitions}: metric parity OK ({} instruments, {} series on both executors)",
        sim_metrics.instrument_names().len(),
        sim_metrics.series_names().len()
    );

    // Export the native timeline for chrome://tracing / Perfetto.
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("native_trace_p{partitions}.json"));
    std::fs::write(&path, trace.chrome_trace()).expect("write chrome trace");
    println!(
        "p={partitions}: {} native records, {} sim records, wrote {}",
        trace.timeline.records.len(),
        sim.timeline.records.len(),
        path.display()
    );
    println!(
        "p={partitions}: native launch overhead mean {:.2} us (max {:.2} us), \
         copy busy {:?}, copy queue hwm {}, pool jobs {}",
        trace.counters.launch_overhead.mean_ns() / 1e3,
        trace.counters.launch_overhead.max_ns as f64 / 1e3,
        trace
            .counters
            .copy_busy_fraction
            .iter()
            .map(|(n, f)| format!("{n}={:.0}%", f * 100.0))
            .collect::<Vec<_>>(),
        trace.counters.copy_queue_depth_hwm,
        trace.counters.pool_jobs,
    );

    Row {
        partitions,
        sim_hidden: sim_stats.hidden_fraction(),
        native_hidden: native_stats.hidden_fraction(),
        sim_link_busy_ms: sim_stats.link_busy.as_millis_f64(),
        native_link_busy_ms: native_stats.link_busy.as_millis_f64(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, tiles, parts): (usize, usize, Vec<usize>) = if quick {
        (128, 2, vec![2])
    } else {
        (384, 4, vec![1, 2, 4])
    };

    let mut fig = Figure::new(
        "native_vs_sim_trace",
        format!("MM n={n} T={tiles}x{tiles}: overlap, simulated vs measured"),
        "partitions",
        "value",
    );
    let mut sim_h = Series::new("sim hidden frac");
    let mut nat_h = Series::new("native hidden frac");
    let mut delta = Series::new("delta (native-sim)");
    let mut sim_l = Series::new("sim link busy ms");
    let mut nat_l = Series::new("native link busy ms");
    for &p in &parts {
        let row = compare(n, tiles, p);
        sim_h.push(row.partitions, row.sim_hidden);
        nat_h.push(row.partitions, row.native_hidden);
        delta.push(row.partitions, row.native_hidden - row.sim_hidden);
        sim_l.push(row.partitions, row.sim_link_busy_ms);
        nat_l.push(row.partitions, row.native_link_busy_ms);
    }
    fig.add(sim_h);
    fig.add(nat_h);
    fig.add(delta);
    fig.add(sim_l);
    fig.add(nat_l);
    fig.emit();
    println!(
        "Both timelines come from the same Timeline type, so the overlap \
         numbers above are computed by the identical overlap_stats code — \
         the delta column is model error plus host noise, nothing else."
    );
}
