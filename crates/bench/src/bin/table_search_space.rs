//! Sec. V-C — search-space pruning for (P, T).
//!
//! Runs the hBench partitioned-kernel program over the exhaustive (P, T)
//! grid and over the paper's pruned candidate sets, comparing the found
//! optima and the number of evaluations. The pruned search must land within
//! a few percent of the exhaustive optimum at a fraction of the cost.

use hstreams::Context;
use mic_apps::hbench;
use micsim::device::DeviceSpec;
use micsim::PlatformConfig;
use stream_tune::candidates::{exhaustive_space, pruned_space, reduction_factor, TuneBounds};
use stream_tune::search;

fn objective(p: usize, t: usize) -> Option<f64> {
    // Streamed hBench: 16 MiB array split into t tiles over p partitions,
    // full H2D -> EXE -> D2H pipeline, 50 kernel iterations.
    let elems = 4 << 20;
    let ctx: Context = hbench::overlap_program(
        PlatformConfig::phi_31sp(),
        elems,
        50,
        p,
        hbench::OverlapVariant::Streamed { tiles: t },
    )
    .ok()?;
    Some(ctx.run_sim().ok()?.makespan().as_secs_f64())
}

fn main() {
    let bounds = TuneBounds {
        max_partitions: 56,
        max_tiles: 224,
        max_multiple: 8,
    };
    let device = DeviceSpec::phi_31sp();

    let full_space = exhaustive_space(&bounds);
    let pruned = pruned_space(&device, &bounds);

    println!("exhaustive candidates: {}", full_space.len());
    println!("pruned candidates:     {}", pruned.len());
    println!(
        "static reduction factor: {:.0}x",
        reduction_factor(&device, &bounds)
    );

    let t0 = std::time::Instant::now();
    let full = search::search(&full_space, objective);
    let t_full = t0.elapsed();
    let t0 = std::time::Instant::now();
    let fast = search::search(&pruned, objective);
    let t_fast = t0.elapsed();

    println!("\n| search | best (P,T) | best time (ms) | evals | wall |");
    println!("|---|---|---|---|---|");
    println!(
        "| exhaustive | {:?} | {:.3} | {} | {:.1?} |",
        full.best,
        full.best_value * 1e3,
        full.evaluations,
        t_full
    );
    println!(
        "| pruned (Sec. V-C) | {:?} | {:.3} | {} | {:.1?} |",
        fast.best,
        fast.best_value * 1e3,
        fast.evaluations,
        t_fast
    );
    let loss = fast.best_value / full.best_value - 1.0;
    println!(
        "\npruned optimum is within {:.2}% of the exhaustive optimum at {:.0}x fewer evaluations",
        loss * 100.0,
        full.evaluations as f64 / fast.evaluations as f64
    );
}
