//! Multi-tenant serving benchmark: throughput, tail latency, fairness,
//! and isolation-under-chaos for the [`StreamService`].
//!
//! Drives open-loop load — a fixed arrival spacing, not
//! submit-wait-submit — from `TENANTS` synthetic clients plus the six
//! catalog apps, against **both** executors:
//!
//! * **sim** rounds are priced by the calibrated simulator and the
//!   service clock advances in virtual time — this is the paper-model
//!   view of partition time/space-sharing;
//! * **native** rounds really execute on partitioned thread pools and
//!   the clock advances in wall time.
//!
//! Reported per executor: programs/second, p50/p99 job latency from the
//! service's per-tenant histograms, and the Jain fairness index over
//! per-tenant completions (gated ≥ 0.9 for equal weights). A final chaos
//! condition injects a kernel panic into one tenant mid-load and gates
//! on every *other* tenant's outputs staying bit-identical to its solo
//! run. Emits `results/BENCH_serve.json`; `--quick` shrinks the load for
//! CI.

use hstreams::lease::TenantId;
use mic_apps::workload::{catalog, synthetic};
use micsim::PlatformConfig;
use stream_serve::{
    jain_index, Admission, ExecutorKind, JobStatus, ServeConfig, StreamService, TenantProgram,
};

const TENANTS: usize = 8;

fn config(executor: ExecutorKind) -> ServeConfig {
    let mut cfg = ServeConfig::new(PlatformConfig::phi_31sp());
    cfg.executor = executor;
    cfg
}

fn payloads(jobs_per_tenant: usize) -> Vec<TenantProgram> {
    let platform = PlatformConfig::phi_31sp();
    let mut out: Vec<TenantProgram> = (0..TENANTS)
        .map(|t| {
            let mut w = synthetic(format!("syn{t}"), 41 + t as u64, 2);
            TenantProgram::capture(&mut w, &platform).expect("capture synthetic tenant")
        })
        .collect();
    // Fold the six catalog apps over the synthetic tenants so real
    // pipelines (transfers, events, barriers) ride the same rounds.
    if jobs_per_tenant > 1 {
        for (i, w) in catalog(7).iter_mut().enumerate() {
            let p = TenantProgram::capture(w, &platform).expect("capture catalog app");
            out[i % TENANTS] = p;
        }
    }
    out
}

struct LoadResult {
    completed: u64,
    elapsed_s: f64,
    p50_us: u64,
    p99_us: u64,
    fairness: f64,
    degraded_rounds: u64,
}

/// Open-loop load: every tenant submits one job per arrival tick, the
/// service runs one round per tick, and the clock advances by `spacing`
/// between ticks. Leftover queue drains at the end.
fn run_load(
    executor: ExecutorKind,
    payloads: &[TenantProgram],
    jobs_per_tenant: usize,
    spacing_s: f64,
) -> LoadResult {
    let mut svc = StreamService::new(config(executor)).expect("service");
    let wall_start = std::time::Instant::now();
    let mut degraded_rounds = 0u64;
    let mut completions = vec![0f64; payloads.len()];
    let tally = |reports: &[stream_serve::RoundReport],
                 completions: &mut Vec<f64>,
                 degraded_rounds: &mut u64| {
        for o in reports.iter().flat_map(|r| &r.outcomes) {
            match &o.status {
                JobStatus::Completed { .. } => completions[o.tenant.0 as usize] += 1.0,
                JobStatus::Degraded { .. } => *degraded_rounds += 1,
            }
        }
    };
    for _ in 0..jobs_per_tenant {
        for (t, p) in payloads.iter().enumerate() {
            match svc.submit(TenantId(t as u16), p.clone()) {
                Admission::Accepted(_) | Admission::Shed => {}
                Admission::Rejected(r) => panic!("payload rejected: {r}"),
            }
        }
        let round = svc
            .run_round()
            .expect("round")
            .into_iter()
            .collect::<Vec<_>>();
        tally(&round, &mut completions, &mut degraded_rounds);
        svc.advance(spacing_s);
    }
    let rest = svc.drain(64).expect("drain");
    tally(&rest, &mut completions, &mut degraded_rounds);

    let elapsed_s = match executor {
        ExecutorKind::Sim => svc.now(),
        ExecutorKind::Native => wall_start.elapsed().as_secs_f64(),
    };
    let snap = svc.metrics();
    let hist = snap.histogram_merged("serve_latency_us");
    LoadResult {
        completed: completions.iter().sum::<f64>() as u64,
        elapsed_s,
        p50_us: hist.p50(),
        p99_us: hist.p99(),
        fairness: jain_index(&completions),
        degraded_rounds,
    }
}

/// Chaos condition: solo-baseline every victim, then serve all tenants
/// with a kernel panic spliced into one, and compare the victims'
/// outputs bit-for-bit. Returns `(victims_identical, chaos_completed,
/// degraded_rounds)`.
fn run_chaos(payloads: &[TenantProgram]) -> (bool, bool, u64) {
    let solo: Vec<Vec<Vec<f32>>> = payloads
        .iter()
        .map(|p| {
            let mut svc = StreamService::new(config(ExecutorKind::Native)).expect("service");
            assert!(matches!(
                svc.submit(TenantId(0), p.clone()),
                Admission::Accepted(_)
            ));
            let reports = svc.drain(8).expect("solo drain");
            reports
                .iter()
                .flat_map(|r| &r.outcomes)
                .find_map(|o| match &o.status {
                    JobStatus::Completed { outputs } => Some(outputs.clone()),
                    JobStatus::Degraded { .. } => None,
                })
                .expect("solo job completes")
        })
        .collect();

    let chaos_tenant = payloads.len() - 1;
    let mut svc = StreamService::new(config(ExecutorKind::Native)).expect("service");
    for (t, p) in payloads.iter().enumerate() {
        let p = if t == chaos_tenant {
            let site = p.nth_kernel_site(0).expect("chaos payload has kernels");
            p.clone().with_fault(site.0, site.1)
        } else {
            p.clone()
        };
        assert!(matches!(
            svc.submit(TenantId(t as u16), p),
            Admission::Accepted(_)
        ));
    }
    let reports = svc.drain(16).expect("chaos drain");
    let mut victims_ok = true;
    let mut chaos_completed = false;
    let mut degraded = 0u64;
    for o in reports.iter().flat_map(|r| &r.outcomes) {
        let t = o.tenant.0 as usize;
        match &o.status {
            JobStatus::Completed { .. } if t == chaos_tenant => chaos_completed = true,
            JobStatus::Completed { outputs } => {
                let bits = |v: &Vec<Vec<f32>>| -> Vec<Vec<u32>> {
                    v.iter()
                        .map(|x| x.iter().map(|f| f.to_bits()).collect())
                        .collect()
                };
                if bits(outputs) != bits(&solo[t]) {
                    victims_ok = false;
                }
            }
            JobStatus::Degraded { .. } => {
                degraded += 1;
                if t != chaos_tenant {
                    victims_ok = false;
                }
            }
        }
    }
    (victims_ok, chaos_completed, degraded)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let jobs_per_tenant = if quick { 2 } else { 8 };
    let spacing_s = 0.001;
    let payloads = payloads(jobs_per_tenant);

    println!(
        "serve bench: {TENANTS} tenants x {jobs_per_tenant} jobs, open-loop spacing {:.1} ms",
        spacing_s * 1e3
    );

    let sim = run_load(ExecutorKind::Sim, &payloads, jobs_per_tenant, spacing_s);
    let native = run_load(ExecutorKind::Native, &payloads, jobs_per_tenant, spacing_s);
    let (victims_ok, chaos_completed, chaos_degraded) = run_chaos(&payloads);

    let expected = (TENANTS * jobs_per_tenant) as u64;
    for (label, r) in [("sim", &sim), ("native", &native)] {
        println!(
            "  {label:<6}: {}/{} jobs, {:>8.1} prog/s, p50 {:>7} us, p99 {:>7} us, Jain {:.4}, {} degraded rounds",
            r.completed,
            expected,
            r.completed as f64 / r.elapsed_s.max(1e-9),
            r.p50_us,
            r.p99_us,
            r.fairness,
            r.degraded_rounds,
        );
    }
    println!(
        "  chaos : victims bit-identical to solo: {victims_ok}, chaos tenant retried to completion: {chaos_completed}, {chaos_degraded} degraded round(s)"
    );

    let pass = sim.completed == expected
        && native.completed == expected
        && sim.fairness >= 0.9
        && native.fairness >= 0.9
        && victims_ok
        && chaos_completed
        && chaos_degraded == 1;

    let mut json = mic_bench::schema::BenchJson::new("serve", if quick { "quick" } else { "full" });
    json.u64("tenants", TENANTS as u64)
        .u64("jobs_per_tenant", jobs_per_tenant as u64)
        .f64("open_loop_spacing_ms", spacing_s * 1e3, 3)
        .u64("sim_completed", sim.completed)
        .f64(
            "sim_programs_per_s",
            sim.completed as f64 / sim.elapsed_s.max(1e-9),
            2,
        )
        .u64("sim_p50_us", sim.p50_us)
        .u64("sim_p99_us", sim.p99_us)
        .f64("sim_jain_fairness", sim.fairness, 4)
        .u64("native_completed", native.completed)
        .f64(
            "native_programs_per_s",
            native.completed as f64 / native.elapsed_s.max(1e-9),
            2,
        )
        .u64("native_p50_us", native.p50_us)
        .u64("native_p99_us", native.p99_us)
        .f64("native_jain_fairness", native.fairness, 4)
        .u64("chaos_degraded_rounds", chaos_degraded)
        .bool("chaos_victims_bit_identical", victims_ok)
        .bool("chaos_tenant_completed", chaos_completed)
        .bool("pass", pass);
    json.write("BENCH_serve.json");

    if !pass {
        eprintln!("FAIL: serving gate violated (completion, fairness >= 0.9, or isolation)");
        std::process::exit(1);
    }
}
