//! Fig. 11 — Cholesky Factorization on multiple MICs.
//!
//! The same streamed CF code runs unmodified on one and two simulated
//! cards; `projected` is twice the 1-card throughput. The paper's point:
//! two cards help substantially but fall short of the projection, because
//! separate memories force extra tile transfers and cross-card
//! synchronization costs more.

use mic_apps::cholesky::{simulate, CfConfig};
use mic_bench::{Figure, Series};
use micsim::PlatformConfig;

fn main() {
    let mut fig = Figure::new(
        "fig11",
        "CF on one and two MICs vs the projected 2x",
        "dataset",
        "GFLOPS",
    );
    let mut one = Series::new("1-mic");
    let mut two = Series::new("2-mics");
    let mut projected = Series::new("projected");
    for (n, tpd) in [(14000usize, 14usize), (16000, 16)] {
        let cfg = CfConfig {
            n,
            tiles_per_dim: tpd,
        };
        let (_, gf1) = simulate(&cfg, PlatformConfig::phi_31sp(), 4).unwrap();
        let (_, gf2) = simulate(&cfg, PlatformConfig::phi_31sp_multi(2), 4).unwrap();
        let label = format!("{n}^2");
        one.push(&label, gf1);
        two.push(&label, gf2);
        projected.push(&label, 2.0 * gf1);
    }
    fig.add(one);
    fig.add(two);
    fig.add(projected);
    fig.emit();
    println!(
        "Paper check: 2-mics > 1-mic but below projected (extra transfers + \
         cross-card sync)."
    );
}
