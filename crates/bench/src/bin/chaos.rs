//! Chaos suite: measures what fault recovery *costs* on the native
//! executor, and proves it never costs *correctness*.
//!
//! Three MM conditions at the same `(P, T)` geometry, same inputs:
//!
//! 1. **clean** — no fault plan;
//! 2. **retry** — every transfer's first 2 attempts fail, the default
//!    [`RetryPolicy`](hstreams::RetryPolicy) absorbs them with backoff;
//! 3. **degraded** — one kernel panic poisons a partition and the skipped
//!    work is replayed on the survivor (`run_native_resilient`).
//!
//! Both faulted conditions must reproduce the clean run's output exactly
//! (exit 1 otherwise). A final chaos sweep drives the autotuner's
//! [`NativeEvaluator`] under an unrecoverable fault plan and shows killed
//! trials are logged and skipped, not fatal. Emits
//! `results/BENCH_chaos.json`; `--quick` shrinks the problem and the
//! repetition protocol for CI.

use std::sync::Arc;

use hstreams::action::Action;
use hstreams::{Context, FaultCounters, FaultPlan, NativeConfig};
use mic_apps::mm::{self, MmConfig};
use mic_apps::tunable::TunableMm;
use micsim::stats::Repetitions;
use micsim::PlatformConfig;
use stream_tune::evaluator::{Evaluator, NativeEvaluator};

const PARTITIONS: usize = 2;
const SEED: u64 = 2026;

struct MmRig {
    ctx: Context,
    cfg: MmConfig,
    bufs: mm::MmBuffers,
}

impl MmRig {
    fn new(n: usize) -> MmRig {
        let cfg = MmConfig {
            n,
            tiles_per_dim: 2,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(PARTITIONS)
            .build()
            .unwrap();
        let bufs = mm::build(&mut ctx, &cfg).unwrap();
        mm::fill_inputs(&ctx, &cfg, &bufs, SEED).unwrap();
        MmRig { ctx, cfg, bufs }
    }

    fn result(&self) -> Vec<f32> {
        mm::collect_result(&self.ctx, &self.cfg, &self.bufs)
            .unwrap()
            .data
    }

    /// `(stream, action_index)` of stream 1's first kernel — the panic site
    /// for the degraded condition (stream 0 survives and hosts the replay).
    fn panic_site(&self) -> (usize, usize) {
        for s in &self.ctx.program().streams {
            if s.id.0 != 1 {
                continue;
            }
            for (ai, action) in s.actions.iter().enumerate() {
                if matches!(action, Action::Kernel(_)) {
                    return (1, ai);
                }
            }
        }
        panic!("stream 1 records no kernel");
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 48 } else { 256 };
    let runs = if quick {
        Repetitions {
            total: 4,
            warmup: 1,
        }
    } else {
        Repetitions {
            total: 12,
            warmup: 3,
        }
    };
    let mut rig = MmRig::new(n);
    let panic_site = rig.panic_site();

    // 1. Clean baseline.
    let clean_s = runs.measure(|| {
        let started = std::time::Instant::now();
        rig.ctx.run_native().unwrap();
        started.elapsed().as_secs_f64()
    });
    let clean_out = rig.result();

    // 2. Retry overhead: every transfer fails twice, then succeeds.
    let retry_cfg = NativeConfig {
        fault: Some(Arc::new(FaultPlan::seeded(SEED).transfer_failures(1.0, 2))),
        ..NativeConfig::default()
    };
    let mut retry_faults = FaultCounters::default();
    let retry_s = runs.measure(|| {
        let started = std::time::Instant::now();
        let report = rig.ctx.run_native_with(&retry_cfg).unwrap();
        let s = started.elapsed().as_secs_f64();
        retry_faults = report.faults;
        s
    });
    let retry_ok = rig.result() == clean_out;

    // 3. Degraded run: stream 1's first kernel panics, partition poisoned,
    //    skipped work replayed on stream 0's partition.
    let degraded_cfg = NativeConfig {
        fault: Some(Arc::new(
            FaultPlan::seeded(SEED).panic_kernel_at(panic_site.0, panic_site.1),
        )),
        ..NativeConfig::default()
    };
    let mut degraded_faults = FaultCounters::default();
    let degraded_s = runs.measure(|| {
        let started = std::time::Instant::now();
        let resilient = rig.ctx.run_native_resilient(&degraded_cfg).unwrap();
        let s = started.elapsed().as_secs_f64();
        degraded_faults = resilient.faults;
        s
    });
    let degraded_ok = rig.result() == clean_out;

    // 4. Chaos sweep: unrecoverable transfer faults at a low rate must kill
    //    individual trials, not the tuner.
    let sweep_plan = FaultPlan::seeded(SEED ^ 0xc0de).transfer_failures(0.05, 10);
    let mut ev = NativeEvaluator::new(PlatformConfig::phi_31sp(), 4)
        .unwrap()
        .with_fault_plan(sweep_plan);
    let mut app = TunableMm::new(n, Some(SEED));
    let mut evaluated = 0usize;
    for p in [1usize, 2, 4] {
        for t in [1usize, 4] {
            if ev.evaluate(&mut app, p, t).is_some() {
                evaluated += 1;
            }
        }
    }
    let faulted = ev.faulted_trials().len();

    let retry_overhead = retry_s.mean / clean_s.mean - 1.0;
    let degraded_overhead = degraded_s.mean / clean_s.mean - 1.0;
    let pass = retry_ok && degraded_ok;

    println!(
        "chaos suite: MM n={n} T=4 P={PARTITIONS}, {} runs ({} warmup) per condition",
        runs.total, runs.warmup
    );
    println!("  clean    : {:>8.3} ms", clean_s.mean * 1e3);
    println!(
        "  retry    : {:>8.3} ms  ({:+.1}%, {} retries/run, output identical: {retry_ok})",
        retry_s.mean * 1e3,
        retry_overhead * 100.0,
        retry_faults.transfer_retries,
    );
    println!(
        "  degraded : {:>8.3} ms  ({:+.1}%, {} partition lost, {} actions replayed, output identical: {degraded_ok})",
        degraded_s.mean * 1e3,
        degraded_overhead * 100.0,
        degraded_faults.lost_partitions,
        degraded_faults.replayed_actions,
    );
    println!("  sweep    : {evaluated} trials measured, {faulted} killed by faults and logged");

    let mut json = mic_bench::schema::BenchJson::new("chaos", if quick { "quick" } else { "full" });
    json.u64("n", n as u64)
        .u64("partitions", PARTITIONS as u64)
        .u64("runs", runs.total as u64)
        .u64("warmup", runs.warmup as u64)
        .f64("clean_ms", clean_s.mean * 1e3, 4)
        .f64("retry_ms", retry_s.mean * 1e3, 4)
        .f64("retry_overhead_frac", retry_overhead, 4)
        .u64("retries_per_run", retry_faults.transfer_retries)
        .f64("degraded_ms", degraded_s.mean * 1e3, 4)
        .f64("degraded_overhead_frac", degraded_overhead, 4)
        .u64("lost_partitions", degraded_faults.lost_partitions)
        .u64("replayed_actions", degraded_faults.replayed_actions)
        .u64("degraded_runs", degraded_faults.degraded_runs)
        .u64("sweep_trials_measured", evaluated as u64)
        .u64("sweep_trials_faulted", faulted as u64)
        .bool("retry_output_identical", retry_ok)
        .bool("degraded_output_identical", degraded_ok);
    json.write("BENCH_chaos.json");

    if !pass {
        eprintln!("FAIL: a faulted condition changed the output");
        std::process::exit(1);
    }
}
