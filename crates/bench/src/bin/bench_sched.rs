//! Scheduler bench: prices the three DAG schedulers — FIFO replay, HEFT
//! list scheduling, and work stealing — against each other and gates the
//! results.
//!
//! `--quick` (wired into `scripts/verify.sh`) is a sim-only regression
//! gate: on every shipped app, `ListHeft` and `WorkSteal` must stay within
//! 5% of FIFO's makespan, and an explicit `Fifo` must reproduce the
//! default path's timeline bit-for-bit.
//!
//! Full mode (the default) adds the native executor and the synthetic
//! workloads the schedulers exist for — an imbalanced-tile pipeline where
//! FIFO serializes all the heavy tiles onto one partition, the `T < P`
//! starvation cliff of Fig. 10 where FIFO leaves most partitions idle, and
//! a balanced control where scheduling must not help or hurt. It writes
//! `results/BENCH_sched.json` and fails (exit 1) unless HEFT or work
//! stealing improves makespan by >= 10% on the imbalanced and starved
//! configurations on *both* executors while staying within noise on the
//! balanced control.

use std::time::{Duration, Instant};

use hstreams::kernel::KernelDesc;
use hstreams::{Context, NativeConfig, SchedulerKind};
use mic_apps::tunable::{
    Tunable, TunableCf, TunableHbench, TunableKmeans, TunableMm, TunableNn, TunablePartitionMicro,
};
use micsim::compute::KernelProfile;
use micsim::PlatformConfig;

/// A scheduled sim run may not regress more than 5% against FIFO on a
/// shipped app (these apps are already balanced, so the schedulers have
/// nothing to win — the gate is that they also cannot lose).
const APP_REGRESSION_MARGIN: f64 = 1.05;
/// Full-mode win gate: scheduled makespan must be <= 90% of FIFO's on the
/// imbalanced and starved workloads.
const WIN_FACTOR: f64 = 0.90;
/// Balanced-control tolerance on the native executor (host wall-clock
/// noise; the sim side uses [`APP_REGRESSION_MARGIN`]).
const NATIVE_NOISE_MARGIN: f64 = 1.15;

/// Sim makespans + FIFO-identity for one app at one `(P, T)`.
struct AppRow {
    name: &'static str,
    partitions: usize,
    tiles: usize,
    fifo_ms: f64,
    heft_ms: f64,
    steal_ms: f64,
    fifo_identical: bool,
}

/// One synthetic workload priced under all three schedulers on both
/// executors (milliseconds; native is the min over repetitions).
struct Condition {
    name: &'static str,
    sim_ms: [f64; 3],
    native_ms: [f64; 3],
}

fn sim_ms(ctx: &mut Context, kind: SchedulerKind) -> f64 {
    ctx.set_scheduler(kind);
    ctx.run_sim().unwrap().makespan().as_millis_f64()
}

/// Min-of-reps native wall time: noise is one-sided, the minimum is the
/// robust estimate (same rationale as the tuner's `TrialRecord::seconds`).
fn native_ms(ctx: &Context, kind: SchedulerKind, reps: usize) -> f64 {
    let cfg = NativeConfig {
        scheduler: Some(kind),
        ..NativeConfig::default()
    };
    ctx.run_native_with(&cfg).unwrap(); // warmup: pool spawn + page faults
    (0..reps)
        .map(|_| {
            let started = Instant::now();
            ctx.run_native_with(&cfg).unwrap();
            started.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Price one shipped app on the simulator under all three schedulers and
/// check the explicit-FIFO timeline matches the default path exactly.
fn sweep_app(app: &mut dyn Tunable, name: &'static str) -> AppRow {
    let partitions = 4;
    let tiles = [8usize, 4, 9, 16, 2, 1]
        .into_iter()
        .find(|&t| app.feasible(t))
        .expect("no feasible tile count");
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(partitions)
        .build()
        .unwrap();
    app.record(&mut ctx, tiles).unwrap();

    let default_run = ctx.run_sim().unwrap();
    let fifo_run = {
        ctx.set_scheduler(SchedulerKind::Fifo);
        ctx.run_sim().unwrap()
    };
    let fifo_identical = default_run.timeline.records == fifo_run.timeline.records;
    let fifo_ms = fifo_run.makespan().as_millis_f64();
    let heft_ms = sim_ms(&mut ctx, SchedulerKind::ListHeft);
    let steal_ms = sim_ms(&mut ctx, SchedulerKind::WorkSteal);
    AppRow {
        name,
        partitions,
        tiles,
        fifo_ms,
        heft_ms,
        steal_ms,
        fifo_identical,
    }
}

/// A tiled transfer/kernel/transfer pipeline with per-tile work chosen by
/// `work_ms`, recorded round-robin over `streams` streams on a
/// `partitions`-partition context. Kernels carry both a sim cost model and
/// a native sleep body, so the same rig prices on both executors.
fn rig(partitions: usize, streams: usize, tiles: usize, work_ms: impl Fn(usize) -> u64) -> Context {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(partitions)
        .build()
        .unwrap();
    for t in 0..tiles {
        let a = ctx.alloc(format!("a{t}"), 64);
        let b = ctx.alloc(format!("b{t}"), 64);
        ctx.write_host(a, &[t as f32 + 1.0; 64]).unwrap();
        let s = ctx.stream(t % streams).unwrap();
        let ms = work_ms(t);
        ctx.h2d(s, a).unwrap();
        ctx.kernel(
            s,
            KernelDesc::simulated(
                format!("tile{t}"),
                KernelProfile::streaming("k", 1e9),
                ms as f64 * 1e6,
            )
            .reading([a])
            .writing([b])
            .with_native(move |k| {
                std::thread::sleep(Duration::from_millis(ms));
                for (o, i) in k.writes[0].iter_mut().zip(k.reads[0]) {
                    *o = i * 2.0;
                }
            }),
        )
        .unwrap();
        ctx.d2h(s, b).unwrap();
    }
    ctx
}

fn price_condition(name: &'static str, mut ctx: Context, reps: usize) -> Condition {
    let kinds = SchedulerKind::all();
    let mut sim = [0.0f64; 3];
    let mut native = [0.0f64; 3];
    for (i, &kind) in kinds.iter().enumerate() {
        sim[i] = sim_ms(&mut ctx, kind);
        native[i] = native_ms(&ctx, kind, reps);
    }
    println!(
        "  {name:<11}: sim fifo {:>8.3} ms, heft {:>8.3} ms, steal {:>8.3} ms",
        sim[0], sim[1], sim[2]
    );
    println!(
        "  {:<11}  nat fifo {:>8.3} ms, heft {:>8.3} ms, steal {:>8.3} ms",
        "", native[0], native[1], native[2]
    );
    Condition {
        name,
        sim_ms: sim,
        native_ms: native,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    let mut failures: Vec<String> = Vec::new();

    // --- App regression sweep (both modes, sim-only) -------------------
    println!("scheduler bench ({mode} mode)");
    println!("app sweep (sim, P=4): scheduled makespans vs FIFO, margin {APP_REGRESSION_MARGIN}x");
    let mut app_rows = Vec::new();
    let mut sweep = |app: &mut dyn Tunable, name: &'static str| {
        let row = sweep_app(app, name);
        println!(
            "  {:<16} T={:<3}: fifo {:>9.3} ms, heft {:>9.3} ms ({:+.1}%), steal {:>9.3} ms ({:+.1}%), fifo identical: {}",
            row.name,
            row.tiles,
            row.fifo_ms,
            row.heft_ms,
            (row.heft_ms / row.fifo_ms - 1.0) * 100.0,
            row.steal_ms,
            (row.steal_ms / row.fifo_ms - 1.0) * 100.0,
            row.fifo_identical,
        );
        app_rows.push(row);
    };
    sweep(&mut TunableHbench::new(1 << 12, 1, None), "hbench");
    sweep(&mut TunableMm::new(48, None), "mm");
    sweep(&mut TunableCf::new(48, None), "cholesky");
    sweep(&mut TunableNn::new(1 << 12, None), "nn");
    sweep(&mut TunableKmeans::new(1 << 12, 4, 2, None), "kmeans");
    sweep(
        &mut TunablePartitionMicro::new(1 << 12, 1),
        "partition-micro",
    );

    for row in &app_rows {
        if !row.fifo_identical {
            failures.push(format!(
                "{}: explicit Fifo timeline differs from the default path",
                row.name
            ));
        }
        for (label, ms) in [("heft", row.heft_ms), ("steal", row.steal_ms)] {
            if ms > row.fifo_ms * APP_REGRESSION_MARGIN {
                failures.push(format!(
                    "{}: {label} regresses {:.1}% vs fifo ({:.3} ms vs {:.3} ms)",
                    row.name,
                    (ms / row.fifo_ms - 1.0) * 100.0,
                    ms,
                    row.fifo_ms
                ));
            }
        }
    }

    // --- Synthetic workloads (full mode, sim + native) ------------------
    let mut conditions: Vec<Condition> = Vec::new();
    if !quick {
        let reps = 3;
        println!("synthetic workloads (sim + native, min of {reps} reps):");
        // Every 4th tile is 8x heavier; round-robin recording lands all
        // the heavy tiles on stream 0, so FIFO's makespan is one
        // partition's serial chain while the schedulers balance it.
        conditions.push(price_condition(
            "imbalanced",
            rig(4, 4, 16, |t| if t % 4 == 0 { 8 } else { 1 }),
            reps,
        ));
        // Fig. 10's starvation cliff: work recorded on 2 streams, 8
        // partitions available — FIFO leaves 6 of them idle.
        conditions.push(price_condition("starved", rig(8, 2, 16, |_| 2), reps));
        // Balanced control: nothing to win, the gate is not losing.
        conditions.push(price_condition("balanced", rig(4, 4, 16, |_| 2), reps));

        for c in &conditions {
            let best_sim = c.sim_ms[1].min(c.sim_ms[2]);
            let best_native = c.native_ms[1].min(c.native_ms[2]);
            match c.name {
                "balanced" => {
                    if c.sim_ms[1].max(c.sim_ms[2]) > c.sim_ms[0] * APP_REGRESSION_MARGIN {
                        failures.push(format!(
                            "balanced: a scheduler regresses >5% vs fifo on sim ({:.3}/{:.3} vs {:.3} ms)",
                            c.sim_ms[1], c.sim_ms[2], c.sim_ms[0]
                        ));
                    }
                    if c.native_ms[1].max(c.native_ms[2]) > c.native_ms[0] * NATIVE_NOISE_MARGIN {
                        failures.push(format!(
                            "balanced: a scheduler regresses beyond noise vs fifo on native ({:.3}/{:.3} vs {:.3} ms)",
                            c.native_ms[1], c.native_ms[2], c.native_ms[0]
                        ));
                    }
                }
                _ => {
                    if best_sim > c.sim_ms[0] * WIN_FACTOR {
                        failures.push(format!(
                            "{}: no scheduler wins >=10% vs fifo on sim (best {:.3} ms vs {:.3} ms)",
                            c.name, best_sim, c.sim_ms[0]
                        ));
                    }
                    if best_native > c.native_ms[0] * WIN_FACTOR {
                        failures.push(format!(
                            "{}: no scheduler wins >=10% vs fifo on native (best {:.3} ms vs {:.3} ms)",
                            c.name, best_native, c.native_ms[0]
                        ));
                    }
                }
            }
        }
    }

    // --- JSON ------------------------------------------------------------
    let app_rows_json: Vec<String> = app_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"app\": \"{}\", \"partitions\": {}, \"tiles\": {}, \"sim_fifo_ms\": {:.4}, \"sim_heft_ms\": {:.4}, \"sim_steal_ms\": {:.4}, \"fifo_identical\": {}}}",
                r.name, r.partitions, r.tiles, r.fifo_ms, r.heft_ms, r.steal_ms, r.fifo_identical
            )
        })
        .collect();
    let conditions_json: Vec<String> = conditions
        .iter()
        .map(|c| {
            format!(
                "    {{\"name\": \"{}\", \"sim_fifo_ms\": {:.4}, \"sim_heft_ms\": {:.4}, \"sim_steal_ms\": {:.4}, \"native_fifo_ms\": {:.4}, \"native_heft_ms\": {:.4}, \"native_steal_ms\": {:.4}}}",
                c.name,
                c.sim_ms[0],
                c.sim_ms[1],
                c.sim_ms[2],
                c.native_ms[0],
                c.native_ms[1],
                c.native_ms[2]
            )
        })
        .collect();
    let as_array = |rows: &[String]| {
        if rows.is_empty() {
            "[\n  ]".to_string()
        } else {
            format!("[\n{}\n  ]", rows.join(",\n"))
        }
    };
    let mut json = mic_bench::schema::BenchJson::new("sched", mode);
    json.raw("schedulers", "[\"fifo\", \"heft\", \"steal\"]")
        .raw("apps", &as_array(&app_rows_json))
        .raw("conditions", &as_array(&conditions_json))
        .f64("win_factor", WIN_FACTOR, 1)
        .bool("pass", failures.is_empty());
    json.write("BENCH_sched.json");

    if failures.is_empty() {
        println!("scheduler bench: PASS");
    } else {
        eprintln!("scheduler bench: FAIL");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
