//! Runtime overhead calibration: per-kernel-launch cost of the native
//! executor's persistent worker-pool path vs the scoped-spawn baseline.
//!
//! The program is pure launch overhead — no-op kernels, no transfers — at
//! the paper's 4-partition geometry, repeated with the paper's
//! warmup/discard protocol. Emits a machine-readable
//! `results/BENCH_native_runtime.json` with both per-launch figures, the
//! speedup, and the run mode, and fails (exit 1) if the pool-backed path
//! misses the mode's speedup target.
//!
//! `--quick` shrinks the repetition budget for CI smoke runs and relaxes
//! the gate to 2x — launch overhead is noisy at small sample counts, and a
//! quick number must never be mistaken for the calibrated one, so the JSON
//! records `"mode"` and the per-mode target alongside the measurement.
//! Full mode (the default) keeps the 40-run protocol and the 5x gate.
//!
//! Also calibrates the telemetry layer: a fourth series runs the pooled
//! path with `NativeConfig::metrics` on and gates the added cost per
//! launch (0.5 us in full mode, relaxed in quick mode — the instruments
//! are a handful of relaxed atomics plus two clock reads). One metrics-on
//! run's snapshot is embedded under `"metrics"` so the committed result
//! carries a real native telemetry export.

use hstreams::kernel::KernelDesc;
use hstreams::{Context, NativeConfig};
use micsim::compute::KernelProfile;
use micsim::stats::Repetitions;
use micsim::PlatformConfig;

const PARTITIONS: usize = 4;
const KERNELS_PER_STREAM: usize = 16;

fn noop_context() -> Context {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(PARTITIONS)
        .build()
        .unwrap();
    for s_idx in 0..PARTITIONS {
        let s = ctx.stream(s_idx).unwrap();
        for k in 0..KERNELS_PER_STREAM {
            ctx.kernel(
                s,
                KernelDesc::simulated(
                    format!("noop{s_idx}_{k}"),
                    KernelProfile::streaming("noop", 1e9),
                    1.0,
                )
                .with_native(|_| {}),
            )
            .unwrap();
        }
    }
    ctx
}

/// Caller-visible seconds per `run_native_with` call (includes
/// validation and, on the scoped path, all per-run thread
/// spawn/teardown). The *mean* is the headline figure — it reflects what
/// a caller actually pays, spawn variance included, and the 5x speedup
/// target was calibrated against it. The *min* backs the overhead
/// deltas: noise is one-sided (interference only ever adds time), so
/// subtracting two minima estimates the marginal cost of tracing/metrics
/// without the swing of two noisy means (same rationale as
/// `bench_sched`'s min-of-reps native timings).
fn run_seconds(cfg: &NativeConfig, runs: Repetitions) -> micsim::stats::Summary {
    let ctx = noop_context();
    runs.measure(|| {
        let started = std::time::Instant::now();
        ctx.run_native_with(cfg).unwrap();
        started.elapsed().as_secs_f64()
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (mode, runs, target, metrics_budget_us) = if quick {
        (
            "quick",
            Repetitions {
                total: 10,
                warmup: 2,
            },
            2.0,
            1.5,
        )
    } else {
        (
            "full",
            Repetitions {
                total: 40,
                warmup: 8,
            },
            5.0,
            0.5,
        )
    };
    let kernels_per_run = PARTITIONS * KERNELS_PER_STREAM;
    let scoped = run_seconds(
        &NativeConfig {
            persistent: false,
            ..NativeConfig::default()
        },
        runs,
    );
    let pooled = run_seconds(&NativeConfig::default(), runs);
    let traced = run_seconds(
        &NativeConfig {
            trace: true,
            ..NativeConfig::default()
        },
        runs,
    );
    let metered = run_seconds(
        &NativeConfig {
            metrics: true,
            ..NativeConfig::default()
        },
        runs,
    );
    let per_launch_us = |secs: f64| secs / kernels_per_run as f64 * 1e6;
    let scoped_us = per_launch_us(scoped.mean);
    let pooled_us = per_launch_us(pooled.mean);
    let traced_us = per_launch_us(traced.mean);
    let metered_us = per_launch_us(metered.mean);
    let speedup = scoped_us / pooled_us;
    let trace_overhead_us = per_launch_us(traced.min) - per_launch_us(pooled.min);
    let metrics_overhead_us = per_launch_us(metered.min) - per_launch_us(pooled.min);
    let speedup_pass = speedup >= target;
    let metrics_pass = metrics_overhead_us <= metrics_budget_us;
    let pass = speedup_pass && metrics_pass;

    // One instrumented run whose snapshot ships inside the result file:
    // real launch-overhead/kernel-time histograms from this machine.
    let metrics_snapshot = noop_context()
        .run_native_with(&NativeConfig {
            metrics: true,
            ..NativeConfig::default()
        })
        .ok()
        .and_then(|report| report.metrics);

    println!("native launch overhead ({mode} mode), {PARTITIONS} partitions, {kernels_per_run} no-op kernels/run, {} runs ({} warmup):", runs.total, runs.warmup);
    println!("  scoped baseline : {scoped_us:>9.3} us/launch");
    println!("  persistent pool : {pooled_us:>9.3} us/launch");
    println!(
        "  pool + tracing  : {traced_us:>9.3} us/launch  (+{trace_overhead_us:.3} us trace cost)"
    );
    println!(
        "  pool + metrics  : {metered_us:>9.3} us/launch  (+{metrics_overhead_us:.3} us, budget {metrics_budget_us} us: {})",
        if metrics_pass { "PASS" } else { "FAIL" }
    );
    println!(
        "  speedup         : {speedup:>9.2}x  (target >= {target}x: {})",
        if speedup_pass { "PASS" } else { "FAIL" }
    );

    let mut json = mic_bench::schema::BenchJson::new("native_runtime_launch_overhead", mode);
    json.u64("partitions", PARTITIONS as u64)
        .u64("streams", PARTITIONS as u64)
        .u64("kernels_per_run", kernels_per_run as u64)
        .u64("runs", runs.total as u64)
        .u64("warmup", runs.warmup as u64)
        .f64("scoped_per_launch_us", scoped_us, 4)
        .f64("pooled_per_launch_us", pooled_us, 4)
        .f64("traced_per_launch_us", traced_us, 4)
        .f64("trace_overhead_per_launch_us", trace_overhead_us, 4)
        .f64("metrics_per_launch_us", metered_us, 4)
        .f64("metrics_overhead_per_launch_us", metrics_overhead_us, 4)
        .f64("metrics_overhead_budget_us", metrics_budget_us, 1)
        .f64("speedup", speedup, 3)
        .f64("speedup_target", target, 1)
        .bool("pass", pass);
    if let Some(snap) = &metrics_snapshot {
        json.metrics(snap);
    }
    json.write("BENCH_native_runtime.json");

    if !pass {
        std::process::exit(1);
    }
}
