//! Runtime overhead calibration: per-kernel-launch cost of the native
//! executor's persistent worker-pool path vs the scoped-spawn baseline.
//!
//! The program is pure launch overhead — no-op kernels, no transfers — at
//! the paper's 4-partition geometry, repeated with the paper's
//! warmup/discard protocol. Emits a machine-readable
//! `results/BENCH_native_runtime.json` with both per-launch figures and
//! the speedup, and fails (exit 1) if the pool-backed path is not at least
//! 5x cheaper per launch.

use std::io::Write;

use hstreams::kernel::KernelDesc;
use hstreams::{Context, NativeConfig};
use micsim::compute::KernelProfile;
use micsim::stats::Repetitions;
use micsim::PlatformConfig;

const PARTITIONS: usize = 4;
const KERNELS_PER_STREAM: usize = 16;
const RUNS: Repetitions = Repetitions {
    total: 40,
    warmup: 8,
};

fn noop_context() -> Context {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(PARTITIONS)
        .build()
        .unwrap();
    for s_idx in 0..PARTITIONS {
        let s = ctx.stream(s_idx).unwrap();
        for k in 0..KERNELS_PER_STREAM {
            ctx.kernel(
                s,
                KernelDesc::simulated(
                    format!("noop{s_idx}_{k}"),
                    KernelProfile::streaming("noop", 1e9),
                    1.0,
                )
                .with_native(|_| {}),
            )
            .unwrap();
        }
    }
    ctx
}

/// Mean caller-visible seconds per `run_native_with` call (includes
/// validation and, on the scoped path, all per-run thread spawn/teardown).
fn mean_run_seconds(cfg: &NativeConfig) -> f64 {
    let ctx = noop_context();
    RUNS.measure(|| {
        let started = std::time::Instant::now();
        ctx.run_native_with(cfg).unwrap();
        started.elapsed().as_secs_f64()
    })
    .mean
}

fn main() {
    let kernels_per_run = PARTITIONS * KERNELS_PER_STREAM;
    let scoped = mean_run_seconds(&NativeConfig {
        persistent: false,
        ..NativeConfig::default()
    });
    let pooled = mean_run_seconds(&NativeConfig::default());
    let traced = mean_run_seconds(&NativeConfig {
        trace: true,
        ..NativeConfig::default()
    });
    let scoped_us = scoped / kernels_per_run as f64 * 1e6;
    let pooled_us = pooled / kernels_per_run as f64 * 1e6;
    let traced_us = traced / kernels_per_run as f64 * 1e6;
    let speedup = scoped_us / pooled_us;
    let trace_overhead_us = traced_us - pooled_us;
    let pass = speedup >= 5.0;

    println!("native launch overhead, {PARTITIONS} partitions, {kernels_per_run} no-op kernels/run, {} runs ({} warmup):", RUNS.total, RUNS.warmup);
    println!("  scoped baseline : {scoped_us:>9.3} us/launch");
    println!("  persistent pool : {pooled_us:>9.3} us/launch");
    println!(
        "  pool + tracing  : {traced_us:>9.3} us/launch  (+{trace_overhead_us:.3} us trace cost)"
    );
    println!(
        "  speedup         : {speedup:>9.2}x  (target >= 5x: {})",
        if pass { "PASS" } else { "FAIL" }
    );

    let json = format!(
        "{{\n  \"bench\": \"native_runtime_launch_overhead\",\n  \"partitions\": {PARTITIONS},\n  \"streams\": {PARTITIONS},\n  \"kernels_per_run\": {kernels_per_run},\n  \"runs\": {},\n  \"warmup\": {},\n  \"scoped_per_launch_us\": {scoped_us:.4},\n  \"pooled_per_launch_us\": {pooled_us:.4},\n  \"traced_per_launch_us\": {traced_us:.4},\n  \"trace_overhead_per_launch_us\": {trace_overhead_us:.4},\n  \"speedup\": {speedup:.3},\n  \"pass_5x\": {pass}\n}}\n",
        RUNS.total, RUNS.warmup
    );
    let dir = mic_bench::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
    } else {
        let path = dir.join("BENCH_native_runtime.json");
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                if let Err(e) = f.write_all(json.as_bytes()) {
                    eprintln!("warning: write {} failed: {e}", path.display());
                } else {
                    println!("[wrote {}]", path.display());
                }
            }
            Err(e) => eprintln!("warning: create {} failed: {e}", path.display()),
        }
    }

    if !pass {
        std::process::exit(1);
    }
}
