//! Runtime overhead calibration: per-kernel-launch cost of the native
//! executor's persistent worker-pool path vs the scoped-spawn baseline.
//!
//! The program is pure launch overhead — no-op kernels, no transfers — at
//! the paper's 4-partition geometry, repeated with the paper's
//! warmup/discard protocol. Emits a machine-readable
//! `results/BENCH_native_runtime.json` with both per-launch figures, the
//! speedup, and the run mode, and fails (exit 1) if the pool-backed path
//! misses the mode's speedup target.
//!
//! `--quick` shrinks the repetition budget for CI smoke runs and relaxes
//! the gate to 2x — launch overhead is noisy at small sample counts, and a
//! quick number must never be mistaken for the calibrated one, so the JSON
//! records `"mode"` and the per-mode target alongside the measurement.
//! Full mode (the default) keeps the 40-run protocol and the 5x gate.

use std::io::Write;

use hstreams::kernel::KernelDesc;
use hstreams::{Context, NativeConfig};
use micsim::compute::KernelProfile;
use micsim::stats::Repetitions;
use micsim::PlatformConfig;

const PARTITIONS: usize = 4;
const KERNELS_PER_STREAM: usize = 16;

fn noop_context() -> Context {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(PARTITIONS)
        .build()
        .unwrap();
    for s_idx in 0..PARTITIONS {
        let s = ctx.stream(s_idx).unwrap();
        for k in 0..KERNELS_PER_STREAM {
            ctx.kernel(
                s,
                KernelDesc::simulated(
                    format!("noop{s_idx}_{k}"),
                    KernelProfile::streaming("noop", 1e9),
                    1.0,
                )
                .with_native(|_| {}),
            )
            .unwrap();
        }
    }
    ctx
}

/// Mean caller-visible seconds per `run_native_with` call (includes
/// validation and, on the scoped path, all per-run thread spawn/teardown).
fn mean_run_seconds(cfg: &NativeConfig, runs: Repetitions) -> f64 {
    let ctx = noop_context();
    runs.measure(|| {
        let started = std::time::Instant::now();
        ctx.run_native_with(cfg).unwrap();
        started.elapsed().as_secs_f64()
    })
    .mean
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (mode, runs, target) = if quick {
        (
            "quick",
            Repetitions {
                total: 10,
                warmup: 2,
            },
            2.0,
        )
    } else {
        (
            "full",
            Repetitions {
                total: 40,
                warmup: 8,
            },
            5.0,
        )
    };
    let kernels_per_run = PARTITIONS * KERNELS_PER_STREAM;
    let scoped = mean_run_seconds(
        &NativeConfig {
            persistent: false,
            ..NativeConfig::default()
        },
        runs,
    );
    let pooled = mean_run_seconds(&NativeConfig::default(), runs);
    let traced = mean_run_seconds(
        &NativeConfig {
            trace: true,
            ..NativeConfig::default()
        },
        runs,
    );
    let scoped_us = scoped / kernels_per_run as f64 * 1e6;
    let pooled_us = pooled / kernels_per_run as f64 * 1e6;
    let traced_us = traced / kernels_per_run as f64 * 1e6;
    let speedup = scoped_us / pooled_us;
    let trace_overhead_us = traced_us - pooled_us;
    let pass = speedup >= target;

    println!("native launch overhead ({mode} mode), {PARTITIONS} partitions, {kernels_per_run} no-op kernels/run, {} runs ({} warmup):", runs.total, runs.warmup);
    println!("  scoped baseline : {scoped_us:>9.3} us/launch");
    println!("  persistent pool : {pooled_us:>9.3} us/launch");
    println!(
        "  pool + tracing  : {traced_us:>9.3} us/launch  (+{trace_overhead_us:.3} us trace cost)"
    );
    println!(
        "  speedup         : {speedup:>9.2}x  (target >= {target}x: {})",
        if pass { "PASS" } else { "FAIL" }
    );

    let json = format!(
        "{{\n  \"bench\": \"native_runtime_launch_overhead\",\n  \"mode\": \"{mode}\",\n  \"partitions\": {PARTITIONS},\n  \"streams\": {PARTITIONS},\n  \"kernels_per_run\": {kernels_per_run},\n  \"runs\": {},\n  \"warmup\": {},\n  \"scoped_per_launch_us\": {scoped_us:.4},\n  \"pooled_per_launch_us\": {pooled_us:.4},\n  \"traced_per_launch_us\": {traced_us:.4},\n  \"trace_overhead_per_launch_us\": {trace_overhead_us:.4},\n  \"speedup\": {speedup:.3},\n  \"speedup_target\": {target},\n  \"pass\": {pass}\n}}\n",
        runs.total, runs.warmup
    );
    let dir = mic_bench::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
    } else {
        let path = dir.join("BENCH_native_runtime.json");
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                if let Err(e) = f.write_all(json.as_bytes()) {
                    eprintln!("warning: write {} failed: {e}", path.display());
                } else {
                    println!("[wrote {}]", path.display());
                }
            }
            Err(e) => eprintln!("warning: create {} failed: {e}", path.display()),
        }
    }

    if !pass {
        std::process::exit(1);
    }
}
