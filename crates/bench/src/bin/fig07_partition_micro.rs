//! Fig. 7 — how resource granularity impacts kernel execution.
//!
//! hBench arrays split into 128 blocks, 100 kernel iterations, kernels only
//! (no transfer time), swept over the partition count. The `ref` row is the
//! non-streamed, non-tiled kernel: the paper's point is that it beats every
//! tiled configuration — spatial sharing alone buys nothing for a
//! non-overlappable kernel.

use mic_apps::hbench::partition_program;
use mic_bench::{Figure, Series};
use micsim::PlatformConfig;

fn main() {
    let blocks = 128;
    let block_elems = 32 << 10; // 128 blocks x 128 KiB = 16 MiB total
    let iters = 100;
    let run = |p: usize, tiled: bool| -> f64 {
        partition_program(
            PlatformConfig::phi_31sp(),
            blocks,
            block_elems,
            iters,
            p,
            tiled,
        )
        .expect("build")
        .run_sim()
        .expect("sim")
        .makespan()
        .as_millis_f64()
    };
    let mut fig = Figure::new(
        "fig07",
        "kernel execution time vs number of partitions (128 tiles, 100 iters)",
        "#partitions",
        "ms",
    );
    let mut tiled = Series::new("streamed+tiled");
    let mut reference = Series::new("ref (non-tiled)");
    let ref_ms = run(1, false);
    for p in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        tiled.push(p, run(p, true));
        // The reference is partition-independent; repeating it per row keeps
        // the CSV columns aligned (it plots as the paper's flat ref bar).
        reference.push(p, ref_ms);
    }
    fig.add(tiled);
    fig.add(reference);
    fig.emit();
    println!(
        "Paper check: U-shaped curve over P; the non-tiled ref bar is lower \
         than every tiled configuration (finding #3)."
    );
}
