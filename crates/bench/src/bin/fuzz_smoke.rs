//! Differential-fuzzing smoke gate: the four oracles must agree on
//! everything the fuzzer can generate, deterministically.
//!
//! Seeds the corpus from the shared test generators
//! ([`hstreams::testutil`]) plus the six tunable app builders recorded at
//! the parity geometry `(P=2, T=4)`, replays the committed corpus under
//! `crates/fuzz/corpus/`, then runs **two identical fuzzing sessions**
//! with a fixed execution budget and gates on:
//!
//! 1. **Determinism** — both sessions produce the same
//!    [`Fuzzer::evolution_hash`] (byte-identical corpus evolution);
//! 2. **Agreement** — zero four-oracle disagreements anywhere (replay or
//!    fuzzing); any finding's shrunk genome is printed ready to commit to
//!    `tests/fuzz_regressions.rs`;
//! 3. **Breadth** — the retained corpus lights up at least 4 signal
//!    families (checker diagnostics, overlap shapes, metrics catalog,
//!    fault counters, scheduler outcomes, witness verdicts, ...).
//!
//! `--quick` shrinks the mutation budget for CI (the budget, not a wall
//! clock, is the determinism boundary). Emits `results/BENCH_fuzz.json`.

use std::time::Instant;

use hstreams::context::Context;
use hstreams::sched::SchedulerKind;
use hstreams::testutil::{build_chained, build_synced};
use mic_apps::tunable::{
    Tunable, TunableCf, TunableHbench, TunableKmeans, TunableMm, TunableNn, TunablePartitionMicro,
};
use micsim::PlatformConfig;
use stream_fuzz::{Fuzzer, FuzzerConfig, ProgramSpec};

/// Parity geometry shared with `tests/metrics_parity.rs`.
const PARTITIONS: usize = 2;
const TASKS: usize = 4;
/// Master seed for both sessions — fixed so CI failures reproduce locally.
const SEED: u64 = 0xf022;

/// The six apps at small native-runnable problem sizes, recorded once and
/// captured as genome skeletons.
fn apps() -> Vec<Box<dyn Tunable>> {
    vec![
        Box::new(TunableHbench::new(1 << 10, 2, Some(7))),
        Box::new(TunableMm::new(32, Some(7))),
        Box::new(TunableCf::new(32, Some(7))),
        Box::new(TunableNn::new(1 << 10, Some(7))),
        Box::new(TunableKmeans::new(1 << 10, 8, 2, Some(7))),
        Box::new(TunablePartitionMicro::new(1 << 10, 2)),
    ]
}

/// Record `app` at the parity geometry and capture the program's shape.
fn capture(app: &mut dyn Tunable, scheduler: SchedulerKind) -> ProgramSpec {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(PARTITIONS)
        .metrics(true)
        .build()
        .expect("parity context");
    assert!(
        app.feasible(TASKS),
        "{} infeasible at T={TASKS}",
        app.name()
    );
    app.record(&mut ctx, TASKS)
        .unwrap_or_else(|e| panic!("{} failed to record: {e}", app.name()));
    ProgramSpec::from_program(ctx.program(), scheduler)
}

/// Seed a fresh fuzzer identically for both sessions: generator-built
/// skeletons first, then every app under a rotating scheduler.
fn seeded_fuzzer(full_oracles: bool) -> Fuzzer {
    let mut f = Fuzzer::new(FuzzerConfig {
        seed: SEED,
        full_oracles,
        shrink_findings: true,
        // Serve-mode rides the full-oracle tier: retained children are
        // interleaved with their parents as two service tenants and must
        // serve bit-identically to solo.
        serve_oracle: full_oracles,
        opt_oracle: true,
    });
    f.add_seed("minimal", ProgramSpec::minimal());
    f.add_seed(
        "synced3",
        ProgramSpec::from_program(
            &build_synced(3, &[(0, 0), (1, 1), (2, 0)]),
            SchedulerKind::Fifo,
        ),
    );
    f.add_seed(
        "chained",
        ProgramSpec::from_program(
            &build_chained(&[2, 2, 1], &[(0, 0), (1, 1)], 2, 12),
            SchedulerKind::WorkSteal,
        ),
    );
    let kinds = SchedulerKind::all();
    for (i, mut app) in apps().into_iter().enumerate() {
        let kind = kinds[i % kinds.len()];
        let spec = capture(app.as_mut(), kind);
        f.add_seed(app.name(), spec);
    }
    f
}

/// Replay every committed genome under `crates/fuzz/corpus/` through the
/// full oracle stack; returns `(replayed, disagreements)`.
fn replay_corpus(f: &mut Fuzzer) -> (usize, Vec<String>) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../fuzz/corpus");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (0, Vec::new());
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    paths.sort();
    let mut replayed = 0;
    let mut bad = Vec::new();
    for path in paths {
        let name = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("unreadable corpus file {name}: {e}"));
        let mut spec = ProgramSpec::parse(&text)
            .unwrap_or_else(|e| panic!("corpus file {name} does not parse: {e}"));
        spec.repair();
        let out = f.harness.run_case(&spec, true);
        replayed += 1;
        if let Some(d) = out.disagreement {
            bad.push(format!("{name}: {} — {}", d.class, d.detail));
        }
    }
    (replayed, bad)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let budget = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { 160 } else { 1200 });
    let started = Instant::now();

    // Replay the committed corpus through the full oracle stack first: a
    // regression that breaks an already-minimized genome fails loudly and
    // by name, before any mutation runs.
    let mut replayer = seeded_fuzzer(true);
    let (replayed, replay_bad) = replay_corpus(&mut replayer);

    // Two independent sessions, identical configuration: the evolution
    // hashes must match bit-for-bit or something nondeterministic leaked
    // into the loop (wall clock, map iteration order, address hashing).
    let mut a = seeded_fuzzer(true);
    a.run(budget);
    let mut b = seeded_fuzzer(true);
    b.run(budget);

    let elapsed = started.elapsed().as_secs_f64();
    let execs = replayer.execs() + a.execs() + b.execs();
    let execs_per_sec = execs as f64 / elapsed.max(1e-9);

    let deterministic = a.evolution_hash() == b.evolution_hash();
    let findings = a.findings().len() + b.findings().len() + replay_bad.len();
    let families = a.families();

    println!(
        "fuzz smoke: budget {budget} ×2 sessions + {replayed} corpus replays, {execs} execs in {elapsed:.2}s ({execs_per_sec:.0}/s)"
    );
    println!(
        "  corpus   : {} retained ({} seeds), {} distinct signals",
        a.corpus().len(),
        a.corpus().iter().filter(|e| e.parent.is_none()).count(),
        a.seen_signals().len()
    );
    println!("  families : {}", {
        let parts: Vec<String> = families.iter().map(|(k, v)| format!("{k}×{v}")).collect();
        parts.join("  ")
    });
    println!(
        "  evolution: {:016x} (session B: {:016x}, match: {deterministic})",
        a.evolution_hash(),
        b.evolution_hash()
    );
    println!("  findings : {findings}");

    for line in &replay_bad {
        eprintln!("REPLAY DISAGREEMENT {line}");
    }
    for f in a.findings().iter().chain(b.findings()) {
        eprintln!("FINDING [{}] via {}: {}", f.class, f.op, f.detail);
        eprintln!("--- minimized genome (commit to tests/fuzz_regressions.rs) ---");
        eprint!("{}", f.text);
        eprintln!("---");
    }

    let breadth_ok = families.len() >= 4;
    if !breadth_ok {
        eprintln!(
            "FAIL: only {} signal families lit (need ≥4)",
            families.len()
        );
    }
    if !deterministic {
        eprintln!("FAIL: the two sessions diverged — fuzzing is not deterministic");
    }
    if findings > 0 {
        eprintln!("FAIL: {findings} four-oracle disagreement(s)");
    }

    let family_json: Vec<String> = families.keys().map(|k| format!("\"{k}\"")).collect();
    let mut json = mic_bench::schema::BenchJson::new("fuzz", if quick { "quick" } else { "full" });
    json.u64("budget", budget as u64)
        .u64(
            "seeds",
            a.corpus().iter().filter(|e| e.parent.is_none()).count() as u64,
        )
        .u64("corpus_retained", a.corpus().len() as u64)
        .u64("corpus_replayed", replayed as u64)
        .u64("execs", execs)
        .f64("execs_per_sec", execs_per_sec, 1)
        .u64("signals", a.seen_signals().len() as u64)
        .u64("signal_families", families.len() as u64)
        .raw("family_names", &format!("[{}]", family_json.join(", ")))
        .str("evolution_hash", &format!("{:016x}", a.evolution_hash()))
        .bool("deterministic", deterministic)
        .u64("disagreements", findings as u64);
    json.write("BENCH_fuzz.json");

    if !deterministic || findings > 0 || !breadth_ok {
        std::process::exit(1);
    }
}
