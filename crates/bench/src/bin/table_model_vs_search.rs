//! Tuning-strategy comparison: the four ways this repository can pick
//! `(P, T)` for a streamed workload, head to head on the hBench pipeline.
//!
//! | strategy | evaluations | source |
//! |---|---|---|
//! | exhaustive sweep | thousands | paper Sec. V-A ("empirically enumerate") |
//! | pruned candidates | dozens | paper Sec. V-C heuristics |
//! | adaptive hill-climb | ~10 | paper future work ("machine learning techniques") |
//! | analytical model | 0 | paper future work ("fine analytical performance model") |

use hstreams::Context;
use mic_apps::hbench::{overlap_program, OverlapVariant};
use micsim::device::DeviceSpec;
use micsim::PlatformConfig;
use stream_tune::candidates::{exhaustive_space, partition_candidates, pruned_space, TuneBounds};
use stream_tune::model::PipelineModel;
use stream_tune::search::{adaptive_search, search};

const ELEMS: usize = 4 << 20;
const ITERS: usize = 50;

fn objective(p: usize, t: usize) -> Option<f64> {
    let ctx: Context = overlap_program(
        PlatformConfig::phi_31sp(),
        ELEMS,
        ITERS,
        p,
        OverlapVariant::Streamed { tiles: t },
    )
    .ok()?;
    Some(ctx.run_sim().ok()?.makespan().as_secs_f64())
}

fn main() {
    let bounds = TuneBounds {
        max_partitions: 56,
        max_tiles: 224,
        max_multiple: 8,
    };
    let device = DeviceSpec::phi_31sp();

    // 1. Exhaustive.
    let full = search(&exhaustive_space(&bounds), objective);

    // 2. Pruned.
    let pruned = search(&pruned_space(&device, &bounds), objective);

    // 3. Adaptive, seeded at the smallest sensible config.
    let p_set = partition_candidates(&device, bounds.max_partitions);
    let adaptive = adaptive_search(&p_set, bounds.max_tiles, (2, 2), 32, objective);

    // 4. Analytical model: pick T* for each candidate P, evaluate only the
    //    model-chosen points once in the simulator to report honestly.
    let cfg = PlatformConfig::phi_31sp();
    let model = PipelineModel {
        bytes_h2d: (ELEMS * 4) as f64,
        bytes_d2h: (ELEMS * 4) as f64,
        transfers_per_tile: 2.0,
        kernel_work: ELEMS as f64 * ITERS as f64,
        device_rate: 0.32e9 * 100.8,
        launch_overhead: cfg.compute.launch_overhead.as_secs_f64(),
        link_bandwidth: cfg.link.bandwidth,
        link_latency: cfg.link.latency.as_secs_f64(),
    };
    let (model_p, model_t) = p_set
        .iter()
        .map(|&p| (p, model.optimal_tiles(p, bounds.max_tiles)))
        .min_by(|&(pa, ta), &(pb, tb)| model.makespan(pa, ta).total_cmp(&model.makespan(pb, tb)))
        .unwrap();
    let model_measured = objective(model_p, model_t).unwrap();

    println!("| strategy | best (P,T) | measured (ms) | vs exhaustive | sim evals |");
    println!("|---|---|---|---|---|");
    let row = |name: &str, best: (usize, usize), val: f64, evals: usize| {
        println!(
            "| {name} | {best:?} | {:.3} | +{:.2}% | {evals} |",
            val * 1e3,
            (val / full.best_value - 1.0) * 100.0
        );
    };
    row("exhaustive", full.best, full.best_value, full.evaluations);
    row(
        "pruned (Sec. V-C)",
        pruned.best,
        pruned.best_value,
        pruned.evaluations,
    );
    row(
        "adaptive hill-climb",
        adaptive.best,
        adaptive.best_value,
        adaptive.evaluations,
    );
    row("analytical model", (model_p, model_t), model_measured, 1);
    println!(
        "\nThe model predicts makespans without any simulation; the adaptive \
         search needs an order of magnitude fewer evaluations than even the \
         pruned sweep. Both are the paper's named future-work directions."
    );
}
