//! Ablations of the platform model's design choices — which modeled
//! mechanism produces which paper phenomenon. Each section removes one
//! mechanism and shows the corresponding figure's shape collapse.
//!
//! 1. **Serial-duplex link** (drives Fig. 5 and every overlap ceiling):
//!    replaying Fig. 5's ID case on a full-duplex link makes it V-shaped.
//! 2. **Core-sharing penalty** (drives Fig. 9(a)'s divisor spikes):
//!    setting the factor to 1.0 flattens MM's partition sweep.
//! 3. **KNC SMT curve** (drives Fig. 7's right-hand tail): a linear curve
//!    (1 thread = 1 equivalent) removes the penalty for tiny partitions.
//! 4. **Per-invocation allocation cost** (drives Kmeans' Fig. 9(c) drop):
//!    zeroing it flattens the sweep.

use mic_apps::hbench::{partition_program, transfer_program};
use mic_apps::{kmeans, mm};
use mic_bench::{Figure, Series};
use micsim::compute::SmtScaling;
use micsim::PlatformConfig;

fn main() {
    // 1. Link duplex.
    {
        let mut fig = Figure::new(
            "ablation_duplex",
            "Fig.5 ID case: serial vs full-duplex link",
            "hd (dh = 16 - hd)",
            "ms",
        );
        let mut serial = Series::new("serial (Phi)");
        let mut duplex = Series::new("full-duplex (ablation)");
        for hd in 0..=16usize {
            let t = |cfg: PlatformConfig| {
                transfer_program(cfg, hd, 16 - hd, 1 << 20)
                    .unwrap()
                    .run_sim()
                    .unwrap()
                    .makespan()
                    .as_millis_f64()
            };
            serial.push(hd, t(PlatformConfig::phi_31sp()));
            duplex.push(hd, t(PlatformConfig::phi_31sp_full_duplex()));
        }
        fig.add(serial);
        fig.add(duplex);
        fig.emit();
        println!(
            "=> serial stays flat (the paper's finding); full-duplex dips at the balanced point.\n"
        );
    }

    // 2. Core-sharing penalty.
    {
        let mut fig = Figure::new(
            "ablation_sharing",
            "MM partition sweep with and without the core-sharing penalty",
            "P",
            "GFLOPS",
        );
        let mut with = Series::new("penalty 0.5 (model)");
        let mut without = Series::new("penalty off (ablation)");
        for p in [2usize, 4, 7, 8, 13, 16, 27, 28, 33, 56] {
            let run = |factor: f64| {
                let mut cfg = PlatformConfig::phi_31sp();
                cfg.compute.core_sharing_factor = factor;
                mm::simulate(
                    &mm::MmConfig {
                        n: 6000,
                        tiles_per_dim: 12,
                    },
                    cfg,
                    p,
                )
                .unwrap()
                .1
            };
            with.push(p, run(0.5));
            without.push(p, run(1.0));
        }
        fig.add(with);
        fig.add(without);
        fig.emit();
        println!("=> without the penalty, the non-divisor dips of Fig. 9(a) vanish.\n");
    }

    // 3. SMT curve.
    {
        let mut fig = Figure::new(
            "ablation_smt",
            "Fig.7 sweep with the KNC SMT curve vs a linear curve",
            "P",
            "ms",
        );
        let mut knc = Series::new("KNC curve (0.6/1.3/1.65/1.8)");
        let mut linear = Series::new("linear curve (1/2/3/4, ablation)");
        for p in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let run = |smt: SmtScaling| {
                let mut cfg = PlatformConfig::phi_31sp();
                cfg.compute.smt = smt;
                partition_program(cfg, 128, 32 << 10, 100, p, true)
                    .unwrap()
                    .run_sim()
                    .unwrap()
                    .makespan()
                    .as_millis_f64()
            };
            knc.push(p, run(SmtScaling::default()));
            linear.push(
                p,
                run(SmtScaling {
                    factor: [1.0, 2.0, 3.0, 4.0],
                }),
            );
        }
        fig.add(knc);
        fig.add(linear);
        fig.emit();
        println!("=> with linear SMT, large P stops hurting and Fig. 7's right tail flattens.\n");
    }

    // 4. Kmeans allocation cost.
    {
        let mut fig = Figure::new(
            "ablation_alloc",
            "Kmeans partition sweep with and without per-invocation allocation",
            "P",
            "s",
        );
        let mut with = Series::new("alloc 5us/thread (model)");
        let mut without = Series::new("alloc 0 (ablation)");
        let base = kmeans::KmeansConfig {
            points: 1_120_000,
            dims: 34,
            k: 8,
            iterations: 20,
            tiles: 56,
            alloc_micros: 5,
        };
        let no_alloc = kmeans::KmeansConfig {
            alloc_micros: 0,
            ..base
        };
        for p in [1usize, 2, 4, 8, 14, 28, 56] {
            with.push(
                p,
                kmeans::simulate(&base, PlatformConfig::phi_31sp(), p).unwrap(),
            );
            without.push(
                p,
                kmeans::simulate(&no_alloc, PlatformConfig::phi_31sp(), p).unwrap(),
            );
        }
        fig.add(with);
        fig.add(without);
        fig.emit();
        println!("=> the Fig. 9(c) monotone drop is the allocation term; without it the sweep is nearly flat.");
    }
}
