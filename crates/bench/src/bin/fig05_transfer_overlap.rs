//! Fig. 5 — do H2D and D2H transfers overlap?
//!
//! hBench moves `hd` 1 MB blocks host→device and `dh` blocks device→host:
//! * `CC`: hd = dh = 16 (constant) — flat line at ~5.2 ms;
//! * `IC`: hd = 0..16, dh = 16 — increases linearly;
//! * `CD`: hd = 16, dh = 16..0 — decreases linearly;
//! * `ID`: hd = 0..16, dh = 16-hd — **flat at ~2.5 ms**, proving the two
//!   directions serialize (a full-duplex link would be dominated by the
//!   larger direction instead).
//!
//! A second table shows the same sweep on an idealized full-duplex link.

use mic_apps::hbench::transfer_program;
use mic_bench::{Figure, Series};
use micsim::PlatformConfig;

const MB: u64 = 1 << 20;

fn sweep(cfg: fn() -> PlatformConfig, id: &str, title: &str) {
    let run = |hd: usize, dh: usize| -> f64 {
        transfer_program(cfg(), hd, dh, MB)
            .expect("build")
            .run_sim()
            .expect("sim")
            .makespan()
            .as_millis_f64()
    };
    let mut fig = Figure::new(id, title, "#blocks", "ms");
    let mut cc = Series::new("CC");
    let mut ic = Series::new("IC");
    let mut cd = Series::new("CD");
    let mut id_s = Series::new("ID");
    for x in 0..=16usize {
        cc.push(x, run(16, 16));
        ic.push(x, run(x, 16));
        cd.push(x, run(16, 16 - x));
        id_s.push(x, run(x, 16 - x));
    }
    fig.add(cc);
    fig.add(ic);
    fig.add(cd);
    fig.add(id_s);
    fig.emit();
}

fn main() {
    sweep(
        PlatformConfig::phi_31sp,
        "fig05",
        "data transfer time over transferred blocks (serial Phi link)",
    );
    sweep(
        PlatformConfig::phi_31sp_full_duplex,
        "fig05_duplex_ablation",
        "same sweep on an idealized full-duplex link (ablation)",
    );
    println!(
        "Paper check: ID flat ≈2.5 ms and CC flat ≈5.2 ms on the serial link \
         ⇒ the two directions are serialized (paper finding #1)."
    );
}
