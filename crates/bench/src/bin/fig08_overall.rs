//! Fig. 8 — overall comparison of streamed (w/) vs non-streamed (w/o)
//! versions of the six applications over their dataset sweeps, plus the
//! Sec. V-A summary of average improvements.
//!
//! The non-streamed version is one stream / one tile. For the streamed
//! version the paper "empirically enumerates all the possible values of
//! task granularity and resource granularity to obtain the optimal
//! performance"; this harness does the same over the Sec. V-C candidate
//! sets (core-aligned P, T a small multiple of P).

use mic_apps::{cholesky, hotspot, kmeans, mm, nn, srad};
use mic_bench::{Figure, Series};
use micsim::PlatformConfig;

fn phi() -> PlatformConfig {
    PlatformConfig::phi_31sp()
}

/// Core-aligned partition candidates (paper Sec. V-C rule 1).
const P_SET: [usize; 5] = [2, 4, 7, 8, 28];

/// Evaluate `eval(P, T)` (seconds; `None` = invalid combo) over the pruned
/// candidate set and return `(best_secs, best_p, best_t)`.
fn tune<F: FnMut(usize, usize) -> Option<f64>>(
    t_candidates: &dyn Fn(usize) -> Vec<usize>,
    mut eval: F,
) -> (f64, usize, usize) {
    let mut best = (f64::INFINITY, 0, 0);
    for &p in &P_SET {
        for t in t_candidates(p) {
            if let Some(secs) = eval(p, t) {
                if secs < best.0 {
                    best = (secs, p, t);
                }
            }
        }
    }
    assert!(best.0.is_finite(), "no streamed candidate evaluated");
    best
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn main() {
    let mut summary: Vec<(&str, f64, &str)> = Vec::new();

    // (a) MM — GFLOPS, higher is better. T = tpd², tpd must divide n.
    {
        let mut fig = Figure::new("fig08a_mm", "MM: w/o vs w/ (GFLOPS)", "dataset", "GFLOPS");
        let mut wo = Series::new("w/o");
        let mut w = Series::new("w/");
        let mut gains = Vec::new();
        for n in [2000usize, 4000, 6000, 8000, 10000, 12000] {
            let (_, gf_wo) = mm::simulate(
                &mm::MmConfig {
                    n,
                    tiles_per_dim: 1,
                },
                phi(),
                1,
            )
            .unwrap();
            let tpds = move |_p: usize| -> Vec<usize> {
                [2usize, 4, 5, 8, 10, 16, 20]
                    .iter()
                    .copied()
                    .filter(|t| n % t == 0)
                    .collect()
            };
            let (secs, bp, bt) = tune(&tpds, |p, tpd| {
                mm::simulate(
                    &mm::MmConfig {
                        n,
                        tiles_per_dim: tpd,
                    },
                    phi(),
                    p,
                )
                .ok()
                .map(|(s, _)| s)
            });
            let gf_w = mm::MmConfig {
                n,
                tiles_per_dim: bt,
            }
            .flops()
                / secs
                / 1e9;
            eprintln!("MM {n}: best P={bp} T={}", bt * bt);
            wo.push(format!("{n}^2"), gf_wo);
            w.push(format!("{n}^2"), gf_w);
            gains.push((gf_w / gf_wo - 1.0) * 100.0);
        }
        fig.add(wo);
        fig.add(w);
        fig.emit();
        summary.push(("MM", mean(&gains), "8.3"));
    }

    // (b) CF — GFLOPS, higher is better.
    {
        let mut fig = Figure::new("fig08b_cf", "CF: w/o vs w/ (GFLOPS)", "dataset", "GFLOPS");
        let mut wo = Series::new("w/o");
        let mut w = Series::new("w/");
        let mut gains = Vec::new();
        for n in [7200usize, 9600, 12000, 14400, 16800, 19200] {
            let (_, gf_wo) = cholesky::simulate(
                &cholesky::CfConfig {
                    n,
                    tiles_per_dim: 1,
                },
                phi(),
                1,
            )
            .unwrap();
            let tpds = move |_p: usize| -> Vec<usize> {
                [6usize, 8, 10, 12, 16]
                    .iter()
                    .copied()
                    .filter(|t| n % t == 0)
                    .collect()
            };
            let (secs, bp, bt) = tune(&tpds, |p, tpd| {
                cholesky::simulate(
                    &cholesky::CfConfig {
                        n,
                        tiles_per_dim: tpd,
                    },
                    phi(),
                    p,
                )
                .ok()
                .map(|(s, _)| s)
            });
            let gf_w = cholesky::CfConfig {
                n,
                tiles_per_dim: bt,
            }
            .flops()
                / secs
                / 1e9;
            eprintln!("CF {n}: best P={bp} T={}", bt * bt);
            wo.push(format!("{n}^2"), gf_wo);
            w.push(format!("{n}^2"), gf_w);
            gains.push((gf_w / gf_wo - 1.0) * 100.0);
        }
        fig.add(wo);
        fig.add(w);
        fig.emit();
        summary.push(("CF", mean(&gains), "24.1"));
    }

    // (c) Kmeans — execution time, lower is better.
    {
        let mut fig = Figure::new("fig08c_kmeans", "Kmeans: w/o vs w/", "dataset", "s");
        let mut wo = Series::new("w/o");
        let mut w = Series::new("w/");
        let mut gains = Vec::new();
        for points in [140_000usize, 280_000, 560_000, 1_120_000, 2_240_000] {
            let base = kmeans::KmeansConfig {
                points,
                dims: 34,
                k: 8,
                iterations: 100,
                tiles: 1,
                alloc_micros: 5,
            };
            let t_wo = kmeans::simulate(&base, phi(), 1).unwrap();
            let tiles = |p: usize| vec![p, 2 * p, 4 * p];
            let (t_w, bp, bt) = tune(&tiles, |p, t| {
                kmeans::simulate(&kmeans::KmeansConfig { tiles: t, ..base }, phi(), p).ok()
            });
            eprintln!("Kmeans {points}: best P={bp} T={bt}");
            wo.push(format!("{}K", points / 1000), t_wo);
            w.push(format!("{}K", points / 1000), t_w);
            gains.push((t_wo / t_w - 1.0) * 100.0);
        }
        fig.add(wo);
        fig.add(w);
        fig.emit();
        summary.push(("Kmeans", mean(&gains), "24.1"));
    }

    // (d) Hotspot — execution time, lower is better (paper: no change).
    {
        let mut fig = Figure::new("fig08d_hotspot", "Hotspot: w/o vs w/", "grid", "s");
        let mut wo = Series::new("w/o");
        let mut w = Series::new("w/");
        let mut gains = Vec::new();
        for d in [1024usize, 2048, 4096, 8192, 16384] {
            let base = hotspot::HotspotConfig {
                rows: d,
                cols: d,
                iterations: 50,
                tiles: 1,
            };
            let t_wo = hotspot::simulate(&base, phi(), 1).unwrap();
            let tiles = |p: usize| vec![p, 2 * p, 4 * p];
            let (t_w, bp, bt) = tune(&tiles, |p, t| {
                hotspot::simulate(&hotspot::HotspotConfig { tiles: t, ..base }, phi(), p).ok()
            });
            eprintln!("Hotspot {d}: best P={bp} T={bt}");
            wo.push(format!("{d}^2"), t_wo);
            w.push(format!("{d}^2"), t_w);
            gains.push((t_wo / t_w - 1.0) * 100.0);
        }
        fig.add(wo);
        fig.add(w);
        fig.emit();
        summary.push(("Hotspot", mean(&gains), "~0"));
    }

    // (e) NN — execution time, lower is better.
    {
        let mut fig = Figure::new("fig08e_nn", "NN: w/o vs w/", "records", "ms");
        let mut wo = Series::new("w/o");
        let mut w = Series::new("w/");
        let mut gains = Vec::new();
        for kr in [128usize, 256, 512, 1024, 2048] {
            let records = kr * 1024;
            let base = nn::NnConfig {
                records,
                tiles: 1,
                k: 10,
                target: (40.0, 120.0),
            };
            let t_wo = nn::simulate(&base, phi(), 1).unwrap();
            let tiles = |p: usize| vec![p, 2 * p, 4 * p];
            let (t_w, bp, bt) = tune(&tiles, |p, t| {
                nn::simulate(&nn::NnConfig { tiles: t, ..base }, phi(), p).ok()
            });
            eprintln!("NN {records}: best P={bp} T={bt}");
            wo.push(format!("{kr}k"), t_wo);
            w.push(format!("{kr}k"), t_w);
            gains.push((t_wo / t_w - 1.0) * 100.0);
        }
        fig.add(wo);
        fig.add(w);
        fig.emit();
        summary.push(("NN", mean(&gains), "9.2"));
    }

    // (f) SRAD — execution time, lower is better (paper: loses small, wins
    // large).
    {
        let mut fig = Figure::new("fig08f_srad", "SRAD: w/o vs w/", "image", "s");
        let mut wo = Series::new("w/o");
        let mut w = Series::new("w/");
        let mut gains = Vec::new();
        for d in [1000usize, 2000, 4000, 5000, 10000] {
            let base = srad::SradConfig {
                rows: d,
                cols: d,
                lambda: 0.5,
                iterations: 100,
                tiles: 1,
            };
            let t_wo = srad::simulate(&base, phi(), 1).unwrap();
            let tiles = |p: usize| vec![p, 2 * p, 4 * p];
            let (t_w, bp, bt) = tune(&tiles, |p, t| {
                srad::simulate(&srad::SradConfig { tiles: t, ..base }, phi(), p).ok()
            });
            eprintln!("SRAD {d}: best P={bp} T={bt}");
            wo.push(format!("{d}^2"), t_wo);
            w.push(format!("{d}^2"), t_w);
            gains.push((t_wo / t_w - 1.0) * 100.0);
        }
        fig.add(wo);
        fig.add(w);
        fig.emit();
        summary.push(("SRAD", mean(&gains), "mixed"));
    }

    println!("### Sec. V-A summary — average streamed improvement\n");
    println!("| app | measured avg gain (%) | paper (%) |");
    println!("|---|---|---|");
    for (app, gain, paper) in &summary {
        println!("| {app} | {gain:.1} | {paper} |");
    }
}
