//! Native-backend measurement study (extension): the paper's Fig. 6 story
//! on *real* execution. Streamed (4 streams) vs single-stream MM on the
//! native executor across copy-engine bandwidths, with **identical tiling**
//! in both versions so the kernels do exactly the same work and only the
//! pipelining differs. Uses the paper's repeat/discard-warm-up protocol.
//! Slower links make transfers a bigger share of the single-stream run and
//! the streamed version hides more of them — Fig. 6's regimes, measured in
//! wall-clock on this machine.

use hstreams::{Context, NativeConfig};
use mic_apps::mm::{self, MmConfig};
use mic_bench::{Figure, Series};
use micsim::stats::Repetitions;
use micsim::PlatformConfig;

fn measure(n: usize, tiles_per_dim: usize, partitions: usize, bw: f64) -> f64 {
    let cfg = MmConfig { n, tiles_per_dim };
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(partitions)
        .build()
        .unwrap();
    let bufs = mm::build(&mut ctx, &cfg).unwrap();
    mm::fill_inputs(&ctx, &cfg, &bufs, 7).unwrap();
    let native = NativeConfig {
        link_bandwidth: Some(bw),
        ..NativeConfig::default()
    };
    // The paper's protocol: 11 runs, discard the first, average the rest.
    // (Trimmed to 5 runs here to keep the study fast; the protocol type is
    // the same one the paper's numbers used.)
    let reps = Repetitions {
        total: 5,
        warmup: 1,
    };
    let summary = reps.measure(|| ctx.run_native_with(&native).unwrap().wall.as_secs_f64());
    summary.mean
}

fn main() {
    let n = 384;
    let mut fig = Figure::new(
        "native_overlap_study",
        format!("native MM (n={n}): streamed vs serial across link bandwidths"),
        "link MB/s",
        "ms",
    );
    let mut serial = Series::new("w/o (1 stream)");
    let mut streamed = Series::new("w/ (4 streams)");
    let mut gain = Series::new("gain %");
    for bw_mb in [10.0f64, 25.0, 50.0, 100.0, 400.0] {
        let bw = bw_mb * 1e6;
        // Same T=16 tiling in both: only stream count differs.
        let wo = measure(n, 4, 1, bw);
        let w = measure(n, 4, 4, bw);
        serial.push(format!("{bw_mb}"), wo * 1e3);
        streamed.push(format!("{bw_mb}"), w * 1e3);
        gain.push(format!("{bw_mb}"), (wo / w - 1.0) * 100.0);
    }
    fig.add(serial);
    fig.add(streamed);
    fig.add(gain);
    fig.emit();
    println!(
        "With identical tiling, the gain is pure temporal+spatial sharing: \
         large on slow links (transfers dominate the serial run and streams \
         hide them) and smaller but persistent on fast links (partition \
         parallelism) — the paper's mechanism, measured in real execution."
    );
}
