//! Optimizer gate: sync elision must be exact and the static cost bound
//! must be sound, across the six tunable apps.
//!
//! Three acceptance gates, enforced in both modes (`--quick` is the same
//! payload minus the larger tuner grid; wired into `scripts/verify.sh`):
//!
//! 1. **Zero false elisions** — every elision on a catalog app carries a
//!    holding equivalence certificate, and optimization is a *fixpoint*:
//!    re-optimizing the optimized program returns it byte-identical with
//!    nothing further elided. (Three of the six apps — mm, cf, kmeans —
//!    genuinely over-synchronize as recorded: dead `record`s and one
//!    collapsible barrier; the audit reports those counts. The already-
//!    minimal apps must come back byte-identical on the first pass.)
//! 2. **Injected redundancy recovered** — duplicating every `WaitEvent`
//!    (or, for the barrier-separated apps with no waits, appending dead
//!    `RecordEvent`s) must be undone: ≥ 90 % of the injected syncs
//!    elided on top of the app's intrinsic ones, and the optimized
//!    program's native outputs bit-identical to the pristine program's.
//! 3. **Sound static bound, winner-preserving pruning** — for every
//!    `(P, T)` candidate of every app, the static makespan lower bound
//!    is ≤ the simulator's measured makespan; an exhaustive tune with
//!    bound-pruning on returns the same winner at the same cost as one
//!    with it off, while actually pruning candidates.
//!
//! Emits `results/BENCH_opt.json` and exits non-zero if any gate fails.

use hstreams::action::Action;
use hstreams::context::Context;
use hstreams::opt::optimize;
use hstreams::program::Program;
use hstreams::types::StreamId;
use mic_apps::tunable::{
    Tunable, TunableCf, TunableHbench, TunableKmeans, TunableMm, TunableNn, TunablePartitionMicro,
};
use mic_apps::workload::catalog;
use mic_bench::schema::BenchJson;
use micsim::PlatformConfig;
use stream_serve::TenantProgram;
use stream_tune::evaluator::{Evaluator, SimEvaluator};
use stream_tune::tuner::{RepeatPolicy, Strategy, Tuner};
use stream_tune::TuneBounds;

/// Seed shared with the serve benches so captures are comparable.
const SEED: u64 = 0x0b7;

/// One catalog app's elision audit.
struct AppAudit {
    name: String,
    actions: usize,
    /// Optimizer wall time on the pristine capture, microseconds.
    opt_us: u64,
    /// Intrinsic redundant syncs the app records (certified elisions).
    pristine_elided: usize,
    /// Certificate held on the pristine pass, and re-optimizing the
    /// optimized output was a byte-identical no-op (gate: true).
    fixpoint: bool,
    /// Redundant syncs injected on top of the capture.
    injected: usize,
    /// Elisions on the oversynced program beyond the intrinsic ones
    /// (gate: ≥ 90 % of `injected`).
    recovered: usize,
    /// Native outputs of the optimized oversynced program match the
    /// pristine program's bit-for-bit (gate: true).
    native_identical: bool,
}

/// Fresh context at the capture's geometry, buffers allocated and host
/// state restored.
fn ctx_for(prog: &TenantProgram) -> Context {
    let spp = prog.program.streams.len() / prog.partitions.max(1);
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(prog.partitions)
        .streams_per_partition(spp.max(1))
        .build()
        .expect("capture geometry is within platform limits");
    for b in &prog.buffers {
        let id = ctx.alloc(b.name.clone(), b.len);
        if !b.host.is_empty() {
            ctx.write_host(id, &b.host)
                .expect("captured host state fits");
        }
    }
    ctx
}

/// Run `program` natively from the capture's initial state and read back
/// the output buffers as bits.
fn native_output_bits(prog: &TenantProgram, program: &Program) -> Vec<Vec<u32>> {
    let mut ctx = ctx_for(prog);
    ctx.install_program(program.clone())
        .expect("captured program installs");
    ctx.run_native().expect("captured program runs natively");
    prog.outputs
        .iter()
        .map(|&b| {
            ctx.read_host(b)
                .expect("output readback")
                .into_iter()
                .map(f32::to_bits)
                .collect()
        })
        .collect()
}

/// Duplicate every `WaitEvent` in place (each duplicate is redundant by
/// construction); if the program has no waits, append one dead
/// `RecordEvent` per stream instead. Returns the injected count.
fn inject_redundancy(p: &mut Program) -> usize {
    let mut injected = 0usize;
    for si in 0..p.streams.len() {
        let mut ai = 0;
        while ai < p.streams[si].actions.len() {
            if let Action::WaitEvent(e) = p.streams[si].actions[ai] {
                p.insert_action(StreamId(si), ai + 1, Action::WaitEvent(e));
                injected += 1;
                ai += 2;
            } else {
                ai += 1;
            }
        }
    }
    if injected == 0 {
        for si in 0..p.streams.len() {
            let end = p.streams[si].actions.len();
            p.insert_record_event(StreamId(si), end);
            injected += 1;
        }
    }
    injected
}

fn audit_app(prog: &TenantProgram, name: &str) -> AppAudit {
    let env = ctx_for(prog).check_env();

    // Gate 1: every elision is certified, and optimization is a fixpoint
    // — the minimal form comes back byte-identical with nothing further
    // removed. For the already-minimal apps the first pass IS the
    // fixpoint check.
    let pristine = optimize(&prog.program, &env);
    let pristine_elided = pristine.report.elided_actions();
    let cert_ok = pristine
        .report
        .certificate
        .as_ref()
        .is_some_and(hstreams::Certificate::holds);
    let again = optimize(&pristine.program, &env);
    let fixpoint = cert_ok
        && again.report.elided_actions() == 0
        && format!("{:?}", again.program) == format!("{:?}", pristine.program)
        && (pristine_elided > 0
            || format!("{:?}", pristine.program) == format!("{:?}", prog.program));

    // Gate 2: injected redundancy is recovered, outputs untouched. The
    // native comparison pits the optimized oversynced program against
    // the pristine capture — elision must also absorb the app's own
    // redundancies without moving a bit.
    let mut oversynced = prog.program.clone();
    let injected = inject_redundancy(&mut oversynced);
    let recovered_opt = optimize(&oversynced, &env);
    let recovered = recovered_opt
        .report
        .elided_actions()
        .saturating_sub(pristine_elided);
    let base_bits = native_output_bits(prog, &prog.program);
    let opt_bits = native_output_bits(prog, &recovered_opt.program);

    AppAudit {
        name: name.to_string(),
        actions: prog.program.action_count(),
        opt_us: pristine.report.elapsed_us,
        pristine_elided,
        fixpoint,
        injected,
        recovered,
        native_identical: base_bits == opt_bits,
    }
}

/// The six apps at the fuzz-smoke problem sizes, for the bound sweep.
fn bound_apps() -> Vec<Box<dyn Tunable>> {
    vec![
        Box::new(TunableHbench::new(1 << 10, 2, None)),
        Box::new(TunableMm::new(32, None)),
        Box::new(TunableCf::new(32, None)),
        Box::new(TunableNn::new(1 << 10, None)),
        Box::new(TunableKmeans::new(1 << 10, 8, 2, None)),
        Box::new(TunablePartitionMicro::new(1 << 10, 2)),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let platform = PlatformConfig::phi_31sp();
    let mut failures: Vec<String> = Vec::new();

    // ---- gates 1 & 2: elision exactness on the six catalog apps --------
    let mut audits: Vec<AppAudit> = Vec::new();
    for mut w in catalog(SEED) {
        let name = w.name.clone();
        let prog = TenantProgram::capture(&mut w, &platform)
            .unwrap_or_else(|e| panic!("{name}: capture failed: {e}"));
        let a = audit_app(&prog, &name);
        println!(
            "{:<16} {:>3} actions | intrinsic elided {} fixpoint {} | injected {} recovered {} | native identical {} | {} µs",
            a.name, a.actions, a.pristine_elided, a.fixpoint, a.injected,
            a.recovered, a.native_identical, a.opt_us
        );
        if !a.fixpoint {
            failures.push(format!(
                "{}: uncertified elision or non-fixpoint optimization",
                a.name
            ));
        }
        if a.recovered * 10 < a.injected * 9 {
            failures.push(format!(
                "{}: only {}/{} injected syncs recovered",
                a.name, a.recovered, a.injected
            ));
        }
        if !a.native_identical {
            failures.push(format!("{}: elision changed native outputs", a.name));
        }
        audits.push(a);
    }

    // ---- gate 3a: the static bound is sound on every candidate ---------
    let mut candidates = 0usize;
    let mut violations = 0usize;
    let mut min_gap = f64::INFINITY;
    let mut max_gap = f64::NEG_INFINITY;
    for mut app in bound_apps() {
        let mut eval = SimEvaluator::new(platform.clone()).expect("sim evaluator");
        for p in [1usize, 2, 4] {
            for t in 1..=8usize {
                if !app.feasible(t) {
                    continue;
                }
                let Some(m) = eval.evaluate(app.as_mut(), p, t) else {
                    continue;
                };
                let Some(lb) = eval.lower_bound(app.as_mut(), p, t) else {
                    continue;
                };
                candidates += 1;
                if lb > m.seconds + 1e-12 {
                    violations += 1;
                    eprintln!(
                        "UNSOUND: {} (P={p}, T={t}): bound {lb:.9} > measured {:.9}",
                        app.name(),
                        m.seconds
                    );
                }
                let gap = (m.seconds - lb) / m.seconds;
                min_gap = min_gap.min(gap);
                max_gap = max_gap.max(gap);
            }
        }
    }
    println!(
        "static bound: {candidates} candidates, {violations} violation(s), gap {:.1}%..{:.1}%",
        100.0 * min_gap,
        100.0 * max_gap
    );
    if candidates == 0 || violations > 0 {
        failures.push(format!(
            "static bound unsound: {violations} violation(s) over {candidates} candidate(s)"
        ));
    }

    // ---- gate 3b: bound-pruned exhaustive tune preserves the winner -----
    let bounds = TuneBounds {
        max_partitions: 8,
        max_tiles: if quick { 8 } else { 16 },
        max_multiple: 2,
    };
    let tune_once = |pruning: bool| {
        // Fresh app + evaluator per pass: a Tunable binds its buffers to
        // the first context it records into.
        let mut app = TunableHbench::new(1 << 14, 4, None);
        let mut eval = SimEvaluator::new(platform.clone()).expect("sim evaluator");
        let mut tuner = Tuner::new(RepeatPolicy::sim());
        tuner.bound_pruning = pruning;
        tuner.tune(
            &mut app,
            &mut eval,
            &platform,
            &bounds,
            Strategy::Exhaustive,
        )
    };
    let plain = tune_once(false);
    let pruned = tune_once(true);
    let winner_preserved =
        plain.winner == pruned.winner && plain.winner_seconds == pruned.winner_seconds;
    println!(
        "tuner: winner ({}, {}) @ {:.6}s | pruned winner ({}, {}) @ {:.6}s | {} of {} candidates pruned by bound",
        plain.winner.0, plain.winner.1, plain.winner_seconds,
        pruned.winner.0, pruned.winner.1, pruned.winner_seconds,
        pruned.pruned_by_bound, pruned.grid_size
    );
    if !winner_preserved {
        failures.push("bound pruning changed the tuning winner".to_string());
    }
    if pruned.pruned_by_bound == 0 {
        failures.push("bound pruning never fired on the exhaustive grid".to_string());
    }

    // ---- results ---------------------------------------------------------
    let app_rows: Vec<String> = audits
        .iter()
        .map(|a| {
            format!(
                "{{\"app\": \"{}\", \"actions\": {}, \"opt_us\": {}, \"intrinsic_elided\": {}, \"fixpoint\": {}, \"injected\": {}, \"recovered\": {}, \"native_identical\": {}}}",
                a.name, a.actions, a.opt_us, a.pristine_elided, a.fixpoint,
                a.injected, a.recovered, a.native_identical
            )
        })
        .collect();
    let mut out = BenchJson::new("opt", if quick { "quick" } else { "full" });
    out.raw("apps", &format!("[\n    {}\n  ]", app_rows.join(",\n    ")))
        .u64("bound_candidates", candidates as u64)
        .u64("bound_violations", violations as u64)
        .f64("bound_gap_min", min_gap, 6)
        .f64("bound_gap_max", max_gap, 6)
        .bool("tuner_winner_preserved", winner_preserved)
        .u64("tuner_pruned_by_bound", pruned.pruned_by_bound as u64)
        .u64("tuner_grid_size", pruned.grid_size as u64)
        .bool("gates_pass", failures.is_empty());
    out.write("BENCH_opt.json");

    if failures.is_empty() {
        println!("bench_opt: all gates pass");
    } else {
        for f in &failures {
            eprintln!("GATE FAIL: {f}");
        }
        std::process::exit(1);
    }
}
