//! Error-path coverage for the bench-result JSON parser: every rejection
//! carries the documented message and the byte offset of the *first*
//! problem, so `bench_compare` failures on malformed `BENCH_*.json`
//! envelopes point at the offending byte, not just "parse error".

use mic_bench::json::{parse, Json, ParseError};

fn fail(input: &str) -> ParseError {
    parse(input).expect_err("input must be rejected")
}

/// `(message, offset)` of the rejection, for compact assertions.
fn diag(input: &str) -> (String, usize) {
    let e = fail(input);
    (e.message, e.offset)
}

#[test]
fn trailing_content_points_at_the_first_extra_byte() {
    assert_eq!(diag("{} x"), ("trailing content".into(), 3));
    assert_eq!(diag("1 2"), ("trailing content".into(), 2));
    // Trailing whitespace alone is fine.
    assert!(parse("{}  \n").is_ok());
}

#[test]
fn missing_values_name_the_expectation_and_position() {
    assert_eq!(diag("  @"), ("expected a value".into(), 2));
    assert_eq!(diag(""), ("expected a value".into(), 0));
    // A half-typed literal is reported as the literal it started.
    assert_eq!(diag("tru"), ("expected 'true'".into(), 0));
    assert_eq!(diag("nul"), ("expected 'null'".into(), 0));
    assert_eq!(diag("farce"), ("expected 'false'".into(), 0));
}

#[test]
fn object_errors_point_inside_the_object() {
    assert_eq!(diag("{\"a\" 1}"), ("expected ':'".into(), 5));
    assert_eq!(diag("{\"a\":1 \"b\":2}"), ("expected ',' or '}'".into(), 7));
    // After a comma an object requires another key string.
    assert_eq!(diag("{\"a\":1,}"), ("expected '\"'".into(), 7));
}

#[test]
fn array_errors_point_inside_the_array() {
    assert_eq!(diag("[1 2]"), ("expected ',' or ']'".into(), 3));
    // A dangling comma demands another value.
    assert_eq!(diag("[1,]"), ("expected a value".into(), 3));
}

#[test]
fn string_errors_cover_termination_and_escapes() {
    assert_eq!(diag("\"abc"), ("unterminated string".into(), 4));
    // Too few bytes left for the four hex digits.
    assert_eq!(diag("\"\\u12\""), ("truncated \\u escape".into(), 2));
    // Four bytes present but not hex.
    assert_eq!(diag("\"\\uzzzz\""), ("bad \\u escape".into(), 2));
    // Valid hex, but an unpaired surrogate is not a scalar value.
    assert_eq!(diag("\"\\uD800\""), ("bad \\u escape".into(), 2));
    assert_eq!(diag("\"\\x\""), ("bad escape".into(), 2));
}

#[test]
fn number_errors_report_after_the_consumed_prefix() {
    assert_eq!(diag("-"), ("bad number".into(), 1));
    assert_eq!(diag("1e"), ("bad number".into(), 2));
    assert_eq!(diag("[3, -.]"), ("bad number".into(), 6));
}

#[test]
fn truncated_bench_envelope_fails_at_the_cut() {
    // A BENCH_*.json document cut mid-write: the open string runs to EOF.
    let cut = "{\n  \"schema_version\": 1,\n  \"bench\": \"fuzz\",\n  \"mo";
    assert_eq!(diag(cut), ("unterminated string".into(), cut.len()));
    // Cut between fields instead: the object never closes.
    let cut = "{\n  \"schema_version\": 1,";
    assert_eq!(diag(cut), ("expected '\"'".into(), cut.len()));
}

#[test]
fn display_renders_message_and_byte_offset() {
    let e = fail("[1,]");
    assert_eq!(e.to_string(), "expected a value at byte 3");
}

#[test]
fn errors_do_not_shadow_valid_documents() {
    // The error paths above must not make the happy path lossy: a full
    // envelope round-trips with every field reachable.
    let doc = "{\"schema_version\": 1, \"bench\": \"fuzz\", \"ok\": true, \
               \"list\": [1, 2.5, -3e2], \"nested\": {\"x\": null}}";
    let v = parse(doc).expect("valid document");
    assert_eq!(v.get("schema_version").and_then(Json::as_u64), Some(1));
    assert_eq!(v.get("bench").and_then(Json::as_str), Some("fuzz"));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        v.get("list").and_then(Json::as_array).map(<[Json]>::len),
        Some(3)
    );
    assert!(v.get("nested").and_then(|n| n.get("x")).is_some());
}
