//! Round-trip of the checker's SARIF export through the bench JSON
//! parser: every field the CI annotator consumes must survive
//! serialization exactly — rule ids, levels, messages, and the
//! positional `stream/<s>/action/<i>` logical locations of both primary
//! and related sites.

use hstreams::action::Action;
use hstreams::check::sarif::to_sarif;
use hstreams::check::{analyze, CheckEnv, CheckReport, Severity};
use hstreams::program::{Program, StreamPlacement, StreamRecord};
use hstreams::testutil::{build_synced, mix_kernel};
use hstreams::types::{BufId, StreamId};
use mic_bench::json::{parse, Json};
use micsim::device::DeviceId;

/// Parse the document and check every structural invariant against the
/// report it came from.
fn assert_roundtrip(report: &CheckReport) -> Json {
    let doc = to_sarif(report);
    assert_eq!(doc, to_sarif(report), "export is deterministic");
    let v = parse(&doc).expect("export is valid JSON");

    assert_eq!(v.get("version").and_then(Json::as_str), Some("2.1.0"));
    let runs = v.get("runs").and_then(Json::as_array).expect("runs array");
    assert_eq!(runs.len(), 1, "one run per report");
    let run = &runs[0];
    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("driver");
    assert_eq!(
        driver.get("name").and_then(Json::as_str),
        Some("stream-check")
    );

    // The rule catalog lists exactly the distinct codes that fired,
    // sorted by name.
    let mut expect_rules: Vec<&str> = report.diagnostics.iter().map(|d| d.code.name()).collect();
    expect_rules.sort_unstable();
    expect_rules.dedup();
    let rules: Vec<&str> = driver
        .get("rules")
        .and_then(Json::as_array)
        .expect("rules")
        .iter()
        .map(|r| r.get("id").and_then(Json::as_str).expect("rule id"))
        .collect();
    assert_eq!(rules, expect_rules);

    // One result per diagnostic, in report order.
    let results = run
        .get("results")
        .and_then(Json::as_array)
        .expect("results");
    assert_eq!(results.len(), report.diagnostics.len());
    for (r, d) in results.iter().zip(&report.diagnostics) {
        assert_eq!(r.get("ruleId").and_then(Json::as_str), Some(d.code.name()));
        let level = match d.code.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        assert_eq!(r.get("level").and_then(Json::as_str), Some(level));
        assert_eq!(
            r.get("message")
                .and_then(|m| m.get("text"))
                .and_then(Json::as_str),
            Some(d.message.as_str())
        );
        let fqn = |loc: &Json| -> String {
            loc.get("logicalLocations")
                .and_then(Json::as_array)
                .and_then(|l| l.first())
                .and_then(|l| l.get("fullyQualifiedName"))
                .and_then(Json::as_str)
                .expect("logical location")
                .to_string()
        };
        let locs = r
            .get("locations")
            .and_then(Json::as_array)
            .expect("locations");
        assert_eq!(locs.len(), 1);
        assert_eq!(
            fqn(&locs[0]),
            format!("stream/{}/action/{}", d.site.stream.0, d.site.action_index)
        );
        let related = r
            .get("relatedLocations")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .unwrap_or_default();
        assert_eq!(related.len(), d.related.len());
        for (loc, site) in related.iter().zip(&d.related) {
            assert_eq!(
                fqn(loc),
                format!("stream/{}/action/{}", site.stream.0, site.action_index)
            );
        }
    }
    v
}

#[test]
fn clean_report_round_trips_as_an_empty_run() {
    let p = build_synced(3, &[(0, 0), (1, 1)]);
    let report = analyze(&p, &CheckEnv::permissive(&p)).report;
    assert_eq!(report.error_count(), 0);
    let v = assert_roundtrip(&report);
    let results = v.get("runs").and_then(Json::as_array).unwrap()[0]
        .get("results")
        .and_then(Json::as_array)
        .unwrap()
        .len();
    assert_eq!(results, report.diagnostics.len());
}

#[test]
fn race_errors_round_trip_with_related_sites() {
    // Two kernels conflict on b0 with no synchronization at all: the
    // race diagnostics carry the opposing site as a related location.
    let mut p = Program::default();
    let kernels = [
        mix_kernel("w", [], [BufId(0)], 1.0),
        mix_kernel("r", [BufId(0)], [BufId(1)], 1.0),
    ];
    for (pos, k) in kernels.into_iter().enumerate() {
        p.streams.push(StreamRecord {
            id: StreamId(pos),
            placement: StreamPlacement {
                device: DeviceId(0),
                partition: pos,
            },
            actions: vec![Action::Kernel(k)],
        });
    }
    let report = analyze(&p, &CheckEnv::permissive(&p)).report;
    assert!(report.error_count() > 0, "unsynced conflict must error");
    assert!(
        report.diagnostics.iter().any(|d| !d.related.is_empty()),
        "race diagnostics carry related sites"
    );
    assert_roundtrip(&report);
}

#[test]
fn perf_lints_round_trip_as_warnings() {
    // A duplicated wait turns the optimizer's advisory lint on; the
    // redundant-sync diagnostic is Perf-class and exports as "warning".
    let mut p = build_synced(3, &[(0, 0), (1, 1)]);
    let mut dup = None;
    'scan: for (si, s) in p.streams.iter().enumerate() {
        for (ai, a) in s.actions.iter().enumerate() {
            if let Action::WaitEvent(e) = a {
                dup = Some((si, ai, *e));
                break 'scan;
            }
        }
    }
    let (si, ai, e) = dup.expect("build_synced waits on its conflicts");
    p.insert_action(StreamId(si), ai + 1, Action::WaitEvent(e));

    let report = hstreams::opt::lint(&p, &CheckEnv::permissive(&p), None);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code.name() == "redundant-sync"),
        "duplicate wait must lint: {}",
        report.render()
    );
    assert_eq!(report.error_count(), 0, "lints are advisory");
    assert_roundtrip(&report);
}
