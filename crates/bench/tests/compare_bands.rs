//! Regression: noise bands must stay meaningful at the edges of f64.
//!
//! A zero-valued baseline (e.g. a `steals` counter that never fired) used
//! to be the classic divide-by-baseline trap; the multiplicative bands
//! avoid the division, and these tests pin the exact-zero semantics.
//! Non-finite values are nastier: every comparison against NaN is false,
//! so a NaN baseline or current silently swallowed real regressions.
//! `judge` now fails closed with a deterministic finding. The JSON parser
//! rejects non-finite literals, so the documents are built in memory.

use mic_bench::compare::{compare_docs, CompareOptions, Severity};
use mic_bench::json::Json;
use mic_bench::schema::BENCH_SCHEMA_VERSION;

/// A minimal schema-v1 document with one numeric leaf `key` = `value`,
/// built without the parser so the value may be non-finite.
fn doc(key: &str, value: f64) -> Json {
    Json::Obj(vec![
        (
            "schema_version".to_string(),
            #[allow(clippy::cast_precision_loss)]
            Json::Num(BENCH_SCHEMA_VERSION as f64),
        ),
        ("bench".to_string(), Json::Str("bands".to_string())),
        ("mode".to_string(), Json::Str("full".to_string())),
        (key.to_string(), Json::Num(value)),
    ])
}

fn findings(key: &str, was: f64, now: f64) -> Vec<(Severity, String)> {
    compare_docs(&doc(key, was), &doc(key, now), CompareOptions::default())
        .unwrap()
        .into_iter()
        .filter(|f| f.path.contains(key))
        .map(|f| (f.severity, f.detail))
        .collect()
}

#[test]
fn zero_baseline_zero_current_is_clean() {
    assert!(findings("steal_overhead", 0.0, 0.0).is_empty());
    assert!(findings("wait_us", 0.0, 0.0).is_empty());
}

#[test]
fn zero_baseline_growth_is_judged_by_the_absolute_floor_alone() {
    // ceiling = 0 * (1 + tol) + abs_floor, so the `_us` floor of 0.5 is
    // the whole band: 0.4 passes, 0.6 regresses. No NaN, no ∞-verdict.
    assert!(findings("wait_us", 0.0, 0.4).is_empty());
    let out = findings("wait_us", 0.0, 0.6);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].0, Severity::Regression);
    assert!(out[0].1.contains("band allows up to 0.5"), "{}", out[0].1);
}

#[test]
fn nan_baseline_fails_closed_instead_of_swallowing_regressions() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let out = findings("launch_overhead", bad, 12.0);
        assert_eq!(out.len(), 1, "baseline {bad} must produce a finding");
        assert_eq!(out[0].0, Severity::Regression);
        assert!(out[0].1.contains("non-finite"), "{}", out[0].1);
    }
}

#[test]
fn nan_current_fails_closed_on_gated_paths() {
    let out = findings("total_seconds", 1.0, f64::NAN);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].0, Severity::Regression);

    let out = findings("best_speedup", 2.0, f64::INFINITY);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].0, Severity::Regression);
}

#[test]
fn non_finite_on_ungated_paths_is_informational() {
    let out = findings("tenants", f64::NAN, 8.0);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].0, Severity::Info);
    assert!(out[0].1.contains("non-finite"), "{}", out[0].1);
}
