//! Native-kernel throughput benchmarks: the six applications' computational
//! cores on the host, at test scale. These are the pieces a downstream user
//! would care about when swapping in their own kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use hstreams::Context;
use mic_apps::{cholesky, hotspot, kmeans, mm, nn, srad};
use micsim::PlatformConfig;

fn bench_mm(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps");
    group.sample_size(10);
    group.bench_function("mm_256_native", |b| {
        let cfg = mm::MmConfig {
            n: 256,
            tiles_per_dim: 4,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(4)
            .build()
            .unwrap();
        let bufs = mm::build(&mut ctx, &cfg).unwrap();
        mm::fill_inputs(&ctx, &cfg, &bufs, 1).unwrap();
        b.iter(|| ctx.run_native().unwrap());
    });

    group.bench_function("cholesky_128_native", |b| {
        let cfg = cholesky::CfConfig {
            n: 128,
            tiles_per_dim: 4,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(4)
            .build()
            .unwrap();
        let bufs = cholesky::build(&mut ctx, &cfg).unwrap();
        // CF factors in place: refill per iteration or the second run
        // factors an already-factored (non-SPD) matrix.
        b.iter(|| {
            cholesky::fill_inputs(&ctx, &cfg, &bufs, 1).unwrap();
            ctx.run_native().unwrap()
        });
    });

    group.bench_function("kmeans_8k_native", |b| {
        let cfg = kmeans::KmeansConfig {
            points: 8192,
            dims: 16,
            k: 8,
            iterations: 3,
            tiles: 4,
            alloc_micros: 5,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(4)
            .build()
            .unwrap();
        let bufs = kmeans::build(&mut ctx, &cfg).unwrap();
        b.iter(|| {
            kmeans::fill_inputs(&ctx, &cfg, &bufs, 1).unwrap();
            ctx.run_native().unwrap()
        });
    });

    group.bench_function("hotspot_256_native", |b| {
        let cfg = hotspot::HotspotConfig {
            rows: 256,
            cols: 256,
            iterations: 5,
            tiles: 4,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(4)
            .build()
            .unwrap();
        let bufs = hotspot::build(&mut ctx, &cfg).unwrap();
        b.iter(|| {
            hotspot::fill_inputs(&ctx, &cfg, &bufs, 1).unwrap();
            ctx.run_native().unwrap()
        });
    });

    group.bench_function("nn_64k_native", |b| {
        let cfg = nn::NnConfig {
            records: 64 << 10,
            tiles: 8,
            k: 10,
            target: (40.0, 120.0),
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(4)
            .build()
            .unwrap();
        let bufs = nn::build(&mut ctx, &cfg).unwrap();
        nn::fill_inputs(&ctx, &cfg, &bufs, 1).unwrap();
        b.iter(|| ctx.run_native().unwrap());
    });

    group.bench_function("srad_128_native", |b| {
        let cfg = srad::SradConfig {
            rows: 128,
            cols: 128,
            lambda: 0.5,
            iterations: 3,
            tiles: 4,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(4)
            .build()
            .unwrap();
        let bufs = srad::build(&mut ctx, &cfg).unwrap();
        b.iter(|| {
            srad::fill_inputs(&ctx, &cfg, &bufs, 1).unwrap();
            ctx.run_native().unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mm);
criterion_main!(benches);
