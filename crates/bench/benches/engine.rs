//! Micro-benchmarks of the discrete-event engine: how fast the simulator
//! substrate itself runs, independent of any application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micsim::engine::{Engine, TaskSpec};
use micsim::time::SimDuration;

/// Build-and-run a pipelined DAG: `streams` chains of `depth` tasks over
/// `streams` resources plus one shared link resource.
fn pipeline(streams: usize, depth: usize) -> micsim::Timeline {
    let mut e = Engine::new();
    let link = e.add_resource("link");
    let parts: Vec<_> = (0..streams)
        .map(|i| e.add_resource(format!("p{i}")))
        .collect();
    #[allow(clippy::needless_range_loop)]
    for s in 0..streams {
        let mut last = None;
        for d in 0..depth {
            let deps = last.into_iter().collect();
            let t = e
                .add_task(TaskSpec {
                    resource: Some(if d % 3 == 0 { link } else { parts[s] }),
                    duration: SimDuration::from_micros(10),
                    deps,
                    label: String::new(),
                })
                .unwrap();
            last = Some(t);
        }
    }
    e.run()
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &(streams, depth) in &[(4usize, 250usize), (16, 250), (56, 100)] {
        let tasks = streams * depth;
        group.bench_with_input(
            BenchmarkId::new("pipeline_tasks", tasks),
            &(streams, depth),
            |b, &(s, d)| b.iter(|| pipeline(s, d)),
        );
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    use micsim::event::EventQueue;
    use micsim::time::SimTime;
    c.bench_function("event_queue/push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime(i * 7 % 9973 + i), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        });
    });
}

criterion_group!(benches, bench_engine, bench_event_queue);
criterion_main!(benches);
