//! Micro-benchmarks of the hstreams runtime: program recording, simulator
//! lowering, and native-executor overheads (launch latency, transfer
//! round-trip, event signalling).

use criterion::{criterion_group, criterion_main, Criterion};
use hstreams::kernel::KernelDesc;
use hstreams::{Context, NativeConfig};
use micsim::compute::KernelProfile;
use micsim::PlatformConfig;

fn record_program(tiles: usize) -> Context {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(4)
        .build()
        .unwrap();
    for t in 0..tiles {
        let a = ctx.alloc(format!("a{t}"), 1024);
        let b = ctx.alloc(format!("b{t}"), 1024);
        let s = ctx.stream(t % 4).unwrap();
        ctx.h2d(s, a).unwrap();
        ctx.kernel(
            s,
            KernelDesc::simulated(format!("k{t}"), KernelProfile::streaming("k", 0.32e9), 1e6)
                .reading([a])
                .writing([b])
                .with_native(|k| {
                    let (r, w) = (&k.reads[0], &mut k.writes[0]);
                    for (o, i) in w.iter_mut().zip(r.iter()) {
                        *o = i + 1.0;
                    }
                }),
        )
        .unwrap();
        ctx.d2h(s, b).unwrap();
    }
    ctx
}

fn bench_recording(c: &mut Criterion) {
    c.bench_function("runtime/record_128_tiles", |b| {
        b.iter(|| record_program(128));
    });
}

fn bench_sim_executor(c: &mut Criterion) {
    let ctx = record_program(128);
    c.bench_function("runtime/simulate_128_tiles", |b| {
        b.iter(|| ctx.run_sim().unwrap());
    });
}

fn bench_native_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("native");
    group.sample_size(20);
    let ctx = record_program(32);
    group.bench_function("run_32_tiles", |b| b.iter(|| ctx.run_native().unwrap()));

    // Pure launch overhead: a single empty kernel.
    let mut tiny = Context::builder(PlatformConfig::phi_31sp())
        .build()
        .unwrap();
    let s = tiny.stream(0).unwrap();
    tiny.kernel(
        s,
        KernelDesc::simulated("noop", KernelProfile::streaming("noop", 1e9), 1.0)
            .with_native(|_| {}),
    )
    .unwrap();
    group.bench_function("single_kernel_launch", |b| {
        b.iter(|| tiny.run_native().unwrap());
    });

    // Pure launch overhead at the paper's 4-partition geometry: 64 no-op
    // kernels over 4 streams, persistent worker-pool path vs the
    // spawn-per-run scoped baseline.
    let mut launch = Context::builder(PlatformConfig::phi_31sp())
        .partitions(4)
        .build()
        .unwrap();
    for s_idx in 0..4 {
        let s = launch.stream(s_idx).unwrap();
        for k in 0..16 {
            launch
                .kernel(
                    s,
                    KernelDesc::simulated(
                        format!("noop{s_idx}_{k}"),
                        KernelProfile::streaming("noop", 1e9),
                        1.0,
                    )
                    .with_native(|_| {}),
                )
                .unwrap();
        }
    }
    group.bench_function("launch_overhead_64noop_4p_pooled", |b| {
        b.iter(|| launch.run_native().unwrap());
    });
    let scoped = NativeConfig {
        persistent: false,
        ..NativeConfig::default()
    };
    group.bench_function("launch_overhead_64noop_4p_scoped", |b| {
        b.iter(|| launch.run_native_with(&scoped).unwrap());
    });

    // Transfer round trip of 1 MiB.
    let mut xfer = Context::builder(PlatformConfig::phi_31sp())
        .build()
        .unwrap();
    let buf = xfer.alloc("x", 1 << 18);
    let s = xfer.stream(0).unwrap();
    xfer.h2d(s, buf).unwrap();
    xfer.d2h(s, buf).unwrap();
    group.bench_function("transfer_1MiB_roundtrip", |b| {
        b.iter(|| xfer.run_native().unwrap());
    });
    group.finish();
}

fn bench_parallel_helpers(c: &mut Criterion) {
    let mut data = vec![1.0f32; 1 << 20];
    c.bench_function("parallel/par_chunks_mut_1M_x8", |b| {
        b.iter(|| {
            hstreams::parallel::par_chunks_mut(&mut data, 8, |_, _, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1.0;
                }
            });
        });
    });
    c.bench_function("parallel/par_reduce_1M_x8", |b| {
        b.iter(|| {
            hstreams::parallel::par_reduce(
                1 << 20,
                8,
                |range| range.len() as u64,
                |a, x| a + x,
                0u64,
            )
        });
    });
}

criterion_group!(
    benches,
    bench_recording,
    bench_sim_executor,
    bench_native_executor,
    bench_parallel_helpers
);
criterion_main!(benches);
