//! Regression tests for diagnostic-site attribution on serve-merged
//! programs, plus the service's opt-in post-merge sync elision.
//!
//! [`Diagnostic`](hstreams::check::Diagnostic) sites index streams by
//! *position* (the analyzer enumerates), while relocated tenant parts
//! carry declared ids rebased into merged coordinates — `id != index`
//! whenever a part is rendered outside a full merge.
//! `dump_annotated` used to key its note lookup by declared id, so every
//! note on a rebased part silently vanished; these tests pin the fixed
//! behavior end to end, from a handcrafted rebased program up through
//! [`StreamService`]'s merge path.

use hstreams::check::{analyze, CheckEnv};
use hstreams::lease::TenantId;
use hstreams::program::{Program, StreamPlacement, StreamRecord};
use hstreams::testutil::mix_kernel;
use hstreams::types::{BufId, StreamId};
use mic_apps::workload::Workload;
use micsim::device::DeviceId;
use micsim::PlatformConfig;
use stream_serve::{Admission, JobStatus, RoundReport, ServeConfig, StreamService, TenantProgram};

/// The slice of `dump` output belonging to the stream at position `pos`.
fn stream_block(dump: &str, pos: usize) -> &str {
    let starts: Vec<usize> = dump.match_indices("stream s").map(|(i, _)| i).collect();
    let end = starts.get(pos + 1).copied().unwrap_or(dump.len());
    &dump[starts[pos]..end]
}

#[test]
fn annotations_attach_by_position_when_ids_are_rebased() {
    // A relocated tenant part rendered on its own: declared ids 3 and 4
    // at positions 0 and 1 — exactly what `relocate` emits before merge.
    // The two kernels race on buffer 0 (no sync at all), so the analyzer
    // reports an error whose site speaks positions.
    let mut p = Program::default();
    let kernels = [
        mix_kernel("w", [], [BufId(0)], 1.0),
        mix_kernel("r", [BufId(0)], [BufId(1)], 1.0),
    ];
    for (pos, (id, k)) in [3usize, 4].into_iter().zip(kernels).enumerate() {
        p.streams.push(StreamRecord {
            id: StreamId(id),
            placement: StreamPlacement {
                device: DeviceId(0),
                partition: pos,
            },
            actions: vec![hstreams::action::Action::Kernel(k)],
        });
    }

    let env = CheckEnv::permissive(&p);
    let report = analyze(&p, &env).report;
    assert!(
        report.error_count() > 0,
        "unsynchronized conflict must be reported"
    );

    let out = p.dump_annotated(&report);
    let carets = out.matches("        ^ ").count();
    assert_eq!(
        carets,
        report.diagnostics.len(),
        "every diagnostic renders exactly once (the old id-keyed lookup \
         dropped them all on rebased parts):\n{out}"
    );
    // And each caret sits inside the block of its *positional* stream,
    // whose header shows the rebased id.
    assert!(stream_block(&out, 0).starts_with("stream s3"));
    assert!(stream_block(&out, 1).starts_with("stream s4"));
    for d in &report.diagnostics {
        let block = stream_block(&out, d.site.stream.0);
        assert!(
            block.contains("        ^ "),
            "diagnostic at positional stream {} must annotate that block:\n{out}",
            d.site.stream.0
        );
    }
}

/// A single-lane tenant whose barrier lowers to a dead record, plus a
/// duplicated event wait — both elidable post-merge, neither changing
/// the outputs.
fn oversynced_workload(name: &str, seed: u64) -> Workload {
    let label = name.to_string();
    Workload {
        name: name.to_string(),
        partitions: 2,
        streams_per_partition: 1,
        record: Box::new(move |ctx| {
            let elems = 96usize;
            let a = ctx.alloc(format!("{label}.a"), elems);
            let b = ctx.alloc(format!("{label}.b"), elems);
            let c = ctx.alloc(format!("{label}.c"), elems);
            let fill: Vec<f32> = (0..elems)
                .map(|i| ((seed as usize + i) % 97) as f32)
                .collect();
            ctx.write_host(a, &fill)?;
            let s0 = ctx.stream(0)?;
            let s1 = ctx.stream(1)?;
            ctx.h2d(s0, a)?;
            ctx.kernel(s0, mix_kernel(format!("{label}.p"), [a], [b], 1e4))?;
            let e = ctx.record_event(s0)?;
            // One load-bearing wait plus a duplicate: the duplicate is
            // redundant the moment the analyzer sees it.
            ctx.wait_event(s1, e)?;
            ctx.wait_event(s1, e)?;
            ctx.kernel(s1, mix_kernel(format!("{label}.q"), [b], [c], 1e4))?;
            ctx.d2h(s1, c)?;
            Ok(())
        }),
    }
}

fn capture(w: &mut Workload) -> TenantProgram {
    TenantProgram::capture(w, &PlatformConfig::phi_31sp()).unwrap()
}

fn completed_outputs(reports: &[RoundReport], tenant: TenantId) -> Vec<Vec<f32>> {
    reports
        .iter()
        .flat_map(|r| &r.outcomes)
        .find_map(|o| match (&o.status, o.tenant) {
            (JobStatus::Completed { outputs }, t) if t == tenant => Some(outputs.clone()),
            _ => None,
        })
        .expect("tenant completed")
}

#[test]
fn post_merge_elision_preserves_outputs_and_reports_counts() {
    let payloads: Vec<TenantProgram> = (0..3u64)
        .map(|t| capture(&mut oversynced_workload(&format!("os{t}"), 31 + t)))
        .collect();

    // Baseline: served without the optimizer.
    let mut plain = StreamService::new(ServeConfig::new(PlatformConfig::phi_31sp())).unwrap();
    for (t, p) in payloads.iter().enumerate() {
        assert!(matches!(
            plain.submit(TenantId(t as u16), p.clone()),
            Admission::Accepted(_)
        ));
    }
    let base_reports = plain.drain(8).unwrap();
    assert!(base_reports.iter().all(|r| r.syncs_elided == 0));

    // Same tenants with post-merge elision on.
    let mut cfg = ServeConfig::new(PlatformConfig::phi_31sp());
    cfg.optimize = true;
    let mut opted = StreamService::new(cfg).unwrap();
    for (t, p) in payloads.iter().enumerate() {
        assert!(matches!(
            opted.submit(TenantId(t as u16), p.clone()),
            Admission::Accepted(_)
        ));
    }
    let opt_reports = opted.drain(8).unwrap();
    let elided: usize = opt_reports.iter().map(|r| r.syncs_elided).sum();
    // Each tenant carries one duplicate wait; the merged round elides
    // every one of them.
    assert!(
        elided >= payloads.len(),
        "expected at least one elision per tenant, got {elided}"
    );

    for t in 0..payloads.len() {
        assert_eq!(
            completed_outputs(&opt_reports, TenantId(t as u16)),
            completed_outputs(&base_reports, TenantId(t as u16)),
            "tenant {t}: elision must not change served outputs"
        );
    }
}

#[test]
fn fault_sites_translate_through_the_elision_site_map() {
    // Single-lane tenant with a barrier before its second kernel: the
    // barrier lowers to a dead record (one stream, zero waiters), elision
    // removes it, and every later action shifts down one index. The
    // injected fault targets the post-barrier kernel, so its merged
    // coordinate is only correct if the service composes the fault site
    // with the optimizer's site map.
    let mut w = Workload {
        name: "chaos".to_string(),
        partitions: 1,
        streams_per_partition: 1,
        record: Box::new(move |ctx| {
            let elems = 64usize;
            let a = ctx.alloc("ch.a", elems);
            let b = ctx.alloc("ch.b", elems);
            let c = ctx.alloc("ch.c", elems);
            ctx.write_host(a, &vec![1.0; elems])?;
            let s = ctx.stream(0)?;
            ctx.h2d(s, a)?;
            ctx.kernel(s, mix_kernel("ch.k1", [a], [b], 1e4))?;
            ctx.barrier();
            ctx.kernel(s, mix_kernel("ch.k2", [b], [c], 1e4))?;
            ctx.d2h(s, c)?;
            Ok(())
        }),
    };
    let prog = capture(&mut w);
    let site = prog.nth_kernel_site(1).expect("two kernels recorded");
    let faulted = prog.clone().with_fault(site.0, site.1);

    let mut cfg = ServeConfig::new(PlatformConfig::phi_31sp());
    cfg.optimize = true;
    let mut svc = StreamService::new(cfg).unwrap();
    assert!(matches!(
        svc.submit(TenantId(0), faulted),
        Admission::Accepted(_)
    ));
    let reports = svc.drain(8).unwrap();
    assert_eq!(svc.queued(), 0);

    // Round 1 elides the dead barrier record AND still fires the panic on
    // the (shifted) kernel; round 2 retries the consumed-fault payload
    // clean.
    let statuses: Vec<&JobStatus> = reports
        .iter()
        .flat_map(|r| &r.outcomes)
        .map(|o| &o.status)
        .collect();
    assert!(
        matches!(statuses.first(), Some(JobStatus::Degraded { skipped, .. }) if *skipped > 0),
        "fault must land on the shifted kernel site: {statuses:?}"
    );
    assert!(
        matches!(statuses.last(), Some(JobStatus::Completed { .. })),
        "retry completes: {statuses:?}"
    );
    assert!(
        reports.iter().any(|r| r.syncs_elided > 0),
        "the dead barrier record was elided"
    );
}
