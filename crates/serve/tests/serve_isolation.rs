//! End-to-end serving: multi-tenant rounds on the native executor must
//! be *invisible* to each tenant — outputs bit-identical to being served
//! alone — and an injected kernel panic in one tenant must degrade only
//! that tenant's lease while everyone else completes untouched.

use hstreams::lease::TenantId;
use mic_apps::workload::{catalog, synthetic, Workload};
use micsim::PlatformConfig;
use stream_serve::{
    jain_index, Admission, ExecutorKind, JobStatus, ServeConfig, StreamService, TenantProgram,
};

fn config() -> ServeConfig {
    ServeConfig::new(PlatformConfig::phi_31sp())
}

fn capture(w: &mut Workload) -> TenantProgram {
    TenantProgram::capture(w, &PlatformConfig::phi_31sp()).unwrap()
}

/// Serve one payload alone on a fresh service and return its outputs.
fn solo_outputs(prog: &TenantProgram) -> Vec<Vec<f32>> {
    let mut svc = StreamService::new(config()).unwrap();
    match svc.submit(TenantId(0), prog.clone()) {
        Admission::Accepted(_) => {}
        a => panic!("solo submit: {a:?}"),
    }
    let reports = svc.drain(8).unwrap();
    let outcome = reports
        .iter()
        .flat_map(|r| &r.outcomes)
        .next()
        .expect("solo job ran");
    match &outcome.status {
        JobStatus::Completed { outputs } => outputs.clone(),
        s => panic!("solo job must complete: {s:?}"),
    }
}

#[test]
fn eight_tenants_share_one_device_fairly() {
    let mut svc = StreamService::new(config()).unwrap();
    let mut payloads = Vec::new();
    for t in 0..8u16 {
        let mut w = synthetic(format!("syn{t}"), u64::from(t) + 1, 2);
        payloads.push(capture(&mut w));
    }
    for round in 0..2 {
        for (t, p) in payloads.iter().enumerate() {
            let adm = svc.submit(TenantId(t as u16), p.clone());
            assert!(
                matches!(adm, Admission::Accepted(_)),
                "round {round} tenant {t}: {adm:?}"
            );
        }
    }
    let reports = svc.drain(64).unwrap();
    assert_eq!(svc.queued(), 0, "drained");
    let mut completed = [0f64; 8];
    for o in reports.iter().flat_map(|r| &r.outcomes) {
        match &o.status {
            JobStatus::Completed { outputs } => {
                assert!(!outputs.is_empty());
                completed[o.tenant.0 as usize] += 1.0;
            }
            s => panic!("no faults were injected, yet {:?} saw {s:?}", o.tenant),
        }
    }
    assert!(completed.iter().all(|&c| c == 2.0), "{completed:?}");
    let fairness = jain_index(&completed);
    assert!(fairness >= 0.9, "Jain index {fairness} < 0.9");
    svc.leases().check_invariants().unwrap();

    // The service exports per-tenant series.
    let names = svc.metrics().series_names();
    assert!(
        names.iter().any(|n| n.contains("tenant=\"3\"")),
        "{names:?}"
    );
}

#[test]
fn injected_panic_degrades_only_the_faulty_tenant() {
    let mut victims: Vec<TenantProgram> = (0..4u16)
        .map(|t| capture(&mut synthetic(format!("v{t}"), 11 + u64::from(t), 2)))
        .collect();
    let mut chaos = capture(&mut synthetic("chaos", 99, 2));
    let site = chaos.nth_kernel_site(0).expect("has kernels");
    chaos = chaos.with_fault(site.0, site.1);

    // Baselines: every payload served alone (identical service geometry).
    let solo: Vec<Vec<Vec<f32>>> = victims.iter().map(solo_outputs).collect();
    let chaos_solo = solo_outputs(&{
        let mut clean = chaos.clone();
        clean.fault = None;
        clean
    });

    let mut svc = StreamService::new(config()).unwrap();
    for (t, p) in victims.iter_mut().enumerate() {
        assert!(matches!(
            svc.submit(TenantId(t as u16), p.clone()),
            Admission::Accepted(_)
        ));
    }
    let chaos_id = TenantId(4);
    assert!(matches!(
        svc.submit(chaos_id, chaos),
        Admission::Accepted(_)
    ));

    let reports = svc.drain(16).unwrap();
    assert_eq!(svc.queued(), 0);

    let mut degraded_rounds = 0usize;
    let mut chaos_outputs = None;
    for o in reports.iter().flat_map(|r| &r.outcomes) {
        match (&o.status, o.tenant) {
            (JobStatus::Degraded { lost, skipped }, t) => {
                assert_eq!(t, chaos_id, "only the chaos tenant may degrade");
                assert!(!lost.is_empty(), "a partition was lost");
                assert!(*skipped > 0, "the panicked stream skipped work");
                degraded_rounds += 1;
            }
            (JobStatus::Completed { outputs }, t) if t == chaos_id => {
                chaos_outputs = Some(outputs.clone());
            }
            (JobStatus::Completed { outputs }, t) => {
                assert_eq!(
                    outputs, &solo[t.0 as usize],
                    "{t} must be bit-identical to its solo run despite the chaos tenant"
                );
            }
        }
    }
    assert_eq!(degraded_rounds, 1, "one poisoned round, then a clean retry");
    assert_eq!(
        chaos_outputs.expect("chaos tenant retried to completion"),
        chaos_solo,
        "the retry runs the consumed-fault payload clean"
    );
    // Poison was shed during the retry's lease resize.
    let lease = svc.leases().lease(chaos_id).expect("still leased");
    assert_eq!(lease.poisoned().count(), 0);
}

#[test]
fn catalog_apps_serve_bit_identically_to_solo() {
    // The six app builders — including the barrier-separated ones, whose
    // barriers the service lowers to events — through one shared round.
    let mut payloads: Vec<TenantProgram> = catalog(5).iter_mut().map(capture).collect();
    let solo: Vec<Vec<Vec<f32>>> = payloads.iter().map(solo_outputs).collect();

    let mut cfg = config();
    cfg.max_round_tenants = 3; // force multi-round sharing
    let mut svc = StreamService::new(cfg).unwrap();
    for (t, p) in payloads.iter_mut().enumerate() {
        assert!(matches!(
            svc.submit(TenantId(t as u16), p.clone()),
            Admission::Accepted(_)
        ));
    }
    let reports = svc.drain(32).unwrap();
    assert_eq!(svc.queued(), 0);
    let mut seen = 0usize;
    for o in reports.iter().flat_map(|r| &r.outcomes) {
        match &o.status {
            JobStatus::Completed { outputs } => {
                assert_eq!(
                    outputs, &solo[o.tenant.0 as usize],
                    "{} ({}) diverged from its solo outputs",
                    o.tenant, o.workload
                );
                seen += 1;
            }
            s => panic!("{} unexpectedly {s:?}", o.workload),
        }
    }
    assert_eq!(seen, payloads.len());
}

#[test]
fn admission_sheds_beyond_the_queue_bound() {
    let mut cfg = config();
    cfg.queue_depth = 2;
    let mut svc = StreamService::new(cfg).unwrap();
    let p = capture(&mut synthetic("q", 3, 1));
    assert!(matches!(
        svc.submit(TenantId(0), p.clone()),
        Admission::Accepted(_)
    ));
    assert!(matches!(
        svc.submit(TenantId(1), p.clone()),
        Admission::Accepted(_)
    ));
    assert_eq!(svc.submit(TenantId(2), p.clone()), Admission::Shed);
    assert_eq!(svc.shed_total(), 1);
    // Draining frees the queue again.
    svc.drain(8).unwrap();
    assert!(matches!(svc.submit(TenantId(2), p), Admission::Accepted(_)));
}

#[test]
fn foreign_buffer_references_are_rejected_at_admission() {
    let mut svc = StreamService::new(config()).unwrap();
    let mut p = capture(&mut synthetic("rogue", 8, 1));
    // Pretend the program reaches one buffer past its own table.
    p.buffers.pop();
    match svc.submit(TenantId(0), p) {
        Admission::Rejected(reason) => {
            assert!(reason.contains("outside the payload's table"), "{reason}");
        }
        a => panic!("expected rejection, got {a:?}"),
    }
}

#[test]
fn sim_executor_prices_rounds_in_virtual_time() {
    let mut cfg = config();
    cfg.executor = ExecutorKind::Sim;
    let mut svc = StreamService::new(cfg).unwrap();
    for t in 0..3u16 {
        let p = capture(&mut synthetic(format!("s{t}"), u64::from(t) + 21, 2));
        assert!(matches!(svc.submit(TenantId(t), p), Admission::Accepted(_)));
    }
    let before = svc.now();
    let reports = svc.drain(8).unwrap();
    assert!(!reports.is_empty());
    assert!(
        svc.now() > before,
        "simulated rounds advance the service clock"
    );
    for r in &reports {
        assert!(r.duration > 0.0);
        for o in &r.outcomes {
            assert!(matches!(o.status, JobStatus::Completed { .. }));
        }
    }
}
