//! Property tests for the lease table: **any** interleaving of
//! grow / shrink / poison / heal / release / register-buffer operations —
//! including ones the table rejects — keeps the structural invariants:
//!
//! * Σ granted + free == capacity (so Σ granted ≤ device partitions);
//! * every partition has at most one owner;
//! * poison marks only ever sit on held partitions;
//! * a buffer never changes owner while registered — no tenant can
//!   observe (or be granted a mapping to) another tenant's buffers.

use hstreams::lease::{Lease, LeaseTable, TenantId};
use hstreams::types::BufId;
use proptest::prelude::*;

const CAPACITY: usize = 8;
const TENANTS: u16 = 5;

#[derive(Clone, Debug)]
enum Op {
    Grow(u16, usize),
    Shrink(u16, usize),
    Poison(u16, usize),
    Heal(u16),
    Release(u16),
    Register(u16, usize),
}

/// Decode one `(kind, tenant, arg)` draw into an operation. The shimmed
/// proptest has no `prop_oneof`, so the discriminant is an integer.
fn decode((kind, t, arg): (u8, u16, usize)) -> Op {
    match kind % 6 {
        0 => Op::Grow(t, arg % (CAPACITY + 1)),
        1 => Op::Shrink(t, arg % (CAPACITY + 1)),
        2 => Op::Poison(t, arg % CAPACITY),
        3 => Op::Heal(t),
        4 => Op::Release(t),
        _ => Op::Register(t, arg % 12),
    }
}

fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u16, usize)>> {
    proptest::collection::vec((0u8..6, 0..TENANTS, 0usize..64), 1..60)
}

fn apply(table: &mut LeaseTable, op: &Op) {
    match *op {
        Op::Grow(t, n) => {
            let _ = table.grow(TenantId(t), n);
        }
        Op::Shrink(t, n) => {
            let _ = table.shrink(TenantId(t), n);
        }
        Op::Poison(t, p) => {
            let _ = table.poison(TenantId(t), p);
        }
        Op::Heal(t) => table.heal(TenantId(t)),
        Op::Release(t) => {
            table.release(TenantId(t));
        }
        Op::Register(t, b) => {
            let _ = table.register_buffer(TenantId(t), BufId(b));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_interleaving_preserves_the_invariants(raw in ops_strategy()) {
        let mut table = LeaseTable::new(CAPACITY);
        // buffer -> current owner, the model for the ownership check.
        let mut owners: std::collections::BTreeMap<usize, u16> = std::collections::BTreeMap::new();

        for draw in &raw {
            let op = decode(*draw);
            match op {
                Op::Grow(t, n) => {
                    let free = table.free_count();
                    let res = table.grow(TenantId(t), n);
                    prop_assert_eq!(res.is_ok(), n <= free, "grow fails iff overcommitted");
                }
                Op::Shrink(t, n) => {
                    let held = table.lease(TenantId(t)).map_or(0, Lease::len);
                    let res = table.shrink(TenantId(t), n);
                    prop_assert_eq!(res.is_ok(), n <= held, "shrink fails iff past the grant");
                }
                Op::Poison(t, p) => {
                    let held = table
                        .lease(TenantId(t))
                        .is_some_and(|l| l.partitions().any(|x| x == p));
                    prop_assert_eq!(table.poison(TenantId(t), p).is_ok(), held);
                }
                Op::Heal(t) => table.heal(TenantId(t)),
                Op::Release(t) => {
                    table.release(TenantId(t));
                    owners.retain(|_, o| *o != t);
                }
                Op::Register(t, b) => {
                    let res = table.register_buffer(TenantId(t), BufId(b));
                    match owners.get(&b) {
                        Some(&o) if o != t => prop_assert!(
                            res.is_err(),
                            "buffer b{} owned by t{} must not lease to t{}", b, o, t
                        ),
                        _ => {
                            prop_assert!(
                                res.is_ok(),
                                "register t{} b{} rejected ({:?}) though model says {:?}",
                                t, b, res, owners.get(&b)
                            );
                            owners.insert(b, t);
                        }
                    }
                }
            }

            // The structural invariants hold after EVERY operation,
            // accepted or rejected.
            table.check_invariants().unwrap();
            let granted: usize = table
                .tenants()
                .map(|t| table.lease(t).map_or(0, Lease::len))
                .sum();
            prop_assert!(granted <= CAPACITY, "granted {} > capacity", granted);
            prop_assert_eq!(granted + table.free_count(), CAPACITY);
            prop_assert_eq!(table.granted_total(), granted);

            // No partition has two owners: ownership lookups must agree
            // with exactly the leases that hold each partition.
            for p in 0..CAPACITY {
                let holders: Vec<TenantId> = table
                    .tenants()
                    .filter(|&t| {
                        table
                            .lease(t)
                            .is_some_and(|l| l.partitions().any(|x| x == p))
                    })
                    .collect();
                prop_assert!(holders.len() <= 1, "partition {} has {:?}", p, holders);
                prop_assert_eq!(table.partition_owner(p), holders.first().copied());
            }

            // Ownership ledger agrees with the model — no cross-tenant
            // buffer visibility.
            for (&b, &o) in &owners {
                prop_assert_eq!(table.buffer_owner(BufId(b)), Some(TenantId(o)));
            }
        }
    }

    #[test]
    fn rejected_mutations_leave_the_table_byte_identical(
        setup in ops_strategy(),
        t in 0..TENANTS,
    ) {
        let mut table = LeaseTable::new(CAPACITY);
        for draw in &setup {
            apply(&mut table, &decode(*draw));
        }
        let before = format!("{table:?}");
        // Guaranteed-rejected calls: overcommit grow, oversize shrink,
        // out-of-range poison.
        prop_assert!(table.grow(TenantId(t), table.free_count() + 1).is_err());
        let held = table.lease(TenantId(t)).map_or(0, Lease::len);
        prop_assert!(table.shrink(TenantId(t), held + 1).is_err());
        prop_assert!(table.poison(TenantId(t), CAPACITY + 1).is_err());
        prop_assert_eq!(format!("{table:?}"), before);
    }
}
