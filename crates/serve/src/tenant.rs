//! Tenant program capture: replay a [`Workload`] onto a private scratch
//! context and package everything the service needs to run it remotely —
//! the recorded program, the buffer table (names, lengths, initial host
//! contents), the output set, and an optional fault-injection site in
//! tenant-local coordinates.

use hstreams::action::Action;
use hstreams::context::Context;
use hstreams::program::Program;
use hstreams::types::{BufId, Result};
use mic_apps::workload::Workload;
use micsim::pcie::Direction;
use micsim::PlatformConfig;

/// One captured scratch buffer.
#[derive(Clone, Debug)]
pub struct CapturedBuffer {
    /// Scratch debug name (the service prefixes it with the tenant).
    pub name: String,
    /// Length in elements.
    pub len: usize,
    /// Host contents at capture time — the job's initial memory state.
    pub host: Vec<f32>,
}

/// A workload captured into a self-contained, relocatable job payload.
#[derive(Clone, Debug)]
pub struct TenantProgram {
    /// Workload name.
    pub workload: String,
    /// Virtual partitions the program was recorded against.
    pub partitions: usize,
    /// The recorded program, in tenant-local coordinates.
    pub program: Program,
    /// Buffer table indexed by local [`BufId`].
    pub buffers: Vec<CapturedBuffer>,
    /// Output buffers (local ids): the `d2h` payloads in first-transfer
    /// order, or every kernel-written buffer if nothing is downloaded.
    pub outputs: Vec<BufId>,
    /// Kernel-panic injection site `(local stream, local action index)`,
    /// consumed by the first run that carries it.
    pub fault: Option<(usize, usize)>,
}

impl TenantProgram {
    /// Record `workload` onto a fresh scratch context of its declared
    /// geometry and capture the result.
    ///
    /// # Errors
    /// Propagates context construction and recording errors.
    pub fn capture(workload: &mut Workload, platform: &PlatformConfig) -> Result<TenantProgram> {
        let mut ctx = Context::builder(platform.clone())
            .partitions(workload.partitions)
            .streams_per_partition(workload.streams_per_partition)
            .build()?;
        (workload.record)(&mut ctx)?;
        let program = ctx.program().clone();
        let buffers = (0..ctx.buffer_count())
            .map(|i| {
                let b = ctx.buffer(BufId(i))?;
                let (name, len) = (b.name.clone(), b.len);
                Ok(CapturedBuffer {
                    name,
                    len,
                    host: ctx.read_host(BufId(i))?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let outputs = derive_outputs(&program);
        Ok(TenantProgram {
            workload: workload.name.clone(),
            partitions: workload.partitions,
            program,
            buffers,
            outputs,
            fault: None,
        })
    }

    /// Attach a kernel-panic injection site in tenant-local coordinates.
    #[must_use]
    pub fn with_fault(mut self, stream: usize, action_index: usize) -> TenantProgram {
        self.fault = Some((stream, action_index));
        self
    }

    /// Scheduling cost: total recorded actions (at least 1).
    #[must_use]
    pub fn cost(&self) -> u64 {
        (self.program.action_count() as u64).max(1)
    }

    /// The local `(stream, action)` site of the `n`-th kernel launch, for
    /// aiming fault injection — `None` if the program has fewer kernels.
    #[must_use]
    pub fn nth_kernel_site(&self, n: usize) -> Option<(usize, usize)> {
        let mut seen = 0usize;
        for s in &self.program.streams {
            for (i, a) in s.actions.iter().enumerate() {
                if let Action::Kernel(k) = a {
                    if !k.host {
                        if seen == n {
                            return Some((s.id.0, i));
                        }
                        seen += 1;
                    }
                }
            }
        }
        None
    }
}

fn derive_outputs(program: &Program) -> Vec<BufId> {
    let mut outs: Vec<BufId> = Vec::new();
    for s in &program.streams {
        for a in &s.actions {
            if let Action::Transfer {
                dir: Direction::DeviceToHost,
                buf,
            } = a
            {
                if !outs.contains(buf) {
                    outs.push(*buf);
                }
            }
        }
    }
    if outs.is_empty() {
        for s in &program.streams {
            for a in &s.actions {
                if let Action::Kernel(k) = a {
                    for b in &k.writes {
                        if !outs.contains(b) {
                            outs.push(*b);
                        }
                    }
                }
            }
        }
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mic_apps::workload::synthetic;

    #[test]
    fn capture_packages_program_buffers_and_outputs() {
        let platform = PlatformConfig::phi_31sp();
        let mut w = synthetic("cap", 5, 2);
        let t = TenantProgram::capture(&mut w, &platform).unwrap();
        assert_eq!(t.partitions, 2);
        assert_eq!(t.buffers.len(), 4, "a/b pair per lane");
        assert_eq!(t.outputs.len(), 2, "one d2h per lane");
        assert!(t.buffers[0].host.iter().any(|&x| x != 0.0), "inputs filled");
        assert!(t.cost() >= 8);
        t.program.validate().unwrap();
    }

    #[test]
    fn kernel_sites_index_device_kernels_in_stream_order() {
        let platform = PlatformConfig::phi_31sp();
        let mut w = synthetic("sites", 1, 2);
        let t = TenantProgram::capture(&mut w, &platform).unwrap();
        let (s0, a0) = t.nth_kernel_site(0).unwrap();
        assert_eq!((s0, a0), (0, 1), "first kernel follows the h2d");
        assert!(t.nth_kernel_site(64).is_none());
    }
}
