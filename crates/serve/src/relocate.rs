//! Program relocation: rebase a tenant's recorded [`Program`] into a
//! shared multi-tenant coordinate space.
//!
//! A tenant records against a private scratch context — stream ids start
//! at 0, buffer ids index its own allocations, partitions are *virtual*.
//! To run many tenants as **one** merged program on the shared serving
//! context, each program is relocated:
//!
//! * stream ids shift by a `stream_base` so merged ids stay contiguous
//!   positions (the [`Program`] invariant `id == index`);
//! * event ids shift by an `event_base`;
//! * every buffer reference is remapped through the tenant's private
//!   buffer table — a reference outside the table is an isolation error,
//!   so a relocated program *cannot name* another tenant's memory;
//! * virtual partitions map to the physical partitions of the tenant's
//!   lease. The map may **fold** (several virtual partitions onto one
//!   physical) — how a squeezed grant still runs, just with less
//!   parallelism;
//! * barriers are **lowered to events**: an executor barrier spans every
//!   stream of the merged program, which would couple tenants. Barrier
//!   `n` of a `k`-stream tenant becomes, on each stream `i`, one
//!   `RecordEvent` of its own barrier event followed by `WaitEvent`s on
//!   the other `k-1` streams' barrier events. Records precede waits in
//!   every stream, so the wait graph stays acyclic and the deadlock
//!   analyzer accepts the lowering.

use hstreams::action::Action;
use hstreams::program::{EventSite, Program, StreamPlacement, StreamRecord};
use hstreams::types::{BufId, Error, EventId, Result, StreamId};
use micsim::device::DeviceId;

/// Coordinate translation for one tenant within a merged program.
#[derive(Clone, Debug)]
pub struct TenantMap {
    /// First merged stream id assigned to this tenant.
    pub stream_base: usize,
    /// First merged event id assigned to this tenant.
    pub event_base: usize,
    /// Target device for every stream.
    pub device: DeviceId,
    /// `partition_map[v]` = physical partition for virtual partition `v`.
    /// Shorter maps fold: virtual `v` lands on `partition_map[v % len]`.
    pub partition_map: Vec<usize>,
    /// `buffer_map[local BufId.0]` = shared-context buffer. References
    /// outside this table are rejected — the isolation boundary.
    pub buffer_map: Vec<BufId>,
}

/// A tenant program rebased into merged coordinates.
#[derive(Clone, Debug)]
pub struct Relocated {
    /// Rebased streams, ids `stream_base ..`.
    pub streams: Vec<StreamRecord>,
    /// Rebased event sites, ids `event_base ..`: the original events
    /// first, then `barriers × k` synthesized barrier events.
    pub events: Vec<EventSite>,
    /// `index_map[local stream][local action index]` = action index in
    /// the rebased stream — how fault-injection sites and recovery
    /// coordinates translate between tenant-local and merged space.
    pub index_map: Vec<Vec<usize>>,
}

impl Relocated {
    /// Total merged event ids this tenant occupies (original + barrier
    /// events) — the next tenant's `event_base` increment.
    #[must_use]
    pub fn event_span(&self) -> usize {
        self.events.len()
    }
}

fn map_buf(map: &TenantMap, b: BufId) -> Result<BufId> {
    map.buffer_map.get(b.0).copied().ok_or_else(|| {
        Error::Config(format!(
            "relocation: buffer {b} is outside the tenant's table of {} buffers",
            map.buffer_map.len()
        ))
    })
}

/// Rebase `program` through `map`. The program must be
/// [valid](Program::validate) in its own coordinates.
///
/// # Errors
/// [`Error::Config`] when the program is invalid, references a buffer
/// outside the tenant's table, uses a virtual partition with an empty
/// partition map, or the map names no partitions at all.
pub fn relocate(program: &Program, map: &TenantMap) -> Result<Relocated> {
    program.validate()?;
    if map.partition_map.is_empty() {
        return Err(Error::Config(
            "relocation: empty partition map (tenant holds no lease)".to_string(),
        ));
    }
    let k = program.streams.len();
    let orig_events = program.events.len();
    // Merged id of the synthesized event for barrier `n` on local stream `i`.
    let barrier_event = |n: usize, i: usize| EventId(map.event_base + orig_events + n * k + i);

    let mut streams = Vec::with_capacity(k);
    let mut index_map: Vec<Vec<usize>> = Vec::with_capacity(k);
    // action_index of each barrier event's RecordEvent, filled during the
    // rewrite: barrier_sites[n * k + i].
    let mut barrier_sites = vec![0usize; program.barriers * k];

    for (i, s) in program.streams.iter().enumerate() {
        let mut actions = Vec::with_capacity(s.actions.len());
        let mut idx = Vec::with_capacity(s.actions.len());
        for a in &s.actions {
            idx.push(actions.len());
            match a {
                Action::Transfer { dir, buf } => actions.push(Action::Transfer {
                    dir: *dir,
                    buf: map_buf(map, *buf)?,
                }),
                Action::Kernel(desc) => {
                    let mut d = desc.clone();
                    for b in d.reads.iter_mut().chain(d.writes.iter_mut()) {
                        *b = map_buf(map, *b)?;
                    }
                    actions.push(Action::Kernel(d));
                }
                Action::RecordEvent(e) => {
                    actions.push(Action::RecordEvent(EventId(map.event_base + e.0)));
                }
                Action::WaitEvent(e) => {
                    actions.push(Action::WaitEvent(EventId(map.event_base + e.0)));
                }
                Action::Barrier(n) => {
                    barrier_sites[n * k + i] = actions.len();
                    actions.push(Action::RecordEvent(barrier_event(*n, i)));
                    for j in 0..k {
                        if j != i {
                            actions.push(Action::WaitEvent(barrier_event(*n, j)));
                        }
                    }
                }
            }
        }
        streams.push(StreamRecord {
            id: StreamId(map.stream_base + i),
            placement: StreamPlacement {
                device: map.device,
                partition: map.partition_map[s.placement.partition % map.partition_map.len()],
            },
            actions,
        });
        index_map.push(idx);
    }

    let mut events = Vec::with_capacity(orig_events + program.barriers * k);
    for site in &program.events {
        events.push(EventSite {
            stream: StreamId(map.stream_base + site.stream.0),
            action_index: index_map[site.stream.0][site.action_index],
        });
    }
    for n in 0..program.barriers {
        for i in 0..k {
            events.push(EventSite {
                stream: StreamId(map.stream_base + i),
                action_index: barrier_sites[n * k + i],
            });
        }
    }

    Ok(Relocated {
        streams,
        events,
        index_map,
    })
}

/// Concatenate relocated tenant programs into one merged [`Program`].
/// The inputs must have been relocated with contiguous, in-order
/// `stream_base` / `event_base` assignments (as
/// [`plan_bases`] produces).
#[must_use]
pub fn merge(parts: Vec<Relocated>) -> Program {
    let mut program = Program::default();
    for part in parts {
        program.streams.extend(part.streams);
        program.events.extend(part.events);
    }
    program
}

/// Assign contiguous `(stream_base, event_base)` pairs for a batch of
/// programs, in order. Each program's event span accounts for the barrier
/// events its relocation will synthesize.
#[must_use]
pub fn plan_bases(programs: &[&Program]) -> Vec<(usize, usize)> {
    let mut bases = Vec::with_capacity(programs.len());
    let (mut s, mut e) = (0usize, 0usize);
    for p in programs {
        bases.push((s, e));
        s += p.streams.len();
        e += p.events.len() + p.barriers * p.streams.len();
    }
    bases
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstreams::testutil::mix_kernel;
    use micsim::pcie::Direction;

    /// Two-stream tenant: h2d, kernel, barrier, kernel, d2h per stream,
    /// plus one explicit cross-stream event.
    fn tenant_program() -> Program {
        let mut p = Program::default();
        for i in 0..2usize {
            let a = BufId(i * 2);
            let b = BufId(i * 2 + 1);
            let actions = vec![
                Action::Transfer {
                    dir: Direction::HostToDevice,
                    buf: a,
                },
                Action::Kernel(mix_kernel(format!("k{i}a"), [a], [b], 10.0)),
                Action::Barrier(0),
                Action::Kernel(mix_kernel(format!("k{i}b"), [a], [b], 10.0)),
                Action::Transfer {
                    dir: Direction::DeviceToHost,
                    buf: b,
                },
            ];
            p.streams.push(StreamRecord {
                id: StreamId(i),
                placement: StreamPlacement {
                    device: DeviceId(0),
                    partition: i,
                },
                actions,
            });
        }
        // Stream 1 records event 0 after its first kernel; stream 0 waits.
        p.streams[1]
            .actions
            .insert(2, Action::RecordEvent(EventId(0)));
        p.streams[0]
            .actions
            .insert(2, Action::WaitEvent(EventId(0)));
        p.events.push(EventSite {
            stream: StreamId(1),
            action_index: 2,
        });
        p.barriers = 1;
        p.validate().unwrap();
        p
    }

    fn map(stream_base: usize, event_base: usize, parts: Vec<usize>) -> TenantMap {
        TenantMap {
            stream_base,
            event_base,
            device: DeviceId(0),
            partition_map: parts,
            buffer_map: (10..14).map(BufId).collect(),
        }
    }

    #[test]
    fn rebased_ids_buffers_and_placements() {
        let p = tenant_program();
        let r = relocate(&p, &map(3, 5, vec![6, 7])).unwrap();
        assert_eq!(r.streams[0].id, StreamId(3));
        assert_eq!(r.streams[1].id, StreamId(4));
        assert_eq!(r.streams[0].placement.partition, 6);
        assert_eq!(r.streams[1].placement.partition, 7);
        match &r.streams[0].actions[0] {
            Action::Transfer { buf, .. } => assert_eq!(*buf, BufId(10)),
            a => panic!("expected transfer, got {a:?}"),
        }
        // Explicit event 0 → merged id 5, recorded on merged stream 4.
        assert_eq!(r.events[0].stream, StreamId(4));
        match &r.streams[1].actions[2] {
            Action::RecordEvent(e) => assert_eq!(*e, EventId(5)),
            a => panic!("expected record, got {a:?}"),
        }
    }

    #[test]
    fn barrier_lowering_is_valid_and_acyclic() {
        let p = tenant_program();
        let r = relocate(&p, &map(0, 0, vec![0, 1])).unwrap();
        let merged = merge(vec![r]);
        merged.validate().unwrap();
        assert_eq!(merged.barriers, 0, "no executor barriers survive");
        // Each of the two streams gained: 1 record + 1 wait per barrier.
        let waits = merged.streams[0]
            .actions
            .iter()
            .filter(|a| matches!(a, Action::WaitEvent(_)))
            .count();
        assert_eq!(waits, 2, "original wait + one barrier wait");
        // The analyzer sees no deadlock in the lowered program.
        let env = hstreams::check::CheckEnv::permissive(&merged);
        let analysis = hstreams::check::analyze(&merged, &env);
        assert_eq!(
            analysis.report.errors().count(),
            0,
            "lowered barrier must not trip the analyzer: {:?}",
            analysis.report.diagnostics
        );
    }

    #[test]
    fn folded_partition_map_still_relocates() {
        let p = tenant_program();
        let r = relocate(&p, &map(0, 0, vec![5])).unwrap();
        assert!(r.streams.iter().all(|s| s.placement.partition == 5));
        assert!(relocate(&p, &map(0, 0, vec![])).is_err(), "no lease");
    }

    #[test]
    fn foreign_buffer_references_are_rejected() {
        let p = tenant_program();
        let mut m = map(0, 0, vec![0]);
        m.buffer_map.truncate(2); // program references BufId(3)
        let err = relocate(&p, &m).unwrap_err();
        assert!(
            err.to_string().contains("outside the tenant's table"),
            "{err}"
        );
    }

    #[test]
    fn index_map_translates_sites_across_the_lowering() {
        let p = tenant_program();
        let r = relocate(&p, &map(0, 0, vec![0, 1])).unwrap();
        // Stream 0 local actions: h2d, k0a, wait, barrier, k0b, d2h.
        // The barrier expands to 2 actions, so k0b shifts from 4 to 5.
        assert_eq!(r.index_map[0][4], 5);
        match &r.streams[0].actions[r.index_map[0][4]] {
            Action::Kernel(k) => assert_eq!(k.label, "k0a".replace('a', "b")),
            a => panic!("expected kernel, got {a:?}"),
        }
    }

    #[test]
    fn two_tenants_merge_into_one_valid_program() {
        let p = tenant_program();
        let bases = plan_bases(&[&p, &p]);
        assert_eq!(bases, vec![(0, 0), (2, 3)]);
        let parts = bases
            .iter()
            .enumerate()
            .map(|(t, &(s, e))| {
                let mut m = map(s, e, vec![t * 2, t * 2 + 1]);
                m.buffer_map = (t * 4..t * 4 + 4).map(BufId).collect();
                relocate(&p, &m).unwrap()
            })
            .collect();
        let merged = merge(parts);
        merged.validate().unwrap();
        assert_eq!(merged.streams.len(), 4);
        assert_eq!(merged.events.len(), 6, "1 explicit + 2 barrier events each");
    }
}
