//! The multi-tenant stream service.
//!
//! One long-lived [`Context`] owns the whole device; a [`LeaseTable`]
//! carves its partitions into per-tenant grants; a [`DrrQueue`] picks a
//! fair batch of queued jobs each round. The round relocates every
//! selected tenant's program into shared coordinates, merges them into
//! one program, and runs it **once** with partition isolation on — so
//! tenants time-share streams and space-share partitions exactly the way
//! the paper's multiple-streams mechanism intends, and an injected
//! kernel panic poisons only the leasing tenant's partitions.
//!
//! The life of a job:
//!
//! 1. [`submit`](StreamService::submit) — admission control: a bounded
//!    queue sheds load instead of growing without bound;
//! 2. [`run_round`](StreamService::run_round) — DRR dispatch, elastic
//!    lease resize (shed poisoned partitions, shrink to fair share, grow
//!    into free space), buffer materialization, relocation, one merged
//!    run;
//! 3. outcome — completed jobs return their output buffers read back
//!    from host memory; a job whose lease lost partitions is *degraded*:
//!    its partitions are poisoned in the lease table, the fault site is
//!    consumed, and the job is requeued at the front to retry on healthy
//!    partitions next round. Other tenants in the same round complete
//!    normally — isolation is per-lease, not per-round.

use std::collections::BTreeMap;
use std::sync::Arc;

use hstreams::check::Site;
use hstreams::context::Context;
use hstreams::executor::native::NativeConfig;
use hstreams::fault::FaultPlan;
use hstreams::lease::{Lease, LeaseTable, TenantId};
use hstreams::metrics::{Labels, MetricsRegistry, MetricsSnapshot, Unit};
use hstreams::program::Program;
use hstreams::types::{BufId, Error, Result};
use hstreams::OptReport;
use micsim::device::DeviceId;
use micsim::PlatformConfig;

use crate::drr::{DrrQueue, QueuedJob};
use crate::relocate::{merge, plan_bases, relocate, TenantMap};
use crate::tenant::TenantProgram;

/// Which executor a round runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Price rounds on the calibrated simulator (virtual time; no real
    /// outputs, no fault injection).
    Sim,
    /// Execute rounds on the native backend (real outputs, isolation,
    /// fault injection).
    Native,
}

/// Service construction parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The simulated platform the shared context is planned on.
    pub platform: PlatformConfig,
    /// Physical partitions the lease table manages (the context plans
    /// this many up front; leases re-partition ownership between runs).
    pub capacity: usize,
    /// Streams per physical partition the context provisions.
    pub streams_per_partition: usize,
    /// Admission bound: total queued jobs beyond this are shed.
    pub queue_depth: usize,
    /// DRR base quantum, in recorded-action cost units.
    pub quantum: u64,
    /// Most tenants dispatched into one merged round.
    pub max_round_tenants: usize,
    /// Executor for rounds.
    pub executor: ExecutorKind,
    /// Seed for the per-round fault plans built from job injection sites.
    pub fault_seed: u64,
    /// Run the sync-elision optimizer ([`hstreams::opt`]) over every
    /// merged round program on install. Relocation lowers tenant barriers
    /// to event records and waits whose all-to-all ordering can become
    /// redundant once programs merge (a single-stream tenant's barrier,
    /// for instance, lowers to a dead record); elision removes them under
    /// a machine-checked equivalence certificate. Fault injection sites
    /// are translated through the elision's site map automatically.
    pub optimize: bool,
}

impl ServeConfig {
    /// Defaults sized for one simulated Phi: 8 partitions, 2 streams
    /// each, native execution.
    #[must_use]
    pub fn new(platform: PlatformConfig) -> ServeConfig {
        ServeConfig {
            platform,
            capacity: 8,
            streams_per_partition: 2,
            queue_depth: 64,
            quantum: 32,
            max_round_tenants: 8,
            executor: ExecutorKind::Native,
            fault_seed: 1,
            optimize: false,
        }
    }
}

/// Admission verdict for a submitted job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Queued; the id appears in later [`RoundReport`]s.
    Accepted(u64),
    /// Queue full — shed. Resubmit later.
    Shed,
    /// The payload can never run on this service (invalid program or more
    /// streams than the context can drive).
    Rejected(String),
}

/// How one dispatched job ended.
#[derive(Clone, Debug)]
pub enum JobStatus {
    /// Ran to completion; `outputs[i]` is the host readback of the
    /// payload's `outputs[i]` buffer.
    Completed {
        /// Output buffer contents, aligned with [`TenantProgram::outputs`].
        outputs: Vec<Vec<f32>>,
    },
    /// The tenant's lease lost partitions this round; the job was
    /// requeued to retry on healthy partitions.
    Degraded {
        /// Physical partitions poisoned.
        lost: Vec<usize>,
        /// Actions skipped by the poisoned run.
        skipped: usize,
    },
}

/// One dispatched job's outcome.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job id from [`Admission::Accepted`].
    pub id: u64,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Workload name.
    pub workload: String,
    /// Completion or degradation.
    pub status: JobStatus,
    /// Submit-to-completion latency in service seconds (degraded jobs
    /// report the in-flight time so far).
    pub latency: f64,
}

/// What one merged round did.
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Round duration in seconds (simulated makespan or native wall time).
    pub duration: f64,
    /// Streams in the merged program.
    pub merged_streams: usize,
    /// Control actions the post-merge sync elision removed (zero unless
    /// the service was built with [`ServeConfig::optimize`]).
    pub syncs_elided: usize,
    /// Outcome per dispatched job, in dispatch order.
    pub outcomes: Vec<JobOutcome>,
}

struct Job {
    id: u64,
    tenant: TenantId,
    arrival: f64,
    prog: TenantProgram,
}

/// The serving loop state. See the [module docs](self).
pub struct StreamService {
    cfg: ServeConfig,
    ctx: Context,
    leases: LeaseTable,
    drr: DrrQueue,
    jobs: BTreeMap<u64, Job>,
    next_job: u64,
    now: f64,
    shed: u64,
    registry: MetricsRegistry,
    /// Per-tenant shared-buffer table: local index → (name, len, shared id).
    buffer_cache: BTreeMap<TenantId, Vec<(String, usize, BufId)>>,
}

impl StreamService {
    /// Build the shared context at `cfg.capacity` partitions and an empty
    /// lease table over them.
    ///
    /// # Errors
    /// Propagates context construction failures (e.g. a capacity the
    /// platform cannot partition).
    pub fn new(cfg: ServeConfig) -> Result<StreamService> {
        let ctx = Context::builder(cfg.platform.clone())
            .partitions(cfg.capacity)
            .streams_per_partition(cfg.streams_per_partition)
            .optimize(cfg.optimize)
            .build()?;
        Ok(StreamService {
            leases: LeaseTable::new(cfg.capacity),
            drr: DrrQueue::new(cfg.quantum),
            jobs: BTreeMap::new(),
            next_job: 0,
            now: 0.0,
            shed: 0,
            registry: MetricsRegistry::new(),
            buffer_cache: BTreeMap::new(),
            ctx,
            cfg,
        })
    }

    /// Set a tenant's DRR weight (default 1).
    pub fn set_weight(&mut self, tenant: TenantId, weight: u64) {
        self.drr.set_weight(tenant, weight);
    }

    /// The service clock, in seconds: simulated time under
    /// [`ExecutorKind::Sim`], accumulated wall time under
    /// [`ExecutorKind::Native`], plus explicit [`advance`](Self::advance)s.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance the service clock — how an open-loop driver spaces
    /// arrivals between rounds.
    pub fn advance(&mut self, dt: f64) {
        self.now += dt.max(0.0);
    }

    /// Jobs queued across all tenants.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.drr.queued()
    }

    /// Jobs shed by admission control since construction.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed
    }

    /// The lease table (grants, poisons, buffer ownership).
    #[must_use]
    pub fn leases(&self) -> &LeaseTable {
        self.leases
            .check_invariants()
            .map(|()| &self.leases)
            .expect("lease table invariants hold")
    }

    /// Snapshot of the service metrics (per-tenant latency histograms,
    /// completion/shed counters, round durations).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Submit a job for `tenant`. See [`Admission`].
    pub fn submit(&mut self, tenant: TenantId, prog: TenantProgram) -> Admission {
        if let Err(e) = prog.program.validate() {
            return Admission::Rejected(format!("invalid program: {e}"));
        }
        let max_streams = self.max_streams();
        if prog.program.streams.len() > max_streams {
            return Admission::Rejected(format!(
                "{} streams exceed the service budget of {max_streams}",
                prog.program.streams.len()
            ));
        }
        // Isolation at the door: a program may only name buffers of its
        // own captured table — relocation maps nothing else.
        for s in &prog.program.streams {
            for a in &s.actions {
                for b in a.buffers() {
                    if b.0 >= prog.buffers.len() {
                        return Admission::Rejected(format!(
                            "buffer {b} is outside the payload's table of {} buffers",
                            prog.buffers.len()
                        ));
                    }
                }
            }
        }
        if self.drr.queued() >= self.cfg.queue_depth {
            self.shed += 1;
            self.registry
                .counter("serve_jobs_shed", Unit::Count, Labels::GLOBAL)
                .inc();
            return Admission::Shed;
        }
        let id = self.next_job;
        self.next_job += 1;
        self.drr.enqueue(
            tenant,
            QueuedJob {
                id,
                cost: prog.cost(),
            },
        );
        self.jobs.insert(
            id,
            Job {
                id,
                tenant,
                arrival: self.now,
                prog,
            },
        );
        Admission::Accepted(id)
    }

    /// Dispatch and execute one merged round. Returns `None` when nothing
    /// was runnable (empty queues, or every candidate deferred).
    ///
    /// # Errors
    /// Propagates context errors other than recoverable partition loss
    /// (which degrades the affected tenants instead).
    pub fn run_round(&mut self) -> Result<Option<RoundReport>> {
        let Some(selected) = self.select_batch() else {
            return Ok(None);
        };
        let mut selected = selected;

        // Elastic leasing: shed poison + shrink to fair share, then grow.
        let fair = (self.cfg.capacity / selected.len()).max(1);
        for job in &selected {
            let desired = job.prog.partitions.clamp(1, fair);
            self.shrink_to(job.tenant, desired)?;
        }
        let active: std::collections::BTreeSet<TenantId> =
            selected.iter().map(|j| j.tenant).collect();
        let mut deferred = Vec::new();
        for (i, job) in selected.iter().enumerate() {
            let desired = job.prog.partitions.clamp(1, fair);
            if !self.grow_toward(job.tenant, desired, &active)? {
                deferred.push(i);
            }
        }
        for &i in deferred.iter().rev() {
            let job = selected.remove(i);
            self.requeue(job);
        }
        if selected.is_empty() {
            return Ok(None);
        }

        // Buffer materialization: deterministic initial state for the
        // round — all storage zeroed, then every participant's captured
        // host contents written.
        let mut tables = Vec::with_capacity(selected.len());
        for job in &selected {
            tables.push(self.buffer_table(job.tenant, &job.prog)?);
        }
        self.ctx.zero_buffers();
        for (job, table) in selected.iter().zip(&tables) {
            for (i, cb) in job.prog.buffers.iter().enumerate() {
                self.ctx.write_host(table[i], &cb.host)?;
            }
        }

        // Relocate into merged coordinates.
        let programs: Vec<&Program> = selected.iter().map(|j| &j.prog.program).collect();
        let bases = plan_bases(&programs);
        let mut parts = Vec::with_capacity(selected.len());
        let mut index_maps = Vec::with_capacity(selected.len());
        for ((job, table), &(stream_base, event_base)) in selected.iter().zip(&tables).zip(&bases) {
            let lease = self
                .leases
                .lease(job.tenant)
                .ok_or_else(|| Error::Config(format!("{} lost its lease", job.tenant)))?;
            let map = TenantMap {
                stream_base,
                event_base,
                device: DeviceId(0),
                partition_map: lease.healthy().collect(),
                buffer_map: table.clone(),
            };
            let part = relocate(&job.prog.program, &map)?;
            index_maps.push(part.index_map.clone());
            parts.push(part);
        }
        let merged = merge(parts);
        let merged_streams = merged.streams.len();

        // The jobs' fault injection sites in merged coordinates (consumed
        // — a retry runs clean).
        let mut fault_sites = Vec::new();
        for (ji, job) in selected.iter_mut().enumerate() {
            if let Some((ls, la)) = job.prog.fault.take() {
                let ms = bases[ji].0 + ls;
                let ma = *index_maps[ji]
                    .get(ls)
                    .and_then(|m| m.get(la))
                    .ok_or_else(|| {
                        Error::Config(format!("fault site ({ls},{la}) outside the program"))
                    })?;
                fault_sites.push((ms, ma));
            }
        }

        self.ctx.install_program(merged)?;

        // Post-merge sync elision (when the service was built with
        // `optimize`) may have removed control actions, shifting later
        // action indices down: compose the fault sites with the elision's
        // site map. Faults target kernels — payload the optimizer never
        // removes — so the translation is total.
        let opt_report = self.ctx.take_opt_report();
        let syncs_elided = opt_report.as_ref().map_or(0, OptReport::elided_actions);
        let mut plan: Option<FaultPlan> = None;
        for (ms, ma) in fault_sites {
            let (ms, ma) = match &opt_report {
                Some(r) => {
                    let s = r.map_site(Site::new(ms, ma)).ok_or_else(|| {
                        Error::Config(format!("fault site ({ms},{ma}) elided by the optimizer"))
                    })?;
                    (s.stream.0, s.action_index)
                }
                None => (ms, ma),
            };
            plan = Some(
                plan.unwrap_or_else(|| FaultPlan::seeded(self.cfg.fault_seed))
                    .panic_kernel_at(ms, ma),
            );
        }
        let (duration, degraded) = self.execute(plan)?;
        self.now += duration;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        self.registry
            .histogram("serve_round_us", Unit::Micros, Labels::GLOBAL)
            .record((duration * 1e6) as u64);

        let mut outcomes = Vec::with_capacity(selected.len());
        for (job, table) in selected.into_iter().zip(tables) {
            let latency = self.now - job.arrival;
            let labels = Labels::tenant(job.tenant.0);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let latency_us = (latency * 1e6) as u64;
            if let Some((lost, skipped)) = degraded.get(&job.tenant) {
                self.registry
                    .counter("serve_jobs_degraded", Unit::Count, labels)
                    .inc();
                outcomes.push(JobOutcome {
                    id: job.id,
                    tenant: job.tenant,
                    workload: job.prog.workload.clone(),
                    status: JobStatus::Degraded {
                        lost: lost.clone(),
                        skipped: *skipped,
                    },
                    latency,
                });
                self.requeue(job);
            } else {
                let outputs = job
                    .prog
                    .outputs
                    .iter()
                    .map(|b| self.ctx.read_host(table[b.0]))
                    .collect::<Result<Vec<_>>>()?;
                self.registry
                    .counter("serve_jobs_completed", Unit::Count, labels)
                    .inc();
                self.registry
                    .histogram("serve_latency_us", Unit::Micros, labels)
                    .record(latency_us);
                self.jobs.remove(&job.id);
                outcomes.push(JobOutcome {
                    id: job.id,
                    tenant: job.tenant,
                    workload: job.prog.workload.clone(),
                    status: JobStatus::Completed { outputs },
                    latency,
                });
            }
        }
        for o in &outcomes {
            #[allow(clippy::cast_precision_loss)]
            self.registry
                .gauge(
                    "serve_partitions_granted",
                    Unit::Count,
                    Labels::tenant(o.tenant.0),
                )
                .set(self.leases.lease(o.tenant).map_or(0, Lease::len) as f64);
        }
        Ok(Some(RoundReport {
            duration,
            merged_streams,
            syncs_elided,
            outcomes,
        }))
    }

    /// Run rounds until the queue drains or `max_rounds` is hit.
    ///
    /// # Errors
    /// Propagates [`run_round`](Self::run_round) errors.
    pub fn drain(&mut self, max_rounds: usize) -> Result<Vec<RoundReport>> {
        let mut reports = Vec::new();
        for _ in 0..max_rounds {
            match self.run_round()? {
                Some(r) => reports.push(r),
                None if self.queued() == 0 => break,
                // Every candidate deferred (e.g. waiting on partitions
                // that free up when other tenants go idle): keep going.
                None => {}
            }
        }
        Ok(reports)
    }

    // ----- internals -------------------------------------------------------

    fn max_streams(&self) -> usize {
        self.ctx.device_count() * self.ctx.replan_capacity() * self.ctx.streams_per_partition()
    }

    /// Pop one DRR batch and pull the owned jobs, deferring any that
    /// would overflow the stream budget of a single merged program.
    fn select_batch(&mut self) -> Option<Vec<Job>> {
        let batch = self.drr.next_batch(self.cfg.max_round_tenants);
        if batch.is_empty() {
            return None;
        }
        let budget = self.max_streams();
        let mut used = 0usize;
        let mut selected = Vec::with_capacity(batch.len());
        for (tenant, qj) in batch {
            let job = self.jobs.remove(&qj.id).expect("queued job is stored");
            let k = job.prog.program.streams.len();
            if used + k > budget {
                self.drr.requeue_front(tenant, qj);
                self.jobs.insert(qj.id, job);
                continue;
            }
            used += k;
            selected.push(job);
        }
        if selected.is_empty() {
            None
        } else {
            Some(selected)
        }
    }

    fn requeue(&mut self, job: Job) {
        self.drr.requeue_front(
            job.tenant,
            QueuedJob {
                id: job.id,
                cost: job.prog.cost(),
            },
        );
        self.jobs.insert(job.id, job);
    }

    /// Shed poisoned partitions, then shrink the grant down to `desired`.
    fn shrink_to(&mut self, tenant: TenantId, desired: usize) -> Result<()> {
        let poisoned = self
            .leases
            .lease(tenant)
            .map_or(0, |l| l.poisoned().count());
        if poisoned > 0 {
            // `shrink` releases poisoned partitions first and heals them
            // into the free pool (per-run poison does not outlive a run).
            self.leases.shrink(tenant, poisoned)?;
        }
        let held = self.leases.lease(tenant).map_or(0, Lease::len);
        if held > desired {
            self.leases.shrink(tenant, held - desired)?;
        }
        Ok(())
    }

    /// Grow the grant toward `desired`, reclaiming idle tenants' grants
    /// if the free pool runs dry. Tenants in `active` (this round's
    /// batch) are never reclaimed — their queues look empty only because
    /// the batch already popped their jobs. Returns whether the tenant
    /// holds at least one partition afterwards.
    fn grow_toward(
        &mut self,
        tenant: TenantId,
        desired: usize,
        active: &std::collections::BTreeSet<TenantId>,
    ) -> Result<bool> {
        let held = self.leases.lease(tenant).map_or(0, Lease::len);
        if held < desired {
            let want = desired - held;
            if self.leases.free_count() < want {
                let idle: Vec<TenantId> = self
                    .leases
                    .tenants()
                    .filter(|&t| t != tenant && !active.contains(&t) && self.drr.queued_for(t) == 0)
                    .collect();
                for t in idle {
                    let spare = self.leases.lease(t).map_or(0, Lease::len);
                    if spare > 0 {
                        self.leases.shrink(t, spare)?;
                    }
                }
            }
            let take = want.min(self.leases.free_count());
            if take > 0 {
                self.leases.grow(tenant, take)?;
            }
        }
        Ok(self
            .leases
            .lease(tenant)
            .is_some_and(|l| l.healthy().count() > 0))
    }

    /// Local-index → shared-buffer table for one job, allocating and
    /// registering ownership for buffers this tenant has not used before.
    fn buffer_table(&mut self, tenant: TenantId, prog: &TenantProgram) -> Result<Vec<BufId>> {
        let mut cache = self.buffer_cache.remove(&tenant).unwrap_or_default();
        let mut table = Vec::with_capacity(prog.buffers.len());
        for (i, cb) in prog.buffers.iter().enumerate() {
            let cached = cache
                .get(i)
                .filter(|(n, l, _)| *n == cb.name && *l == cb.len)
                .map(|&(_, _, id)| id);
            let id = match cached {
                Some(id) => id,
                None => {
                    let id = self.ctx.alloc(format!("t{}.{}", tenant.0, cb.name), cb.len);
                    self.leases.register_buffer(tenant, id)?;
                    let entry = (cb.name.clone(), cb.len, id);
                    if i < cache.len() {
                        cache[i] = entry;
                    } else {
                        cache.push(entry);
                    }
                    id
                }
            };
            table.push(id);
        }
        self.buffer_cache.insert(tenant, cache);
        Ok(table)
    }

    /// Run the installed merged program; translate partition loss into
    /// per-lease poison and a per-tenant degraded set.
    #[allow(clippy::type_complexity)]
    fn execute(
        &mut self,
        plan: Option<FaultPlan>,
    ) -> Result<(f64, BTreeMap<TenantId, (Vec<usize>, usize)>)> {
        match self.cfg.executor {
            ExecutorKind::Sim => {
                // Faults are a native-executor feature; the sim path
                // prices the merged round in virtual time.
                let report = self.ctx.run_sim()?;
                Ok((report.makespan().as_secs_f64(), BTreeMap::new()))
            }
            ExecutorKind::Native => {
                let native = NativeConfig {
                    isolate_partitions: true,
                    fault: plan.map(Arc::new),
                    ..NativeConfig::default()
                };
                let t0 = std::time::Instant::now();
                let run = self.ctx.run_native_with(&native);
                let duration = t0.elapsed().as_secs_f64();
                match run {
                    Ok(_) => Ok((duration, BTreeMap::new())),
                    Err(e) => {
                        let Some(rs) = self.ctx.take_recovery_state() else {
                            return Err(e);
                        };
                        let mut degraded: BTreeMap<TenantId, (Vec<usize>, usize)> = BTreeMap::new();
                        for &(_, partition, _) in &rs.lost {
                            let owner =
                                self.leases.partition_owner(partition).ok_or_else(|| {
                                    Error::Config(format!(
                                        "lost partition p{partition} has no lease"
                                    ))
                                })?;
                            self.leases.poison(owner, partition)?;
                            degraded.entry(owner).or_default().0.push(partition);
                        }
                        for &(stream, _) in &rs.skipped {
                            let tenant = self.tenant_of_stream(stream)?;
                            degraded.entry(tenant).or_default().1 += 1;
                        }
                        Ok((duration, degraded))
                    }
                }
            }
        }
    }

    /// Which tenant owns merged stream `stream` — via the placement's
    /// physical partition and the lease table.
    fn tenant_of_stream(&self, stream: usize) -> Result<TenantId> {
        let rec = self
            .ctx
            .program()
            .streams
            .get(stream)
            .ok_or_else(|| Error::Config(format!("stream {stream} outside merged program")))?;
        self.leases
            .partition_owner(rec.placement.partition)
            .ok_or_else(|| {
                Error::Config(format!(
                    "stream {stream} placed on unleased partition p{}",
                    rec.placement.partition
                ))
            })
    }
}

/// Jain's fairness index over per-tenant allocations:
/// `(Σx)² / (n · Σx²)`. 1.0 is perfectly fair; `1/n` is maximally unfair.
/// Empty or all-zero inputs score 1.0 (nothing is being shared unfairly).
#[must_use]
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= f64::EPSILON {
        return 1.0;
    }
    #[allow(clippy::cast_precision_loss)]
    {
        (sum * sum) / (n as f64 * sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_bounds() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let unfair = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((unfair - 0.25).abs() < 1e-12);
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
    }
}
