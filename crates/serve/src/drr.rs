//! Deficit round robin over tenant job queues.
//!
//! Classic DRR (Shreedhar & Varghese): each tenant keeps a FIFO of jobs
//! with integer costs and a *deficit counter*. A scheduling round visits
//! tenants in fixed arrival order; each visit tops the deficit up by the
//! tenant's quantum (base quantum × weight) and dispatches the head job
//! if its cost fits. A tenant whose queue drains forfeits its deficit, so
//! idle time cannot be banked — the property that makes DRR O(1) fair:
//! over any busy interval, tenant throughput in cost units converges to
//! the quantum ratio regardless of per-job cost skew.
//!
//! The serving layer uses one job per tenant per round (a round is one
//! merged program on the device), so [`DrrQueue::next_batch`] dispatches
//! at most the head job per tenant and the cross-round deficit carries
//! the fairness debt of expensive jobs.

use std::collections::{BTreeMap, VecDeque};

use hstreams::lease::TenantId;

/// One queued job: an opaque id plus its cost in scheduler units (the
/// serving layer uses recorded action counts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueuedJob {
    /// Caller's job identifier.
    pub id: u64,
    /// Cost charged against the tenant's deficit when dispatched.
    pub cost: u64,
}

#[derive(Clone, Debug, Default)]
struct TenantQueue {
    deficit: u64,
    weight: u64,
    jobs: VecDeque<QueuedJob>,
}

/// The deficit-round-robin dispatcher. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct DrrQueue {
    quantum: u64,
    /// Tenants in first-contact order — the fixed round-robin ring.
    ring: Vec<TenantId>,
    queues: BTreeMap<TenantId, TenantQueue>,
    cursor: usize,
}

impl DrrQueue {
    /// A dispatcher with the given base quantum (cost units granted per
    /// tenant per round; clamped to at least 1).
    #[must_use]
    pub fn new(quantum: u64) -> DrrQueue {
        DrrQueue {
            quantum: quantum.max(1),
            ring: Vec::new(),
            queues: BTreeMap::new(),
            cursor: 0,
        }
    }

    /// Set a tenant's weight (quantum multiplier; clamped to at least 1).
    /// Tenants default to weight 1.
    pub fn set_weight(&mut self, tenant: TenantId, weight: u64) {
        self.slot(tenant).weight = weight.max(1);
    }

    /// Append a job to `tenant`'s FIFO.
    pub fn enqueue(&mut self, tenant: TenantId, job: QueuedJob) {
        self.slot(tenant).jobs.push_back(job);
    }

    /// Push a job back to the *front* of `tenant`'s FIFO — used to retry
    /// a degraded job next round without losing its queue position.
    pub fn requeue_front(&mut self, tenant: TenantId, job: QueuedJob) {
        self.slot(tenant).jobs.push_front(job);
    }

    /// Total queued jobs across all tenants.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queues.values().map(|q| q.jobs.len()).sum()
    }

    /// Queued jobs for one tenant.
    #[must_use]
    pub fn queued_for(&self, tenant: TenantId) -> usize {
        self.queues.get(&tenant).map_or(0, |q| q.jobs.len())
    }

    /// Run one DRR round: visit every tenant once starting at the ring
    /// cursor, dispatch at most the head job per tenant (cost permitting)
    /// and at most `max_tenants` jobs total. Returns the dispatched
    /// `(tenant, job)` pairs in visit order.
    pub fn next_batch(&mut self, max_tenants: usize) -> Vec<(TenantId, QueuedJob)> {
        let mut batch = Vec::new();
        let n = self.ring.len();
        for step in 0..n {
            if batch.len() >= max_tenants {
                break;
            }
            let tenant = self.ring[(self.cursor + step) % n];
            let quantum = self.quantum;
            let q = self
                .queues
                .get_mut(&tenant)
                .expect("ring entries have queues");
            if q.jobs.is_empty() {
                // An idle tenant banks nothing.
                q.deficit = 0;
                continue;
            }
            q.deficit = q.deficit.saturating_add(quantum.saturating_mul(q.weight));
            let head = q.jobs[0];
            if head.cost <= q.deficit {
                q.deficit -= head.cost;
                q.jobs.pop_front();
                if q.jobs.is_empty() {
                    q.deficit = 0;
                }
                batch.push((tenant, head));
            }
        }
        // Rotate the starting tenant so ring position is not itself an
        // advantage when max_tenants truncates a round.
        if n > 0 {
            self.cursor = (self.cursor + 1) % n;
        }
        batch
    }

    fn slot(&mut self, tenant: TenantId) -> &mut TenantQueue {
        if !self.queues.contains_key(&tenant) {
            self.ring.push(tenant);
            self.queues.insert(
                tenant,
                TenantQueue {
                    deficit: 0,
                    weight: 1,
                    jobs: VecDeque::new(),
                },
            );
        }
        self.queues.get_mut(&tenant).expect("just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, cost: u64) -> QueuedJob {
        QueuedJob { id, cost }
    }

    #[test]
    fn equal_weights_share_dispatches_evenly() {
        let mut drr = DrrQueue::new(10);
        for t in 0..3u16 {
            for j in 0..20 {
                drr.enqueue(TenantId(t), job(u64::from(t) * 100 + j, 10));
            }
        }
        let mut counts = [0usize; 3];
        for _ in 0..10 {
            for (t, _) in drr.next_batch(usize::MAX) {
                counts[t.0 as usize] += 1;
            }
        }
        assert_eq!(counts, [10, 10, 10]);
    }

    #[test]
    fn expensive_jobs_wait_for_deficit_to_accrue() {
        let mut drr = DrrQueue::new(10);
        drr.enqueue(TenantId(0), job(1, 30));
        drr.enqueue(TenantId(1), job(2, 10));
        // Round 1: t0 deficit 10 < 30 (skipped), t1 dispatches.
        let b1 = drr.next_batch(usize::MAX);
        assert_eq!(b1, vec![(TenantId(1), job(2, 10))]);
        // Rounds 2 and 3 accrue t0's deficit to 30: dispatched on round 3.
        assert!(drr.next_batch(usize::MAX).is_empty());
        assert_eq!(drr.next_batch(usize::MAX), vec![(TenantId(0), job(1, 30))]);
        assert_eq!(drr.queued(), 0);
    }

    #[test]
    fn weighted_tenant_drains_proportionally_faster() {
        let mut drr = DrrQueue::new(10);
        drr.set_weight(TenantId(0), 2);
        for j in 0..12 {
            drr.enqueue(TenantId(0), job(j, 20));
            drr.enqueue(TenantId(1), job(100 + j, 20));
        }
        let mut counts = [0usize; 2];
        for _ in 0..9 {
            for (t, _) in drr.next_batch(usize::MAX) {
                counts[t.0 as usize] += 1;
            }
        }
        // Weight 2 dispatches a 20-cost job every round, weight 1 every
        // other round.
        assert_eq!(counts[0], 9);
        assert_eq!(counts[1], 4);
    }

    #[test]
    fn draining_forfeits_banked_deficit() {
        let mut drr = DrrQueue::new(10);
        drr.enqueue(TenantId(0), job(1, 5));
        assert_eq!(drr.next_batch(usize::MAX).len(), 1);
        // Deficit reset on drain: a later expensive job starts from zero.
        drr.enqueue(TenantId(0), job(2, 15));
        assert!(drr.next_batch(usize::MAX).is_empty(), "needs two quanta");
        assert_eq!(drr.next_batch(usize::MAX).len(), 1);
    }

    #[test]
    fn max_tenants_truncates_but_cursor_rotates() {
        let mut drr = DrrQueue::new(10);
        for t in 0..3u16 {
            drr.enqueue(TenantId(t), job(u64::from(t), 1));
            drr.enqueue(TenantId(t), job(10 + u64::from(t), 1));
        }
        let b1 = drr.next_batch(2);
        let b2 = drr.next_batch(2);
        assert_eq!(b1.len(), 2);
        assert_eq!(b2.len(), 2);
        assert_ne!(b1[0].0, b2[0].0, "starting tenant rotates between rounds");
    }

    #[test]
    fn requeue_front_preserves_position() {
        let mut drr = DrrQueue::new(10);
        drr.enqueue(TenantId(0), job(1, 5));
        drr.enqueue(TenantId(0), job(2, 5));
        let b = drr.next_batch(usize::MAX);
        assert_eq!(b[0].1.id, 1);
        drr.requeue_front(TenantId(0), b[0].1);
        assert_eq!(drr.next_batch(usize::MAX)[0].1.id, 1, "retried first");
    }
}
