//! # stream-serve — multi-tenant serving over the streams runtime
//!
//! The paper's multiple-streams mechanism time-shares streams and
//! space-shares partitions *within one program*. This crate extends the
//! same idea across **independent client programs**: a long-running
//! service admits jobs from many tenants, leases each a slice of the
//! device's partition space, merges the admitted programs into one
//! relocated super-program per round, and runs it on either executor.
//!
//! The moving parts:
//!
//! * [`hstreams::lease::LeaseTable`] — elastic partition grants, the
//!   multi-tenant generalization of `Context::replan`;
//! * [`mod@relocate`] — rebasing tenant programs (streams, events, buffers,
//!   virtual→physical partitions, barrier-to-event lowering) into one
//!   merged coordinate space;
//! * [`drr`] — deficit-round-robin fair dispatch;
//! * [`service`] — admission control, round execution, per-lease fault
//!   isolation, and per-tenant metrics (the `tenant` label dimension).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod drr;
pub mod relocate;
pub mod service;
pub mod tenant;

pub use drr::{DrrQueue, QueuedJob};
pub use hstreams::lease::{Lease, LeaseTable, TenantId};
pub use relocate::{merge, plan_bases, relocate, Relocated, TenantMap};
pub use service::{
    jain_index, Admission, ExecutorKind, JobOutcome, JobStatus, RoundReport, ServeConfig,
    StreamService,
};
pub use tenant::{CapturedBuffer, TenantProgram};
