//! Regression: interleaved metered runs at different partition
//! geometries must not alias each other's instrument catalogs.
//!
//! The run-metrics bundle is cached per `(devices, partitions)` geometry.
//! Before that, a single cached slot was discarded on every geometry
//! switch — and sharing one registry across shapes would be worse: the
//! registry's `register` reuses existing `(device, partition, stream)`
//! series, so a P=4 catalog re-registered at P=2 would keep exporting the
//! two dead partitions' series. Alternating replans must export
//! byte-stable catalogs per geometry, with no leakage between shapes.

use hstreams::kernel::KernelDesc;
use hstreams::Context;
use micsim::compute::KernelProfile;
use micsim::PlatformConfig;

/// Record one no-op native kernel on stream 0 and run metered natively,
/// returning the exported catalog (series identities, sorted).
fn metered_catalog(ctx: &mut Context) -> Vec<String> {
    ctx.reset_program();
    let a = ctx.alloc(format!("a{}", ctx.buffer_count()), 4);
    let s = ctx.stream(0).unwrap();
    ctx.kernel(
        s,
        KernelDesc::simulated("nop", KernelProfile::streaming("nop", 1e9), 1.0)
            .writing([a])
            .with_native(|_| {}),
    )
    .unwrap();
    let report = ctx.run_native().unwrap();
    report.metrics.expect("metered run").series_names()
}

#[test]
fn alternating_geometries_export_byte_stable_catalogs() {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(2)
        .replan_capacity(4)
        .metrics(true)
        .build()
        .unwrap();

    let p2_first = metered_catalog(&mut ctx);
    ctx.replan(4).unwrap();
    let p4 = metered_catalog(&mut ctx);
    ctx.replan(2).unwrap();
    let p2_second = metered_catalog(&mut ctx);

    assert_eq!(
        p2_first, p2_second,
        "interleaving a P=4 run must leave the P=2 catalog byte-identical"
    );
    assert!(
        p2_first.iter().all(|s| !s.contains("partition=\"2\"")),
        "P=2 catalog must not carry P=4 partition series: {p2_first:?}"
    );
    assert!(
        p4.iter().any(|s| s.contains("partition=\"3\"")),
        "P=4 catalog registers all four partitions: {p4:?}"
    );
    assert_ne!(p2_first, p4, "the two geometries are distinct catalogs");
}

#[test]
fn repeated_same_geometry_catalogs_are_stable_across_a_failed_geometry() {
    // A second context pinned at its build geometry: repeated runs reuse
    // the cached bundle and the catalog never drifts.
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(3)
        .metrics(true)
        .build()
        .unwrap();
    let first = metered_catalog(&mut ctx);
    for _ in 0..3 {
        assert_eq!(metered_catalog(&mut ctx), first);
    }
}
