//! Integration tests for native-executor tracing: the measured timeline
//! must behave like a simulator timeline under the existing analysis tools,
//! and the structural claims of the platform model (serialized copy engine,
//! overlap only with multiple streams) must show up in real measurements.

use std::time::Duration;

use hstreams::context::Context;
use hstreams::kernel::KernelDesc;
use hstreams::NativeConfig;
use micsim::compute::KernelProfile;
use micsim::trace::{intersect, merge_intervals, Interval};
use micsim::PlatformConfig;

fn small_ctx(partitions: usize) -> Context {
    Context::builder(PlatformConfig::phi_31sp())
        .partitions(partitions)
        .build()
        .unwrap()
}

fn native_kernel(label: &str) -> KernelDesc {
    KernelDesc::simulated(label, KernelProfile::streaming("k", 1e9), 1.0)
}

fn traced_cfg() -> NativeConfig {
    NativeConfig {
        trace: true,
        ..NativeConfig::default()
    }
}

#[test]
fn bytes_transferred_is_sum_of_transfer_sizes() {
    // Satellite (b): the report's byte counter must equal the sum of the
    // H2D and D2H buffer sizes, element size included.
    let mut ctx = small_ctx(1);
    let a = ctx.alloc("a", 100); // 400 bytes
    let b = ctx.alloc("b", 7); // 28 bytes
    let s = ctx.stream(0).unwrap();
    ctx.h2d(s, a).unwrap();
    ctx.h2d(s, b).unwrap();
    ctx.kernel(
        s,
        native_kernel("touch")
            .reading([a])
            .writing([b])
            .with_native(|k| {
                k.writes[0][0] = k.reads[0][0];
            }),
    )
    .unwrap();
    ctx.d2h(s, b).unwrap();
    let elem = std::mem::size_of::<hstreams::Elem>() as u64;
    let expected = (100 + 7) * elem + 7 * elem;
    let report = ctx.run_native().unwrap();
    assert_eq!(report.bytes_transferred, expected);
    // And the traced path counts identically.
    let report = ctx.run_native_with(&traced_cfg()).unwrap();
    assert_eq!(report.bytes_transferred, expected);
}

#[test]
fn untraced_run_reports_no_trace() {
    let mut ctx = small_ctx(1);
    let a = ctx.alloc("a", 4);
    let s = ctx.stream(0).unwrap();
    ctx.h2d(s, a).unwrap();
    let report = ctx.run_native().unwrap();
    assert!(report.trace.is_none());
    assert!(ctx.take_native_trace().is_none());
}

#[test]
fn traced_run_yields_analyzable_timeline() {
    // The tentpole claim: trace:true returns a Timeline the existing sim
    // tooling consumes unchanged.
    let mut ctx = small_ctx(2);
    let a = ctx.alloc("a", 1 << 12);
    let b = ctx.alloc("b", 1 << 12);
    let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
    ctx.h2d(s0, a).unwrap();
    let e = ctx.record_event(s0).unwrap();
    ctx.wait_event(s1, e).unwrap();
    ctx.kernel(
        s1,
        native_kernel("scale")
            .reading([a])
            .writing([b])
            .with_native(|k| {
                for (o, i) in k.writes[0].iter_mut().zip(k.reads[0]) {
                    *o = i * 2.0;
                }
            }),
    )
    .unwrap();
    ctx.d2h(s1, b).unwrap();

    let report = ctx.run_native_with(&traced_cfg()).unwrap();
    let trace = report.trace.expect("trace requested");

    // Timeline: every action produced at least one record, spans are within
    // the makespan, resource lanes resolve to names.
    assert!(trace.timeline.records.len() >= 5, "{:?}", trace.timeline);
    for r in &trace.timeline.records {
        assert!(r.finish >= r.start);
        assert!(r.finish.since(micsim::time::SimTime::ZERO) <= trace.timeline.makespan);
        if let Some(res) = r.resource {
            assert!(trace.names.contains_key(&res), "unnamed lane {res:?}");
        }
    }

    // overlap_stats runs unchanged and is self-consistent.
    let stats = trace.overlap();
    assert!(
        stats.link_busy.nanos() > 0,
        "transfers must occupy the link"
    );
    assert!(stats.compute_busy.nanos() > 0, "kernel must occupy a lane");
    assert!(stats.overlap <= stats.link_busy);
    assert!(stats.overlap <= stats.compute_busy);
    assert!((0.0..=1.0).contains(&stats.hidden_fraction()));

    // Gantt and Chrome export run unchanged.
    let gantt = trace.gantt(72);
    assert!(gantt.contains("mic0.link0"), "{gantt}");
    assert!(
        gantt.contains("mic0.p1") || gantt.contains("mic0.p0"),
        "{gantt}"
    );
    let chrome = trace.chrome_trace();
    assert!(chrome.contains("\"scale\""), "{chrome}");
    assert!(chrome.contains("h2d b0"), "{chrome}");

    // Counters: one kernel launch was measured, queue waits exist per
    // stream.
    assert_eq!(trace.counters.launch_overhead.count, 1);
    assert_eq!(trace.counters.queue_wait.len(), 2);
    assert!(!trace.counters.copy_busy_fraction.is_empty());

    // The same trace is also published on the context.
    assert!(ctx.take_native_trace().is_some());
}

#[test]
fn copy_engine_lane_never_overlaps_itself() {
    // Acceptance criterion (a): on a serial-duplex link the H2D and D2H
    // intervals share one engine, so the merged lane intervals of the raw
    // records must already be disjoint — merging must not shrink the count,
    // and consecutive intervals must not intersect. A throttled link makes
    // the copies long enough that any double-booking would be visible.
    let mut ctx = small_ctx(2);
    let bufs: Vec<_> = (0..4)
        .map(|i| ctx.alloc(format!("t{i}"), 1 << 14))
        .collect();
    for (i, b) in bufs.iter().enumerate() {
        let s = ctx.stream(i % 2).unwrap();
        ctx.h2d(s, *b).unwrap();
        ctx.d2h(s, *b).unwrap();
    }
    let report = ctx
        .run_native_with(&NativeConfig {
            trace: true,
            link_bandwidth: Some(50.0e6), // 64 KiB per copy -> ~1.3 ms each
            ..NativeConfig::default()
        })
        .unwrap();
    let trace = report.trace.unwrap();
    let raw: Vec<Interval> = trace
        .timeline
        .records
        .iter()
        .filter(|r| r.resource == Some(trace.kinds.links[0]))
        .map(|r| Interval {
            start: r.start,
            end: r.finish,
        })
        .collect();
    assert_eq!(raw.len(), 8, "4 h2d + 4 d2h on the single serial channel");
    let merged = merge_intervals(raw.clone());
    assert_eq!(
        merged.len(),
        raw.len(),
        "copy intervals double-booked the engine: {raw:?}"
    );
    // Pairwise: each interval intersected with the union of the others is
    // empty.
    for (i, iv) in merged.iter().enumerate() {
        let others: Vec<Interval> = merged
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, o)| *o)
            .collect();
        assert!(
            intersect(&[*iv], &others).is_empty(),
            "interval {iv:?} overlaps another engine interval"
        );
    }
}

#[test]
fn two_streams_hide_transfers_single_stream_does_not() {
    // Acceptance criterion (b): an overlappable 2-stream program measures a
    // strictly positive hidden fraction; the single-stream version of the
    // same work measures ~zero. Deterministic by construction: stream 0
    // launches a long kernel strictly after its transfer (event-ordered),
    // and stream 1's throttled transfer runs entirely inside that kernel's
    // window.
    let mut ctx = small_ctx(2);
    let a = ctx.alloc("a", 1 << 10);
    let b = ctx.alloc("b", 1 << 16); // 256 KiB -> ~5 ms at 50 MB/s
    let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
    ctx.h2d(s0, a).unwrap();
    let e = ctx.record_event(s0).unwrap();
    ctx.kernel(
        s0,
        native_kernel("long")
            .reading([a])
            .with_native(|_| std::thread::sleep(Duration::from_millis(40))),
    )
    .unwrap();
    ctx.wait_event(s1, e).unwrap();
    ctx.h2d(s1, b).unwrap();
    let cfg = NativeConfig {
        trace: true,
        link_bandwidth: Some(50.0e6),
        ..NativeConfig::default()
    };
    let overlapped = ctx.run_native_with(&cfg).unwrap().trace.unwrap().overlap();
    assert!(
        overlapped.hidden_fraction() > 0.2,
        "2-stream overlap must hide the big transfer: {overlapped:?}"
    );

    // Same actions on one stream: FIFO order forbids overlap.
    let mut ctx = small_ctx(1);
    let a = ctx.alloc("a", 1 << 10);
    let b = ctx.alloc("b", 1 << 16);
    let s = ctx.stream(0).unwrap();
    ctx.h2d(s, a).unwrap();
    ctx.kernel(
        s,
        native_kernel("long")
            .reading([a])
            .with_native(|_| std::thread::sleep(Duration::from_millis(40))),
    )
    .unwrap();
    ctx.h2d(s, b).unwrap();
    let serial = ctx.run_native_with(&cfg).unwrap().trace.unwrap().overlap();
    assert!(
        serial.hidden_fraction() < 0.01,
        "single stream must not overlap: {serial:?}"
    );
}

#[test]
fn panicking_kernel_still_yields_partial_trace() {
    // Satellite (f): run_native used to drop all stats on the panic path;
    // the RAII guard now publishes whatever was recorded before the failure.
    let mut ctx = small_ctx(1);
    let a = ctx.alloc("a", 1 << 10);
    let s = ctx.stream(0).unwrap();
    ctx.h2d(s, a).unwrap();
    ctx.kernel(s, native_kernel("ok").reading([a]).with_native(|_| {}))
        .unwrap();
    ctx.kernel(
        s,
        native_kernel("boom")
            .reading([a])
            .with_native(|_| panic!("boom")),
    )
    .unwrap();
    ctx.kernel(s, native_kernel("never").reading([a]).with_native(|_| {}))
        .unwrap();

    let err = ctx.run_native_with(&traced_cfg()).unwrap_err();
    assert!(matches!(err, hstreams::Error::KernelPanicked { .. }));

    let trace = ctx
        .take_native_trace()
        .expect("partial trace published on the error path");
    let labels: Vec<&str> = trace
        .timeline
        .records
        .iter()
        .map(|r| r.label.as_str())
        .collect();
    assert!(labels.contains(&"h2d b0"), "{labels:?}");
    assert!(labels.contains(&"ok"), "{labels:?}");
    // The failing kernel's span is recorded too — the Gantt names the
    // culprit.
    assert!(labels.contains(&"boom"), "{labels:?}");
    // Skipped work after the panic is absent.
    assert!(!labels.contains(&"never"), "{labels:?}");
}

#[test]
fn pool_jobs_are_counted_when_kernels_chunk_work() {
    let mut ctx = small_ctx(1);
    let a = ctx.alloc("a", 1 << 12);
    let b = ctx.alloc("b", 1 << 12);
    let s = ctx.stream(0).unwrap();
    ctx.h2d(s, a).unwrap();
    ctx.kernel(
        s,
        native_kernel("par")
            .reading([a])
            .writing([b])
            .with_native(|k| {
                let parts = k.threads.max(2);
                let input = k.reads[0];
                hstreams::parallel::par_chunks_mut(k.writes[0], parts, |_, off, chunk| {
                    for (i, o) in chunk.iter_mut().enumerate() {
                        *o = input[off + i] + 1.0;
                    }
                });
            }),
    )
    .unwrap();
    let report = ctx.run_native_with(&traced_cfg()).unwrap();
    let trace = report.trace.unwrap();
    assert!(
        trace.counters.pool_jobs >= 1,
        "chunked kernel body must count a pool job: {:?}",
        trace.counters
    );
    // The pool span rides on the control lane with its part count.
    assert!(
        trace
            .timeline
            .records
            .iter()
            .any(|r| r.resource.is_none() && r.label.starts_with("pool(")),
        "pool span missing"
    );
}

#[test]
fn scoped_executor_traces_identically() {
    // The baseline spawn-per-run path uses the same RunShared driver loop,
    // so tracing must work there too.
    let mut ctx = small_ctx(1);
    let a = ctx.alloc("a", 1 << 10);
    let s = ctx.stream(0).unwrap();
    ctx.h2d(s, a).unwrap();
    ctx.kernel(s, native_kernel("k").reading([a]).with_native(|_| {}))
        .unwrap();
    let report = ctx
        .run_native_with(&NativeConfig {
            trace: true,
            persistent: false,
            ..NativeConfig::default()
        })
        .unwrap();
    let trace = report.trace.unwrap();
    assert!(trace.timeline.records.iter().any(|r| r.label == "k"));
    assert!(trace.timeline.records.iter().any(|r| r.label == "h2d b0"));
}
