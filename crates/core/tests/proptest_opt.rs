//! Property tests for the sync-elision optimizer ([`hstreams::opt`]).
//!
//! [`build_synced`] programs are already minimal by construction: records
//! and waits are appended in global conflict order, so a redundant wait
//! would need a happens-before path that re-enters an earlier FIFO
//! position — impossible — and every event has exactly one waiter. That
//! makes them the perfect probe for both directions of the contract:
//!
//! * **no false elisions** — the optimizer must return the program
//!   byte-identical (every wait is load-bearing, every record is live);
//! * **no missed elisions** — duplicating any subset of waits injects
//!   redundancy the optimizer must remove *exactly*, restoring the
//!   pristine program.
//!
//! Either way the output must re-analyze clean, keep the happens-before
//! closure over conflicting pairs (checked independently via
//! [`certify`]), and execute to the same bits under the reference
//! interpreter. Racy inputs (one wait dropped) must come back untouched
//! with [`OptReport::skipped`] set — elision never papers over a program
//! the analyzer rejects.

use hstreams::action::Action;
use hstreams::check::{analyze, CheckEnv, Site};
use hstreams::opt::{certify, optimize};
use hstreams::program::Program;
use hstreams::testutil::{build_synced, drop_one_wait, RefExec};
use hstreams::types::StreamId;
use proptest::prelude::*;

/// Duplicate every `WaitEvent` in place (each copy directly after its
/// original), returning the oversynchronized program and how many waits
/// were injected. Each copy is trivially redundant: the record reaches it
/// through the original wait plus one FIFO hop.
fn duplicate_all_waits(p: &Program) -> (Program, usize) {
    let mut out = p.clone();
    let mut injected = 0usize;
    for si in 0..out.streams.len() {
        let mut ai = 0;
        while ai < out.streams[si].actions.len() {
            if let Action::WaitEvent(e) = out.streams[si].actions[ai] {
                out.insert_action(StreamId(si), ai + 1, Action::WaitEvent(e));
                injected += 1;
                ai += 2;
            } else {
                ai += 1;
            }
        }
    }
    (out, injected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn already_minimal_programs_come_back_byte_identical(
        n_streams in 2usize..5,
        conflicts in proptest::collection::vec((0usize..16, 0usize..16), 1..8),
    ) {
        let program = build_synced(n_streams, &conflicts);
        let env = CheckEnv::permissive(&program);
        let opt = optimize(&program, &env);

        prop_assert!(!opt.report.skipped, "clean input must be optimized");
        prop_assert!(!opt.report.reverted);
        prop_assert_eq!(
            opt.report.elided_actions(), 0,
            "every wait is load-bearing and every record is live: {:?}",
            opt.report
        );
        prop_assert_eq!(
            format!("{:?}", opt.program),
            format!("{:?}", program),
            "zero elisions must mean byte-identical output"
        );
        let cert = opt.report.certificate.as_ref().expect("optimized run carries a certificate");
        prop_assert!(cert.holds(), "certificate must verify: {cert:?}");
    }

    #[test]
    fn injected_redundant_waits_are_all_elided(
        n_streams in 2usize..5,
        conflicts in proptest::collection::vec((0usize..16, 0usize..16), 1..8),
    ) {
        let pristine = build_synced(n_streams, &conflicts);
        let (oversynced, injected) = duplicate_all_waits(&pristine);
        oversynced.validate().expect("duplicated waits stay structurally valid");
        let env = CheckEnv::permissive(&oversynced);
        prop_assert!(analyze(&oversynced, &env).report.is_clean());

        let opt = optimize(&oversynced, &env);
        prop_assert!(!opt.report.skipped && !opt.report.reverted);
        prop_assert_eq!(
            opt.report.elided_waits.len(), injected,
            "all {} injected duplicates are redundant, nothing else is: {:?}",
            injected, opt.report
        );
        prop_assert_eq!(opt.report.elided_records.len(), 0);
        prop_assert_eq!(opt.report.elided_barriers, 0);
        prop_assert_eq!(
            format!("{:?}", opt.program),
            format!("{:?}", pristine),
            "removing exactly the duplicates restores the pristine program"
        );

        // The certificate's closure claim, re-derived from the two
        // programs alone — independent of the transformation's bookkeeping.
        let cert = certify(&oversynced, &opt.program, &env);
        prop_assert!(cert.holds(), "independent certify must agree: {cert:?}");
        prop_assert!(cert.conflict_pairs > 0, "generator always makes conflicts");

        // And the behavioral claim: same bits under the reference
        // interpreter.
        let lens = vec![4usize; 2 * conflicts.len()];
        let a = RefExec::run_fifo(&oversynced, &lens).expect("clean program runs");
        let b = RefExec::run_fifo(&opt.program, &lens).expect("optimized program runs");
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.host_bits(), b.host_bits());
    }

    #[test]
    fn racy_inputs_are_refused_untouched(
        n_streams in 2usize..5,
        conflicts in proptest::collection::vec((0usize..16, 0usize..16), 1..8),
        pick in any::<proptest::sample::Index>(),
    ) {
        let broken = drop_one_wait(&build_synced(n_streams, &conflicts), pick.index(conflicts.len()));
        let env = CheckEnv::permissive(&broken);
        let opt = optimize(&broken, &env);
        prop_assert!(opt.report.skipped, "unclean input must be skipped, not optimized");
        prop_assert_eq!(opt.report.elided_actions(), 0);
        prop_assert!(opt.report.certificate.is_none());
        prop_assert_eq!(format!("{:?}", opt.program), format!("{:?}", broken));
    }
}

#[test]
fn single_duplicate_wait_maps_sites_through_the_report() {
    let pristine = build_synced(2, &[(0, 0), (1, 0)]);
    // Duplicate only the first wait; the optimizer scans stream order, so
    // the original (earlier, load-bearing) copy survives and the elided
    // site is the injected one.
    let mut over = pristine.clone();
    let (si, ai, e) = over
        .streams
        .iter()
        .enumerate()
        .find_map(|(si, s)| {
            s.actions.iter().enumerate().find_map(|(ai, a)| match a {
                Action::WaitEvent(e) => Some((si, ai, *e)),
                _ => None,
            })
        })
        .expect("generator emits waits");
    over.insert_action(StreamId(si), ai + 1, Action::WaitEvent(e));

    let env = CheckEnv::permissive(&over);
    let opt = optimize(&over, &env);
    assert_eq!(opt.report.elided_waits, vec![Site::new(si, ai + 1)]);
    assert_eq!(opt.report.map_site(Site::new(si, ai + 1)), None);
    assert_eq!(
        opt.report.map_site(Site::new(si, ai)),
        Some(Site::new(si, ai)),
        "actions before the elision keep their index"
    );
    // An action after the elided one shifts down by one.
    assert_eq!(
        opt.report.map_site(Site::new(si, ai + 2)),
        Some(Site::new(si, ai + 1))
    );
}

#[test]
fn dead_records_are_elided() {
    let pristine = build_synced(2, &[(0, 0)]);
    let mut p = pristine.clone();
    let end = p.streams[0].actions.len();
    p.insert_record_event(StreamId(0), end);
    let env = CheckEnv::permissive(&p);

    // A record nobody waits on is the analyzer's DeadEvent *warning*, not
    // an error — the program still analyzes clean and the optimizer
    // removes the record.
    let opt = optimize(&p, &env);
    assert!(
        !opt.report.skipped,
        "dead record is a warning, not an error"
    );
    assert_eq!(opt.report.elided_records, vec![Site::new(0, end)]);
    assert_eq!(format!("{:?}", opt.program), format!("{:?}", pristine));
}

#[test]
fn adjacent_barriers_collapse_but_the_load_bearing_one_survives() {
    use hstreams::testutil::{mix_kernel, stream_skeleton};
    use hstreams::types::BufId;

    // s0 produces buffer 0; two back-to-back barriers; s1 consumes it.
    // Exactly one barrier is implied by the other — and exactly one is
    // load-bearing, so the optimizer must remove one and keep one.
    let mut p = stream_skeleton(2, 2);
    p.streams[0].actions.push(Action::Transfer {
        dir: micsim::pcie::Direction::HostToDevice,
        buf: BufId(0),
    });
    p.streams[0]
        .actions
        .push(Action::Kernel(mix_kernel("w", [], [BufId(0)], 1.0)));
    for s in 0..2 {
        p.streams[s].actions.push(Action::Barrier(0));
        p.streams[s].actions.push(Action::Barrier(1));
    }
    p.barriers = 2;
    p.streams[1]
        .actions
        .push(Action::Kernel(mix_kernel("r", [BufId(0)], [BufId(1)], 1.0)));
    p.validate().expect("barrier program is well-formed");

    let env = CheckEnv::permissive(&p);
    assert!(analyze(&p, &env).report.is_clean());
    let opt = optimize(&p, &env);
    assert!(!opt.report.skipped && !opt.report.reverted);
    assert_eq!(opt.report.elided_barriers, 1, "{:?}", opt.report);
    assert_eq!(opt.program.barriers, 1);
    let cert = opt.report.certificate.as_ref().unwrap();
    assert!(cert.holds(), "{cert:?}");
    // Removing the survivor too would race the producer/consumer pair.
    assert!(analyze(&opt.program, &env).report.is_clean());
}
