//! Property test for the DAG schedulers: on randomly generated
//! well-synchronized programs, every scheduler either declines (FIFO
//! always does) or emits a schedule whose materialized program is still a
//! valid, HB-consistent program — it re-analyzes clean when fed back
//! through the same static analyzer the executors enforce, and it carries
//! exactly the recorded transfer/kernel work, nothing dropped and nothing
//! invented.
//!
//! The generator composes two structures the schedulers must respect:
//! per-stream tile chains (`h2d -> kernel -> d2h` over a private buffer,
//! ordered by data flow) and cross-stream producer/consumer conflicts
//! synchronized by one event each (ordered by sync edges). Randomizing
//! both together probes the interesting cases — schedules that move a
//! consumer kernel to a different lane than its producer must keep the
//! HB edge via a materialized event, or the analyzer flags a race.

use hstreams::action::Action;
use hstreams::check::{analyze, CheckEnv};
use hstreams::kernel::KernelDesc;
use hstreams::program::{EventSite, Program, StreamPlacement, StreamRecord};
use hstreams::sched::{plan_program, CostModel};
use hstreams::types::{BufId, EventId, StreamId};
use hstreams::SchedulerKind;
use micsim::compute::KernelProfile;
use micsim::device::DeviceId;
use micsim::pcie::Direction;
use proptest::prelude::*;

const PARTITIONS: usize = 4;

fn cost_model() -> CostModel {
    let cfg = micsim::PlatformConfig::phi_31sp();
    let mut platform = micsim::SimPlatform::new(cfg.clone()).unwrap();
    platform.init_partitions(DeviceId(0), PARTITIONS).unwrap();
    let plan = platform.plan(DeviceId(0)).unwrap().partitions.clone();
    CostModel::new(&cfg, &[plan], &[1u64 << 16; 64])
}

/// `tiles[s]` private chains on stream `s`, then one event-synchronized
/// producer/consumer conflict per entry of `conflicts` (same shape as the
/// analyzer proptest's generator). Buffer ids are disjoint by region:
/// chains use `2i`/`2i+1` below 32, conflicts use 32 and up.
fn build_program(tiles: &[usize], conflicts: &[(usize, usize)]) -> Program {
    let n_streams = tiles.len();
    let mut p = Program::default();
    for (i, _) in tiles.iter().enumerate() {
        p.streams.push(StreamRecord {
            id: StreamId(i),
            placement: StreamPlacement {
                device: DeviceId(0),
                partition: i % PARTITIONS,
            },
            actions: vec![],
        });
    }
    let mut next_buf = 0usize;
    for (s, &n) in tiles.iter().enumerate() {
        for t in 0..n {
            let a = BufId(next_buf);
            let b = BufId(next_buf + 1);
            next_buf += 2;
            p.streams[s].actions.push(Action::Transfer {
                dir: Direction::HostToDevice,
                buf: a,
            });
            p.streams[s].actions.push(Action::Kernel(
                KernelDesc::simulated(
                    format!("tile{s}_{t}"),
                    KernelProfile::streaming("k", 1e9),
                    1e7,
                )
                .reading([a])
                .writing([b]),
            ));
            p.streams[s].actions.push(Action::Transfer {
                dir: Direction::DeviceToHost,
                buf: b,
            });
        }
    }
    for (k, &(a, b)) in conflicts.iter().enumerate() {
        let producer = a % n_streams;
        let consumer = (producer + 1 + b % (n_streams - 1)) % n_streams;
        let buf = BufId(32 + k);
        let event = EventId(k);
        p.streams[producer].actions.push(Action::Transfer {
            dir: Direction::HostToDevice,
            buf,
        });
        p.events.push(EventSite {
            stream: StreamId(producer),
            action_index: p.streams[producer].actions.len(),
        });
        p.streams[producer].actions.push(Action::RecordEvent(event));
        p.streams[consumer].actions.push(Action::WaitEvent(event));
        p.streams[consumer].actions.push(Action::Kernel(
            KernelDesc::simulated(format!("use{k}"), KernelProfile::streaming("k", 1e9), 1e7)
                .reading([buf]),
        ));
    }
    p
}

/// Multiset fingerprint of the non-control actions: scheduling may reorder
/// and re-home work, never change it.
fn work_fingerprint(p: &Program) -> Vec<String> {
    let mut work: Vec<String> = p
        .streams
        .iter()
        .flat_map(|s| s.actions.iter())
        .filter_map(|a| match a {
            Action::Transfer { dir, buf } => Some(format!("{dir:?} {buf:?}")),
            Action::Kernel(desc) => Some(format!("kernel {}", desc.label)),
            _ => None,
        })
        .collect();
    work.sort();
    work
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_scheduler_emits_an_hb_consistent_order(
        tiles in proptest::collection::vec(0usize..4, 2..5),
        conflicts in proptest::collection::vec((0usize..16, 0usize..16), 0..6),
    ) {
        let program = build_program(&tiles, &conflicts);
        program.validate().expect("generator emits valid programs");
        let env = CheckEnv::permissive(&program);
        prop_assert!(analyze(&program, &env).report.is_clean());
        let fingerprint = work_fingerprint(&program);
        let cost = cost_model();

        for kind in SchedulerKind::all() {
            let Some((schedule, scheduled)) = plan_program(&program, &cost, kind) else {
                prop_assert!(
                    kind == SchedulerKind::Fifo || fingerprint.is_empty(),
                    "{kind} declined a clean non-empty program"
                );
                continue;
            };
            prop_assert!(kind != SchedulerKind::Fifo, "FIFO must always decline");
            scheduled
                .validate()
                .expect("materialized schedule is a valid program");
            let env = CheckEnv::permissive(&scheduled);
            let analysis = analyze(&scheduled, &env);
            prop_assert!(
                analysis.report.is_clean(),
                "{kind}: scheduled program must re-analyze HB-consistent:\n{}",
                scheduled.dump_annotated(&analysis.report)
            );
            prop_assert_eq!(
                work_fingerprint(&scheduled),
                fingerprint.clone(),
                "{} must preserve the recorded work exactly",
                kind
            );
            prop_assert_eq!(
                schedule.tasks.len(),
                fingerprint.len(),
                "{} schedules every non-control action exactly once",
                kind
            );
            for task in &schedule.tasks {
                prop_assert!(
                    task.finish >= task.start && task.finish <= schedule.makespan + 1e-12,
                    "{kind}: task interval out of bounds"
                );
            }
        }
    }
}
