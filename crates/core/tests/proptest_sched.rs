//! Property test for the DAG schedulers: on randomly generated
//! well-synchronized programs, every scheduler either declines (FIFO
//! always does) or emits a schedule whose materialized program is still a
//! valid, HB-consistent program — it re-analyzes clean when fed back
//! through the same static analyzer the executors enforce, and it carries
//! exactly the recorded transfer/kernel work, nothing dropped and nothing
//! invented.
//!
//! The generator composes two structures the schedulers must respect:
//! per-stream tile chains (`h2d -> kernel -> d2h` over a private buffer,
//! ordered by data flow) and cross-stream producer/consumer conflicts
//! synchronized by one event each (ordered by sync edges). Randomizing
//! both together probes the interesting cases — schedules that move a
//! consumer kernel to a different lane than its producer must keep the
//! HB edge via a materialized event, or the analyzer flags a race.

use hstreams::check::{analyze, CheckEnv};
use hstreams::sched::{plan_program, CostModel};
use hstreams::testutil::{build_chained, work_fingerprint};
use hstreams::SchedulerKind;
use micsim::device::DeviceId;
use proptest::prelude::*;

const PARTITIONS: usize = 4;

/// Region split for [`build_chained`]: tile chains use buffers below 32,
/// conflicts 32 and up.
const CHAIN_BUF_LIMIT: usize = 32;

fn cost_model() -> CostModel {
    let cfg = micsim::PlatformConfig::phi_31sp();
    let mut platform = micsim::SimPlatform::new(cfg.clone()).unwrap();
    platform.init_partitions(DeviceId(0), PARTITIONS).unwrap();
    let plan = platform.plan(DeviceId(0)).unwrap().partitions.clone();
    CostModel::new(&cfg, &[plan], &[1u64 << 16; 64])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_scheduler_emits_an_hb_consistent_order(
        tiles in proptest::collection::vec(0usize..4, 2..5),
        conflicts in proptest::collection::vec((0usize..16, 0usize..16), 0..6),
    ) {
        let program = build_chained(&tiles, &conflicts, PARTITIONS, CHAIN_BUF_LIMIT);
        program.validate().expect("generator emits valid programs");
        let env = CheckEnv::permissive(&program);
        prop_assert!(analyze(&program, &env).report.is_clean());
        let fingerprint = work_fingerprint(&program);
        let cost = cost_model();

        for kind in SchedulerKind::all() {
            let Some((schedule, scheduled)) = plan_program(&program, &cost, kind) else {
                prop_assert!(
                    kind == SchedulerKind::Fifo || fingerprint.is_empty(),
                    "{kind} declined a clean non-empty program"
                );
                continue;
            };
            prop_assert!(kind != SchedulerKind::Fifo, "FIFO must always decline");
            scheduled
                .validate()
                .expect("materialized schedule is a valid program");
            let env = CheckEnv::permissive(&scheduled);
            let analysis = analyze(&scheduled, &env);
            prop_assert!(
                analysis.report.is_clean(),
                "{kind}: scheduled program must re-analyze HB-consistent:\n{}",
                scheduled.dump_annotated(&analysis.report)
            );
            prop_assert_eq!(
                work_fingerprint(&scheduled),
                fingerprint.clone(),
                "{} must preserve the recorded work exactly",
                kind
            );
            prop_assert_eq!(
                schedule.tasks.len(),
                fingerprint.len(),
                "{} schedules every non-control action exactly once",
                kind
            );
            for task in &schedule.tasks {
                prop_assert!(
                    task.finish >= task.start && task.finish <= schedule.makespan + 1e-12,
                    "{kind}: task interval out of bounds"
                );
            }
        }
    }
}
