//! Integration tests for the static analyzer as wired into the runtime:
//! both executors refuse error-severity programs by default, the
//! [`CheckMode`] knob opts out, and reports are retrievable either way.

use hstreams::check::{analyze, CheckCode, CheckEnv, CheckMode, Severity};
use hstreams::context::Context;
use hstreams::kernel::KernelDesc;
use hstreams::program::{EventSite, Program};
use hstreams::types::{Error, EventId, StreamId};
use micsim::compute::KernelProfile;
use micsim::PlatformConfig;

fn ctx(partitions: usize) -> Context {
    Context::builder(PlatformConfig::phi_31sp())
        .partitions(partitions)
        .build()
        .unwrap()
}

fn native_kernel(label: &str) -> KernelDesc {
    KernelDesc::simulated(label, KernelProfile::streaming("k", 1e9), 1.0).with_native(|k| {
        for w in k.writes.iter_mut() {
            for x in w.iter_mut() {
                *x += 1.0;
            }
        }
    })
}

/// Two streams write the same buffer with no ordering — constructible
/// through the public API, unlike a deadlock (the API's record-before-wait
/// rule makes event cycles impossible to record; see `check_suite`'s
/// program-level test below for that shape).
fn record_racy_program(ctx: &mut Context) {
    let a = ctx.alloc("a", 64);
    for i in 0..2 {
        let s = ctx.stream(i).unwrap();
        ctx.kernel(s, native_kernel(&format!("w{i}")).writing([a]))
            .unwrap();
    }
}

#[test]
fn sim_refuses_racy_program_by_default() {
    let mut c = ctx(2);
    record_racy_program(&mut c);
    let err = c.run_sim().unwrap_err();
    let Error::Check(report) = err else {
        panic!("expected Error::Check, got: {err}");
    };
    assert!(report.errors().any(|d| d.code == CheckCode::Race));
    assert!(err_msg_mentions_check(&Error::Check(report)));
    // The refused run's report is also stashed on the context.
    assert!(!c.take_check_report().unwrap().is_clean());
    assert!(c.take_check_report().is_none(), "take drains");
}

fn err_msg_mentions_check(err: &Error) -> bool {
    err.to_string().contains("static check")
}

#[test]
fn native_refuses_racy_program_by_default() {
    let mut c = ctx(2);
    record_racy_program(&mut c);
    assert!(matches!(c.run_native(), Err(Error::Check(_))));
}

#[test]
fn warn_only_mode_runs_and_stashes_the_report() {
    let mut c = ctx(2);
    c.set_check_mode(CheckMode::WarnOnly);
    record_racy_program(&mut c);
    // The native executor serializes conflicting buffer access with locks,
    // so the deliberately-racy experiment still completes.
    c.run_native().unwrap();
    let report = c.take_check_report().expect("warn mode keeps the report");
    assert!(report.errors().any(|d| d.code == CheckCode::Race));
}

#[test]
fn off_mode_skips_analysis_entirely() {
    let mut c = Context::builder(PlatformConfig::phi_31sp())
        .partitions(2)
        .check_mode(CheckMode::Off)
        .build()
        .unwrap();
    assert_eq!(c.check_mode(), CheckMode::Off);
    record_racy_program(&mut c);
    c.run_sim().unwrap();
    assert!(c.take_check_report().is_none());
}

#[test]
fn clean_program_runs_with_enforcement_and_reports_clean() {
    let mut c = ctx(2);
    let a = c.alloc("a", 64);
    let b = c.alloc("b", 64);
    let (s0, s1) = (c.stream(0).unwrap(), c.stream(1).unwrap());
    c.h2d(s0, a).unwrap();
    let e = c.record_event(s0).unwrap();
    c.wait_event(s1, e).unwrap();
    c.kernel(s1, native_kernel("k").reading([a]).writing([b]))
        .unwrap();
    c.d2h(s1, b).unwrap();
    c.run_sim().unwrap();
    let report = c.take_check_report().expect("enforce mode stashes");
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.warnings().count(), 0);
    c.run_native().unwrap();
}

#[test]
fn mutual_wait_program_is_rejected_at_the_check_layer() {
    // The two-stream mutual wait `validate()` accepts: built directly as
    // a Program (the recording API cannot produce it — every wait follows
    // its record in call order, so API programs are cycle-free).
    let mut p = Program::default();
    let c = ctx(2);
    p.streams.clone_from(&c.program().streams); // two placed, empty streams
    p.streams[0].actions = vec![
        hstreams::action::Action::WaitEvent(EventId(1)),
        hstreams::action::Action::RecordEvent(EventId(0)),
    ];
    p.streams[1].actions = vec![
        hstreams::action::Action::WaitEvent(EventId(0)),
        hstreams::action::Action::RecordEvent(EventId(1)),
    ];
    p.events.push(EventSite {
        stream: StreamId(0),
        action_index: 1,
    });
    p.events.push(EventSite {
        stream: StreamId(1),
        action_index: 1,
    });
    p.validate().unwrap();
    let analysis = analyze(&p, &CheckEnv::permissive(&p));
    let deadlock = analysis
        .report
        .errors()
        .find(|d| d.code == CheckCode::DeadlockCycle)
        .expect("deadlock detected");
    assert_eq!(deadlock.severity(), Severity::Error);
    // The annotated dump points at an action on the cycle.
    let text = p.dump_annotated(&analysis.report);
    assert!(text.contains("^ error[deadlock-cycle]"), "{text}");
}

#[test]
fn replayed_programs_pass_the_recheck() {
    // A resilient run with an injected kernel panic swaps in a replay
    // program; with checking enforced the replay must also pass (single
    // stream, FIFO-ordered, so it does) and the run still recovers.
    use hstreams::{FaultPlan, NativeConfig};
    let mut c = ctx(2);
    let a = c.alloc("a", 64);
    let b = c.alloc("b", 64);
    for (i, &buf) in [a, b].iter().enumerate() {
        let s = c.stream(i).unwrap();
        c.h2d(s, buf).unwrap();
        c.kernel(s, native_kernel(&format!("k{i}")).writing([buf]))
            .unwrap();
        c.d2h(s, buf).unwrap();
    }
    let plan = FaultPlan::seeded(7).panic_kernel_at(1, 1);
    let cfg = NativeConfig {
        fault: Some(plan.into()),
        ..NativeConfig::default()
    };
    let report = c.run_native_resilient(&cfg).unwrap();
    assert!(report.faults.degraded_runs >= 1, "replay actually happened");
    assert_eq!(c.read_host(b).unwrap()[0], 1.0, "skipped work replayed");
}
