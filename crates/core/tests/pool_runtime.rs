//! Integration checks for the persistent worker-pool runtime: repeated
//! native runs must reuse the same OS threads, and kernels placed on
//! distinct partitions must genuinely overlap.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hstreams::kernel::KernelDesc;
use hstreams::{Context, NativeConfig};
use micsim::compute::KernelProfile;
use micsim::PlatformConfig;

fn prof() -> KernelProfile {
    KernelProfile::streaming("k", 1e9)
}

/// OS threads in this process (Linux); falls back to 0 elsewhere so the
/// growth assertion degrades to comparing the runtime's own count.
fn os_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(std::iter::Iterator::count)
        .unwrap_or(0)
}

#[test]
fn hundred_runs_do_not_grow_thread_count() {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(4)
        .build()
        .unwrap();
    let bufs: Vec<_> = (0..4).map(|i| ctx.alloc(format!("b{i}"), 256)).collect();
    for (i, &b) in bufs.iter().enumerate() {
        let s = ctx.stream(i).unwrap();
        ctx.h2d(s, b).unwrap();
        ctx.kernel(
            s,
            KernelDesc::simulated(format!("k{i}"), prof(), 256.0)
                .writing([b])
                .with_native(|k| {
                    let parts = k.threads;
                    hstreams::parallel::par_chunks_mut(k.writes[0], parts, |_, off, chunk| {
                        for (j, x) in chunk.iter_mut().enumerate() {
                            *x = (off + j) as f32;
                        }
                    });
                }),
        )
        .unwrap();
        ctx.d2h(s, b).unwrap();
    }

    // First run builds the persistent runtime.
    ctx.run_native().unwrap();
    let rt_threads = ctx.native_thread_count().expect("runtime built");
    let os_threads = os_thread_count();

    for _ in 0..99 {
        ctx.run_native().unwrap();
    }

    assert_eq!(
        ctx.native_thread_count().unwrap(),
        rt_threads,
        "runtime thread count grew across 100 runs"
    );
    if os_threads > 0 {
        assert_eq!(
            os_thread_count(),
            os_threads,
            "process thread count grew across 100 runs"
        );
    }
    let expect: Vec<f32> = (0..256).map(|j| j as f32).collect();
    for &b in &bufs {
        assert_eq!(ctx.read_host(b).unwrap(), expect);
    }
}

#[test]
fn cross_partition_kernels_overlap_scoped_and_persistent() {
    // Each kernel waits (bounded) until both are inside their bodies; the
    // flag can only be set if the two partitions run concurrently. A
    // serialized runtime would time out and fail the assertion rather than
    // deadlock. Checked on both executors.
    for persistent in [true, false] {
        let inside = Arc::new(AtomicUsize::new(0));
        let overlapped = Arc::new(AtomicBool::new(false));
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        for i in 0..2 {
            let s = ctx.stream(i).unwrap();
            let inside = inside.clone();
            let overlapped = overlapped.clone();
            ctx.kernel(
                s,
                KernelDesc::simulated(format!("k{i}"), prof(), 1.0).with_native(move |_| {
                    inside.fetch_add(1, Ordering::SeqCst);
                    let deadline = Instant::now() + Duration::from_secs(5);
                    while Instant::now() < deadline {
                        // Break as soon as either body observed both inside.
                        if inside.load(Ordering::SeqCst) == 2 || overlapped.load(Ordering::SeqCst) {
                            overlapped.store(true, Ordering::SeqCst);
                            break;
                        }
                        std::thread::yield_now();
                    }
                    inside.fetch_sub(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
        }
        ctx.run_native_with(&NativeConfig {
            persistent,
            ..NativeConfig::default()
        })
        .unwrap();
        assert!(
            overlapped.load(Ordering::SeqCst),
            "kernels on distinct partitions must overlap (persistent={persistent})"
        );
    }
}

#[test]
fn pool_backed_and_scoped_runs_agree_numerically() {
    // The same multi-stream, multi-stage program on both executors: the
    // pool-backed fast path must not change any observable numerics.
    let build = |cfg: &NativeConfig| {
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .streams_per_partition(2)
            .build()
            .unwrap();
        let x = ctx.alloc("x", 1024);
        let y = ctx.alloc("y", 1024);
        ctx.write_host(x, &[0.5; 1024]).unwrap();
        let s: Vec<_> = (0..4).map(|i| ctx.stream(i).unwrap()).collect();
        ctx.h2d(s[0], x).unwrap();
        let e = ctx.record_event(s[0]).unwrap();
        ctx.wait_event(s[1], e).unwrap();
        ctx.kernel(
            s[1],
            KernelDesc::simulated("scale", prof(), 1024.0)
                .reading([x])
                .writing([y])
                .with_native(|k| {
                    let parts = k.threads;
                    let input = k.reads[0];
                    hstreams::parallel::par_chunks_mut(k.writes[0], parts, |_, off, chunk| {
                        for (j, o) in chunk.iter_mut().enumerate() {
                            *o = input[off + j] * 4.0 + 1.0;
                        }
                    });
                }),
        )
        .unwrap();
        ctx.barrier();
        ctx.kernel(
            s[3],
            KernelDesc::simulated("sum", prof(), 1024.0)
                .reading([y])
                .writing([x])
                .with_native(|k| {
                    let parts = k.threads;
                    let input = k.reads[0];
                    let total = hstreams::parallel::par_reduce(
                        input.len(),
                        parts,
                        |range| range.map(|j| input[j]).sum::<f32>(),
                        |a, b| a + b,
                        0.0,
                    );
                    k.writes[0][0] = total;
                }),
        )
        .unwrap();
        ctx.d2h(s[3], x).unwrap();
        ctx.run_native_with(cfg).unwrap();
        ctx.read_host(x).unwrap()
    };
    let pooled = build(&NativeConfig::default());
    let scoped = build(&NativeConfig {
        persistent: false,
        ..NativeConfig::default()
    });
    assert_eq!(pooled[0], 3072.0);
    assert_eq!(pooled, scoped);
}
