//! Property tests for the metrics histograms: the algebraic laws the
//! module docs promise (`merge` associative and commutative, equal to
//! recording the combined sample set), the bucketing invariant (every
//! value lands in a bucket whose `[lo, hi]` range contains it), and the
//! quantile error bound (the estimate lies inside the bucket of the true
//! rank statistic, so it is within 25 % of it and exact below 16).

use hstreams::metrics::hist::{bucket_bounds, bucket_of, HistCell, HistogramSnapshot, BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;

/// Record a sample set into a fresh cell and snapshot it.
fn snap(samples: &[u64]) -> HistogramSnapshot {
    let cell = HistCell::default();
    for &v in samples {
        cell.record(v);
    }
    cell.snapshot()
}

/// Mixed-magnitude sample strategy: small exact-bucket values, mid-range,
/// and large octaves all appear, so the properties exercise every bucket
/// regime rather than just one.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    vec(0u64..u64::MAX, 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn merge_is_commutative(a in samples(), b in samples()) {
        let (sa, sb) = (snap(&a), snap(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative_and_matches_combined_recording(
        a in samples(),
        b in samples(),
        c in samples(),
    ) {
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // Both must equal one cell that saw every sample.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &snap(&all));
    }

    #[test]
    fn buckets_cover_every_value(v in 0u64..u64::MAX) {
        let idx = bucket_of(v);
        prop_assert!(idx < BUCKETS);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v && v <= hi, "{} outside bucket {} = [{}, {}]", v, idx, lo, hi);
        // Exact below 16 (the linear region).
        if v < 16 {
            prop_assert_eq!((lo, hi), (v, v));
        }
    }

    #[test]
    fn quantile_is_bounded_by_the_rank_statistic_bucket(
        raw in vec(0u64..u64::MAX, 1..40),
        qn in 1u64..=100,
    ) {
        let q = qn as f64 / 100.0;
        let s = snap(&raw);
        let est = s.quantile(q);
        // The true order statistic the quantile names (1-based rank).
        let mut sorted = raw.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        // The estimate must lie inside the bucket holding the truth —
        // that is the ≤25 % relative error bound, and exactness below 16.
        let (lo, hi) = bucket_bounds(bucket_of(truth));
        prop_assert!(
            est >= lo && est <= hi,
            "q={} estimate {} outside truth {}'s bucket [{}, {}]",
            q, est, truth, lo, hi
        );
        prop_assert!(est <= s.max);
        if truth < 16 {
            prop_assert_eq!(est, truth);
        }
    }
}
