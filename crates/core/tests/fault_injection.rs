//! Fault-injection integration tests: a seeded [`FaultPlan`] must break the
//! native executor in exactly the planned places, the retry/isolation
//! machinery must contain what it can, and everything it cannot contain
//! must surface as a typed error with recovery material — never a crashed
//! process, a hang, or silently wrong data.

use std::sync::Arc;
use std::time::Duration;

use hstreams::kernel::KernelDesc;
use hstreams::{Context, Error, FaultPlan, NativeConfig};
use micsim::compute::KernelProfile;
use micsim::PlatformConfig;

fn small_ctx(partitions: usize) -> Context {
    Context::builder(PlatformConfig::phi_31sp())
        .partitions(partitions)
        .build()
        .unwrap()
}

fn add1_kernel(label: &str) -> KernelDesc {
    KernelDesc::simulated(label, KernelProfile::streaming("k", 1e9), 1.0).with_native(|k| {
        for (o, i) in k.writes[0].iter_mut().zip(k.reads[0]) {
            *o = i + 1.0;
        }
    })
}

fn faulted_cfg(plan: FaultPlan) -> NativeConfig {
    NativeConfig {
        fault: Some(Arc::new(plan)),
        ..NativeConfig::default()
    }
}

/// One stream, h2d → add1 → d2h. Returns (ctx, input buf, output buf).
fn roundtrip_ctx() -> (Context, hstreams::BufId, hstreams::BufId) {
    let mut ctx = small_ctx(1);
    let a = ctx.alloc("a", 8);
    let b = ctx.alloc("b", 8);
    ctx.write_host(a, &[1., 2., 3., 4., 5., 6., 7., 8.])
        .unwrap();
    let s = ctx.stream(0).unwrap();
    ctx.h2d(s, a).unwrap();
    ctx.kernel(s, add1_kernel("add1").reading([a]).writing([b]))
        .unwrap();
    ctx.d2h(s, b).unwrap();
    (ctx, a, b)
}

/// Two partitions, one independent h2d → add1 → d2h pipeline per stream.
fn two_lane_ctx() -> (Context, Vec<hstreams::BufId>, Vec<hstreams::BufId>) {
    let mut ctx = small_ctx(2);
    let mut ins = Vec::new();
    let mut outs = Vec::new();
    for lane in 0..2usize {
        let a = ctx.alloc(format!("a{lane}"), 4);
        let b = ctx.alloc(format!("b{lane}"), 4);
        let base = (lane * 10) as f32;
        ctx.write_host(a, &[base, base + 1.0, base + 2.0, base + 3.0])
            .unwrap();
        let s = ctx.stream(lane).unwrap();
        ctx.h2d(s, a).unwrap();
        ctx.kernel(
            s,
            add1_kernel(&format!("k{lane}")).reading([a]).writing([b]),
        )
        .unwrap();
        ctx.d2h(s, b).unwrap();
        ins.push(a);
        outs.push(b);
    }
    (ctx, ins, outs)
}

// ----- transfer retries -----------------------------------------------------

#[test]
fn transfer_retries_recover_and_are_counted() {
    let (ctx, _a, b) = roundtrip_ctx();
    // The h2d at (stream 0, action 0) fails twice; the default budget of 3
    // retries absorbs that.
    let plan = FaultPlan::seeded(1)
        .transfer_failures(0.0, 2)
        .fail_transfer_at(0, 0);
    let report = ctx.run_native_with(&faulted_cfg(plan)).unwrap();
    assert_eq!(report.faults.transfer_retries, 2);
    assert_eq!(report.faults.transfers_failed, 0);
    assert_eq!(
        ctx.read_host(b).unwrap(),
        vec![2., 3., 4., 5., 6., 7., 8., 9.],
        "a retried transfer must still deliver the data"
    );
}

#[test]
fn exhausted_retry_budget_is_a_typed_fault() {
    let (ctx, _a, _b) = roundtrip_ctx();
    let plan = FaultPlan::seeded(1)
        .transfer_failures(0.0, 10)
        .fail_transfer_at(0, 0);
    let err = ctx.run_native_with(&faulted_cfg(plan)).unwrap_err();
    match err {
        Error::Fault { site, attempts } => {
            assert!(
                site.contains("transfer s0#0"),
                "site names the action: {site}"
            );
            // Initial attempt + 3 retries.
            assert_eq!(attempts, 4);
        }
        other => panic!("expected Error::Fault, got {other:?}"),
    }
    let state = ctx.take_recovery_state().expect("failed run leaves state");
    assert_eq!(state.faults.transfers_failed, 1);
    assert_eq!(state.faults.transfer_retries, 3);
}

// ----- kernel panics and isolation ------------------------------------------

#[test]
fn injected_panic_aborts_run_without_isolation() {
    let (ctx, _a, _b) = roundtrip_ctx();
    let plan = FaultPlan::seeded(2).panic_kernel_at(0, 1);
    let err = ctx.run_native_with(&faulted_cfg(plan)).unwrap_err();
    assert!(
        matches!(err, Error::KernelPanicked { ref kernel } if kernel == "add1"),
        "{err}"
    );
    let state = ctx.take_recovery_state().unwrap();
    assert_eq!(state.faults.injected_kernel_panics, 1);
    assert_eq!(state.faults.kernel_panics, 1);
    assert!(state.skipped.is_empty(), "no isolation: nothing to replay");
}

#[test]
fn isolation_poisons_one_partition_and_spares_the_other() {
    let (ctx, _ins, outs) = two_lane_ctx();
    let plan = FaultPlan::seeded(3).panic_kernel_at(0, 1);
    let cfg = NativeConfig {
        isolate_partitions: true,
        ..faulted_cfg(plan)
    };
    let err = ctx.run_native_with(&cfg).unwrap_err();
    assert!(
        matches!(
            err,
            Error::PartitionLost {
                device: 0,
                partition: 0,
                ref kernel
            } if kernel == "k0"
        ),
        "{err}"
    );
    // The healthy lane ran to completion despite the loss next door.
    assert_eq!(ctx.read_host(outs[1]).unwrap(), vec![11., 12., 13., 14.]);
    let state = ctx.take_recovery_state().unwrap();
    assert_eq!(state.lost, vec![(0, 0, "k0".to_string())]);
    // The poisoned lane's kernel and its tainted d2h were both skipped, in
    // program order.
    assert_eq!(state.skipped, vec![(0, 1), (0, 2)]);
    assert_eq!(state.faults.lost_partitions, 1);
    assert_eq!(state.faults.skipped_actions, 2);
}

#[test]
fn resilient_run_replays_lost_work_on_survivors() {
    let (mut ctx, _ins, outs) = two_lane_ctx();
    let plan = FaultPlan::seeded(4).panic_kernel_at(0, 1);
    let resilient = ctx
        .run_native_resilient(&faulted_cfg(plan))
        .expect("replay on the surviving partition recovers the run");
    assert_eq!(resilient.degraded_runs(), 1);
    assert_eq!(resilient.replayed_actions(), 2);
    assert_eq!(resilient.faults.lost_partitions, 1);
    assert_eq!(resilient.lost_partitions, vec![(0, 0, "k0".to_string())]);
    // Both lanes' outputs are exactly what a fault-free run produces.
    assert_eq!(ctx.read_host(outs[0]).unwrap(), vec![1., 2., 3., 4.]);
    assert_eq!(ctx.read_host(outs[1]).unwrap(), vec![11., 12., 13., 14.]);
    // The original program was restored: a clean re-run still works.
    ctx.run_native().unwrap();
    assert_eq!(ctx.read_host(outs[0]).unwrap(), vec![1., 2., 3., 4.]);
}

#[test]
fn resilient_run_gives_up_when_every_partition_dies() {
    let (mut ctx, _ins, _outs) = two_lane_ctx();
    // Both lanes' kernels panic: no survivor to replay on.
    let plan = FaultPlan::seeded(5)
        .panic_kernel_at(0, 1)
        .panic_kernel_at(1, 1);
    let err = ctx.run_native_resilient(&faulted_cfg(plan)).unwrap_err();
    assert!(matches!(err, Error::PartitionLost { .. }), "{err}");
}

// ----- replan / recovery interaction ----------------------------------------

/// Leave a pending `RecoveryState` behind by running the two-lane rig
/// with an isolated kernel panic on lane 0.
fn poisoned_two_lane() -> Context {
    let (ctx, _ins, _outs) = two_lane_ctx();
    let plan = FaultPlan::seeded(3).panic_kernel_at(0, 1);
    let cfg = NativeConfig {
        isolate_partitions: true,
        ..faulted_cfg(plan)
    };
    ctx.run_native_with(&cfg).unwrap_err();
    ctx
}

#[test]
fn replan_discards_stale_recovery_state() {
    // The recovery state's skipped/lost coordinates index the recorded
    // program; a successful replan throws that program away, so keeping
    // the state would hand a later resilient replay coordinates into a
    // freshly rebuilt (empty) stream set.
    let mut ctx = poisoned_two_lane();
    ctx.replan(1).unwrap();
    assert!(
        ctx.take_recovery_state().is_none(),
        "replan must not strand poisoned-partition taint"
    );
}

#[test]
fn failed_replan_keeps_recovery_state_consumable() {
    // A rejected replan keeps the old geometry and program, so the
    // pending recovery material is still valid — and must survive.
    let mut ctx = poisoned_two_lane();
    assert!(ctx.replan(999).is_err());
    let state = ctx
        .take_recovery_state()
        .expect("rejected replan leaves the pending recovery state intact");
    assert_eq!(state.skipped, vec![(0, 1), (0, 2)]);
}

#[test]
fn reset_and_install_discard_stale_recovery_state() {
    let mut ctx = poisoned_two_lane();
    ctx.reset_program();
    assert!(
        ctx.take_recovery_state().is_none(),
        "reset_program cleared the actions the state points into"
    );

    let ctx2 = poisoned_two_lane();
    let mut ctx2 = ctx2;
    let replacement = ctx2.program().clone();
    ctx2.install_program(replacement).unwrap();
    assert!(
        ctx2.take_recovery_state().is_none(),
        "install_program replaced the program the state points into"
    );
}

// ----- allocation faults ----------------------------------------------------

#[test]
fn alloc_fault_fails_before_any_work() {
    let (ctx, _a, _b) = roundtrip_ctx();
    let plan = FaultPlan::seeded(6).fail_alloc(1);
    let err = ctx.run_native_with(&faulted_cfg(plan)).unwrap_err();
    match err {
        Error::Fault { site, attempts } => {
            assert_eq!(site, "alloc b1");
            assert_eq!(attempts, 1);
        }
        other => panic!("expected Error::Fault, got {other:?}"),
    }
    let state = ctx.take_recovery_state().unwrap();
    assert_eq!(state.faults.alloc_faults, 1);
    assert!(state.skipped.is_empty(), "alloc faults are not replayable");
}

// ----- slow partitions ------------------------------------------------------

#[test]
fn slow_partition_stretches_native_kernel_occupancy() {
    let mut ctx = small_ctx(1);
    let a = ctx.alloc("a", 4);
    let s = ctx.stream(0).unwrap();
    ctx.kernel(
        s,
        KernelDesc::simulated("sleepy", KernelProfile::streaming("k", 1e9), 1.0)
            .writing([a])
            .with_native(|_| std::thread::sleep(Duration::from_millis(10))),
    )
    .unwrap();
    let plan = FaultPlan::seeded(7).slow_partition(0, 0, 4.0);
    let report = ctx.run_native_with(&faulted_cfg(plan)).unwrap();
    // Body >= 10 ms, stretched to >= 4x by the injected slowdown.
    assert!(
        report.wall >= Duration::from_millis(35),
        "slowdown not applied: wall = {:?}",
        report.wall
    );
}

// ----- fault-free plans are inert -------------------------------------------

#[test]
fn fault_free_plan_changes_nothing() {
    let (ctx, _a, b) = roundtrip_ctx();
    let clean = ctx.run_native().unwrap();
    let expected = ctx.read_host(b).unwrap();
    let report = ctx
        .run_native_with(&faulted_cfg(FaultPlan::seeded(99)))
        .unwrap();
    assert_eq!(report.faults, hstreams::FaultCounters::default());
    assert_eq!(report.bytes_transferred, clean.bytes_transferred);
    assert_eq!(ctx.read_host(b).unwrap(), expected);
}

// ----- post-panic runtime reuse (satellite) ---------------------------------

#[test]
fn persistent_runtime_is_clean_after_a_panicked_run() {
    let mut ctx = small_ctx(1);
    let a = ctx.alloc("a", 100);
    let b = ctx.alloc("b", 100);
    ctx.write_host(a, &vec![1.0; 100]).unwrap();
    let s = ctx.stream(0).unwrap();
    ctx.h2d(s, a).unwrap();
    ctx.kernel(
        s,
        KernelDesc::simulated("boom", KernelProfile::streaming("k", 1e9), 1.0)
            .reading([a])
            .writing([b])
            .with_native(|_| panic!("kaboom")),
    )
    .unwrap();
    ctx.d2h(s, b).unwrap();
    let traced = NativeConfig {
        trace: true,
        ..NativeConfig::default()
    };
    assert!(matches!(
        ctx.run_native_with(&traced),
        Err(Error::KernelPanicked { .. })
    ));
    let threads = ctx.native_thread_count().expect("runtime built");
    // Drop the partial trace the failed run published.
    assert!(ctx.take_native_trace().is_some());

    // Second run on the SAME runtime: a healthy program must see no stale
    // transfer-completion slots, byte counts, or trace buffers.
    ctx.reset_program();
    ctx.h2d(s, a).unwrap();
    ctx.kernel(s, add1_kernel("add1").reading([a]).writing([b]))
        .unwrap();
    ctx.d2h(s, b).unwrap();
    let report = ctx.run_native_with(&traced).unwrap();
    let elem = std::mem::size_of::<hstreams::Elem>() as u64;
    assert_eq!(
        report.bytes_transferred,
        200 * elem,
        "byte counter carries nothing over from the panicked run"
    );
    assert_eq!(ctx.read_host(b).unwrap(), vec![2.0; 100]);
    assert_eq!(
        ctx.native_thread_count(),
        Some(threads),
        "no threads respawned after the panic"
    );
    let trace = report.trace.expect("traced run");
    let labels: Vec<&str> = trace
        .timeline
        .records
        .iter()
        .map(|r| r.label.as_str())
        .collect();
    assert!(
        !labels.iter().any(|l| l.contains("boom")),
        "stale span from the panicked run leaked into the new trace: {labels:?}"
    );
    assert!(labels.iter().any(|l| l.contains("add1")), "{labels:?}");
    assert_eq!(report.faults, hstreams::FaultCounters::default());
}

// ----- sim-side pricing -----------------------------------------------------

#[test]
fn sim_prices_retries_on_the_link() {
    let (ctx, _a, _b) = roundtrip_ctx();
    let clean = ctx.run_sim().unwrap().makespan();
    let plan = FaultPlan::seeded(8)
        .transfer_failures(0.0, 2)
        .fail_transfer_at(0, 0);
    let faulted = ctx.run_sim_faulted(&plan).unwrap().makespan();
    assert!(
        faulted > clean,
        "failed attempts + backoff must cost time: {faulted:?} vs {clean:?}"
    );
}

#[test]
fn sim_surfaces_exhausted_retries_and_panics_as_typed_errors() {
    let (ctx, _a, _b) = roundtrip_ctx();
    let give_up = FaultPlan::seeded(9)
        .transfer_failures(0.0, 10)
        .fail_transfer_at(0, 0);
    assert!(matches!(
        ctx.run_sim_faulted(&give_up),
        Err(Error::Fault { attempts: 4, .. })
    ));
    let panic_plan = FaultPlan::seeded(9).panic_kernel_at(0, 1);
    assert!(matches!(
        ctx.run_sim_faulted(&panic_plan),
        Err(Error::PartitionLost {
            device: 0,
            partition: 0,
            ..
        })
    ));
    let alloc_plan = FaultPlan::seeded(9).fail_alloc(0);
    assert!(matches!(
        ctx.run_sim_faulted(&alloc_plan),
        Err(Error::Fault { attempts: 1, .. })
    ));
}

#[test]
fn sim_slow_partition_stretches_the_makespan() {
    let (ctx, _a, _b) = roundtrip_ctx();
    let clean = ctx.run_sim().unwrap().makespan();
    let plan = FaultPlan::seeded(10).slow_partition(0, 0, 3.0);
    let slowed = ctx.run_sim_faulted(&plan).unwrap().makespan();
    assert!(slowed > clean, "{slowed:?} vs {clean:?}");
}
