//! Property test for the static analyzer: randomly generated
//! well-synchronized programs analyze clean, and knocking any single
//! `WaitEvent` out of one turns it into a program the analyzer rejects —
//! with a **demonstrable** claim. The race witness's two schedules are
//! executed through the reference interpreter and must produce different
//! bits (the misorder is observable, not just declared); a deadlock
//! witness must wedge the FIFO interpretation.
//!
//! The generator ([`build_synced`]) builds raw [`Program`]s rather than
//! recording through a `Context`: the recording API cannot express the
//! broken variants (its record-before-wait rule keeps API programs
//! cycle-free), and the point is to probe the analyzer's semantics, not
//! the builder's. It is shared with the scheduler proptest and the
//! differential fuzzer's seed corpus via [`hstreams::testutil`].

use hstreams::check::{analyze, CheckCode, CheckEnv, WitnessKind};
use hstreams::testutil::{build_synced, drop_one_wait, RefExec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn well_synced_programs_are_clean_until_a_wait_goes_missing(
        n_streams in 2usize..5,
        conflicts in proptest::collection::vec((0usize..16, 0usize..16), 1..8),
        pick in any::<proptest::sample::Index>(),
    ) {
        let program = build_synced(n_streams, &conflicts);
        program.validate().expect("generator emits valid programs");
        let env = CheckEnv::permissive(&program);
        let analysis = analyze(&program, &env);
        prop_assert!(
            analysis.report.is_clean(),
            "well-synchronized program must analyze clean:\n{}",
            analysis.report.render()
        );
        prop_assert_eq!(
            analysis.report.warnings().count(), 0,
            "generator leaves no dead events or unproduced reads"
        );

        let broken = drop_one_wait(&program, pick.index(conflicts.len()));
        broken.validate().expect("still structurally valid without the wait");
        let analysis = analyze(&broken, &CheckEnv::permissive(&broken));
        let diag = analysis
            .report
            .errors()
            .find(|d| d.code == CheckCode::Race || d.code == CheckCode::DeadlockCycle);
        let Some(diag) = diag else {
            return Err(TestCaseError(format!(
                "removing one sync edge must surface a race or deadlock:\n{}",
                broken.dump_annotated(&analysis.report)
            )));
        };

        // The claim must be executable: conflict buffers are `k`, result
        // buffers `conflicts.len() + k`.
        let lens = vec![4usize; 2 * conflicts.len()];
        let witness = analysis.witness(&broken, diag);
        match &witness.kind {
            WitnessKind::Race { order_ab, order_ba, .. } => {
                prop_assert_eq!(order_ab.len(), broken.action_count());
                prop_assert_eq!(order_ba.len(), broken.action_count());
                let sab = RefExec::run_order(&broken, &lens, order_ab);
                let sba = RefExec::run_order(&broken, &lens, order_ba);
                prop_assert!(
                    sab.fingerprint() != sba.fingerprint(),
                    "executing the witness schedules must observably misorder \
                     the unsynchronized pair:\n{}",
                    broken.dump_annotated(&analysis.report)
                );
            }
            // Never produced by deleting an edge from an acyclic graph,
            // but if the analyzer ever claims it, the claim must hold.
            WitnessKind::Deadlock { cycle } => {
                prop_assert!(!cycle.is_empty());
                prop_assert!(
                    RefExec::run_fifo(&broken, &lens).is_err(),
                    "a claimed deadlock must wedge the FIFO interpretation"
                );
            }
            WitnessKind::Structural => {
                return Err(TestCaseError(
                    "a dropped wait is a scheduling hazard, not a structural defect".to_string(),
                ));
            }
        }
    }
}
