//! Property test for the static analyzer: randomly generated
//! well-synchronized programs analyze clean, and knocking any single
//! `WaitEvent` out of one turns it into a program the analyzer rejects
//! (shape-only: a race on the now-unordered producer/consumer pair, or —
//! never here, but accepted — a deadlock).
//!
//! The generator builds raw [`Program`]s rather than recording through a
//! [`Context`]: the recording API cannot express the broken variants (its
//! record-before-wait rule keeps API programs cycle-free), and the point
//! is to probe the analyzer's semantics, not the builder's.

use hstreams::action::Action;
use hstreams::check::{analyze, CheckCode, CheckEnv};
use hstreams::kernel::KernelDesc;
use hstreams::program::{EventSite, Program, StreamPlacement, StreamRecord};
use hstreams::types::{BufId, EventId, StreamId};
use micsim::compute::KernelProfile;
use micsim::device::DeviceId;
use micsim::pcie::Direction;
use proptest::prelude::*;

/// One producer/consumer conflict per entry: a fresh buffer uploaded and
/// event-recorded on the producer stream, then waited on and read by a
/// kernel on the consumer stream. Every cross-stream ordering in the
/// program flows through exactly one wait, so each wait is load-bearing.
fn build_synced(n_streams: usize, conflicts: &[(usize, usize)]) -> Program {
    let mut p = Program::default();
    for i in 0..n_streams {
        p.streams.push(StreamRecord {
            id: StreamId(i),
            placement: StreamPlacement {
                device: DeviceId(0),
                partition: i,
            },
            actions: vec![],
        });
    }
    for (k, &(a, b)) in conflicts.iter().enumerate() {
        let producer = a % n_streams;
        // Distinct from the producer by construction.
        let consumer = (producer + 1 + b % (n_streams - 1)) % n_streams;
        let buf = BufId(k);
        let event = EventId(k);
        p.streams[producer].actions.push(Action::Transfer {
            dir: Direction::HostToDevice,
            buf,
        });
        p.events.push(EventSite {
            stream: StreamId(producer),
            action_index: p.streams[producer].actions.len(),
        });
        p.streams[producer].actions.push(Action::RecordEvent(event));
        p.streams[consumer].actions.push(Action::WaitEvent(event));
        p.streams[consumer].actions.push(Action::Kernel(
            KernelDesc::simulated(format!("r{k}"), KernelProfile::streaming("read", 1e9), 1.0)
                .reading([buf]),
        ));
    }
    p
}

/// Remove the `pick`-th `WaitEvent` (in stream order) and re-point the
/// event table at the shifted `RecordEvent` sites so the program stays
/// structurally valid — only the synchronization edge is gone.
fn drop_one_wait(p: &Program, pick: usize) -> Program {
    let mut out = p.clone();
    let mut seen = 0usize;
    for s in 0..out.streams.len() {
        for i in 0..out.streams[s].actions.len() {
            if matches!(out.streams[s].actions[i], Action::WaitEvent(_)) {
                if seen == pick {
                    out.streams[s].actions.remove(i);
                    for site in &mut out.events {
                        if site.stream.0 == s && site.action_index > i {
                            site.action_index -= 1;
                        }
                    }
                    return out;
                }
                seen += 1;
            }
        }
    }
    unreachable!("pick is always in range: one wait per conflict");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn well_synced_programs_are_clean_until_a_wait_goes_missing(
        n_streams in 2usize..5,
        conflicts in proptest::collection::vec((0usize..16, 0usize..16), 1..8),
        pick in any::<proptest::sample::Index>(),
    ) {
        let program = build_synced(n_streams, &conflicts);
        program.validate().expect("generator emits valid programs");
        let env = CheckEnv::permissive(&program);
        let analysis = analyze(&program, &env);
        prop_assert!(
            analysis.report.is_clean(),
            "well-synchronized program must analyze clean:\n{}",
            analysis.report.render()
        );
        prop_assert_eq!(
            analysis.report.warnings().count(), 0,
            "generator leaves no dead events or unproduced reads"
        );

        let broken = drop_one_wait(&program, pick.index(conflicts.len()));
        broken.validate().expect("still structurally valid without the wait");
        let analysis = analyze(&broken, &CheckEnv::permissive(&broken));
        prop_assert!(
            analysis.report.errors().any(|d| {
                d.code == CheckCode::Race || d.code == CheckCode::DeadlockCycle
            }),
            "removing one sync edge must surface a race or deadlock:\n{}",
            broken.dump_annotated(&analysis.report)
        );
    }
}
