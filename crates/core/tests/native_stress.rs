//! Concurrency stress for the native executor: many streams, long FIFO
//! chains, dense cross-stream event webs, repeated barriers — the shapes
//! that shake out ordering races, deadlocks, and lost wakeups.

use hstreams::kernel::KernelDesc;
use hstreams::{Context, NativeConfig};
use micsim::compute::KernelProfile;
use micsim::PlatformConfig;

fn prof() -> KernelProfile {
    KernelProfile::streaming("k", 1e9)
}

/// A long chain of cross-stream handoffs: stream i increments the value and
/// passes it to stream i+1 via an event, wrapping around many times. Any
/// lost event or misordered kernel breaks the final count.
#[test]
fn event_relay_ring() {
    let streams = 8;
    let laps = 25;
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(streams)
        .build()
        .unwrap();
    let token = ctx.alloc("token", 1);
    let mut prev_event = None;
    for lap in 0..laps {
        for i in 0..streams {
            let s = ctx.stream(i).unwrap();
            if let Some(e) = prev_event {
                ctx.wait_event(s, e).unwrap();
            }
            ctx.kernel(
                s,
                KernelDesc::simulated(format!("inc({lap},{i})"), prof(), 1.0)
                    .writing([token])
                    .with_native(|k| k.writes[0][0] += 1.0),
            )
            .unwrap();
            prev_event = Some(ctx.record_event(s).unwrap());
        }
        // Hand the token back to stream 0 for the next lap: handled by the
        // wait at the top of the loop.
    }
    // The final increment ran on the last stream; its FIFO orders the
    // readback transfer after it.
    let s_writer = ctx.stream(streams - 1).unwrap();
    ctx.d2h(s_writer, token).unwrap();
    ctx.run_native().unwrap();
    assert_eq!(
        ctx.read_host(token).unwrap(),
        vec![(streams * laps) as f32],
        "every increment must land exactly once, in order"
    );
}

/// Dense barrier ladder: every stream bumps its own counter between
/// barriers; after each barrier one stream checks the global invariant.
#[test]
fn barrier_ladder_consistency() {
    let streams = 6;
    let rounds = 12;
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(streams)
        .build()
        .unwrap();
    let counters: Vec<_> = (0..streams)
        .map(|i| ctx.alloc(format!("c{i}"), 1))
        .collect();
    let check = ctx.alloc("check", 1);
    for round in 0..rounds {
        for (i, &c) in counters.iter().enumerate() {
            let s = ctx.stream(i).unwrap();
            ctx.kernel(
                s,
                KernelDesc::simulated(format!("bump({round},{i})"), prof(), 1.0)
                    .writing([c])
                    .with_native(|k| k.writes[0][0] += 1.0),
            )
            .unwrap();
        }
        ctx.barrier();
        // Stream `round % streams` sums all counters; with the barrier the
        // sum must be exactly streams * (round + 1).
        let s = ctx.stream(round % streams).unwrap();
        let expect = (streams * (round + 1)) as f32;
        ctx.kernel(
            s,
            KernelDesc::simulated(format!("check({round})"), prof(), 1.0)
                .reading(counters.iter().copied())
                .writing([check])
                .with_native(move |k| {
                    let sum: f32 = k.reads.iter().map(|r| r[0]).sum();
                    assert_eq!(sum, expect, "barrier must separate rounds");
                    k.writes[0][0] = sum;
                }),
        )
        .unwrap();
        ctx.barrier();
    }
    let s0 = ctx.stream(0).unwrap();
    ctx.d2h(s0, check).unwrap();
    ctx.run_native().unwrap();
    assert_eq!(
        ctx.read_host(check).unwrap(),
        vec![(streams * rounds) as f32]
    );
}

/// Many tiny transfers through the serialized copy engine while kernels run:
/// checks the engine never drops or reorders same-stream copies.
#[test]
fn copy_engine_hammering() {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(4)
        .build()
        .unwrap();
    let n_bufs = 64;
    let bufs: Vec<_> = (0..n_bufs)
        .map(|i| ctx.alloc(format!("b{i}"), 16))
        .collect();
    for (i, &b) in bufs.iter().enumerate() {
        ctx.write_host(b, &[i as f32; 16]).unwrap();
        let s = ctx.stream(i % 4).unwrap();
        ctx.h2d(s, b).unwrap();
        ctx.kernel(
            s,
            KernelDesc::simulated(format!("x2({i})"), prof(), 16.0)
                .writing([b])
                .with_native(|k| {
                    for v in k.writes[0].iter_mut() {
                        *v *= 2.0;
                    }
                }),
        )
        .unwrap();
        ctx.d2h(s, b).unwrap();
    }
    let report = ctx.run_native().unwrap();
    assert_eq!(report.actions_executed, n_bufs * 3);
    for (i, &b) in bufs.iter().enumerate() {
        assert_eq!(ctx.read_host(b).unwrap(), vec![2.0 * i as f32; 16]);
    }
}

/// The whole circus at once, repeated: events + barriers + transfers +
/// shared-partition streams, checked for deadlock by simply finishing.
#[test]
fn mixed_stress_repeated() {
    for round in 0..5 {
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(3)
            .streams_per_partition(2)
            .build()
            .unwrap();
        let data = ctx.alloc("data", 32);
        let out = ctx.alloc("out", 32);
        let s: Vec<_> = (0..6).map(|i| ctx.stream(i).unwrap()).collect();
        ctx.write_host(data, &[1.0; 32]).unwrap();
        ctx.h2d(s[0], data).unwrap();
        let e0 = ctx.record_event(s[0]).unwrap();
        for stream in s.iter().skip(1) {
            ctx.wait_event(*stream, e0).unwrap();
        }
        ctx.barrier();
        ctx.kernel(
            s[round % 6],
            KernelDesc::simulated("work", prof(), 32.0)
                .reading([data])
                .writing([out])
                .with_native(|k| {
                    for (o, i) in k.writes[0].iter_mut().zip(k.reads[0]) {
                        *o = i + 41.0;
                    }
                }),
        )
        .unwrap();
        ctx.barrier();
        ctx.d2h(s[5], out).unwrap();
        ctx.run_native().unwrap();
        assert_eq!(ctx.read_host(out).unwrap(), vec![42.0; 32]);
    }
}

/// Throttled link under contention: total wall time respects the bandwidth
/// floor even with 8 streams fighting for the engine.
#[test]
fn throttled_link_respects_floor_under_contention() {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(8)
        .build()
        .unwrap();
    let per_buf = 64 << 10; // 256 KiB each
    for i in 0..8 {
        let b = ctx.alloc(format!("b{i}"), per_buf);
        let s = ctx.stream(i).unwrap();
        ctx.h2d(s, b).unwrap();
    }
    let report = ctx
        .run_native_with(&NativeConfig {
            link_bandwidth: Some(100.0e6),
            ..NativeConfig::default()
        })
        .unwrap();
    // 8 x 256 KiB = 2 MiB at 100 MB/s => at least ~20 ms.
    assert!(
        report.wall.as_millis() >= 18,
        "bandwidth floor violated: {:?}",
        report.wall
    );
}
