//! The simulator executor.
//!
//! Lowers a recorded program onto the `micsim` task-DAG engine:
//!
//! * each card's PCIe link becomes one resource per channel (one channel in
//!   the Phi's serial-duplex mode — this is what serializes H2D against D2H);
//! * each partition becomes one resource, serializing kernels launched by
//!   the stream(s) bound to it;
//! * per-stream FIFO order becomes a dependency chain;
//! * events become cross-stream edges, barriers become join/fork points
//!   priced at the platform's sync overhead.
//!
//! Lowering walks the streams with a work-list so cross-stream event edges
//! can point forward in program order; a cycle of event waits (a genuine
//! user deadlock) is detected and reported instead of hanging.

use std::collections::BTreeMap;

use micsim::compute::KernelInvocation;
use micsim::engine::{Engine, ResourceId, TaskId, TaskSpec, Timeline};
use micsim::time::SimDuration;
use micsim::trace::{
    overlap_stats, partition_stats, render_gantt, OverlapStats, PartitionStats, ResourceKinds,
};

use crate::action::Action;
use crate::context::Context;
use crate::fault::{FaultPlan, RetryPolicy};
use crate::metrics::{MetricsRegistry, MetricsSnapshot, RunInstruments};
use crate::types::{Error, Result};

/// Result of a simulated run.
#[derive(Debug)]
pub struct SimReport {
    /// The full task timeline.
    pub timeline: Timeline,
    /// Resource classification (links vs partitions).
    pub kinds: ResourceKinds,
    /// Human-readable resource names, for Gantt rendering.
    pub names: BTreeMap<ResourceId, String>,
    /// The run's metric snapshot, when the context's
    /// [metrics flag](crate::context::ContextBuilder::metrics) is set —
    /// the same instrument catalog the native executor exports, priced
    /// from the simulated timeline. Fully deterministic: identical runs
    /// export byte-identical JSONL/OpenMetrics text. `None` when metrics
    /// are off.
    pub metrics: Option<MetricsSnapshot>,
}

impl SimReport {
    /// End-to-end simulated time.
    pub fn makespan(&self) -> SimDuration {
        self.timeline.makespan
    }

    /// Temporal-sharing statistics: link busy, compute busy, overlap.
    pub fn overlap(&self) -> OverlapStats {
        overlap_stats(&self.timeline, &self.kinds)
    }

    /// Per-partition busy/idle breakdown (the host resource included, as
    /// in [`ResourceKinds`]). A starved partition — a `T < P` record, or a
    /// straggler tile serializing its siblings — shows as `idle_fraction`
    /// near 1 and a long `longest_gap`.
    pub fn partition_stats(&self) -> Vec<PartitionStats> {
        partition_stats(&self.timeline, &self.kinds)
    }

    /// ASCII Gantt chart of the run, `width` columns wide.
    pub fn gantt(&self, width: usize) -> String {
        render_gantt(&self.timeline, &self.names, width)
    }

    /// What limited this run: per-label-prefix time along the critical
    /// path (e.g. `gemm: 740 ms, h2d: 12 ms, barrier#: 3 ms`).
    pub fn critical_path_breakdown(&self) -> Vec<(String, SimDuration)> {
        self.timeline.critical_path_breakdown()
    }
}

/// Validate and simulate the context's recorded program.
pub fn run(ctx: &Context) -> Result<SimReport> {
    run_with(ctx, None, &RetryPolicy::default())
}

/// Simulate under a fault plan: failed transfer attempts and their backoffs
/// are priced on the link, slow partitions stretch kernel time, injected
/// kernel panics surface as [`Error::PartitionLost`], and allocation faults
/// abort before the run starts — mirroring what the native executor does
/// with the same plan.
pub fn run_with(
    ctx: &Context,
    fault: Option<&FaultPlan>,
    retry: &RetryPolicy,
) -> Result<SimReport> {
    ctx.program.validate()?;
    ctx.enforce_check()?;
    check_device_memory(ctx)?;
    if let Some(plan) = fault {
        for i in 0..ctx.buffers.len() {
            if plan.alloc_fails(i) {
                return Err(Error::Fault {
                    site: format!("alloc b{i}"),
                    attempts: 1,
                });
            }
        }
    }

    // A non-FIFO scheduler replaces the recorded program with its
    // materialized schedule. Fault plans are keyed by the *recorded*
    // program's (stream, action-index) sites, so scheduling only applies
    // to fault-free runs; unclean or empty programs also fall back to the
    // recorded FIFO order (FIFO itself always declines to schedule).
    if fault.is_none() {
        if let Some((_, scheduled)) = ctx.plan_scheduled_program(ctx.scheduler()) {
            scheduled.validate()?;
            return lower(ctx, &scheduled, fault, retry);
        }
    }
    lower(ctx, &ctx.program, fault, retry)
}

/// Lower `program` onto the task-DAG engine and price it. `program` is
/// either the context's recorded program or its materialized schedule;
/// buffers and platform geometry always come from `ctx`.
fn lower(
    ctx: &Context,
    program: &crate::program::Program,
    fault: Option<&FaultPlan>,
    retry: &RetryPolicy,
) -> Result<SimReport> {
    let cfg = ctx.config().clone();
    let mut engine = Engine::new();
    let mut kinds = ResourceKinds::default();
    let mut names: BTreeMap<ResourceId, String> = BTreeMap::new();

    // Link channel resources, per device.
    let devices: Vec<_> = ctx.platform.devices().collect();
    let mut link_channels: Vec<Vec<ResourceId>> = Vec::with_capacity(devices.len());
    for dev in &devices {
        let mut chans = Vec::new();
        for c in 0..cfg.link.channels() {
            let r = engine.add_resource(format!("{dev}.link{c}"));
            names.insert(r, format!("{dev}.link{c}"));
            kinds.links.push(r);
            chans.push(r);
        }
        link_channels.push(chans);
    }

    // The host CPU: one resource serializing host-side kernels.
    let host_res = engine.add_resource("host");
    names.insert(host_res, "host".to_string());
    kinds.partitions.push(host_res);

    // Partition resources, per device.
    let mut partition_res: Vec<Vec<ResourceId>> = Vec::with_capacity(devices.len());
    for dev in &devices {
        let plan = ctx.platform.plan(*dev)?;
        let mut res = Vec::with_capacity(plan.count());
        for p in 0..plan.count() {
            let r = engine.add_resource(format!("{dev}.p{p}"));
            names.insert(r, format!("{dev}.p{p}"));
            kinds.partitions.push(r);
            res.push(r);
        }
        partition_res.push(res);
    }

    let multi_device = program.devices().len() > 1;
    let per_stream =
        SimDuration::from_nanos(cfg.sync_per_stream.nanos() * program.streams.len() as u64);
    let barrier_cost = if multi_device {
        cfg.sync_overhead + per_stream + cfg.cross_device_sync
    } else {
        cfg.sync_overhead + per_stream
    };

    // Work-list lowering.
    let n_streams = program.streams.len();
    let mut cursor = vec![0usize; n_streams];
    let mut last: Vec<Option<TaskId>> = vec![None; n_streams];
    let mut event_task: Vec<Option<TaskId>> = vec![None; program.events.len()];

    // Metric inputs only the lowering walk knows (payload sizes, priced
    // retry attempts, executable-action count); consumed after the run
    // when the context's metrics flag is set.
    let mut bytes_per_dev = vec![0u64; devices.len()];
    let mut retries_priced = 0u64;
    let mut actions_lowered = 0u64;

    let add = |engine: &mut Engine, spec: TaskSpec| -> Result<TaskId> {
        engine
            .add_task(spec)
            .map_err(|e| Error::Config(format!("lowering bug: {e}")))
    };

    loop {
        let mut progressed = false;
        for (si, stream) in program.streams.iter().enumerate() {
            while cursor[si] < stream.actions.len() {
                let action = &stream.actions[cursor[si]];
                let mut deps: Vec<TaskId> = last[si].into_iter().collect();
                let task = match action {
                    Action::Barrier(_) => break, // handled collectively below
                    Action::WaitEvent(e) => {
                        match event_task[e.0] {
                            None => break, // recording stream hasn't got there yet
                            Some(t) => {
                                deps.push(t);
                                add(
                                    &mut engine,
                                    TaskSpec {
                                        resource: None,
                                        duration: SimDuration::ZERO,
                                        deps,
                                        label: action.label(),
                                    },
                                )?
                            }
                        }
                    }
                    Action::RecordEvent(e) => {
                        let t = add(
                            &mut engine,
                            TaskSpec {
                                resource: None,
                                duration: SimDuration::ZERO,
                                deps,
                                label: action.label(),
                            },
                        )?;
                        event_task[e.0] = Some(t);
                        t
                    }
                    Action::Transfer { dir, buf } => {
                        let bytes = ctx.buffer(*buf)?.bytes();
                        let dev_idx = stream.placement.device.0;
                        let chan = cfg.link.channel_for(*dir);
                        let link_res = link_channels[dev_idx][chan];
                        let idx = cursor[si];
                        let (fail_attempts, slowdown) = match fault {
                            Some(plan) => (
                                plan.transfer_fail_attempts(si, idx),
                                plan.transfer_slowdown(si, idx),
                            ),
                            None => (0, 1.0),
                        };
                        if fail_attempts > retry.max_retries {
                            return Err(Error::Fault {
                                site: format!("transfer s{si}#{idx}"),
                                attempts: retry.max_retries + 1,
                            });
                        }
                        let wire_time = if slowdown > 1.0 {
                            cfg.link.degraded_transfer_time(bytes, slowdown)
                        } else {
                            cfg.link.transfer_time(bytes)
                        };
                        bytes_per_dev[dev_idx] += bytes;
                        retries_priced += u64::from(fail_attempts);
                        actions_lowered += 1;
                        // Price each failed attempt as a full occupation of
                        // the link, followed by the retry backoff off-link.
                        for attempt in 0..fail_attempts {
                            let failed = add(
                                &mut engine,
                                TaskSpec {
                                    resource: Some(link_res),
                                    duration: wire_time + cfg.enqueue_overhead,
                                    deps: deps.clone(),
                                    label: format!("{}!fail{attempt}", action.label()),
                                },
                            )?;
                            let backoff = add(
                                &mut engine,
                                TaskSpec {
                                    resource: None,
                                    duration: SimDuration::from_secs_f64(
                                        retry.backoff_for(attempt).as_secs_f64(),
                                    ),
                                    deps: vec![failed],
                                    label: format!("{}!backoff{attempt}", action.label()),
                                },
                            )?;
                            deps = vec![backoff];
                        }
                        add(
                            &mut engine,
                            TaskSpec {
                                resource: Some(link_res),
                                duration: wire_time + cfg.enqueue_overhead,
                                deps,
                                label: action.label(),
                            },
                        )?
                    }
                    Action::Kernel(desc) if desc.host => {
                        // Host-side kernel: no offload launch, no partition
                        // effects — just the host's aggregate rate. Injected
                        // panics still apply (the native executor injects
                        // regardless of where the kernel runs); with no
                        // partition to lose, the loss is the kernel itself.
                        actions_lowered += 1;
                        if let Some(fp) = fault {
                            if fp.kernel_panics_at(si, cursor[si]) {
                                return Err(Error::KernelPanicked {
                                    kernel: desc.label.clone(),
                                });
                            }
                        }
                        let secs = desc.work / (desc.profile.thread_rate * cfg.host_equivalents);
                        let duration = SimDuration::from_secs_f64(secs) + cfg.enqueue_overhead;
                        add(
                            &mut engine,
                            TaskSpec {
                                resource: Some(host_res),
                                duration,
                                deps,
                                label: action.label(),
                            },
                        )?
                    }
                    Action::Kernel(desc) => {
                        actions_lowered += 1;
                        let placement = stream.placement;
                        let plan = ctx.platform.plan(placement.device)?;
                        let part = &plan.partitions[placement.partition];
                        if let Some(fp) = fault {
                            if fp.kernel_panics_at(si, cursor[si]) {
                                return Err(Error::PartitionLost {
                                    device: placement.device.0,
                                    partition: placement.partition,
                                    kernel: desc.label.clone(),
                                });
                            }
                        }
                        let inv = KernelInvocation {
                            profile: &desc.profile,
                            work: desc.work,
                        };
                        let mut body = cfg.compute.kernel_time(&inv, part)?;
                        if let Some(fp) = fault {
                            let factor =
                                fp.partition_slowdown(placement.device.0, placement.partition);
                            if factor > 1.0 {
                                body = SimDuration::from_secs_f64(body.as_secs_f64() * factor);
                            }
                        }
                        let duration = body + cfg.enqueue_overhead;
                        add(
                            &mut engine,
                            TaskSpec {
                                resource: Some(
                                    partition_res[placement.device.0][placement.partition],
                                ),
                                duration,
                                deps,
                                label: action.label(),
                            },
                        )?
                    }
                };
                last[si] = Some(task);
                cursor[si] += 1;
                progressed = true;
            }
        }

        // Collective barrier step: all streams stalled at the same barrier?
        let all_at_barrier = (0..n_streams).all(|si| {
            matches!(
                program.streams[si].actions.get(cursor[si]),
                Some(Action::Barrier(_))
            )
        });
        if all_at_barrier && n_streams > 0 {
            let deps: Vec<TaskId> = last.iter().flatten().copied().collect();
            let n = match program.streams[0].actions[cursor[0]] {
                Action::Barrier(n) => n,
                _ => unreachable!(),
            };
            let bar = add(
                &mut engine,
                TaskSpec {
                    resource: None,
                    duration: barrier_cost,
                    deps,
                    label: format!("barrier#{n}"),
                },
            )?;
            for si in 0..n_streams {
                last[si] = Some(bar);
                cursor[si] += 1;
            }
            progressed = true;
        }

        let done = (0..n_streams).all(|si| cursor[si] >= program.streams[si].actions.len());
        if done {
            break;
        }
        if !progressed {
            return Err(Error::Config(
                "event-wait cycle between streams: the program can never complete".into(),
            ));
        }
    }

    let timeline = engine.run();

    // Price the shared instrument catalog off the finished timeline. The
    // registration is identical to the native executor's, so the exported
    // shape is a differential check; the values come from simulated time
    // and are fully deterministic.
    let metrics = ctx.metrics_enabled().then(|| {
        enum Lane {
            Link(usize),
            Host,
            Partition(usize, usize),
        }
        let reg = MetricsRegistry::new();
        let ri = RunInstruments::register(&reg, devices.len(), ctx.partitions().max(1));
        let mut lane_of: BTreeMap<ResourceId, Lane> = BTreeMap::new();
        for (d, chans) in link_channels.iter().enumerate() {
            for &r in chans {
                lane_of.insert(r, Lane::Link(d));
            }
        }
        lane_of.insert(host_res, Lane::Host);
        for (d, parts) in partition_res.iter().enumerate() {
            for (p, &r) in parts.iter().enumerate() {
                lane_of.insert(r, Lane::Partition(d, p));
            }
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let us = |d: SimDuration| d.as_micros_f64().round() as u64;
        for rec in &timeline.records {
            let Some(res) = rec.resource else { continue };
            // Resourceless tasks (events, barriers, retry backoffs) and
            // failed-attempt link occupations are not executed actions.
            if rec.label.contains("!fail") {
                continue;
            }
            // Every priced task carries the enqueue overhead; split it
            // back out so `kernel_time`/`transfer_time` mean the work
            // itself, as they do natively.
            let work = us((rec.finish - rec.start).saturating_sub(cfg.enqueue_overhead));
            match lane_of.get(&res) {
                Some(&Lane::Link(d)) => {
                    ri.transfer_time[d].record(work);
                    // Queue wait: ready (every dependency satisfied) to
                    // start (the link actually free) — the sim analogue of
                    // submit-to-engine-pickup.
                    ri.queue_wait[d].record(us(rec.start - rec.ready));
                }
                Some(&Lane::Host) => ri.host_kernel_time.record(work),
                Some(&Lane::Partition(d, p)) => {
                    ri.kernel_time[d][p].record(work);
                    ri.launch_overhead[d][p].record(us(cfg.enqueue_overhead));
                }
                None => {}
            }
        }
        for (d, b) in bytes_per_dev.iter().enumerate() {
            ri.bytes_transferred[d].add(*b);
        }
        ri.actions_executed.add(actions_lowered);
        ri.transfer_retries.add(retries_priced);
        ri.finish(timeline.makespan.as_micros_f64());
        reg.snapshot()
    });

    Ok(SimReport {
        timeline,
        kinds,
        names,
        metrics,
    })
}

/// Reject programs whose live buffers exceed one card's memory (every buffer
/// conceptually has an instance on each card it is used from).
fn check_device_memory(ctx: &Context) -> Result<()> {
    let cap = ctx.config().device.memory_bytes;
    let total: u64 = ctx
        .buffers
        .iter()
        .map(super::super::buffer::Buffer::bytes)
        .sum();
    if total > cap {
        return Err(Error::Platform(micsim::fabric::FabricError::Memory(
            micsim::memory::MemError::OutOfMemory {
                requested: total,
                free: cap,
            },
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::kernel::KernelDesc;
    use micsim::compute::KernelProfile;
    use micsim::PlatformConfig;

    fn kernel(label: &str, work: f64) -> KernelDesc {
        KernelDesc::simulated(label, KernelProfile::streaming("k", 0.32e9), work)
    }

    #[test]
    fn empty_program_runs_instantly() {
        let ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let report = ctx.run_sim().unwrap();
        assert_eq!(report.makespan(), SimDuration::ZERO);
    }

    #[test]
    fn transfers_in_both_directions_serialize_on_phi() {
        // The Fig. 5 structural fact: with serial duplex, 16 blocks H2D then
        // 16 blocks D2H on two different streams still take the sum.
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let bufs: Vec<_> = (0..32)
            .map(|i| ctx.alloc(format!("b{i}"), 1 << 18))
            .collect();
        let s0 = ctx.stream(0).unwrap();
        let s1 = ctx.stream(1).unwrap();
        for (i, b) in bufs.iter().enumerate() {
            if i < 16 {
                ctx.h2d(s0, *b).unwrap();
            } else {
                ctx.d2h(s1, *b).unwrap();
            }
        }
        let serial = ctx.run_sim().unwrap().makespan();

        // Same program on a full-duplex link: directions overlap, makespan halves.
        let mut ctx2 = Context::builder(PlatformConfig::phi_31sp_full_duplex())
            .partitions(2)
            .build()
            .unwrap();
        let bufs: Vec<_> = (0..32)
            .map(|i| ctx2.alloc(format!("b{i}"), 1 << 18))
            .collect();
        let s0 = ctx2.stream(0).unwrap();
        let s1 = ctx2.stream(1).unwrap();
        for (i, b) in bufs.iter().enumerate() {
            if i < 16 {
                ctx2.h2d(s0, *b).unwrap();
            } else {
                ctx2.d2h(s1, *b).unwrap();
            }
        }
        let duplex = ctx2.run_sim().unwrap().makespan();
        let ratio = serial.nanos() as f64 / duplex.nanos() as f64;
        assert!(
            (ratio - 2.0).abs() < 0.2,
            "serial should be ~2x duplex, got {ratio}"
        );
    }

    #[test]
    fn pipeline_overlaps_transfer_and_compute() {
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(4)
            .build()
            .unwrap();
        let n_tiles = 8;
        for t in 0..n_tiles {
            let a = ctx.alloc(format!("a{t}"), 1 << 20);
            let b = ctx.alloc(format!("b{t}"), 1 << 20);
            let s = ctx.stream(t % 4).unwrap();
            ctx.h2d(s, a).unwrap();
            ctx.kernel(
                s,
                kernel(&format!("k{t}"), 40.0 * (1 << 20) as f64)
                    .reading([a])
                    .writing([b]),
            )
            .unwrap();
            ctx.d2h(s, b).unwrap();
        }
        let report = ctx.run_sim().unwrap();
        let stats = report.overlap();
        assert!(
            stats.hidden_fraction() > 0.3,
            "pipelining should hide a chunk of the transfers: {stats:?}"
        );
        // Makespan can't beat the ideal bound.
        assert!(stats.makespan >= stats.ideal_makespan());
    }

    #[test]
    fn barrier_prevents_overlap() {
        // Same tiles, but a barrier between every stage (a non-overlappable
        // app a la Hotspot): hidden fraction collapses to zero.
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(4)
            .build()
            .unwrap();
        for t in 0..4 {
            let a = ctx.alloc(format!("a{t}"), 1 << 20);
            let s = ctx.stream(t).unwrap();
            ctx.h2d(s, a).unwrap();
        }
        ctx.barrier();
        for t in 0..4 {
            let s = ctx.stream(t).unwrap();
            let a = crate::types::BufId(t);
            ctx.kernel(s, kernel(&format!("k{t}"), 1e7).reading([a]))
                .unwrap();
        }
        let report = ctx.run_sim().unwrap();
        assert_eq!(report.overlap().overlap, SimDuration::ZERO);
    }

    #[test]
    fn event_edges_order_cross_stream_work() {
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let a = ctx.alloc("a", 1 << 20);
        let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
        ctx.h2d(s0, a).unwrap();
        let e = ctx.record_event(s0).unwrap();
        ctx.wait_event(s1, e).unwrap();
        ctx.kernel(s1, kernel("consumer", 1e8).reading([a]))
            .unwrap();
        let report = ctx.run_sim().unwrap();
        // The kernel must start after the transfer finishes.
        let recs = &report.timeline.records;
        let h2d = recs.iter().find(|r| r.label.starts_with("h2d")).unwrap();
        let k = recs.iter().find(|r| r.label == "consumer").unwrap();
        assert!(k.start >= h2d.finish);
    }

    #[test]
    fn forward_event_reference_lowered_correctly() {
        // Stream 0 (iterated first) waits on an event recorded by stream 1.
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let a = ctx.alloc("a", 1 << 20);
        let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
        ctx.h2d(s1, a).unwrap();
        let e = ctx.record_event(s1).unwrap();
        ctx.wait_event(s0, e).unwrap();
        ctx.kernel(s0, kernel("after", 1e8).reading([a])).unwrap();
        let report = ctx.run_sim().unwrap();
        let recs = &report.timeline.records;
        let h2d = recs.iter().find(|r| r.label.starts_with("h2d")).unwrap();
        let k = recs.iter().find(|r| r.label == "after").unwrap();
        assert!(k.start >= h2d.finish);
    }

    #[test]
    fn event_cycle_detected_as_deadlock() {
        // Target shape: s0 = [wait eB, record eA], s1 = [wait eA, record eB]
        // — a genuine cross-stream deadlock. The public API appends actions
        // in call order, so record the events first and then rewrite the
        // streams so each wait precedes the record it depends on.
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
        let e_a = ctx.record_event(s0).unwrap();
        let e_b = ctx.record_event(s1).unwrap();
        {
            let program = &mut ctx.program;
            program.streams[0].actions.clear();
            program.streams[1].actions.clear();
            program.streams[0]
                .actions
                .push(crate::action::Action::WaitEvent(e_b));
            program.streams[0]
                .actions
                .push(crate::action::Action::RecordEvent(e_a));
            program.streams[1]
                .actions
                .push(crate::action::Action::WaitEvent(e_a));
            program.streams[1]
                .actions
                .push(crate::action::Action::RecordEvent(e_b));
            program.events[e_a.0].action_index = 1;
            program.events[e_b.0].action_index = 1;
        }
        let err = ctx.run_sim().unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn oversized_buffers_rejected() {
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .build()
            .unwrap();
        // 3 x 1 GiB-elements = 12 GiB > 8 GiB card.
        for i in 0..3 {
            ctx.alloc(format!("huge{i}"), 1 << 30);
        }
        assert!(matches!(
            ctx.run_sim(),
            Err(Error::Platform(micsim::fabric::FabricError::Memory(_)))
        ));
    }

    #[test]
    fn gantt_renders_all_resources() {
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let a = ctx.alloc("a", 1 << 20);
        let s0 = ctx.stream(0).unwrap();
        ctx.h2d(s0, a).unwrap();
        ctx.kernel(s0, kernel("kern", 1e8).reading([a])).unwrap();
        let report = ctx.run_sim().unwrap();
        let chart = report.gantt(60);
        assert!(chart.contains("mic0.link0"));
        assert!(chart.contains("mic0.p0"));
        assert!(chart.contains("mic0.p1"));
    }

    #[test]
    fn host_kernels_serialize_on_the_host_resource() {
        // Two host kernels from different streams must not overlap; two
        // device kernels on different partitions must.
        let mk = |host: bool| {
            let mut ctx = Context::builder(PlatformConfig::phi_31sp())
                .partitions(2)
                .build()
                .unwrap();
            for i in 0..2 {
                let s = ctx.stream(i).unwrap();
                let mut k = kernel(&format!("k{i}"), 3.2e9); // 1s device-ish
                if host {
                    k = k.on_host();
                }
                ctx.kernel(s, k).unwrap();
            }
            ctx.run_sim().unwrap().makespan()
        };
        let host_span = mk(true);
        let dev_span = mk(false);
        // Host: serialized => ~2x single-kernel duration.
        // Device: two partitions in parallel => ~1x.
        let ratio = host_span.nanos() as f64 / dev_span.nanos() as f64;
        assert!(ratio > 1.5, "host kernels must serialize: ratio {ratio}");
    }

    #[test]
    fn multi_device_barrier_costs_more() {
        let mk = |devs: usize| {
            let mut ctx = Context::builder(PlatformConfig::phi_31sp_multi(devs))
                .partitions(1)
                .build()
                .unwrap();
            ctx.barrier();
            ctx.run_sim().unwrap().makespan()
        };
        let single = mk(1);
        let multi = mk(2);
        assert!(multi > single, "cross-device sync must cost extra");
    }
}
