//! The native executor.
//!
//! Executes a recorded program for real on the host:
//!
//! * one **driver thread per stream** interprets that stream's FIFO;
//! * a **copy engine thread** per link channel performs transfers between
//!   each buffer's host and device storage — one engine in serial-duplex
//!   mode, which reproduces the Phi's serialized H2D/D2H behaviour in real
//!   execution, optionally throttled to a configured bandwidth;
//! * kernels take their partition's mutex (streams sharing a partition
//!   serialize, as on the card), lock their declared buffers in global id
//!   order (deadlock-free), and run their native body with a `threads` hint
//!   sized from the partition;
//! * events are flag+condvar pairs, barriers are `std::sync::Barrier`s over
//!   all streams.
//!
//! # Persistent runtime
//!
//! By default ([`NativeConfig::persistent`]) the context lazily builds a
//! `NativeRuntime` on its first native run and reuses it for every run
//! after that: the stream drivers are a parked
//! [`WorkerGroup`], the copy engines are
//! long-lived threads fed over persistent channels, and each `(device,
//! partition)` pair owns a partition-pinned worker group that
//! [`par_chunks_mut`](crate::parallel::par_chunks_mut) and
//! [`par_reduce`](crate::parallel::par_reduce) pick up inside kernel
//! bodies. Repeated runs of the same context — the paper's measurement
//! loop — therefore spawn no OS threads at all, and each driver completes
//! transfers through one reusable completion slot instead of allocating a
//! channel per copy. Setting `persistent: false` selects the original
//! spawn-per-run scoped executor, kept as the launch-overhead baseline.
//!
//! A panicking kernel does not poison the run: the stream switches to a
//! skipping mode that still fires its events and joins its barriers so the
//! other drivers can drain, and the error is reported at the end.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

use micsim::pcie::{Direction, Duplex};

use crate::action::Action;
use crate::buffer::Elem;
use crate::context::Context;
use crate::fault::{FaultCounters, FaultPlan, FaultTallies, RecoveryState, RetryPolicy};
use crate::kernel::KernelCtx;
use crate::metrics::{MetricsSnapshot, RunInstruments};
use crate::pool::{self, WorkerGroup, WorkerPool};
use crate::program::StreamRecord;
use crate::trace::{CopyStamp, NativeTrace, Recorder};
use crate::types::{BufId, Error, Result};

/// Settings for native execution.
#[derive(Clone, Debug)]
pub struct NativeConfig {
    /// Upper bound on the `threads` hint given to kernels. `None` sizes it
    /// as `available_parallelism / partitions` (at least 1), so partitions
    /// genuinely share the host like they share the card.
    pub max_threads_per_partition: Option<usize>,
    /// Emulate PCIe bandwidth: each copy holds the engine for at least
    /// `bytes / bandwidth` seconds. `None` copies at memory speed.
    pub link_bandwidth: Option<f64>,
    /// Reuse the context's persistent `NativeRuntime` — stream drivers,
    /// partition worker pools, copy engines — across runs (the default).
    /// `false` selects the original spawn-per-run scoped executor, kept as
    /// a baseline for launch-overhead comparisons.
    pub persistent: bool,
    /// Record the run into a [`NativeTrace`] — the same `Timeline`
    /// representation the simulator produces, so overlap stats, Gantt and
    /// Chrome-trace export work on real runs unchanged. Off by default:
    /// the untraced path pays one branch per action. On error the partial
    /// trace is still retrievable via
    /// [`Context::take_native_trace`](crate::context::Context::take_native_trace).
    pub trace: bool,
    /// Deterministic fault injection: transfer failures/slowdowns, kernel
    /// panics, slow partitions, allocation failures (see
    /// [`FaultPlan`]). `None` (the default) injects nothing and the fault
    /// paths cost one branch per action.
    pub fault: Option<Arc<FaultPlan>>,
    /// Retry-with-backoff policy for failed transfers.
    pub retry: RetryPolicy,
    /// Partition isolation: a panicking device kernel poisons only its own
    /// partition instead of aborting the whole run. Skipped work is
    /// recorded (and its output buffers tainted so downstream consumers
    /// skip too), control actions still execute so the surviving streams
    /// drain, and [`Context::run_native_resilient`] replays the skipped
    /// actions on the survivors. Host-kernel panics still abort the run.
    pub isolate_partitions: bool,
    /// Replay passes [`Context::run_native_resilient`] may take before it
    /// gives up and surfaces the error.
    pub max_degraded_runs: usize,
    /// Scheduler override for this run (see [`crate::sched`]). `None` (the
    /// default) uses the context's configured scheduler. Non-FIFO
    /// schedulers replace the per-stream drivers with a graph dispatcher:
    /// one driver per `(device, partition)` executes tasks in scheduled
    /// order, and under
    /// [`SchedulerKind::WorkSteal`](crate::sched::SchedulerKind) idle
    /// drivers steal ready tasks cross-partition at runtime. Fault
    /// injection and partition isolation are keyed by the recorded
    /// program's structure, so scheduling is skipped (FIFO behaviour) when
    /// either is configured.
    pub scheduler: Option<crate::sched::SchedulerKind>,
    /// Collect run metrics (see [`crate::metrics`]): register the full
    /// [`RunInstruments`] catalog, record real launch overhead, queue
    /// wait, wire time and fault activity into it, and attach the
    /// snapshot to [`NativeReport::metrics`]. Also enabled by
    /// [`ContextBuilder::metrics`](crate::context::ContextBuilder::metrics).
    /// Off by default: the hot path then pays one branch per site
    /// (gated by `bench_native_runtime`).
    pub metrics: bool,
}

impl Default for NativeConfig {
    fn default() -> NativeConfig {
        NativeConfig {
            max_threads_per_partition: None,
            link_bandwidth: None,
            persistent: true,
            trace: false,
            fault: None,
            retry: RetryPolicy::default(),
            isolate_partitions: false,
            max_degraded_runs: 2,
            scheduler: None,
            metrics: false,
        }
    }
}

/// Result of a native run.
#[derive(Debug)]
pub struct NativeReport {
    /// Wall-clock time of the whole run (driver spawn to last join).
    pub wall: Duration,
    /// Actions executed across all streams.
    pub actions_executed: usize,
    /// Total bytes moved through the copy engine(s).
    pub bytes_transferred: u64,
    /// The measured timeline, when [`NativeConfig::trace`] was set (`None`
    /// for untraced runs and for empty programs).
    pub trace: Option<NativeTrace>,
    /// Fault-path totals: retries, injected panics, skips. All zero on a
    /// clean run without a fault plan.
    pub faults: FaultCounters,
    /// Kernels executed on a different partition than the stream they were
    /// recorded on — cross-partition moves by a non-FIFO scheduler
    /// (planned placement under `ListHeft`, runtime steals under
    /// `WorkSteal`). Always zero on FIFO runs.
    pub steals: usize,
    /// The run's metric snapshot, when [`NativeConfig::metrics`] (or the
    /// context's metrics flag) was set — the same instrument catalog the
    /// simulator exports, filled from real clocks (`None` otherwise).
    pub metrics: Option<MetricsSnapshot>,
}

struct EventFlag {
    fired: Mutex<bool>,
    cv: Condvar,
}

impl EventFlag {
    fn new() -> EventFlag {
        EventFlag {
            fired: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn fire(&self) {
        let mut guard = self.fired.lock();
        *guard = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut guard = self.fired.lock();
        while !*guard {
            self.cv.wait(&mut guard);
        }
    }

    /// Re-arm the flag so it can complete another wait (reusable slot).
    fn reset(&self) {
        *self.fired.lock() = false;
    }
}

/// A buffer id, write-intent flag, and its storage Arc, collected before
/// the guards that borrow it.
type StorageEntry = (
    crate::types::BufId,
    bool,
    std::sync::Arc<parking_lot::RwLock<Vec<Elem>>>,
);

struct CopyJob {
    src: Arc<RwLock<Vec<Elem>>>,
    dst: Arc<RwLock<Vec<Elem>>>,
    bytes: u64,
    /// Throttle for this job (engines outlive any single run's config).
    bandwidth: Option<f64>,
    /// Completion slot the submitting driver waits on — reset and reused
    /// across the driver's transfers rather than allocated per copy.
    done: Arc<EventFlag>,
    /// Tracing stamps (engine start/end, queue-depth gauge); `None` when
    /// the run is untraced. Reused across the driver's transfers like
    /// `done`.
    trace: Option<Arc<CopyStamp>>,
    /// Injected link-congestion factor (1.0 = healthy): the engine holds
    /// the lane `slowdown`× longer than the copy itself took.
    slowdown: f64,
}

fn copy_engine(rx: &Receiver<CopyJob>) {
    while let Ok(job) = rx.recv() {
        if let Some(stamp) = &job.trace {
            stamp.picked_up();
        }
        let started = Instant::now();
        {
            let src = job.src.read();
            let mut dst = job.dst.write();
            dst.copy_from_slice(&src);
        }
        if let Some(bw) = job.bandwidth {
            let target = Duration::from_secs_f64(job.bytes as f64 / bw);
            let elapsed = started.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
        }
        if job.slowdown > 1.0 {
            // Degraded link: stretch the lane occupation to slowdown× the
            // time spent so far (copy + bandwidth throttle).
            std::thread::sleep(started.elapsed().mul_f64(job.slowdown - 1.0));
        }
        // Stamp before firing: the flag's lock publishes the slot to the
        // waiting driver.
        if let Some(stamp) = &job.trace {
            stamp.stamp(started, Instant::now());
        }
        job.done.fire();
    }
}

// ----- fault control --------------------------------------------------------

/// Per-run fault state shared by every driver: the plan's dice, the retry
/// policy, atomic tallies, and — under partition isolation — which
/// partitions are poisoned, which buffers hold garbage, and which actions
/// were skipped (in wall-clock skip order, which respects every
/// happens-before edge between skips and therefore is a valid replay
/// order).
struct FaultControl {
    plan: Option<Arc<FaultPlan>>,
    retry: RetryPolicy,
    isolate: bool,
    tallies: Arc<FaultTallies>,
    parts_per_dev: usize,
    /// `[device * parts_per_dev + partition]`.
    poisoned: Vec<AtomicBool>,
    /// Buffers whose device contents are garbage (skipped producer).
    tainted: Mutex<HashSet<BufId>>,
    /// `(stream, action index)` pairs skipped under isolation.
    skipped: Mutex<Vec<(usize, usize)>>,
    /// `(device, partition, kernel)` of every poisoned partition.
    lost: Mutex<Vec<(usize, usize, String)>>,
}

impl FaultControl {
    fn new(ctx: &Context, cfg: &NativeConfig) -> FaultControl {
        let parts_per_dev = ctx.partitions().max(1);
        FaultControl {
            plan: cfg.fault.clone(),
            retry: cfg.retry,
            isolate: cfg.isolate_partitions,
            tallies: Arc::new(FaultTallies::default()),
            parts_per_dev,
            poisoned: (0..ctx.device_count() * parts_per_dev)
                .map(|_| AtomicBool::new(false))
                .collect(),
            tainted: Mutex::new(HashSet::new()),
            skipped: Mutex::new(Vec::new()),
            lost: Mutex::new(Vec::new()),
        }
    }

    fn is_poisoned(&self, dev: usize, part: usize) -> bool {
        self.poisoned[dev * self.parts_per_dev + part].load(Ordering::Acquire)
    }

    /// Poison `(dev, part)`; only the first poisoner records the loss.
    fn poison(&self, dev: usize, part: usize, kernel: &str) {
        if !self.poisoned[dev * self.parts_per_dev + part].swap(true, Ordering::AcqRel) {
            FaultTallies::bump(&self.tallies.lost_partitions);
            self.lost.lock().push((dev, part, kernel.to_string()));
        }
    }

    /// Record a skipped action and taint the buffers it would have written.
    fn skip(&self, si: usize, ai: usize, writes: &[BufId]) {
        FaultTallies::bump(&self.tallies.skipped_actions);
        if !writes.is_empty() {
            let mut t = self.tainted.lock();
            t.extend(writes.iter().copied());
        }
        self.skipped.lock().push((si, ai));
    }
}

fn channels_for(duplex: Duplex) -> usize {
    match duplex {
        Duplex::Serial => 1,
        Duplex::Full => 2,
    }
}

/// Default kernel `threads` hint: share the host across partitions the way
/// partitions share the card.
fn default_threads_per_partition(ctx: &Context) -> usize {
    let host_par = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1);
    (host_par / ctx.partitions().max(1)).max(1)
}

// ----- persistent runtime ---------------------------------------------------

/// Long-lived execution state a [`Context`] reuses across native runs: the
/// stream-driver group, partition-pinned kernel worker pools, copy-engine
/// threads, and the locks that model partition/host exclusivity. Built
/// lazily on the first persistent run; torn down when the context drops.
pub(crate) struct NativeRuntime {
    /// Serializes whole runs: drivers and engines are shared state.
    run_lock: Mutex<()>,
    /// One executor per stream (`run_fixed`): streams block on each other
    /// through events and barriers, so each needs a dedicated thread.
    drivers: WorkerGroup,
    /// Partition-pinned groups kernel bodies split work across.
    pool: WorkerPool,
    /// Partition mutexes: `[device][partition]`.
    partition_locks: Vec<Vec<Mutex<()>>>,
    /// Host kernels serialize on the host, exactly as the simulator prices
    /// them on its single host resource.
    host_lock: Mutex<()>,
    /// Per-device, per-channel feeds into the persistent copy engines.
    engine_tx: Vec<Vec<Sender<CopyJob>>>,
    engine_handles: Vec<JoinHandle<()>>,
}

impl NativeRuntime {
    pub(crate) fn new(ctx: &Context) -> NativeRuntime {
        // Size for the context's replan capacity, not its current geometry:
        // one runtime then serves every `P <= capacity` an autotuning sweep
        // replans to, without growing its thread count. With no capacity
        // headroom configured (the default) this is exactly the current
        // geometry.
        let n_devices = ctx.device_count();
        let parts_per_dev = ctx.replan_capacity().max(ctx.partitions()).max(1);
        let n_streams = n_devices * parts_per_dev * ctx.streams_per_partition();
        let host_par = std::thread::available_parallelism()
            .map(std::num::NonZero::get)
            .unwrap_or(1);
        let width = (host_par / parts_per_dev).max(1);
        let channels_per_dev = channels_for(ctx.config().link.duplex);
        let mut engine_tx: Vec<Vec<Sender<CopyJob>>> = Vec::with_capacity(n_devices);
        let mut engine_handles = Vec::new();
        for d in 0..n_devices {
            let mut chans = Vec::with_capacity(channels_per_dev);
            for c in 0..channels_per_dev {
                let (tx, rx) = unbounded::<CopyJob>();
                engine_handles.push(
                    std::thread::Builder::new()
                        .name(format!("hsp-copy-d{d}c{c}"))
                        .spawn(move || copy_engine(&rx))
                        .expect("spawn copy engine"),
                );
                chans.push(tx);
            }
            engine_tx.push(chans);
        }
        NativeRuntime {
            run_lock: Mutex::new(()),
            drivers: WorkerGroup::new("drv", n_streams.saturating_sub(1)),
            pool: WorkerPool::for_geometry(n_devices, parts_per_dev, width),
            partition_locks: (0..n_devices)
                .map(|_| (0..parts_per_dev).map(|_| Mutex::new(())).collect())
                .collect(),
            host_lock: Mutex::new(()),
            engine_tx,
            engine_handles,
        }
    }

    /// Persistent threads owned by the runtime (drivers + pool + engines).
    pub(crate) fn thread_count(&self) -> usize {
        self.drivers.worker_count() + self.pool.thread_count() + self.engine_handles.len()
    }
}

impl Drop for NativeRuntime {
    fn drop(&mut self) {
        // Disconnect the engines' feeds, then reap them.
        self.engine_tx.clear();
        for h in self.engine_handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ----- per-run state --------------------------------------------------------

/// Everything a stream driver needs for one run, shared by reference. Both
/// executors (persistent and scoped) build one of these, so the drivers'
/// interpretation of the program is identical on either path.
struct RunShared<'a> {
    ctx: &'a Context,
    threads_hint: usize,
    link_bandwidth: Option<f64>,
    events: Vec<EventFlag>,
    barriers: Vec<Barrier>,
    partition_locks: &'a [Vec<Mutex<()>>],
    host_lock: &'a Mutex<()>,
    engine_tx: &'a [Vec<Sender<CopyJob>>],
    /// Partition-pinned worker groups for kernel bodies; `None` on the
    /// scoped baseline path (parallel helpers then spawn scoped threads).
    pool: Option<&'a WorkerPool>,
    /// Span recorder; `None` when the run is untraced (the zero-cost
    /// default — every instrumentation site is a branch on this option).
    recorder: Option<&'a Recorder>,
    /// Run instruments; `None` when metrics are off (same zero-cost
    /// pattern as the recorder).
    metrics: Option<&'a RunInstruments>,
    /// Fault injection and isolation state for this run.
    fault: &'a FaultControl,
    first_error: Mutex<Option<Error>>,
    executed: AtomicUsize,
    bytes_moved: AtomicU64,
}

/// Submit one transfer to its device's copy engine and wait for
/// completion, recording against recorder stream `rsi`. Shared by the FIFO
/// stream drivers and the graph dispatcher so both execute transfers
/// identically.
#[allow(clippy::too_many_arguments)]
fn exec_transfer(
    shared: &RunShared<'_>,
    rsi: usize,
    dir: Direction,
    buf: BufId,
    dev: usize,
    slowdown: f64,
    done: &Arc<EventFlag>,
    stamp: Option<&Arc<CopyStamp>>,
    label: String,
) {
    let buffer = shared
        .ctx
        .buffer(buf)
        .expect("buffer validated at enqueue time");
    let (src, dst) = match dir {
        Direction::HostToDevice => (buffer.host.clone(), buffer.device.clone()),
        Direction::DeviceToHost => (buffer.device.clone(), buffer.host.clone()),
    };
    let chan = match shared.ctx.config().link.duplex {
        Duplex::Serial => 0,
        Duplex::Full => match dir {
            Direction::HostToDevice => 0,
            Direction::DeviceToHost => 1,
        },
    };
    let bytes = buffer.bytes();
    done.reset();
    let observing = shared.recorder.is_some() || shared.metrics.is_some();
    let submitted = observing.then(|| {
        if let Some(rec) = shared.recorder {
            rec.copy_submitted();
        }
        Instant::now()
    });
    shared.engine_tx[dev][chan]
        .send(CopyJob {
            src,
            dst,
            bytes,
            bandwidth: shared.link_bandwidth,
            done: done.clone(),
            trace: stamp.cloned(),
            slowdown,
        })
        .expect("copy engine alive for run duration");
    done.wait();
    if observing {
        // Take the engine's start/end pair once; recorder and metrics
        // both price the transfer from the same stamps.
        let pair = stamp.expect("stamp allocated when observing").take();
        if let Some(rec) = shared.recorder {
            rec.record_transfer(
                rsi,
                rec.link_lane(dev, chan),
                label,
                submitted.unwrap(),
                pair,
            );
        }
        if let Some(m) = shared.metrics {
            m.bytes_transferred[dev].add(bytes);
            if let Some((start, end)) = pair {
                m.queue_wait[dev]
                    .record_micros(start.saturating_duration_since(submitted.unwrap()));
                m.transfer_time[dev].record_micros(end.saturating_duration_since(start));
            }
        }
    }
    shared.bytes_moved.fetch_add(bytes, Ordering::Relaxed);
    shared.executed.fetch_add(1, Ordering::Relaxed);
}

/// Acquire the partition (or host) and the kernel's declared buffers, run
/// its native body, and record the span against recorder stream `rsi`.
/// Returns the body's outcome so the caller decides how a panic is handled
/// (abort vs poison-and-skip). Shared by the FIFO stream drivers and the
/// graph dispatcher so both execute kernels identically.
fn exec_kernel(
    shared: &RunShared<'_>,
    rsi: usize,
    desc: &crate::kernel::KernelDesc,
    dev: usize,
    part: usize,
    slow_factor: f64,
    injected_panic: bool,
) -> std::thread::Result<()> {
    let ctx = shared.ctx;
    let fc = shared.fault;
    let observing = shared.recorder.is_some() || shared.metrics.is_some();
    let t_dispatch = observing.then(Instant::now);
    // Host kernels take the host lock instead of a partition lock (they
    // occupy the host, not the card) and act on the buffers' host copies.
    let (_partition_guard, _host_guard) = if desc.host {
        (None, Some(shared.host_lock.lock()))
    } else {
        (Some(shared.partition_locks[dev][part].lock()), None)
    };
    let side = |b: &crate::buffer::Buffer| {
        if desc.host {
            b.host.clone()
        } else {
            b.device.clone()
        }
    };
    // Lock declared buffers in global id order (deadlock-free across
    // concurrent kernels), but keep read and write guards in separate
    // vectors so views can borrow them independently.
    let mut wanted: Vec<(crate::types::BufId, bool)> = desc.accesses().collect();
    wanted.sort_by_key(|(b, _)| *b);
    // Storage Arcs are collected first so the guards below (declared
    // after, dropped before) can safely borrow them.
    let storages: Vec<StorageEntry> = wanted
        .iter()
        .map(|&(b, w)| {
            let buffer = ctx.buffer(b).expect("validated at enqueue time");
            (b, w, side(buffer))
        })
        .collect();
    let mut read_guards: Vec<(
        crate::types::BufId,
        parking_lot::RwLockReadGuard<'_, Vec<Elem>>,
    )> = Vec::with_capacity(desc.reads.len());
    let mut write_guards: Vec<(
        crate::types::BufId,
        parking_lot::RwLockWriteGuard<'_, Vec<Elem>>,
    )> = Vec::with_capacity(desc.writes.len());
    for (b, is_write, storage) in &storages {
        if *is_write {
            write_guards.push((*b, storage.write()));
        } else {
            read_guards.push((*b, storage.read()));
        }
    }
    // Read views in declaration order.
    let reads: Vec<&[Elem]> = desc
        .reads
        .iter()
        .map(|b| {
            read_guards
                .iter()
                .find(|(id, _)| id == b)
                .expect("guard acquired above")
                .1
                .as_slice()
        })
        .collect();
    // Write views in declaration order: compute for each held guard its
    // slot in `desc.writes`, then place the mutable slices by permutation.
    let mut slots: Vec<Option<&mut [Elem]>> = (0..desc.writes.len()).map(|_| None).collect();
    for (id, guard) in write_guards.iter_mut() {
        let pos = desc
            .writes
            .iter()
            .position(|b| b == id)
            .expect("guard acquired above");
        slots[pos] = Some(guard.as_mut_slice());
    }
    let writes: Vec<&mut [Elem]> = slots
        .into_iter()
        .map(|s| s.expect("every declared write locked"))
        .collect();
    let mut kctx = KernelCtx {
        reads,
        writes,
        threads: shared.threads_hint,
    };
    let body = desc.native.as_ref().expect("checked above").clone();
    // Route the body's parallel helpers onto the kernel's partition-pinned
    // group while it runs.
    let _pool_install = shared.pool.map(|p| {
        let group = if desc.host {
            p.host()
        } else {
            p.partition(dev, part)
        };
        pool::install(group.clone())
    });
    let t_start = observing.then(|| {
        let now = Instant::now();
        // Launch overhead: dispatch to body start (partition lock, buffer
        // locks, view setup).
        let overhead = now.saturating_duration_since(t_dispatch.unwrap());
        if let Some(rec) = shared.recorder {
            rec.record_launch_overhead(rsi, overhead);
        }
        if let Some(m) = shared.metrics {
            if !desc.host {
                m.launch_overhead[dev][part].record_micros(overhead);
            }
        }
        now
    });
    let body_started = (slow_factor > 1.0).then(Instant::now);
    let outcome = if injected_panic {
        FaultTallies::bump(&fc.tallies.injected_kernel_panics);
        Err(Box::new("injected kernel panic") as Box<dyn std::any::Any + Send>)
    } else {
        catch_unwind(AssertUnwindSafe(|| body(&mut kctx)))
    };
    if let Some(rec) = shared.recorder {
        // Recorded even when the body panicked: the partial timeline then
        // names the kernel that failed.
        rec.record_span(
            rsi,
            Some(rec.kernel_lane(desc.host, dev, part)),
            desc.label.clone(),
            t_start.unwrap(),
            Instant::now(),
        );
    }
    if let Some(m) = shared.metrics {
        let dur = t_start.unwrap().elapsed();
        if desc.host {
            m.host_kernel_time.record_micros(dur);
        } else {
            m.kernel_time[dev][part].record_micros(dur);
        }
    }
    if outcome.is_ok() {
        if let Some(t0) = body_started {
            // Slow partition: stretch the kernel's occupation of the
            // partition (locks still held) to factor× the body's own time.
            std::thread::sleep(t0.elapsed().mul_f64(slow_factor - 1.0));
        }
        shared.executed.fetch_add(1, Ordering::Relaxed);
    }
    outcome
}

/// Interpret one stream's FIFO. Runs on a driver thread (persistent group
/// worker or scoped spawn).
fn drive_stream(shared: &RunShared<'_>, stream: &StreamRecord) {
    let si = stream.id.0;
    let dev = stream.placement.device.0;
    let part = stream.placement.partition;
    // One reusable completion slot for this driver's transfers: reset, hand
    // to the engine, wait — no per-transfer channel allocation.
    let done = Arc::new(EventFlag::new());
    // Tracing state, allocated once per driver: the engine-stamp slot
    // (also needed by metrics-only runs, to price queue wait and wire
    // time) and the sink that routes pool-job spans from kernel bodies
    // into this driver's buffer.
    let stamp = match shared.recorder {
        Some(rec) => Some(rec.copy_stamp()),
        None => shared.metrics.map(|_| CopyStamp::detached()),
    };
    let _pool_sink = shared
        .recorder
        .map(|rec| crate::trace::install_pool_sink(rec.pool_sink(si)));
    let fc = shared.fault;
    let mut skipping = false;
    for (ai, action) in stream.actions.iter().enumerate() {
        match action {
            Action::Barrier(n) => {
                let t0 = shared.recorder.map(|_| Instant::now());
                shared.barriers[*n].wait();
                if let Some(rec) = shared.recorder {
                    rec.record_span(si, None, action.label(), t0.unwrap(), Instant::now());
                }
            }
            Action::RecordEvent(e) => {
                shared.events[e.0].fire();
                if let Some(rec) = shared.recorder {
                    let now = Instant::now();
                    rec.record_span(si, None, action.label(), now, now);
                }
            }
            Action::WaitEvent(e) => {
                let t0 = shared.recorder.map(|_| Instant::now());
                shared.events[e.0].wait();
                if let Some(rec) = shared.recorder {
                    rec.record_span(si, None, action.label(), t0.unwrap(), Instant::now());
                }
            }
            Action::Transfer { dir, buf } => {
                if skipping {
                    continue;
                }
                // Under isolation a transfer touching a tainted buffer would
                // move garbage — skip it and let the replay pass redo it.
                // (Healthy transfers still run even on streams whose
                // partition is poisoned: they only occupy the link.)
                if fc.isolate && fc.tainted.lock().contains(buf) {
                    fc.skip(si, ai, &[]);
                    continue;
                }
                // Injected transfer failures: retry with backoff until the
                // fault clears or the retry budget runs out.
                let fail_attempts = fc
                    .plan
                    .as_ref()
                    .map_or(0, |p| p.transfer_fail_attempts(si, ai));
                if fail_attempts > 0 {
                    let mut attempt: u32 = 0;
                    let mut gave_up = false;
                    while attempt < fail_attempts {
                        if attempt >= fc.retry.max_retries {
                            FaultTallies::bump(&fc.tallies.transfers_failed);
                            let mut slot = shared.first_error.lock();
                            if slot.is_none() {
                                *slot = Some(Error::Fault {
                                    site: format!("transfer s{si}#{ai}"),
                                    attempts: attempt + 1,
                                });
                            }
                            drop(slot);
                            if fc.isolate {
                                // The destination never got its data.
                                fc.skip(si, ai, &[*buf]);
                            } else {
                                skipping = true;
                            }
                            gave_up = true;
                            break;
                        }
                        FaultTallies::bump(&fc.tallies.transfer_retries);
                        std::thread::sleep(fc.retry.backoff_for(attempt));
                        attempt += 1;
                    }
                    if gave_up {
                        continue;
                    }
                }
                let slowdown = fc
                    .plan
                    .as_ref()
                    .map_or(1.0, |p| p.transfer_slowdown(si, ai));
                exec_transfer(
                    shared,
                    si,
                    *dir,
                    *buf,
                    dev,
                    slowdown,
                    &done,
                    stamp.as_ref(),
                    action.label(),
                );
            }
            Action::Kernel(desc) => {
                if skipping {
                    continue;
                }
                // Isolation: kernels on a poisoned partition, or touching a
                // buffer tainted by skipped upstream work, are skipped (and
                // their outputs tainted in turn) for the replay pass.
                if fc.isolate && !desc.host {
                    let blocked = fc.is_poisoned(dev, part) || {
                        let t = fc.tainted.lock();
                        !t.is_empty()
                            && desc.reads.iter().chain(&desc.writes).any(|b| t.contains(b))
                    };
                    if blocked {
                        fc.skip(si, ai, &desc.writes);
                        continue;
                    }
                }
                let slow_factor = if desc.host {
                    1.0
                } else {
                    fc.plan
                        .as_ref()
                        .map_or(1.0, |p| p.partition_slowdown(dev, part))
                };
                let injected = fc.plan.as_ref().is_some_and(|p| p.kernel_panics_at(si, ai));
                let outcome = exec_kernel(shared, si, desc, dev, part, slow_factor, injected);
                if outcome.is_err() {
                    FaultTallies::bump(&fc.tallies.kernel_panics);
                    if fc.isolate && !desc.host {
                        // Poison only this partition; the stream keeps
                        // driving (later kernels here skip via the poison
                        // check, its control actions keep the others
                        // unblocked) and the replay pass reruns the loss.
                        fc.poison(dev, part, &desc.label);
                        fc.skip(si, ai, &desc.writes);
                        let mut slot = shared.first_error.lock();
                        if slot.is_none() {
                            *slot = Some(Error::PartitionLost {
                                device: dev,
                                partition: part,
                                kernel: desc.label.clone(),
                            });
                        }
                    } else {
                        let mut slot = shared.first_error.lock();
                        if slot.is_none() {
                            *slot = Some(Error::KernelPanicked {
                                kernel: desc.label.clone(),
                            });
                        }
                        skipping = true;
                    }
                }
            }
        }
    }
}

// ----- graph dispatcher -----------------------------------------------------

/// Shared ready-queue state for a scheduled (non-FIFO) run: one driver per
/// `(device, partition)` drains its own queue of ready task-graph nodes
/// and steals from a loaded sibling queue on the same device when its own
/// runs dry. The dispatch layer is work-conserving for *every* scheduled
/// kind — a driver sleeping in a kernel must not strand the transfers
/// queued behind it while siblings idle; the kinds differ only in how the
/// queues are seeded (`ListHeft` pins to the planned driver, `WorkSteal`
/// to the recorded placement).
struct GraphDispatch<'a> {
    graph: &'a crate::sched::TaskGraph,
    parts_per_dev: usize,
    total: usize,
    /// Home queue of each node (seeded from the schedule's driver hints).
    queue_of: Vec<usize>,
    /// Position of each node in the schedule's global order — the queue
    /// ordering key, so drivers drain in scheduled order.
    seq_of: Vec<usize>,
    state: Mutex<DispatchState>,
    cv: Condvar,
    abort: AtomicBool,
    steals: AtomicUsize,
}

struct DispatchState {
    /// Ready nodes per driver queue, ordered by (scheduled sequence, node).
    queues: Vec<std::collections::BTreeSet<(usize, usize)>>,
    indeg: Vec<usize>,
    completed: usize,
}

impl<'a> GraphDispatch<'a> {
    fn new(
        ctx: &Context,
        schedule: &crate::sched::Schedule,
        graph: &'a crate::sched::TaskGraph,
    ) -> GraphDispatch<'a> {
        let parts_per_dev = ctx.partitions().max(1);
        let n_queues = ctx.device_count() * parts_per_dev;
        let dynamic = schedule.kind == crate::sched::SchedulerKind::WorkSteal;
        let mut queue_of = vec![0usize; graph.len()];
        let mut seq_of = vec![0usize; graph.len()];
        for (seq, task) in schedule.tasks.iter().enumerate() {
            let u = graph.node_of(task.site).expect("scheduled task is a node");
            seq_of[u] = seq;
            // WorkSteal seeds queues from the *recorded* placement so steals
            // happen at runtime, when a partition is genuinely idle; ListHeft
            // pins each task to its planned driver.
            let (dev, part) = if dynamic {
                let node = &graph.nodes[u];
                (node.device, node.partition.min(parts_per_dev - 1))
            } else {
                let (dev, part) = task.driver;
                (dev, part.min(parts_per_dev - 1))
            };
            queue_of[u] = dev * parts_per_dev + part;
        }
        let indeg: Vec<usize> = graph.preds.iter().map(Vec::len).collect();
        let mut queues = vec![std::collections::BTreeSet::new(); n_queues];
        for u in 0..graph.len() {
            if indeg[u] == 0 {
                queues[queue_of[u]].insert((seq_of[u], u));
            }
        }
        GraphDispatch {
            graph,
            parts_per_dev,
            total: graph.len(),
            queue_of,
            seq_of,
            state: Mutex::new(DispatchState {
                queues,
                indeg,
                completed: 0,
            }),
            cv: Condvar::new(),
            abort: AtomicBool::new(false),
            steals: AtomicUsize::new(0),
        }
    }

    /// Next node for driver `idx`, or `None` when the run is over (all
    /// tasks completed, or aborted after an error). Blocks while the
    /// driver's queue is empty but work is still in flight. The `bool` is
    /// true when the node was stolen from a sibling queue.
    fn next_task(&self, idx: usize) -> Option<(usize, bool)> {
        let mut state = self.state.lock();
        loop {
            if self.abort.load(Ordering::Acquire) || state.completed == self.total {
                return None;
            }
            if let Some(&entry) = state.queues[idx].iter().next() {
                state.queues[idx].remove(&entry);
                return Some((entry.1, false));
            }
            // Steal from the most loaded sibling queue on this device,
            // from the *back* (latest-scheduled ready task — the classic
            // steal-from-the-tail deque discipline, minimizing contention
            // with the victim's own front-of-queue progress).
            let dev = idx / self.parts_per_dev;
            let siblings = (dev * self.parts_per_dev)..((dev + 1) * self.parts_per_dev);
            let victim = siblings
                .filter(|&q| q != idx && !state.queues[q].is_empty())
                .max_by_key(|&q| state.queues[q].len());
            if let Some(victim) = victim {
                let entry = *state.queues[victim].iter().next_back().expect("non-empty");
                state.queues[victim].remove(&entry);
                return Some((entry.1, true));
            }
            self.cv.wait(&mut state);
        }
    }

    /// Mark `node` done and release any successors that became ready.
    fn complete(&self, node: usize) {
        let mut state = self.state.lock();
        state.completed += 1;
        for &v in &self.graph.succs[node] {
            state.indeg[v] -= 1;
            if state.indeg[v] == 0 {
                let key = (self.seq_of[v], v);
                state.queues[self.queue_of[v]].insert(key);
            }
        }
        drop(state);
        self.cv.notify_all();
    }

    fn abort_run(&self) {
        self.abort.store(true, Ordering::Release);
        self.cv.notify_all();
    }
}

/// One scheduled-run driver: owns partition `idx % parts_per_dev` on device
/// `idx / parts_per_dev` and executes tasks handed out by `dispatch`.
fn dispatch_driver(shared: &RunShared<'_>, dispatch: &GraphDispatch<'_>, idx: usize) {
    let part_i = idx % dispatch.parts_per_dev;
    // Reusable completion slot + tracing state, as in `drive_stream`. The
    // recorder stream index is the driver index: scheduled traces are
    // per-(device, partition) lanes, matching how the work actually ran.
    let done = Arc::new(EventFlag::new());
    let stamp = match shared.recorder {
        Some(rec) => Some(rec.copy_stamp()),
        None => shared.metrics.map(|_| CopyStamp::detached()),
    };
    let _pool_sink = shared
        .recorder
        .map(|rec| crate::trace::install_pool_sink(rec.pool_sink(idx)));
    while let Some((node, stolen)) = dispatch.next_task(idx) {
        let task = &dispatch.graph.nodes[node];
        let site = task.site;
        let action = &shared.ctx.program().streams[site.stream.0].actions[site.action_index];
        match action {
            Action::Transfer { dir, buf } => {
                exec_transfer(
                    shared,
                    idx,
                    *dir,
                    *buf,
                    task.device,
                    1.0,
                    &done,
                    stamp.as_ref(),
                    action.label(),
                );
            }
            Action::Kernel(desc) => {
                if !desc.host && (stolen || part_i != task.partition) {
                    dispatch.steals.fetch_add(1, Ordering::Relaxed);
                }
                let outcome = exec_kernel(shared, idx, desc, task.device, part_i, 1.0, false);
                if outcome.is_err() {
                    FaultTallies::bump(&shared.fault.tallies.kernel_panics);
                    let mut slot = shared.first_error.lock();
                    if slot.is_none() {
                        *slot = Some(Error::KernelPanicked {
                            kernel: desc.label.clone(),
                        });
                    }
                    drop(slot);
                    dispatch.abort_run();
                    return;
                }
            }
            _ => unreachable!("control actions are not task-graph nodes"),
        }
        dispatch.complete(node);
    }
}

fn finish(shared: RunShared<'_>, wall: Duration, steals: usize) -> Result<NativeReport> {
    if let Some(err) = shared.first_error.into_inner() {
        return Err(err);
    }
    Ok(NativeReport {
        wall,
        actions_executed: shared.executed.into_inner(),
        bytes_transferred: shared.bytes_moved.into_inner(),
        trace: None,                      // attached by `run` from the trace guard
        faults: FaultCounters::default(), // filled by `run` from the tallies
        steals,
        metrics: None, // attached by `run` from the registry
    })
}

/// Drains the recorder's span buffers into the context **on every exit
/// path**: normal completion, a reported kernel panic, and unwinding out of
/// the driver group (a driver panicking outside the kernel `catch_unwind`
/// re-raises on the submitting thread). Spans are pushed per-action, so
/// whatever completed before a failure survives as a partial timeline,
/// retrievable via [`Context::take_native_trace`].
struct TraceGuard<'a> {
    ctx: &'a Context,
    recorder: Option<Recorder>,
}

impl TraceGuard<'_> {
    /// Merge the buffers into a trace, publish it to the context, and hand
    /// it back for the report. Idempotent: the drop handler after this is a
    /// no-op.
    fn publish(&mut self) -> Option<NativeTrace> {
        let trace = self.recorder.take().map(Recorder::into_trace);
        if let Some(t) = &trace {
            self.ctx.store_native_trace(t.clone());
        }
        trace
    }
}

impl Drop for TraceGuard<'_> {
    fn drop(&mut self) {
        let _ = self.publish();
    }
}

/// Validate and execute the context's program natively.
pub fn run(ctx: &Context, cfg: &NativeConfig) -> Result<NativeReport> {
    ctx.program().validate()?;
    // Static race/deadlock/dataflow gate — this also re-checks every
    // replay program `run_native_resilient` swaps in before a degraded
    // pass runs it.
    ctx.enforce_check()?;

    // Every kernel needs a native body — check before running anything.
    for stream in &ctx.program().streams {
        for action in &stream.actions {
            if let Action::Kernel(k) = action {
                if k.native.is_none() {
                    return Err(Error::MissingNativeBody {
                        kernel: k.label.clone(),
                    });
                }
            }
        }
    }

    if ctx.program().streams.is_empty() {
        return Ok(NativeReport {
            wall: Duration::ZERO,
            actions_executed: 0,
            bytes_transferred: 0,
            trace: None,
            faults: FaultCounters::default(),
            steals: 0,
            metrics: None,
        });
    }

    let fc = FaultControl::new(ctx, cfg);

    // Injected allocation failures fire before any work starts: a buffer
    // that cannot be materialized fails the whole run (nothing to replay).
    if let Some(plan) = &fc.plan {
        for i in 0..ctx.buffer_count() {
            if plan.alloc_fails(i) {
                FaultTallies::bump(&fc.tallies.alloc_faults);
                ctx.store_recovery(RecoveryState {
                    lost: Vec::new(),
                    skipped: Vec::new(),
                    faults: fc.tallies.snapshot(),
                });
                return Err(Error::Fault {
                    site: format!("alloc b{i}"),
                    attempts: 1,
                });
            }
        }
    }

    // Materialize every buffer the program touches (storage is lazy so
    // simulator-scale programs cost nothing until they really run).
    for stream in &ctx.program().streams {
        for action in &stream.actions {
            for b in action.buffers() {
                ctx.buffer(b).expect("validated").ensure_materialized();
            }
        }
    }

    let threads_hint = cfg
        .max_threads_per_partition
        .unwrap_or_else(|| default_threads_per_partition(ctx));

    // Non-FIFO scheduling replaces the per-stream drivers with the graph
    // dispatcher. Fault plans and partition isolation key off the recorded
    // program's (stream, action) sites, so either disables scheduling —
    // the run then behaves exactly as FIFO.
    let sched_kind = cfg.scheduler.unwrap_or_else(|| ctx.scheduler());
    let planned = if cfg.fault.is_none() && !cfg.isolate_partitions {
        ctx.plan_schedule_graph(sched_kind)
    } else {
        None
    };

    // Metrics: the full instrument catalog is registered up front — the
    // exported shape is a function of the geometry, not of what ran —
    // and the executors get lock-free handles into it. The bundle is
    // cached on the context between runs (reset beats re-registration by
    // an order of magnitude, which matters for launch-overhead runs that
    // are themselves only microseconds long).
    let run_metrics = (cfg.metrics || ctx.metrics_enabled())
        .then(|| ctx.take_run_metrics(ctx.device_count(), ctx.partitions().max(1)));
    let instruments = run_metrics.as_ref().map(|rm| &rm.instruments);

    let mut guard = TraceGuard {
        ctx,
        recorder: cfg.trace.then(|| Recorder::new(ctx)),
    };
    if let Some(rec) = guard.recorder.as_mut() {
        rec.set_fault_tallies(Arc::clone(&fc.tallies));
    }
    let result = if cfg.persistent {
        run_persistent(
            ctx,
            cfg,
            threads_hint,
            guard.recorder.as_ref(),
            instruments,
            &fc,
            planned.as_ref(),
        )
    } else {
        run_scoped(
            ctx,
            cfg,
            threads_hint,
            guard.recorder.as_ref(),
            instruments,
            &fc,
            planned.as_ref(),
        )
    };
    // Publish on the success path too, then attach the trace to the report;
    // on Err (kernel panic) the trace stays retrievable from the context.
    let trace = guard.publish();
    let faults = fc.tallies.snapshot();
    let outcome = match result {
        Ok(mut report) => {
            report.trace = trace;
            report.faults = faults;
            if let Some(rm) = &run_metrics {
                let ri = &rm.instruments;
                ri.actions_executed.add(report.actions_executed as u64);
                ri.steals.add(report.steals as u64);
                ri.transfer_retries.add(faults.transfer_retries);
                ri.transfers_failed.add(faults.transfers_failed);
                ri.kernel_panics.add(faults.kernel_panics);
                ri.partition_losses.add(faults.lost_partitions);
                ri.skipped_actions.add(faults.skipped_actions);
                ri.replayed_actions.add(faults.replayed_actions);
                ri.finish(report.wall.as_secs_f64() * 1e6);
                report.metrics = Some(rm.registry.snapshot());
            }
            Ok(report)
        }
        Err(err) => {
            // Leave the pass's recovery material on the context so
            // `run_native_resilient` can replan onto the survivors.
            ctx.store_recovery(RecoveryState {
                lost: fc.lost.into_inner(),
                skipped: fc.skipped.into_inner(),
                faults,
            });
            Err(err)
        }
    };
    if let Some(rm) = run_metrics {
        ctx.stash_run_metrics(rm);
    }
    outcome
}

/// Execute on the context's persistent runtime: parked drivers, pinned
/// kernel pools, long-lived copy engines. No threads are spawned.
#[allow(clippy::too_many_arguments)]
fn run_persistent(
    ctx: &Context,
    cfg: &NativeConfig,
    threads_hint: usize,
    recorder: Option<&Recorder>,
    metrics: Option<&RunInstruments>,
    fault: &FaultControl,
    planned: Option<&(crate::sched::Schedule, crate::sched::TaskGraph)>,
) -> Result<NativeReport> {
    let rt = ctx.native_runtime();
    let _active = rt.run_lock.lock();
    let streams = &ctx.program().streams;
    let shared = RunShared {
        ctx,
        threads_hint,
        link_bandwidth: cfg.link_bandwidth,
        events: (0..ctx.program().events.len())
            .map(|_| EventFlag::new())
            .collect(),
        barriers: (0..ctx.program().barriers)
            .map(|_| Barrier::new(streams.len()))
            .collect(),
        partition_locks: &rt.partition_locks,
        host_lock: &rt.host_lock,
        engine_tx: &rt.engine_tx,
        pool: Some(&rt.pool),
        recorder,
        metrics,
        fault,
        first_error: Mutex::new(None),
        executed: AtomicUsize::new(0),
        bytes_moved: AtomicU64::new(0),
    };
    if let Some((schedule, graph)) = planned {
        let dispatch = GraphDispatch::new(ctx, schedule, graph);
        let n_drivers = ctx.device_count() * ctx.partitions().max(1);
        let started = Instant::now();
        rt.drivers
            .run_fixed(n_drivers, &|idx| dispatch_driver(&shared, &dispatch, idx));
        let wall = started.elapsed();
        let steals = dispatch.steals.load(Ordering::Relaxed);
        if let Some(rec) = recorder {
            rec.set_steals(steals as u64);
        }
        return finish(shared, wall, steals);
    }
    let started = Instant::now();
    rt.drivers
        .run_fixed(streams.len(), &|idx| drive_stream(&shared, &streams[idx]));
    let wall = started.elapsed();
    finish(shared, wall, 0)
}

/// The original spawn-per-run executor: scoped driver threads, per-run copy
/// engines and locks. Kept as the launch-overhead baseline.
#[allow(clippy::too_many_arguments)]
fn run_scoped(
    ctx: &Context,
    cfg: &NativeConfig,
    threads_hint: usize,
    recorder: Option<&Recorder>,
    metrics: Option<&RunInstruments>,
    fault: &FaultControl,
    planned: Option<&(crate::sched::Schedule, crate::sched::TaskGraph)>,
) -> Result<NativeReport> {
    let streams = &ctx.program().streams;
    let n_streams = streams.len();
    let n_devices = ctx.device_count();
    let parts_per_dev = ctx.partitions().max(1);
    let channels_per_dev = channels_for(ctx.config().link.duplex);

    let mut engine_tx: Vec<Vec<Sender<CopyJob>>> = Vec::with_capacity(n_devices);
    let mut engine_handles = Vec::new();
    for _ in 0..n_devices {
        let mut chans = Vec::with_capacity(channels_per_dev);
        for _ in 0..channels_per_dev {
            let (tx, rx) = unbounded::<CopyJob>();
            engine_handles.push(std::thread::spawn(move || copy_engine(&rx)));
            chans.push(tx);
        }
        engine_tx.push(chans);
    }

    let partition_locks: Vec<Vec<Mutex<()>>> = (0..n_devices)
        .map(|_| (0..parts_per_dev).map(|_| Mutex::new(())).collect())
        .collect();
    let host_lock = Mutex::new(());

    let shared = RunShared {
        ctx,
        threads_hint,
        link_bandwidth: cfg.link_bandwidth,
        events: (0..ctx.program().events.len())
            .map(|_| EventFlag::new())
            .collect(),
        barriers: (0..ctx.program().barriers)
            .map(|_| Barrier::new(n_streams))
            .collect(),
        partition_locks: &partition_locks,
        host_lock: &host_lock,
        engine_tx: &engine_tx,
        pool: None,
        recorder,
        metrics,
        fault,
        first_error: Mutex::new(None),
        executed: AtomicUsize::new(0),
        bytes_moved: AtomicU64::new(0),
    };

    let started = Instant::now();
    let mut steals = 0;
    if let Some((schedule, graph)) = planned {
        let dispatch = GraphDispatch::new(ctx, schedule, graph);
        let n_drivers = ctx.device_count() * parts_per_dev;
        std::thread::scope(|scope| {
            for idx in 0..n_drivers {
                let (shared, dispatch) = (&shared, &dispatch);
                scope.spawn(move || dispatch_driver(shared, dispatch, idx));
            }
        });
        steals = dispatch.steals.load(Ordering::Relaxed);
        if let Some(rec) = recorder {
            rec.set_steals(steals as u64);
        }
    } else {
        std::thread::scope(|scope| {
            for stream in streams {
                let shared = &shared;
                scope.spawn(move || drive_stream(shared, stream));
            }
        });
    }
    let wall = started.elapsed();

    let report = finish(shared, wall, steals);

    // Shut the per-run copy engines down.
    drop(engine_tx);
    for h in engine_handles {
        let _ = h.join();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::kernel::KernelDesc;
    use micsim::compute::KernelProfile;
    use micsim::time::SimDuration;
    use micsim::PlatformConfig;

    fn small_ctx(partitions: usize) -> Context {
        Context::builder(PlatformConfig::phi_31sp())
            .partitions(partitions)
            .build()
            .unwrap()
    }

    fn native_kernel(label: &str) -> KernelDesc {
        KernelDesc::simulated(label, KernelProfile::streaming("k", 1e9), 1.0)
    }

    fn scoped_cfg() -> NativeConfig {
        NativeConfig {
            persistent: false,
            ..NativeConfig::default()
        }
    }

    #[test]
    fn native_refuses_deadlocked_program_instead_of_hanging() {
        // s0 = [wait eB, record eA], s1 = [wait eA, record eB]: without the
        // static gate the drivers would block forever on each other's
        // event flags. The shallow `validate()` accepts this shape, so the
        // refusal must come from the analyzer.
        let mut ctx = small_ctx(2);
        let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
        let e_a = ctx.record_event(s0).unwrap();
        let e_b = ctx.record_event(s1).unwrap();
        {
            let program = &mut ctx.program;
            program.streams[0].actions.clear();
            program.streams[1].actions.clear();
            program.streams[0].actions.push(Action::WaitEvent(e_b));
            program.streams[0].actions.push(Action::RecordEvent(e_a));
            program.streams[1].actions.push(Action::WaitEvent(e_a));
            program.streams[1].actions.push(Action::RecordEvent(e_b));
            program.events[e_a.0].action_index = 1;
            program.events[e_b.0].action_index = 1;
        }
        ctx.program.validate().unwrap();
        let err = ctx.run_native().unwrap_err();
        assert!(matches!(err, Error::Check(_)), "{err}");
        // The refused run still leaves the full report behind.
        let report = ctx.take_check_report().expect("report stashed");
        assert!(!report.is_clean());
    }

    #[test]
    fn transfer_kernel_transfer_roundtrip() {
        let mut ctx = small_ctx(1);
        let a = ctx.alloc("a", 8);
        let b = ctx.alloc("b", 8);
        ctx.write_host(a, &[1., 2., 3., 4., 5., 6., 7., 8.])
            .unwrap();
        let s = ctx.stream(0).unwrap();
        ctx.h2d(s, a).unwrap();
        ctx.kernel(
            s,
            native_kernel("add1")
                .reading([a])
                .writing([b])
                .with_native(|k| {
                    for (o, i) in k.writes[0].iter_mut().zip(k.reads[0]) {
                        *o = i + 1.0;
                    }
                }),
        )
        .unwrap();
        ctx.d2h(s, b).unwrap();
        let report = ctx.run_native().unwrap();
        assert_eq!(report.actions_executed, 3);
        assert_eq!(report.bytes_transferred, 64);
        assert_eq!(
            ctx.read_host(b).unwrap(),
            vec![2., 3., 4., 5., 6., 7., 8., 9.]
        );
    }

    #[test]
    fn scoped_baseline_matches_persistent() {
        // The same program, run on both executors, must produce identical
        // numerics and identical reports (modulo wall time).
        let mut ctx = small_ctx(2);
        let a = ctx.alloc("a", 64);
        let b = ctx.alloc("b", 64);
        ctx.write_host(a, &[1.5; 64]).unwrap();
        let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
        ctx.h2d(s0, a).unwrap();
        let e = ctx.record_event(s0).unwrap();
        ctx.wait_event(s1, e).unwrap();
        ctx.kernel(
            s1,
            native_kernel("x3")
                .reading([a])
                .writing([b])
                .with_native(|k| {
                    let parts = k.threads;
                    let input = k.reads[0];
                    crate::parallel::par_chunks_mut(k.writes[0], parts, |_, off, chunk| {
                        for (i, o) in chunk.iter_mut().enumerate() {
                            *o = input[off + i] * 3.0;
                        }
                    });
                }),
        )
        .unwrap();
        ctx.d2h(s1, b).unwrap();

        let persistent = ctx.run_native().unwrap();
        let out_persistent = ctx.read_host(b).unwrap();
        let scoped = ctx.run_native_with(&scoped_cfg()).unwrap();
        let out_scoped = ctx.read_host(b).unwrap();

        assert_eq!(out_persistent, vec![4.5; 64]);
        assert_eq!(out_persistent, out_scoped);
        assert_eq!(persistent.actions_executed, scoped.actions_executed);
        assert_eq!(persistent.bytes_transferred, scoped.bytes_transferred);
    }

    #[test]
    fn device_copy_is_isolated_until_d2h() {
        // Without the D2H, the host copy of the output must stay zero.
        let mut ctx = small_ctx(1);
        let a = ctx.alloc("a", 4);
        ctx.write_host(a, &[9., 9., 9., 9.]).unwrap();
        let b = ctx.alloc("b", 4);
        let s = ctx.stream(0).unwrap();
        ctx.h2d(s, a).unwrap();
        ctx.kernel(
            s,
            native_kernel("copy")
                .reading([a])
                .writing([b])
                .with_native(|k| {
                    k.writes[0].copy_from_slice(k.reads[0]);
                }),
        )
        .unwrap();
        ctx.run_native().unwrap();
        assert_eq!(ctx.read_host(b).unwrap(), vec![0.0; 4]);
    }

    #[test]
    fn missing_native_body_rejected_up_front() {
        let mut ctx = small_ctx(1);
        let a = ctx.alloc("a", 4);
        let s = ctx.stream(0).unwrap();
        ctx.kernel(s, native_kernel("no-body").reading([a]))
            .unwrap();
        assert!(matches!(
            ctx.run_native(),
            Err(Error::MissingNativeBody { .. })
        ));
    }

    #[test]
    fn kernel_panic_reported_and_run_drains() {
        let mut ctx = small_ctx(2);
        let a = ctx.alloc("a", 4);
        let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
        ctx.kernel(
            s0,
            native_kernel("boom")
                .writing([a])
                .with_native(|_| panic!("boom")),
        )
        .unwrap();
        // Stream 1 depends on stream 0 via a barrier; the run must still end.
        ctx.barrier();
        ctx.kernel(s1, native_kernel("after").with_native(|_| {}))
            .unwrap();
        let err = ctx.run_native().unwrap_err();
        assert!(matches!(err, Error::KernelPanicked { .. }), "{err}");
    }

    #[test]
    fn kernel_panic_does_not_poison_later_runs() {
        // The persistent runtime must survive a failed run and execute the
        // next one normally.
        let mut ctx = small_ctx(1);
        let a = ctx.alloc("a", 1);
        let s = ctx.stream(0).unwrap();
        ctx.kernel(
            s,
            native_kernel("boom")
                .writing([a])
                .with_native(|_| panic!("boom")),
        )
        .unwrap();
        assert!(ctx.run_native().is_err());
        ctx.reset_program();
        ctx.kernel(
            s,
            native_kernel("fine").writing([a]).with_native(|k| {
                k.writes[0][0] = 5.0;
            }),
        )
        .unwrap();
        ctx.d2h(s, a).unwrap();
        ctx.run_native().unwrap();
        assert_eq!(ctx.read_host(a).unwrap(), vec![5.0]);
    }

    #[test]
    fn events_order_cross_stream_natively() {
        for _ in 0..20 {
            let mut ctx = small_ctx(2);
            let a = ctx.alloc("a", 1);
            let b = ctx.alloc("b", 1);
            let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
            ctx.kernel(
                s0,
                native_kernel("produce").writing([a]).with_native(|k| {
                    k.writes[0][0] = 7.0;
                }),
            )
            .unwrap();
            let e = ctx.record_event(s0).unwrap();
            ctx.wait_event(s1, e).unwrap();
            ctx.kernel(
                s1,
                native_kernel("consume")
                    .reading([a])
                    .writing([b])
                    .with_native(|k| {
                        k.writes[0][0] = k.reads[0][0] * 2.0;
                    }),
            )
            .unwrap();
            ctx.d2h(s1, b).unwrap();
            ctx.run_native().unwrap();
            assert_eq!(ctx.read_host(b).unwrap(), vec![14.0]);
        }
    }

    #[test]
    fn barrier_separates_stages_natively() {
        for _ in 0..10 {
            let mut ctx = small_ctx(4);
            let stage1: Vec<_> = (0..4).map(|i| ctx.alloc(format!("x{i}"), 1)).collect();
            let total = ctx.alloc("total", 1);
            for (i, b) in stage1.iter().enumerate() {
                let s = ctx.stream(i).unwrap();
                let val = (i + 1) as f32;
                ctx.kernel(
                    s,
                    native_kernel(&format!("w{i}"))
                        .writing([*b])
                        .with_native(move |k| {
                            k.writes[0][0] = val;
                        }),
                )
                .unwrap();
            }
            ctx.barrier();
            let s0 = ctx.stream(0).unwrap();
            ctx.kernel(
                s0,
                native_kernel("sum")
                    .reading(stage1.iter().copied())
                    .writing([total])
                    .with_native(|k| {
                        k.writes[0][0] = k.reads.iter().map(|r| r[0]).sum();
                    }),
            )
            .unwrap();
            ctx.d2h(s0, total).unwrap();
            ctx.run_native().unwrap();
            assert_eq!(ctx.read_host(total).unwrap(), vec![10.0]);
        }
    }

    #[test]
    fn throttled_link_slows_transfers() {
        let mut ctx = small_ctx(1);
        let a = ctx.alloc("a", 1 << 18); // 1 MiB
        let s = ctx.stream(0).unwrap();
        for _ in 0..4 {
            ctx.h2d(s, a).unwrap();
        }
        let fast = ctx.run_native().unwrap();
        // 4 MiB at 100 MB/s => >= 40 ms.
        let slow = ctx
            .run_native_with(&NativeConfig {
                link_bandwidth: Some(100.0e6),
                ..NativeConfig::default()
            })
            .unwrap();
        assert!(
            slow.wall >= Duration::from_millis(35),
            "slow={:?}",
            slow.wall
        );
        assert!(slow.wall > fast.wall);
    }

    #[test]
    fn empty_program_native() {
        let ctx = small_ctx(2);
        let report = ctx.run_native().unwrap();
        assert_eq!(report.actions_executed, 0);
        assert_eq!(report.bytes_transferred, 0);
    }

    #[test]
    fn host_kernel_operates_on_host_copies() {
        let mut ctx = small_ctx(1);
        let a = ctx.alloc("a", 4);
        let b = ctx.alloc("b", 4);
        ctx.write_host(a, &[1., 2., 3., 4.]).unwrap();
        let s = ctx.stream(0).unwrap();
        // No transfers: the host kernel must see the host copy directly.
        ctx.kernel(
            s,
            native_kernel("host-add")
                .on_host()
                .reading([a])
                .writing([b])
                .with_native(|k| {
                    for (o, i) in k.writes[0].iter_mut().zip(k.reads[0]) {
                        *o = i * 10.0;
                    }
                }),
        )
        .unwrap();
        ctx.run_native().unwrap();
        assert_eq!(ctx.read_host(b).unwrap(), vec![10., 20., 30., 40.]);
        // The device copy was never touched.
        assert_eq!(*ctx.buffer(b).unwrap().device.read(), vec![0.0; 4]);
    }

    #[test]
    fn mixed_host_device_round_trip() {
        // device kernel writes x (device), d2h, host kernel doubles on host.
        let mut ctx = small_ctx(1);
        let x = ctx.alloc("x", 2);
        let s = ctx.stream(0).unwrap();
        ctx.kernel(
            s,
            native_kernel("dev").writing([x]).with_native(|k| {
                k.writes[0].copy_from_slice(&[3.0, 4.0]);
            }),
        )
        .unwrap();
        ctx.d2h(s, x).unwrap();
        ctx.kernel(
            s,
            native_kernel("host")
                .on_host()
                .writing([x])
                .with_native(|k| {
                    for v in k.writes[0].iter_mut() {
                        *v *= 2.0;
                    }
                }),
        )
        .unwrap();
        ctx.run_native().unwrap();
        assert_eq!(ctx.read_host(x).unwrap(), vec![6.0, 8.0]);
    }

    #[test]
    fn streams_sharing_partition_serialize_kernels() {
        use std::sync::atomic::{AtomicBool, AtomicUsize};
        let concurrent = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));

        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(1)
            .streams_per_partition(4)
            .build()
            .unwrap();
        for i in 0..4 {
            let s = ctx.stream(i).unwrap();
            let concurrent = concurrent.clone();
            let active = active.clone();
            ctx.kernel(
                s,
                native_kernel(&format!("k{i}")).with_native(move |_| {
                    if active.fetch_add(1, Ordering::SeqCst) > 0 {
                        concurrent.store(true, Ordering::SeqCst);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                    active.fetch_sub(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
        }
        ctx.run_native().unwrap();
        assert!(
            !concurrent.load(Ordering::SeqCst),
            "kernels on one partition must serialize"
        );
    }

    #[test]
    fn kernels_on_distinct_partitions_overlap() {
        use std::sync::atomic::AtomicBool;
        // Two kernels on different partitions, each waiting (bounded) for
        // the other to be inside its body: the flag can only be set if the
        // partitions genuinely run concurrently — sleeps alone would also
        // pass on a serialized runtime, this cannot.
        let inside = Arc::new(AtomicUsize::new(0));
        let overlapped = Arc::new(AtomicBool::new(false));
        let mut ctx = small_ctx(2);
        for i in 0..2 {
            let s = ctx.stream(i).unwrap();
            let inside = inside.clone();
            let overlapped = overlapped.clone();
            ctx.kernel(
                s,
                native_kernel(&format!("k{i}")).with_native(move |_| {
                    inside.fetch_add(1, Ordering::SeqCst);
                    let deadline = Instant::now() + Duration::from_secs(5);
                    while Instant::now() < deadline {
                        // Break as soon as either body observed both inside.
                        if inside.load(Ordering::SeqCst) == 2 || overlapped.load(Ordering::SeqCst) {
                            overlapped.store(true, Ordering::SeqCst);
                            break;
                        }
                        std::thread::yield_now();
                    }
                    inside.fetch_sub(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
        }
        ctx.run_native().unwrap();
        assert!(
            overlapped.load(Ordering::SeqCst),
            "kernels on distinct partitions must overlap"
        );
    }

    /// `tiles` independent pipeline tiles (h2d, kernel, d2h) recorded onto
    /// `streams` streams — the T < P starvation shape when `streams` is
    /// smaller than the context's partition count.
    fn tiled_ctx(partitions: usize, streams: usize, tiles: usize) -> Context {
        let mut ctx = small_ctx(partitions);
        let mut bufs = Vec::new();
        for t in 0..tiles {
            let a = ctx.alloc(format!("a{t}"), 32);
            let b = ctx.alloc(format!("b{t}"), 32);
            ctx.write_host(a, &[t as f32 + 1.0; 32]).unwrap();
            bufs.push((a, b));
        }
        for (t, (a, b)) in bufs.into_iter().enumerate() {
            let s = ctx.stream(t % streams).unwrap();
            ctx.h2d(s, a).unwrap();
            ctx.kernel(
                s,
                native_kernel(&format!("tile{t}"))
                    .reading([a])
                    .writing([b])
                    .with_native(|k| {
                        std::thread::sleep(Duration::from_millis(2));
                        for (o, i) in k.writes[0].iter_mut().zip(k.reads[0]) {
                            *o = i * 2.0;
                        }
                    }),
            )
            .unwrap();
            ctx.d2h(s, b).unwrap();
        }
        ctx
    }

    #[test]
    fn scheduled_runs_match_fifo_numerics() {
        // Same program through FIFO, HEFT and WorkSteal (persistent and
        // scoped): placements move, results must not.
        let ctx = tiled_ctx(4, 2, 8);
        ctx.run_native().unwrap();
        let expected: Vec<Vec<f32>> = (0..8)
            .map(|t| ctx.read_host(BufId(2 * t + 1)).unwrap())
            .collect();
        for kind in [
            crate::sched::SchedulerKind::ListHeft,
            crate::sched::SchedulerKind::WorkSteal,
        ] {
            for persistent in [true, false] {
                let cfg = NativeConfig {
                    scheduler: Some(kind),
                    persistent,
                    ..NativeConfig::default()
                };
                let report = ctx.run_native_with(&cfg).unwrap();
                assert_eq!(report.actions_executed, 24, "{kind}/{persistent}");
                for (t, want) in expected.iter().enumerate() {
                    assert_eq!(
                        &ctx.read_host(BufId(2 * t + 1)).unwrap(),
                        want,
                        "{kind} persistent={persistent} tile {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn heft_spreads_starved_streams_and_reports_steals() {
        // 8 tiles on 2 streams, 4 partitions: HEFT's planned placement must
        // move kernels onto the idle partitions, surfaced as steals.
        let ctx = tiled_ctx(4, 2, 8);
        let report = ctx
            .run_native_with(&NativeConfig {
                scheduler: Some(crate::sched::SchedulerKind::ListHeft),
                ..NativeConfig::default()
            })
            .unwrap();
        assert!(report.steals > 0, "steals = {}", report.steals);
        // FIFO never steals.
        let fifo = ctx.run_native().unwrap();
        assert_eq!(fifo.steals, 0);
    }

    #[test]
    fn scheduled_trace_carries_steal_counter() {
        let ctx = tiled_ctx(4, 2, 8);
        let report = ctx
            .run_native_with(&NativeConfig {
                scheduler: Some(crate::sched::SchedulerKind::ListHeft),
                trace: true,
                ..NativeConfig::default()
            })
            .unwrap();
        let trace = report.trace.expect("traced run");
        assert_eq!(trace.counters.steals, report.steals as u64);
        // The scheduled timeline still classifies: some compute happened.
        assert!(trace.overlap().compute_busy > SimDuration::ZERO);
    }

    #[test]
    fn fault_plan_disables_scheduling() {
        // Fault plans key off recorded (stream, action) sites, so a planned
        // run must fall back to FIFO order — observable as zero steals.
        let ctx = tiled_ctx(4, 2, 8);
        let plan = crate::fault::FaultPlan::seeded(7);
        let report = ctx
            .run_native_with(&NativeConfig {
                scheduler: Some(crate::sched::SchedulerKind::ListHeft),
                fault: Some(Arc::new(plan)),
                ..NativeConfig::default()
            })
            .unwrap();
        assert_eq!(report.steals, 0);
    }

    #[test]
    fn persistent_runtime_is_reused_across_runs() {
        let mut ctx = small_ctx(2);
        let a = ctx.alloc("a", 16);
        let mut after_prev = None;
        for i in 0..2 {
            let s = ctx.stream(i).unwrap();
            if let Some(e) = after_prev {
                ctx.wait_event(s, e).unwrap();
            }
            ctx.kernel(
                s,
                native_kernel(&format!("k{i}"))
                    .writing([a])
                    .with_native(|k| {
                        k.writes[0][0] += 1.0;
                    }),
            )
            .unwrap();
            after_prev = Some(ctx.record_event(s).unwrap());
        }
        assert_eq!(ctx.native_thread_count(), None, "runtime built lazily");
        ctx.run_native().unwrap();
        let after_first = ctx.native_thread_count().expect("runtime exists");
        for _ in 0..20 {
            ctx.run_native().unwrap();
        }
        assert_eq!(
            ctx.native_thread_count().unwrap(),
            after_first,
            "repeated runs must not grow the runtime"
        );
        // Scoped runs don't touch the persistent runtime either.
        ctx.run_native_with(&scoped_cfg()).unwrap();
        assert_eq!(ctx.native_thread_count().unwrap(), after_first);
    }
}
