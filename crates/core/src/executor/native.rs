//! The native executor.
//!
//! Executes a recorded program for real on the host:
//!
//! * one **driver thread per stream** interprets that stream's FIFO;
//! * a **copy engine thread** per link channel performs transfers between
//!   each buffer's host and device storage — one engine in serial-duplex
//!   mode, which reproduces the Phi's serialized H2D/D2H behaviour in real
//!   execution, optionally throttled to a configured bandwidth;
//! * kernels take their partition's mutex (streams sharing a partition
//!   serialize, as on the card), lock their declared buffers in global id
//!   order (deadlock-free), and run their native body with a `threads` hint
//!   sized from the partition;
//! * events are flag+condvar pairs, barriers are `std::sync::Barrier`s over
//!   all streams.
//!
//! A panicking kernel does not poison the run: the stream switches to a
//! skipping mode that still fires its events and joins its barriers so the
//! other drivers can drain, and the error is reported at the end.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

use micsim::pcie::{Direction, Duplex};

use crate::action::Action;
use crate::buffer::Elem;
use crate::context::Context;
use crate::kernel::KernelCtx;
use crate::types::{Error, Result};

/// Settings for native execution.
#[derive(Clone, Debug)]
#[derive(Default)]
pub struct NativeConfig {
    /// Upper bound on the `threads` hint given to kernels. `None` sizes it
    /// as `available_parallelism / partitions` (at least 1), so partitions
    /// genuinely share the host like they share the card.
    pub max_threads_per_partition: Option<usize>,
    /// Emulate PCIe bandwidth: each copy holds the engine for at least
    /// `bytes / bandwidth` seconds. `None` copies at memory speed.
    pub link_bandwidth: Option<f64>,
}


/// Result of a native run.
#[derive(Debug)]
pub struct NativeReport {
    /// Wall-clock time of the whole run (driver spawn to last join).
    pub wall: Duration,
    /// Actions executed across all streams.
    pub actions_executed: usize,
    /// Total bytes moved through the copy engine(s).
    pub bytes_transferred: u64,
}

struct EventFlag {
    fired: Mutex<bool>,
    cv: Condvar,
}

impl EventFlag {
    fn new() -> EventFlag {
        EventFlag {
            fired: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn fire(&self) {
        let mut guard = self.fired.lock();
        *guard = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut guard = self.fired.lock();
        while !*guard {
            self.cv.wait(&mut guard);
        }
    }
}

/// A buffer id, write-intent flag, and its storage Arc, collected before
/// the guards that borrow it.
type StorageEntry = (
    crate::types::BufId,
    bool,
    std::sync::Arc<parking_lot::RwLock<Vec<Elem>>>,
);

struct CopyJob {
    src: Arc<RwLock<Vec<Elem>>>,
    dst: Arc<RwLock<Vec<Elem>>>,
    bytes: u64,
    done: Sender<()>,
}

fn copy_engine(rx: Receiver<CopyJob>, bandwidth: Option<f64>) {
    while let Ok(job) = rx.recv() {
        let started = Instant::now();
        {
            let src = job.src.read();
            let mut dst = job.dst.write();
            dst.copy_from_slice(&src);
        }
        if let Some(bw) = bandwidth {
            let target = Duration::from_secs_f64(job.bytes as f64 / bw);
            let elapsed = started.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
        }
        // Receiver may have given up (run aborted); ignore send failure.
        let _ = job.done.send(());
    }
}

/// Validate and execute the context's program natively.
pub fn run(ctx: &Context, cfg: &NativeConfig) -> Result<NativeReport> {
    ctx.program.validate()?;

    // Every kernel needs a native body — check before spawning anything.
    for stream in &ctx.program.streams {
        for action in &stream.actions {
            if let Action::Kernel(k) = action {
                if k.native.is_none() {
                    return Err(Error::MissingNativeBody {
                        kernel: k.label.clone(),
                    });
                }
            }
        }
    }

    let n_streams = ctx.program.streams.len();
    if n_streams == 0 {
        return Ok(NativeReport {
            wall: Duration::ZERO,
            actions_executed: 0,
            bytes_transferred: 0,
        });
    }

    // Materialize every buffer the program touches (storage is lazy so
    // simulator-scale programs cost nothing until they really run).
    for stream in &ctx.program.streams {
        for action in &stream.actions {
            match action {
                Action::Transfer { buf, .. } => {
                    ctx.buffer(*buf).expect("validated").ensure_materialized()
                }
                Action::Kernel(k) => {
                    for b in k.reads.iter().chain(&k.writes) {
                        ctx.buffer(*b).expect("validated").ensure_materialized();
                    }
                }
                _ => {}
            }
        }
    }

    // Threads hint per partition.
    let host_par = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let parts_per_dev = ctx.partitions().max(1);
    let threads_hint = cfg
        .max_threads_per_partition
        .unwrap_or_else(|| (host_par / parts_per_dev).max(1));

    // Copy engines: one per link channel per device.
    let n_devices = ctx.device_count();
    let channels_per_dev = match ctx.config().link.duplex {
        Duplex::Serial => 1,
        Duplex::Full => 2,
    };
    let mut engine_tx: Vec<Vec<Sender<CopyJob>>> = Vec::with_capacity(n_devices);
    let mut engine_handles = Vec::new();
    for _ in 0..n_devices {
        let mut chans = Vec::with_capacity(channels_per_dev);
        for _ in 0..channels_per_dev {
            let (tx, rx) = unbounded::<CopyJob>();
            let bw = cfg.link_bandwidth;
            engine_handles.push(std::thread::spawn(move || copy_engine(rx, bw)));
            chans.push(tx);
        }
        engine_tx.push(chans);
    }

    // Shared synchronization state.
    let events: Vec<Arc<EventFlag>> = (0..ctx.program.events.len())
        .map(|_| Arc::new(EventFlag::new()))
        .collect();
    let barriers: Vec<Arc<Barrier>> = (0..ctx.program.barriers)
        .map(|_| Arc::new(Barrier::new(n_streams)))
        .collect();
    // Partition mutexes: [device][partition].
    let partition_locks: Vec<Vec<Arc<Mutex<()>>>> = (0..n_devices)
        .map(|_| {
            (0..parts_per_dev)
                .map(|_| Arc::new(Mutex::new(())))
                .collect()
        })
        .collect();

    // Host kernels serialize on the host, exactly as the simulator prices
    // them on its single host resource.
    let host_lock: Mutex<()> = Mutex::new(());
    let first_error: Mutex<Option<Error>> = Mutex::new(None);
    let executed = AtomicUsize::new(0);
    let bytes_moved = AtomicUsize::new(0);

    let started = Instant::now();
    std::thread::scope(|scope| {
        for stream in &ctx.program.streams {
            let events = &events;
            let barriers = &barriers;
            let partition_locks = &partition_locks;
            let engine_tx = &engine_tx;
            let host_lock = &host_lock;
            let first_error = &first_error;
            let executed = &executed;
            let bytes_moved = &bytes_moved;
            scope.spawn(move || {
                let dev = stream.placement.device.0;
                let part = stream.placement.partition;
                let mut skipping = false;
                for action in &stream.actions {
                    match action {
                        Action::Barrier(n) => {
                            barriers[*n].wait();
                        }
                        Action::RecordEvent(e) => {
                            events[e.0].fire();
                        }
                        Action::WaitEvent(e) => {
                            events[e.0].wait();
                        }
                        Action::Transfer { dir, buf } => {
                            if skipping {
                                continue;
                            }
                            let buffer =
                                ctx.buffer(*buf).expect("buffer validated at enqueue time");
                            let (src, dst) = match dir {
                                Direction::HostToDevice => {
                                    (buffer.host.clone(), buffer.device.clone())
                                }
                                Direction::DeviceToHost => {
                                    (buffer.device.clone(), buffer.host.clone())
                                }
                            };
                            let chan = match ctx.config().link.duplex {
                                Duplex::Serial => 0,
                                Duplex::Full => match dir {
                                    Direction::HostToDevice => 0,
                                    Direction::DeviceToHost => 1,
                                },
                            };
                            let (done_tx, done_rx) = unbounded::<()>();
                            let bytes = buffer.bytes();
                            engine_tx[dev][chan]
                                .send(CopyJob {
                                    src,
                                    dst,
                                    bytes,
                                    done: done_tx,
                                })
                                .expect("copy engine alive for run duration");
                            done_rx.recv().expect("copy engine completes jobs");
                            bytes_moved.fetch_add(bytes as usize, Ordering::Relaxed);
                            executed.fetch_add(1, Ordering::Relaxed);
                        }
                        Action::Kernel(desc) => {
                            if skipping {
                                continue;
                            }
                            // Host kernels take the host lock instead of a
                            // partition lock (they occupy the host, not the
                            // card) and act on the buffers' host copies.
                            let (_partition_guard, _host_guard) = if desc.host {
                                (None, Some(host_lock.lock()))
                            } else {
                                (Some(partition_locks[dev][part].lock()), None)
                            };
                            let side = |b: &crate::buffer::Buffer| {
                                if desc.host {
                                    b.host.clone()
                                } else {
                                    b.device.clone()
                                }
                            };
                            // Lock declared buffers in global id order
                            // (deadlock-free across concurrent kernels), but
                            // keep read and write guards in separate vectors
                            // so views can borrow them independently.
                            let mut wanted: Vec<(crate::types::BufId, bool)> = desc
                                .reads
                                .iter()
                                .map(|b| (*b, false))
                                .chain(desc.writes.iter().map(|b| (*b, true)))
                                .collect();
                            wanted.sort_by_key(|(b, _)| *b);
                            // Storage Arcs are collected first so the guards
                            // below (declared after, dropped before) can
                            // safely borrow them.
                            let storages: Vec<StorageEntry> = wanted
                                .iter()
                                .map(|&(b, w)| {
                                    let buffer = ctx.buffer(b).expect("validated at enqueue time");
                                    (b, w, side(buffer))
                                })
                                .collect();
                            let mut read_guards: Vec<(
                                crate::types::BufId,
                                parking_lot::RwLockReadGuard<'_, Vec<Elem>>,
                            )> = Vec::with_capacity(desc.reads.len());
                            let mut write_guards: Vec<(
                                crate::types::BufId,
                                parking_lot::RwLockWriteGuard<'_, Vec<Elem>>,
                            )> = Vec::with_capacity(desc.writes.len());
                            for (b, is_write, storage) in &storages {
                                if *is_write {
                                    write_guards.push((*b, storage.write()));
                                } else {
                                    read_guards.push((*b, storage.read()));
                                }
                            }
                            // Read views in declaration order.
                            let reads: Vec<&[Elem]> = desc
                                .reads
                                .iter()
                                .map(|b| {
                                    read_guards
                                        .iter()
                                        .find(|(id, _)| id == b)
                                        .expect("guard acquired above")
                                        .1
                                        .as_slice()
                                })
                                .collect();
                            // Write views in declaration order: compute for
                            // each held guard its slot in `desc.writes`, then
                            // place the mutable slices by permutation.
                            let mut slots: Vec<Option<&mut [Elem]>> =
                                (0..desc.writes.len()).map(|_| None).collect();
                            for (id, guard) in write_guards.iter_mut() {
                                let pos = desc
                                    .writes
                                    .iter()
                                    .position(|b| b == id)
                                    .expect("guard acquired above");
                                slots[pos] = Some(guard.as_mut_slice());
                            }
                            let writes: Vec<&mut [Elem]> = slots
                                .into_iter()
                                .map(|s| s.expect("every declared write locked"))
                                .collect();
                            let mut kctx = KernelCtx {
                                reads,
                                writes,
                                threads: threads_hint,
                            };
                            let body = desc.native.as_ref().expect("checked above").clone();
                            let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut kctx)));
                            if outcome.is_err() {
                                let mut slot = first_error.lock();
                                if slot.is_none() {
                                    *slot = Some(Error::KernelPanicked {
                                        kernel: desc.label.clone(),
                                    });
                                }
                                skipping = true;
                            } else {
                                executed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    let wall = started.elapsed();

    // Shut the copy engines down.
    drop(engine_tx);
    for h in engine_handles {
        let _ = h.join();
    }

    if let Some(err) = first_error.into_inner() {
        return Err(err);
    }
    Ok(NativeReport {
        wall,
        actions_executed: executed.into_inner(),
        bytes_transferred: bytes_moved.into_inner() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::kernel::KernelDesc;
    use micsim::compute::KernelProfile;
    use micsim::PlatformConfig;

    fn small_ctx(partitions: usize) -> Context {
        Context::builder(PlatformConfig::phi_31sp())
            .partitions(partitions)
            .build()
            .unwrap()
    }

    fn native_kernel(label: &str) -> KernelDesc {
        KernelDesc::simulated(label, KernelProfile::streaming("k", 1e9), 1.0)
    }

    #[test]
    fn transfer_kernel_transfer_roundtrip() {
        let mut ctx = small_ctx(1);
        let a = ctx.alloc("a", 8);
        let b = ctx.alloc("b", 8);
        ctx.write_host(a, &[1., 2., 3., 4., 5., 6., 7., 8.])
            .unwrap();
        let s = ctx.stream(0).unwrap();
        ctx.h2d(s, a).unwrap();
        ctx.kernel(
            s,
            native_kernel("add1")
                .reading([a])
                .writing([b])
                .with_native(|k| {
                    for (o, i) in k.writes[0].iter_mut().zip(k.reads[0]) {
                        *o = i + 1.0;
                    }
                }),
        )
        .unwrap();
        ctx.d2h(s, b).unwrap();
        let report = ctx.run_native().unwrap();
        assert_eq!(report.actions_executed, 3);
        assert_eq!(report.bytes_transferred, 64);
        assert_eq!(
            ctx.read_host(b).unwrap(),
            vec![2., 3., 4., 5., 6., 7., 8., 9.]
        );
    }

    #[test]
    fn device_copy_is_isolated_until_d2h() {
        // Without the D2H, the host copy of the output must stay zero.
        let mut ctx = small_ctx(1);
        let a = ctx.alloc("a", 4);
        ctx.write_host(a, &[9., 9., 9., 9.]).unwrap();
        let b = ctx.alloc("b", 4);
        let s = ctx.stream(0).unwrap();
        ctx.h2d(s, a).unwrap();
        ctx.kernel(
            s,
            native_kernel("copy")
                .reading([a])
                .writing([b])
                .with_native(|k| {
                    k.writes[0].copy_from_slice(k.reads[0]);
                }),
        )
        .unwrap();
        ctx.run_native().unwrap();
        assert_eq!(ctx.read_host(b).unwrap(), vec![0.0; 4]);
    }

    #[test]
    fn missing_native_body_rejected_up_front() {
        let mut ctx = small_ctx(1);
        let a = ctx.alloc("a", 4);
        let s = ctx.stream(0).unwrap();
        ctx.kernel(s, native_kernel("no-body").reading([a]))
            .unwrap();
        assert!(matches!(
            ctx.run_native(),
            Err(Error::MissingNativeBody { .. })
        ));
    }

    #[test]
    fn kernel_panic_reported_and_run_drains() {
        let mut ctx = small_ctx(2);
        let a = ctx.alloc("a", 4);
        let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
        ctx.kernel(
            s0,
            native_kernel("boom")
                .writing([a])
                .with_native(|_| panic!("boom")),
        )
        .unwrap();
        // Stream 1 depends on stream 0 via a barrier; the run must still end.
        ctx.barrier();
        ctx.kernel(s1, native_kernel("after").with_native(|_| {}))
            .unwrap();
        let err = ctx.run_native().unwrap_err();
        assert!(matches!(err, Error::KernelPanicked { .. }), "{err}");
    }

    #[test]
    fn events_order_cross_stream_natively() {
        for _ in 0..20 {
            let mut ctx = small_ctx(2);
            let a = ctx.alloc("a", 1);
            let b = ctx.alloc("b", 1);
            let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
            ctx.kernel(
                s0,
                native_kernel("produce").writing([a]).with_native(|k| {
                    k.writes[0][0] = 7.0;
                }),
            )
            .unwrap();
            let e = ctx.record_event(s0).unwrap();
            ctx.wait_event(s1, e).unwrap();
            ctx.kernel(
                s1,
                native_kernel("consume")
                    .reading([a])
                    .writing([b])
                    .with_native(|k| {
                        k.writes[0][0] = k.reads[0][0] * 2.0;
                    }),
            )
            .unwrap();
            ctx.d2h(s1, b).unwrap();
            ctx.run_native().unwrap();
            assert_eq!(ctx.read_host(b).unwrap(), vec![14.0]);
        }
    }

    #[test]
    fn barrier_separates_stages_natively() {
        for _ in 0..10 {
            let mut ctx = small_ctx(4);
            let stage1: Vec<_> = (0..4).map(|i| ctx.alloc(format!("x{i}"), 1)).collect();
            let total = ctx.alloc("total", 1);
            for (i, b) in stage1.iter().enumerate() {
                let s = ctx.stream(i).unwrap();
                let val = (i + 1) as f32;
                ctx.kernel(
                    s,
                    native_kernel(&format!("w{i}"))
                        .writing([*b])
                        .with_native(move |k| {
                            k.writes[0][0] = val;
                        }),
                )
                .unwrap();
            }
            ctx.barrier();
            let s0 = ctx.stream(0).unwrap();
            ctx.kernel(
                s0,
                native_kernel("sum")
                    .reading(stage1.iter().copied())
                    .writing([total])
                    .with_native(|k| {
                        k.writes[0][0] = k.reads.iter().map(|r| r[0]).sum();
                    }),
            )
            .unwrap();
            ctx.d2h(s0, total).unwrap();
            ctx.run_native().unwrap();
            assert_eq!(ctx.read_host(total).unwrap(), vec![10.0]);
        }
    }

    #[test]
    fn throttled_link_slows_transfers() {
        let mut ctx = small_ctx(1);
        let a = ctx.alloc("a", 1 << 18); // 1 MiB
        let s = ctx.stream(0).unwrap();
        for _ in 0..4 {
            ctx.h2d(s, a).unwrap();
        }
        let fast = ctx.run_native().unwrap();
        // 4 MiB at 100 MB/s => >= 40 ms.
        let slow = ctx
            .run_native_with(&NativeConfig {
                link_bandwidth: Some(100.0e6),
                ..NativeConfig::default()
            })
            .unwrap();
        assert!(
            slow.wall >= Duration::from_millis(35),
            "slow={:?}",
            slow.wall
        );
        assert!(slow.wall > fast.wall);
    }

    #[test]
    fn empty_program_native() {
        let ctx = small_ctx(2);
        let report = ctx.run_native().unwrap();
        assert_eq!(report.actions_executed, 0);
        assert_eq!(report.bytes_transferred, 0);
    }

    #[test]
    fn host_kernel_operates_on_host_copies() {
        let mut ctx = small_ctx(1);
        let a = ctx.alloc("a", 4);
        let b = ctx.alloc("b", 4);
        ctx.write_host(a, &[1., 2., 3., 4.]).unwrap();
        let s = ctx.stream(0).unwrap();
        // No transfers: the host kernel must see the host copy directly.
        ctx.kernel(
            s,
            native_kernel("host-add")
                .on_host()
                .reading([a])
                .writing([b])
                .with_native(|k| {
                    for (o, i) in k.writes[0].iter_mut().zip(k.reads[0]) {
                        *o = i * 10.0;
                    }
                }),
        )
        .unwrap();
        ctx.run_native().unwrap();
        assert_eq!(ctx.read_host(b).unwrap(), vec![10., 20., 30., 40.]);
        // The device copy was never touched.
        assert_eq!(*ctx.buffer(b).unwrap().device.read(), vec![0.0; 4]);
    }

    #[test]
    fn mixed_host_device_round_trip() {
        // device kernel writes x (device), d2h, host kernel doubles on host.
        let mut ctx = small_ctx(1);
        let x = ctx.alloc("x", 2);
        let s = ctx.stream(0).unwrap();
        ctx.kernel(
            s,
            native_kernel("dev").writing([x]).with_native(|k| {
                k.writes[0].copy_from_slice(&[3.0, 4.0]);
            }),
        )
        .unwrap();
        ctx.d2h(s, x).unwrap();
        ctx.kernel(
            s,
            native_kernel("host")
                .on_host()
                .writing([x])
                .with_native(|k| {
                    for v in k.writes[0].iter_mut() {
                        *v *= 2.0;
                    }
                }),
        )
        .unwrap();
        ctx.run_native().unwrap();
        assert_eq!(ctx.read_host(x).unwrap(), vec![6.0, 8.0]);
    }

    #[test]
    fn streams_sharing_partition_serialize_kernels() {
        use std::sync::atomic::{AtomicBool, AtomicUsize};
        static CONCURRENT: AtomicBool = AtomicBool::new(false);
        static ACTIVE: AtomicUsize = AtomicUsize::new(0);
        CONCURRENT.store(false, Ordering::SeqCst);

        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(1)
            .streams_per_partition(4)
            .build()
            .unwrap();
        for i in 0..4 {
            let s = ctx.stream(i).unwrap();
            ctx.kernel(
                s,
                native_kernel(&format!("k{i}")).with_native(|_| {
                    if ACTIVE.fetch_add(1, Ordering::SeqCst) > 0 {
                        CONCURRENT.store(true, Ordering::SeqCst);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                    ACTIVE.fetch_sub(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
        }
        ctx.run_native().unwrap();
        assert!(
            !CONCURRENT.load(Ordering::SeqCst),
            "kernels on one partition must serialize"
        );
    }
}
