//! Program executors.
//!
//! Both executors interpret the same recorded [`Program`](crate::program::Program):
//!
//! * [`sim`] lowers it onto the `micsim` discrete-event engine and returns
//!   exact simulated timings on the calibrated Phi platform;
//! * [`native`] executes it for real — per-stream driver threads, a
//!   serialized copy engine standing in for the PCIe link, and kernels
//!   running on partitioned host thread pools.
//!
//! The pair is the point: the simulator reproduces the paper's measured
//! shapes, the native executor proves the runtime semantics are real and
//! the kernels compute correct results.

pub mod native;
pub mod sim;
