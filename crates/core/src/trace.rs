//! Wall-clock tracing for the native executor.
//!
//! The paper's headline claims are *shapes on a timeline* — H2D/D2H
//! serialization (Fig. 5), partial compute/transfer overlap (Fig. 6) — and
//! until now only the simulator could show them. This module records real
//! execution into the **same [`micsim::engine::Timeline`] representation
//! the simulator produces**, so every existing analysis tool
//! ([`overlap_stats`], [`render_gantt`],
//! [`chrome_trace`]) works on native runs
//! unchanged.
//!
//! Design, in order of who stamps what:
//!
//! * each **stream driver** owns a private span buffer (one buffer per
//!   driver thread, touched by nobody else while the run is live, merged
//!   only after the drivers joined — the per-buffer mutex is therefore
//!   uncontended and never blocks the hot path);
//! * the **copy-engine threads** stamp start/end [`Instant`]s into a
//!   per-driver reusable slot carried by each `CopyJob`; the submitting
//!   driver folds the stamps into its own buffer after the completion
//!   handshake, so engine threads never allocate;
//! * the **pool workers** in [`pool`](crate::pool) report chunked-job spans
//!   through a thread-local sink the driver installs around the run (see
//!   `record_pool_job`).
//!
//! Lanes mirror the sim executor's resource layout exactly — per-device
//! link channels, the host, per-device partitions — so a native timeline
//! and a simulated timeline of the same program classify one-to-one.
//!
//! Everything here is behind `NativeConfig { trace: true }`; with tracing
//! off the executor carries a `None` recorder and pays one branch per
//! action (verified by `bench_native_runtime`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use micsim::engine::{ResourceId, TaskRecord, Timeline};
use micsim::time::{SimDuration, SimTime};
use micsim::trace::{
    chrome_trace, merge_intervals, overlap_stats, partition_stats, render_gantt, total_length,
    Interval, OverlapStats, PartitionStats, ResourceKinds,
};

use crate::context::Context;

// ----- lanes ----------------------------------------------------------------

/// Resource ids for a native run, laid out exactly like the sim executor
/// builds them: every device's link channels first, then the host, then
/// every device's partitions.
#[derive(Clone, Debug)]
pub(crate) struct LaneMap {
    links: Vec<Vec<ResourceId>>,
    host: ResourceId,
    partitions: Vec<Vec<ResourceId>>,
    names: BTreeMap<ResourceId, String>,
    kinds: ResourceKinds,
}

impl LaneMap {
    fn new(devices: usize, channels: usize, partitions: usize) -> LaneMap {
        let mut next = 0usize;
        let mut fresh = |name: String, names: &mut BTreeMap<ResourceId, String>| {
            let id = ResourceId(next);
            next += 1;
            names.insert(id, name);
            id
        };
        let mut names = BTreeMap::new();
        let mut kinds = ResourceKinds::default();
        let mut links = Vec::with_capacity(devices);
        for d in 0..devices {
            let mut chans = Vec::with_capacity(channels);
            for c in 0..channels {
                let r = fresh(format!("mic{d}.link{c}"), &mut names);
                kinds.links.push(r);
                chans.push(r);
            }
            links.push(chans);
        }
        let host = fresh("host".to_string(), &mut names);
        kinds.partitions.push(host);
        let mut parts = Vec::with_capacity(devices);
        for d in 0..devices {
            let mut res = Vec::with_capacity(partitions);
            for p in 0..partitions {
                let r = fresh(format!("mic{d}.p{p}"), &mut names);
                kinds.partitions.push(r);
                res.push(r);
            }
            parts.push(res);
        }
        LaneMap {
            links,
            host,
            partitions: parts,
            names,
            kinds,
        }
    }
}

// ----- spans ----------------------------------------------------------------

/// One measured interval on a lane (`None` = pure control, rendered on the
/// synthetic row of the Chrome trace, ignored by overlap stats).
#[derive(Clone, Debug)]
struct Span {
    lane: Option<ResourceId>,
    label: String,
    start: Instant,
    end: Instant,
}

/// Per-driver recording state. Each buffer is owned by exactly one driver
/// thread for the duration of the run, so its mutex is uncontended.
struct StreamBuf {
    spans: Arc<Mutex<Vec<Span>>>,
    queue_wait: Mutex<Duration>,
    launch: Mutex<LaunchHistogram>,
}

/// Start/end stamps for one in-flight copy, written by the engine thread
/// before the completion flag fires and read by the submitting driver after
/// its wait returns (the flag's lock orders the accesses). One slot per
/// driver, reset and reused across that driver's transfers.
pub(crate) struct CopyStamp {
    slot: Mutex<Option<(Instant, Instant)>>,
    queue_depth: Arc<AtomicUsize>,
}

impl CopyStamp {
    /// A stamp slot not wired to any recorder — used by metrics-only runs
    /// (no trace), which still need the engine's start/end pair to price
    /// queue wait and wire time.
    pub(crate) fn detached() -> Arc<CopyStamp> {
        Arc::new(CopyStamp {
            slot: Mutex::new(None),
            queue_depth: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// Engine side: the copy queue shrank by one job.
    pub(crate) fn picked_up(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Engine side: record when the copy held the engine.
    pub(crate) fn stamp(&self, start: Instant, end: Instant) {
        *self.slot.lock() = Some((start, end));
    }

    /// Driver side, after the completion handshake: consume the engine's
    /// start/end pair. Taken exactly once per transfer; the recorder and
    /// the metrics instruments both read the returned value.
    pub(crate) fn take(&self) -> Option<(Instant, Instant)> {
        self.slot.lock().take()
    }
}

// ----- derived counters -----------------------------------------------------

/// Log₂-bucketed latency histogram (bucket `i` covers `[2^i, 2^(i+1))`
/// nanoseconds; the last bucket absorbs everything larger).
#[derive(Clone, Debug, Default)]
pub struct LaunchHistogram {
    /// Sample count per power-of-two bucket, up to ~8.4 s.
    pub buckets: [u64; 24],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples, for the mean.
    pub total_ns: u64,
    /// Largest sample seen.
    pub max_ns: u64,
}

impl LaunchHistogram {
    /// Record one latency sample.
    pub fn record(&mut self, ns: u64) {
        let idx = (63 - ns.max(1).leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Mean sample, in nanoseconds (0 with no samples).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total_ns as f64 / self.count as f64
    }

    fn merge(&mut self, other: &LaunchHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Counters derived from the recorded spans, beyond what the timeline
/// itself answers.
#[derive(Clone, Debug)]
pub struct NativeCounters {
    /// Per-kernel-launch overhead — time from action dispatch to the kernel
    /// body actually running (partition lock + buffer locks + view setup).
    pub launch_overhead: LaunchHistogram,
    /// Per-stream total time transfers sat in the copy-engine queue before
    /// the engine picked them up, indexed by stream id.
    pub queue_wait: Vec<Duration>,
    /// Busy fraction of each copy-engine lane over the makespan, keyed by
    /// lane name (`mic0.link0`, ...).
    pub copy_busy_fraction: Vec<(String, f64)>,
    /// High-water mark of jobs sitting in copy-engine queues.
    pub copy_queue_depth_hwm: usize,
    /// High-water mark of chunk parts queued beyond a worker group's width
    /// in one pool job (0 = the pool never had more work than threads).
    pub pool_queue_depth_hwm: usize,
    /// Chunked pool jobs submitted by kernel bodies during the run.
    pub pool_jobs: usize,
    /// Fault-path totals (retries, panics, skips) for this run; all zero on
    /// a clean run without a fault plan.
    pub faults: crate::fault::FaultCounters,
    /// Kernels a non-FIFO scheduler ran on a different partition than their
    /// recorded stream's (cross-partition moves / runtime steals). Always
    /// zero on FIFO runs.
    pub steals: u64,
}

// ----- the public trace -----------------------------------------------------

/// A native run's recorded timeline plus the classification and names the
/// analysis tools need — the native analogue of
/// [`SimReport`](crate::executor::sim::SimReport).
#[derive(Clone, Debug)]
pub struct NativeTrace {
    /// Measured spans as engine task records (wall-clock nanoseconds since
    /// run start).
    pub timeline: Timeline,
    /// Which lanes are links vs partitions (the host counts as a
    /// partition, as in the sim executor).
    pub kinds: ResourceKinds,
    /// Lane names for Gantt/Chrome rendering.
    pub names: BTreeMap<ResourceId, String>,
    /// Derived counters (launch overhead, queue wait, engine busy).
    pub counters: NativeCounters,
}

impl NativeTrace {
    /// Temporal-sharing statistics: link busy, compute busy, overlap.
    pub fn overlap(&self) -> OverlapStats {
        overlap_stats(&self.timeline, &self.kinds)
    }

    /// Per-partition busy/idle breakdown of the measured run — same
    /// semantics as
    /// [`SimReport::partition_stats`](crate::executor::sim::SimReport::partition_stats),
    /// so starvation (idle fraction, longest gap) compares one-to-one
    /// between a simulated and a native run of the same program.
    pub fn partition_stats(&self) -> Vec<PartitionStats> {
        partition_stats(&self.timeline, &self.kinds)
    }

    /// ASCII Gantt chart of the run, `width` columns wide.
    pub fn gantt(&self, width: usize) -> String {
        render_gantt(&self.timeline, &self.names, width)
    }

    /// Chrome trace-event JSON (open at `chrome://tracing` or Perfetto).
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.timeline, &self.names)
    }
}

// ----- the recorder ---------------------------------------------------------

/// Per-run recording state, created by the native executor when
/// `NativeConfig::trace` is set and drained into a [`NativeTrace`] when the
/// run's guard drops — including on panic paths, so a failed run still
/// yields the partial timeline recorded up to the failure.
pub(crate) struct Recorder {
    epoch: Instant,
    lanes: LaneMap,
    streams: Vec<StreamBuf>,
    copy_queue_depth: Arc<AtomicUsize>,
    copy_queue_hwm: AtomicUsize,
    pool_queue_hwm: Arc<AtomicUsize>,
    pool_jobs: Arc<AtomicUsize>,
    /// The run's fault tallies, attached by the executor when a fault plan
    /// or isolation mode is active so the trace's counters carry them.
    fault_tallies: Option<Arc<crate::fault::FaultTallies>>,
    /// Cross-partition kernel moves, set by the graph dispatcher after the
    /// drivers join.
    steals: std::sync::atomic::AtomicU64,
}

impl Recorder {
    pub(crate) fn new(ctx: &Context) -> Recorder {
        let devices = ctx.device_count();
        let channels = ctx.config().link.channels();
        let partitions = ctx.partitions().max(1);
        Recorder {
            epoch: Instant::now(),
            lanes: LaneMap::new(devices, channels, partitions),
            streams: (0..ctx.stream_count())
                .map(|_| StreamBuf {
                    spans: Arc::new(Mutex::new(Vec::new())),
                    queue_wait: Mutex::new(Duration::ZERO),
                    launch: Mutex::new(LaunchHistogram::default()),
                })
                .collect(),
            copy_queue_depth: Arc::new(AtomicUsize::new(0)),
            copy_queue_hwm: AtomicUsize::new(0),
            pool_queue_hwm: Arc::new(AtomicUsize::new(0)),
            pool_jobs: Arc::new(AtomicUsize::new(0)),
            fault_tallies: None,
            steals: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Wire the executor's fault tallies into the trace's counters.
    pub(crate) fn set_fault_tallies(&mut self, tallies: Arc<crate::fault::FaultTallies>) {
        self.fault_tallies = Some(tallies);
    }

    /// Record the run's cross-partition kernel moves (graph dispatcher).
    pub(crate) fn set_steals(&self, steals: u64) {
        self.steals.store(steals, Ordering::Relaxed);
    }

    pub(crate) fn link_lane(&self, device: usize, channel: usize) -> ResourceId {
        self.lanes.links[device][channel]
    }

    pub(crate) fn kernel_lane(&self, host: bool, device: usize, partition: usize) -> ResourceId {
        if host {
            self.lanes.host
        } else {
            self.lanes.partitions[device][partition]
        }
    }

    /// A fresh per-driver copy stamp slot, wired to the queue-depth gauge.
    pub(crate) fn copy_stamp(&self) -> Arc<CopyStamp> {
        Arc::new(CopyStamp {
            slot: Mutex::new(None),
            queue_depth: self.copy_queue_depth.clone(),
        })
    }

    /// Driver side, at submit time: the copy queue grew by one.
    pub(crate) fn copy_submitted(&self) {
        let depth = self.copy_queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.copy_queue_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record any span on `stream`'s buffer.
    pub(crate) fn record_span(
        &self,
        stream: usize,
        lane: Option<ResourceId>,
        label: String,
        start: Instant,
        end: Instant,
    ) {
        self.streams[stream].spans.lock().push(Span {
            lane,
            label,
            start,
            end,
        });
    }

    /// Record a completed transfer from the engine's stamped start/end
    /// pair: the engine-lane span plus the queue wait between submit and
    /// engine pickup. The caller takes the pair off the [`CopyStamp`] so
    /// the metrics instruments can consume the same stamps.
    pub(crate) fn record_transfer(
        &self,
        stream: usize,
        lane: ResourceId,
        label: String,
        submitted: Instant,
        pair: Option<(Instant, Instant)>,
    ) {
        let Some((start, end)) = pair else {
            return;
        };
        *self.streams[stream].queue_wait.lock() += start.saturating_duration_since(submitted);
        self.record_span(stream, Some(lane), label, start, end);
    }

    /// Record one kernel's dispatch-to-body-start overhead.
    pub(crate) fn record_launch_overhead(&self, stream: usize, overhead: Duration) {
        let ns = u64::try_from(overhead.as_nanos()).unwrap_or(u64::MAX);
        self.streams[stream].launch.lock().record(ns);
    }

    /// The sink `stream`'s driver thread installs so pool jobs submitted
    /// from kernel bodies land in that driver's buffer.
    pub(crate) fn pool_sink(&self, stream: usize) -> PoolSink {
        PoolSink {
            spans: self.streams[stream].spans.clone(),
            pool_queue_hwm: self.pool_queue_hwm.clone(),
            pool_jobs: self.pool_jobs.clone(),
        }
    }

    /// Merge every buffer into a [`NativeTrace`]. Safe to call after the
    /// drivers joined (success or panic); spans are pushed per-action, so a
    /// partial run drains whatever completed before the failure.
    pub(crate) fn into_trace(self) -> NativeTrace {
        let mut records: Vec<TaskRecord> = Vec::new();
        let mut launch = LaunchHistogram::default();
        let mut queue_wait = Vec::with_capacity(self.streams.len());
        for buf in &self.streams {
            for span in buf.spans.lock().iter() {
                let start = SimTime::from_wall(span.start.saturating_duration_since(self.epoch));
                let finish = SimTime::from_wall(span.end.saturating_duration_since(self.epoch));
                records.push(TaskRecord::measured(
                    span.lane,
                    start,
                    finish,
                    span.label.clone(),
                ));
            }
            launch.merge(&buf.launch.lock());
            queue_wait.push(*buf.queue_wait.lock());
        }
        let timeline = Timeline::from_records(records);
        let makespan = timeline.makespan;
        let copy_busy_fraction = self
            .lanes
            .kinds
            .links
            .iter()
            .map(|&lane| {
                let busy: Vec<Interval> = timeline
                    .records
                    .iter()
                    .filter(|r| r.resource == Some(lane))
                    .map(|r| Interval {
                        start: r.start,
                        end: r.finish,
                    })
                    .collect();
                let busy = total_length(&merge_intervals(busy));
                let frac = if makespan == SimDuration::ZERO {
                    0.0
                } else {
                    busy.nanos() as f64 / makespan.nanos() as f64
                };
                (self.lanes.names[&lane].clone(), frac)
            })
            .collect();
        NativeTrace {
            timeline,
            kinds: self.lanes.kinds,
            names: self.lanes.names,
            counters: NativeCounters {
                launch_overhead: launch,
                queue_wait,
                copy_busy_fraction,
                copy_queue_depth_hwm: self.copy_queue_hwm.load(Ordering::Relaxed),
                pool_queue_depth_hwm: self.pool_queue_hwm.load(Ordering::Relaxed),
                pool_jobs: self.pool_jobs.load(Ordering::Relaxed),
                faults: self
                    .fault_tallies
                    .as_ref()
                    .map(|t| t.snapshot())
                    .unwrap_or_default(),
                steals: self.steals.load(Ordering::Relaxed),
            },
        }
    }
}

// ----- pool sink (thread-local) ---------------------------------------------

/// Where a driver thread's pool-job spans go while it runs kernel bodies.
pub(crate) struct PoolSink {
    spans: Arc<Mutex<Vec<Span>>>,
    pool_queue_hwm: Arc<AtomicUsize>,
    pool_jobs: Arc<AtomicUsize>,
}

thread_local! {
    static POOL_SINK: std::cell::RefCell<Option<PoolSink>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs `sink` as the calling thread's pool-span sink; restores the
/// previous sink on drop (drivers install one per run).
pub(crate) struct PoolSinkGuard {
    previous: Option<PoolSink>,
}

pub(crate) fn install_pool_sink(sink: PoolSink) -> PoolSinkGuard {
    let previous = POOL_SINK.with(|s| s.borrow_mut().replace(sink));
    PoolSinkGuard { previous }
}

impl Drop for PoolSinkGuard {
    fn drop(&mut self) {
        POOL_SINK.with(|s| *s.borrow_mut() = self.previous.take());
    }
}

/// Called by the pool before a chunked job: `Some(now)` when the calling
/// thread has a sink installed (tracing on), `None` otherwise — the only
/// cost on the untraced path is this thread-local read.
pub(crate) fn pool_job_start() -> Option<Instant> {
    POOL_SINK.with(|s| s.borrow().is_some().then(Instant::now))
}

/// Called by the pool after a chunked job of `parts` tasks on a group
/// `width` threads wide, paired with a [`pool_job_start`] that returned
/// `Some`.
pub(crate) fn record_pool_job(start: Instant, parts: usize, width: usize) {
    let end = Instant::now();
    POOL_SINK.with(|s| {
        if let Some(sink) = s.borrow().as_ref() {
            sink.pool_jobs.fetch_add(1, Ordering::Relaxed);
            sink.pool_queue_hwm
                .fetch_max(parts.saturating_sub(width), Ordering::Relaxed);
            sink.spans.lock().push(Span {
                lane: None,
                label: format!("pool({parts})"),
                start,
                end,
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_map_mirrors_sim_layout() {
        // 2 devices, 1 channel, 3 partitions: links first, host, partitions.
        let lanes = LaneMap::new(2, 1, 3);
        assert_eq!(lanes.links[0][0], ResourceId(0));
        assert_eq!(lanes.links[1][0], ResourceId(1));
        assert_eq!(lanes.host, ResourceId(2));
        assert_eq!(lanes.partitions[0][0], ResourceId(3));
        assert_eq!(lanes.partitions[1][2], ResourceId(8));
        assert_eq!(lanes.names[&ResourceId(0)], "mic0.link0");
        assert_eq!(lanes.names[&ResourceId(2)], "host");
        assert_eq!(lanes.names[&ResourceId(8)], "mic1.p2");
        assert_eq!(lanes.kinds.links.len(), 2);
        // Host + 6 partitions.
        assert_eq!(lanes.kinds.partitions.len(), 7);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = LaunchHistogram::default();
        h.record(1); // bucket 0
        h.record(1024); // bucket 10
        h.record(1500); // bucket 10
        h.record(u64::MAX); // clamped to last bucket
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[10], 2);
        assert_eq!(h.buckets[23], 1);
        assert_eq!(h.count, 4);
        assert_eq!(h.max_ns, u64::MAX);
        let mut other = LaunchHistogram::default();
        other.record(2);
        h.merge(&other);
        assert_eq!(h.count, 5);
        assert_eq!(h.buckets[1], 1);
    }

    #[test]
    fn pool_sink_noop_without_install() {
        assert!(pool_job_start().is_none());
        // Calling record without a sink is a silent no-op.
        record_pool_job(Instant::now(), 8, 4);
    }
}
