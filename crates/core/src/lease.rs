//! Elastic partition leasing — the multi-tenant generalization of
//! [`Context::replan`](crate::context::Context::replan).
//!
//! A replan gives *one* caller a new partition count by re-initializing
//! the whole device. A [`LeaseTable`] instead carves a fixed partition
//! space (the context's
//! [`replan_capacity`](crate::context::Context::replan_capacity)) into
//! per-tenant **grants** that grow and shrink between runs without
//! touching device state: the serving layer plans the shared context at
//! the table's capacity once, and elasticity is pure bookkeeping over
//! which physical partitions each tenant's streams may be placed on.
//!
//! Like `replan`, every mutation **validates before committing**: a
//! rejected grow/shrink/poison leaves the table byte-identical, so a
//! scheduler can speculatively resize tenants and treat errors as "try
//! a smaller grant" rather than "reconstruct the world".
//!
//! The table also records which tenant owns each logical buffer of the
//! shared context. That is the isolation ledger: the serving layer
//! refuses to relocate a program that references a buffer leased to a
//! different tenant, so a kernel panic poisoning one tenant's partitions
//! can only taint buffers the same tenant owns.
//!
//! Invariants (checked by [`LeaseTable::check_invariants`] and pinned by
//! proptests in `stream-serve`):
//!
//! * every physical partition is either free or held by exactly one
//!   tenant — Σ granted + free == capacity;
//! * a poisoned partition is always part of its tenant's grant;
//! * every registered buffer has exactly one owner.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::types::{BufId, Error, Result};

/// A serving tenant's identity. Doubles as the value of the `tenant`
/// metrics label (see [`crate::metrics::Labels`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u16);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One tenant's current grant.
#[derive(Clone, Debug, Default)]
pub struct Lease {
    /// Physical partitions held, ascending.
    partitions: BTreeSet<usize>,
    /// Partitions of the grant lost to a kernel panic in the last run
    /// and not yet healed or released.
    poisoned: BTreeSet<usize>,
}

impl Lease {
    /// Physical partitions held, ascending.
    pub fn partitions(&self) -> impl Iterator<Item = usize> + '_ {
        self.partitions.iter().copied()
    }

    /// Number of partitions held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True when the grant is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Poisoned partitions of the grant, ascending.
    pub fn poisoned(&self) -> impl Iterator<Item = usize> + '_ {
        self.poisoned.iter().copied()
    }

    /// Partitions that are held and healthy, ascending.
    pub fn healthy(&self) -> impl Iterator<Item = usize> + '_ {
        self.partitions
            .iter()
            .copied()
            .filter(move |p| !self.poisoned.contains(p))
    }
}

/// The lease table: a fixed physical partition space shared by tenants.
/// See the [module docs](self).
#[derive(Clone, Debug)]
pub struct LeaseTable {
    capacity: usize,
    free: BTreeSet<usize>,
    leases: BTreeMap<TenantId, Lease>,
    buffers: BTreeMap<BufId, TenantId>,
}

impl LeaseTable {
    /// A table over `capacity` physical partitions, all free.
    #[must_use]
    pub fn new(capacity: usize) -> LeaseTable {
        LeaseTable {
            capacity,
            free: (0..capacity).collect(),
            leases: BTreeMap::new(),
            buffers: BTreeMap::new(),
        }
    }

    /// Total physical partitions the table manages.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Partitions currently granted across all tenants.
    #[must_use]
    pub fn granted_total(&self) -> usize {
        self.leases.values().map(Lease::len).sum()
    }

    /// Partitions currently free.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Tenants with a (possibly empty) lease, ascending.
    pub fn tenants(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.leases.keys().copied()
    }

    /// Borrow a tenant's lease, if any.
    #[must_use]
    pub fn lease(&self, tenant: TenantId) -> Option<&Lease> {
        self.leases.get(&tenant)
    }

    /// Which tenant holds physical partition `p`, if any.
    #[must_use]
    pub fn partition_owner(&self, p: usize) -> Option<TenantId> {
        self.leases
            .iter()
            .find(|(_, l)| l.partitions.contains(&p))
            .map(|(&t, _)| t)
    }

    /// Grow `tenant`'s grant by `n` partitions (creating the lease on
    /// first contact) and return the newly granted physical partitions,
    /// ascending — the lowest free ids, so grants are deterministic.
    ///
    /// # Errors
    /// [`Error::Config`] when fewer than `n` partitions are free; the
    /// table is unchanged.
    pub fn grow(&mut self, tenant: TenantId, n: usize) -> Result<Vec<usize>> {
        if self.free.len() < n {
            return Err(Error::Config(format!(
                "lease grow({tenant}, {n}) exceeds free partitions: {} of {} free",
                self.free.len(),
                self.capacity
            )));
        }
        let granted: Vec<usize> = self.free.iter().copied().take(n).collect();
        for &p in &granted {
            self.free.remove(&p);
        }
        let lease = self.leases.entry(tenant).or_default();
        lease.partitions.extend(granted.iter().copied());
        Ok(granted)
    }

    /// Shrink `tenant`'s grant by `n` partitions and return the released
    /// physical partitions. Poisoned partitions are released first (they
    /// are the ones a tenant wants rid of), then the highest healthy ids.
    /// Released partitions rejoin the free pool healed.
    ///
    /// # Errors
    /// [`Error::Config`] when the tenant holds fewer than `n` partitions
    /// (or no lease at all); the table is unchanged.
    pub fn shrink(&mut self, tenant: TenantId, n: usize) -> Result<Vec<usize>> {
        let held = self.leases.get(&tenant).map_or(0, Lease::len);
        if held < n {
            return Err(Error::Config(format!(
                "lease shrink({tenant}, {n}) exceeds the grant of {held}"
            )));
        }
        if n == 0 {
            return Ok(Vec::new());
        }
        let lease = self.leases.get_mut(&tenant).expect("held >= n > 0 checked");
        let mut released: Vec<usize> = lease.poisoned.iter().copied().take(n).collect();
        let mut rest = n - released.len();
        for &p in lease.partitions.iter().rev() {
            if rest == 0 {
                break;
            }
            if !lease.poisoned.contains(&p) {
                released.push(p);
                rest -= 1;
            }
        }
        for &p in &released {
            lease.partitions.remove(&p);
            lease.poisoned.remove(&p);
            self.free.insert(p);
        }
        released.sort_unstable();
        Ok(released)
    }

    /// Drop `tenant`'s lease entirely: all partitions rejoin the free
    /// pool healed, the tenant's buffer registrations are forgotten, and
    /// the freed partitions are returned ascending. A tenant without a
    /// lease releases nothing.
    pub fn release(&mut self, tenant: TenantId) -> Vec<usize> {
        // A tenant can own buffers without holding partitions, so the
        // ledger is cleared even when there is no lease entry to remove.
        self.buffers.retain(|_, owner| *owner != tenant);
        let Some(lease) = self.leases.remove(&tenant) else {
            return Vec::new();
        };
        let freed: Vec<usize> = lease.partitions.iter().copied().collect();
        self.free.extend(freed.iter().copied());
        freed
    }

    /// Mark physical partition `p` of `tenant`'s grant poisoned — the
    /// serving layer calls this when a run loses the partition to an
    /// injected or real kernel panic, so the next placement avoids it
    /// until [healed](LeaseTable::heal).
    ///
    /// # Errors
    /// [`Error::Config`] when `p` is not part of the tenant's grant; the
    /// table is unchanged.
    pub fn poison(&mut self, tenant: TenantId, p: usize) -> Result<()> {
        let lease = self
            .leases
            .get_mut(&tenant)
            .filter(|l| l.partitions.contains(&p))
            .ok_or_else(|| {
                Error::Config(format!(
                    "poison({tenant}, p{p}): partition not in the grant"
                ))
            })?;
        lease.poisoned.insert(p);
        Ok(())
    }

    /// Clear all poison marks on `tenant`'s grant (the partitions were
    /// only lost for the duration of the failed run; the next run may
    /// place on them again).
    pub fn heal(&mut self, tenant: TenantId) {
        if let Some(lease) = self.leases.get_mut(&tenant) {
            lease.poisoned.clear();
        }
    }

    /// Record that `tenant` owns logical buffer `buf` of the shared
    /// context. Registering a buffer the tenant already owns is a no-op.
    ///
    /// # Errors
    /// [`Error::Config`] when another tenant owns the buffer — the
    /// isolation ledger is append-only per owner.
    pub fn register_buffer(&mut self, tenant: TenantId, buf: BufId) -> Result<()> {
        match self.buffers.get(&buf) {
            Some(&owner) if owner != tenant => Err(Error::Config(format!(
                "buffer {buf} already owned by {owner}, cannot lease to {tenant}"
            ))),
            _ => {
                self.buffers.insert(buf, tenant);
                Ok(())
            }
        }
    }

    /// Which tenant owns logical buffer `buf`, if any.
    #[must_use]
    pub fn buffer_owner(&self, buf: BufId) -> Option<TenantId> {
        self.buffers.get(&buf).copied()
    }

    /// Buffers owned by `tenant`, ascending.
    pub fn buffers_of(&self, tenant: TenantId) -> impl Iterator<Item = BufId> + '_ {
        self.buffers
            .iter()
            .filter(move |(_, &owner)| owner == tenant)
            .map(|(&b, _)| b)
    }

    /// Verify the structural invariants (see the [module docs](self)).
    ///
    /// # Errors
    /// [`Error::Config`] describing the first violated invariant.
    pub fn check_invariants(&self) -> Result<()> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for (t, lease) in &self.leases {
            for &p in &lease.partitions {
                if p >= self.capacity {
                    return Err(Error::Config(format!("{t} holds p{p} >= capacity")));
                }
                if self.free.contains(&p) {
                    return Err(Error::Config(format!("{t} holds p{p} which is also free")));
                }
                if !seen.insert(p) {
                    return Err(Error::Config(format!("p{p} held by two tenants")));
                }
            }
            if let Some(&p) = lease.poisoned.difference(&lease.partitions).next() {
                return Err(Error::Config(format!("{t} poisons unheld p{p}")));
            }
        }
        if seen.len() + self.free.len() != self.capacity {
            return Err(Error::Config(format!(
                "granted {} + free {} != capacity {}",
                seen.len(),
                self.free.len(),
                self.capacity
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_grants_lowest_free_ids() {
        let mut t = LeaseTable::new(4);
        assert_eq!(t.grow(TenantId(0), 2).unwrap(), vec![0, 1]);
        assert_eq!(t.grow(TenantId(1), 1).unwrap(), vec![2]);
        assert_eq!(t.granted_total(), 3);
        assert_eq!(t.free_count(), 1);
        assert_eq!(t.partition_owner(2), Some(TenantId(1)));
        t.check_invariants().unwrap();
    }

    #[test]
    fn overcommit_is_rejected_without_side_effects() {
        let mut t = LeaseTable::new(2);
        t.grow(TenantId(0), 2).unwrap();
        let before = format!("{t:?}");
        assert!(t.grow(TenantId(1), 1).is_err());
        assert_eq!(format!("{t:?}"), before, "rejected grow must not commit");
        t.check_invariants().unwrap();
    }

    #[test]
    fn shrink_releases_poisoned_first_then_highest() {
        let mut t = LeaseTable::new(4);
        t.grow(TenantId(7), 4).unwrap();
        t.poison(TenantId(7), 1).unwrap();
        assert_eq!(t.shrink(TenantId(7), 2).unwrap(), vec![1, 3]);
        let lease = t.lease(TenantId(7)).unwrap();
        assert_eq!(lease.partitions().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(lease.poisoned().count(), 0);
        // Released partitions are free (and healed) again.
        assert_eq!(t.grow(TenantId(8), 2).unwrap(), vec![1, 3]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn shrink_past_grant_is_rejected() {
        let mut t = LeaseTable::new(3);
        t.grow(TenantId(0), 1).unwrap();
        assert!(t.shrink(TenantId(0), 2).is_err());
        assert!(t.shrink(TenantId(9), 1).is_err(), "no lease at all");
        assert_eq!(t.lease(TenantId(0)).unwrap().len(), 1);
    }

    #[test]
    fn poison_heal_and_healthy_view() {
        let mut t = LeaseTable::new(3);
        t.grow(TenantId(2), 3).unwrap();
        t.poison(TenantId(2), 1).unwrap();
        assert!(t.poison(TenantId(2), 5).is_err(), "not in the grant");
        assert!(t.poison(TenantId(3), 0).is_err(), "someone else's grant");
        let lease = t.lease(TenantId(2)).unwrap();
        assert_eq!(lease.healthy().collect::<Vec<_>>(), vec![0, 2]);
        t.heal(TenantId(2));
        assert_eq!(t.lease(TenantId(2)).unwrap().healthy().count(), 3);
    }

    #[test]
    fn release_frees_everything_and_forgets_buffers() {
        let mut t = LeaseTable::new(2);
        t.grow(TenantId(0), 2).unwrap();
        t.register_buffer(TenantId(0), BufId(3)).unwrap();
        assert_eq!(t.release(TenantId(0)), vec![0, 1]);
        assert_eq!(t.free_count(), 2);
        assert_eq!(t.buffer_owner(BufId(3)), None);
        assert!(t.release(TenantId(0)).is_empty(), "idempotent");
        t.check_invariants().unwrap();
    }

    #[test]
    fn buffer_ownership_is_exclusive() {
        let mut t = LeaseTable::new(1);
        t.register_buffer(TenantId(0), BufId(0)).unwrap();
        t.register_buffer(TenantId(0), BufId(0)).unwrap();
        assert!(t.register_buffer(TenantId(1), BufId(0)).is_err());
        assert_eq!(t.buffer_owner(BufId(0)), Some(TenantId(0)));
        assert_eq!(t.buffers_of(TenantId(0)).collect::<Vec<_>>(), [BufId(0)]);
    }
}
