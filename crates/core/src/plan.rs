//! Tiled-pipeline plan builders.
//!
//! Every application in the paper follows the same skeleton: partition the
//! dataset into `T` tiles, turn each tile into a task, and map tasks onto
//! streams round-robin. What differs is the *flow* (Fig. 4): overlappable
//! apps chain `H2D → EXE → D2H` per tile asynchronously; non-overlappable
//! apps put a device-wide barrier between stages. This module captures both
//! skeletons so applications only describe their tiles.

use crate::context::Context;
use crate::kernel::KernelDesc;
use crate::types::{BufId, Result, StreamId};

/// One tile's worth of work.
pub struct TileTask {
    /// Buffers to move host→device before the kernel.
    pub inputs: Vec<BufId>,
    /// The kernel.
    pub kernel: KernelDesc,
    /// Buffers to move device→host after the kernel.
    pub outputs: Vec<BufId>,
}

/// How tasks may interleave (the paper's overlappable/non-overlappable
/// distinction, Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowMode {
    /// `H2D → EXE → D2H` chained per tile inside its stream; different
    /// tiles pipeline freely (MM, CF, NN).
    Overlappable,
    /// Stage-synchronous: all H2D, barrier, all kernels, barrier, all D2H
    /// (Hotspot, Kmeans, SRAD).
    Staged,
}

/// Round-robin stream assignment for tile `index`.
pub fn stream_for_tile(ctx: &Context, index: usize) -> Result<StreamId> {
    ctx.stream(index % ctx.stream_count())
}

/// Enqueue `tasks` onto the context's streams per `mode`.
pub fn enqueue_tiles(ctx: &mut Context, tasks: Vec<TileTask>, mode: FlowMode) -> Result<()> {
    match mode {
        FlowMode::Overlappable => {
            for (i, task) in tasks.into_iter().enumerate() {
                let s = stream_for_tile(ctx, i)?;
                for b in &task.inputs {
                    ctx.h2d(s, *b)?;
                }
                ctx.kernel(s, task.kernel)?;
                for b in &task.outputs {
                    ctx.d2h(s, *b)?;
                }
            }
        }
        FlowMode::Staged => {
            let assignments: Vec<StreamId> = (0..tasks.len())
                .map(|i| stream_for_tile(ctx, i))
                .collect::<Result<_>>()?;
            for (task, s) in tasks.iter().zip(&assignments) {
                for b in &task.inputs {
                    ctx.h2d(*s, *b)?;
                }
            }
            ctx.barrier();
            let mut kernels: Vec<(StreamId, KernelDesc)> = tasks
                .into_iter()
                .zip(assignments.iter())
                .map(|(t, s)| (*s, t.kernel))
                .collect();
            let outputs: Vec<(StreamId, Vec<BufId>)> = Vec::new();
            let mut outs = outputs;
            for (s, kernel) in kernels.drain(..) {
                outs.push((s, kernel.writes.clone()));
                ctx.kernel(s, kernel)?;
            }
            ctx.barrier();
            for (s, bufs) in outs {
                for b in bufs {
                    ctx.d2h(s, b)?;
                }
            }
        }
    }
    Ok(())
}

/// Enqueue one *iteration-style* staged kernel round (no transfers): all
/// kernels, then a barrier. Used by iterative apps (Hotspot, SRAD, Kmeans)
/// that move data once and then run many synchronized rounds on the device.
pub fn enqueue_kernel_round(ctx: &mut Context, kernels: Vec<(StreamId, KernelDesc)>) -> Result<()> {
    for (s, k) in kernels {
        ctx.kernel(s, k)?;
    }
    ctx.barrier();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use micsim::compute::KernelProfile;
    use micsim::PlatformConfig;

    fn ctx(p: usize) -> Context {
        Context::builder(PlatformConfig::phi_31sp())
            .partitions(p)
            .build()
            .unwrap()
    }

    fn tile(ctx: &mut Context, i: usize) -> TileTask {
        let a = ctx.alloc(format!("in{i}"), 1024);
        let b = ctx.alloc(format!("out{i}"), 1024);
        TileTask {
            inputs: vec![a],
            kernel: KernelDesc::simulated(
                format!("k{i}"),
                KernelProfile::streaming("k", 0.32e9),
                1e7,
            )
            .reading([a])
            .writing([b]),
            outputs: vec![b],
        }
    }

    #[test]
    fn overlappable_flow_round_robins_streams() {
        let mut c = ctx(4);
        let tasks: Vec<_> = (0..8).map(|i| tile(&mut c, i)).collect();
        enqueue_tiles(&mut c, tasks, FlowMode::Overlappable).unwrap();
        // Each of the 4 streams gets 2 tiles x 3 actions.
        for s in &c.program().streams {
            assert_eq!(s.actions.len(), 6);
        }
        c.program().validate().unwrap();
        let report = c.run_sim().unwrap();
        assert!(report.overlap().overlap.nanos() > 0, "tiles must pipeline");
    }

    #[test]
    fn staged_flow_separates_stages() {
        let mut c = ctx(4);
        let tasks: Vec<_> = (0..4).map(|i| tile(&mut c, i)).collect();
        enqueue_tiles(&mut c, tasks, FlowMode::Staged).unwrap();
        assert_eq!(c.program().barriers, 2);
        c.program().validate().unwrap();
        let report = c.run_sim().unwrap();
        assert_eq!(
            report.overlap().overlap,
            micsim::SimDuration::ZERO,
            "staged flow must not overlap link and compute"
        );
    }

    #[test]
    fn staged_beats_nothing_but_matches_action_counts() {
        let mut c = ctx(2);
        let tasks: Vec<_> = (0..3).map(|i| tile(&mut c, i)).collect();
        enqueue_tiles(&mut c, tasks, FlowMode::Staged).unwrap();
        // 3 h2d + 3 kernels + 3 d2h + 2 barriers x 2 streams
        assert_eq!(c.program().action_count(), 9 + 4);
    }

    #[test]
    fn kernel_round_appends_barrier() {
        let mut c = ctx(2);
        let k0 = KernelDesc::simulated("a", KernelProfile::streaming("k", 1e9), 1e6);
        let k1 = KernelDesc::simulated("b", KernelProfile::streaming("k", 1e9), 1e6);
        let s0 = c.stream(0).unwrap();
        let s1 = c.stream(1).unwrap();
        enqueue_kernel_round(&mut c, vec![(s0, k0), (s1, k1)]).unwrap();
        assert_eq!(c.program().barriers, 1);
        c.program().validate().unwrap();
    }

    #[test]
    fn overlappable_faster_than_staged_for_same_tiles() {
        // The core temporal-sharing claim, at plan level.
        let makespan = |mode| {
            let mut c = ctx(4);
            let tasks: Vec<_> = (0..16).map(|i| tile(&mut c, i)).collect();
            enqueue_tiles(&mut c, tasks, mode).unwrap();
            c.run_sim().unwrap().makespan()
        };
        let over = makespan(FlowMode::Overlappable);
        let staged = makespan(FlowMode::Staged);
        assert!(
            over < staged,
            "overlappable {over:?} should beat staged {staged:?}"
        );
    }
}
