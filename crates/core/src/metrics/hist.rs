//! Log-bucketed latency/size histograms with quantile extraction.
//!
//! The recording side ([`HistCell`]) is a fixed array of atomic buckets —
//! one `fetch_add` per sample on the hot path, no allocation, no locks —
//! and the analysis side ([`HistogramSnapshot`]) is a plain value type with
//! p50/p95/p99 extraction and a merge that is associative and commutative
//! by construction (bucket-wise addition; the proptest suite pins both
//! laws plus the quantile error bound).
//!
//! Bucketing is HdrHistogram-style base-2 with 4 linear sub-buckets per
//! octave: values `0..=15` land in exact buckets, larger values in bucket
//! `16 + 4*(octave-4) + sub` where `octave = floor(log2 v)` and `sub` is
//! the next two bits below the leading one. Relative quantile error is
//! therefore bounded by the sub-bucket width: **at most 25 %** of the true
//! rank statistic, and exact below 16.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: 16 exact + 4 sub-buckets for each octave `4..=63`.
pub const BUCKETS: usize = 16 + 4 * 60;

/// Bucket index covering `v`.
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (octave - 2)) & 0b11) as usize;
    16 + 4 * (octave - 4) + sub
}

/// Inclusive `[lo, hi]` value range of bucket `idx`.
#[must_use]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < BUCKETS, "bucket index out of range");
    if idx < 16 {
        return (idx as u64, idx as u64);
    }
    let octave = 4 + (idx - 16) / 4;
    let sub = ((idx - 16) % 4) as u64;
    let width = 1u64 << (octave - 2);
    let lo = (1u64 << octave) + sub * width;
    (lo, lo + (width - 1))
}

/// Thread-safe recording cell behind a [`Histogram`](super::Histogram)
/// handle: fixed atomic buckets plus count/sum/min/max.
pub struct HistCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistCell {
    fn default() -> HistCell {
        HistCell {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl HistCell {
    /// Record one sample. Hot path: one bucket `fetch_add` plus the
    /// count/sum/min/max atomics, all `Relaxed`.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy the cell into a value-type snapshot.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            // Untouched series are common (the full catalog registers up
            // front); skip the 256 bucket loads for them.
            return HistogramSnapshot::default();
        }
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i, n));
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Clear all recorded samples (registry reuse between runs; the
    /// caller must not be recording concurrently).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Immutable histogram state: sparse `(bucket index, count)` pairs plus the
/// scalar moments. Produced by [`HistCell::snapshot`]; mergeable.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Non-empty buckets as `(bucket index, sample count)`, ascending.
    pub buckets: Vec<(usize, u64)>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Merge `other` into `self` — bucket-wise addition, so the operation
    /// is associative and commutative and two merged snapshots equal the
    /// snapshot of the combined sample set.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged: Vec<(usize, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(&(bi, ni)), Some(&(bj, nj))) if bi == bj => {
                    merged.push((bi, ni + nj));
                    i += 1;
                    j += 1;
                }
                (Some(&(bi, ni)), Some(&(bj, _))) if bi < bj => {
                    merged.push((bi, ni));
                    i += 1;
                }
                (Some(_), Some(&(bj, nj))) => {
                    merged.push((bj, nj));
                    j += 1;
                }
                (Some(&b), None) => {
                    merged.push(b);
                    i += 1;
                }
                (None, Some(&b)) => {
                    merged.push(b);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        let self_empty = self.count == 0;
        self.buckets = merged;
        // Wrapping, to match the recording side (`fetch_add` wraps), so
        // merged snapshots stay bit-equal to combined recording even for
        // astronomically large totals.
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = if self_empty {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// Mean sample (0 with no samples).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `q`-quantile (`0 < q <= 1`): the upper bound of the bucket
    /// holding the true rank statistic, clamped to the observed maximum —
    /// so the estimate always lies inside that bucket's `[lo, hi]` range
    /// (within 25 % of the true value, exact below 16). Returns 0 for an
    /// empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the order statistic the quantile names.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let (_, hi) = bucket_bounds(idx);
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// Median.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn buckets_tile_the_u64_range() {
        // Every bucket's hi + 1 must be the next bucket's lo, and the last
        // bucket must end exactly at u64::MAX.
        for idx in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(idx);
            let (lo_next, _) = bucket_bounds(idx + 1);
            assert_eq!(hi + 1, lo_next, "gap between buckets {idx} and {}", idx + 1);
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn bucket_contains_its_values() {
        for v in [
            0,
            1,
            15,
            16,
            17,
            63,
            64,
            100,
            1 << 20,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn quantiles_on_known_data() {
        let cell = HistCell::default();
        for v in 1..=100u64 {
            cell.record(v);
        }
        let snap = cell.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 100);
        // p50's true rank statistic is 50; the estimate must be within its
        // bucket (48..=55 at this scale).
        let p50 = snap.p50();
        let (lo, hi) = bucket_bounds(bucket_of(50));
        assert!(p50 >= lo && p50 <= hi, "p50 {p50} outside [{lo}, {hi}]");
        assert_eq!(snap.quantile(1.0), 100);
        // Quantile of an empty histogram is 0.
        assert_eq!(HistogramSnapshot::default().p99(), 0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let (a, b, both) = (
            HistCell::default(),
            HistCell::default(),
            HistCell::default(),
        );
        for v in [3u64, 99, 1024, 5] {
            a.record(v);
            both.record(v);
        }
        for v in [7u64, 99, 1 << 30] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let cell = HistCell::default();
        cell.record(42);
        let snap = cell.snapshot();
        let mut left = snap.clone();
        left.merge(&HistogramSnapshot::default());
        assert_eq!(left, snap);
        let mut right = HistogramSnapshot::default();
        right.merge(&snap);
        assert_eq!(right, snap);
    }
}
