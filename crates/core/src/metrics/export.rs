//! Snapshot exporters: JSONL event log, OpenMetrics-style text, and a
//! JSON value for embedding in bench result files.
//!
//! All three are pure functions of a [`MetricsSnapshot`] — no clocks, no
//! environment — so a deterministic run exports byte-identical text
//! (pinned by the sim determinism test). JSON is emitted by hand because
//! the offline workspace has no serde; the shapes are kept simple enough
//! for `mic-bench`'s small parser to read back.

use super::hist::bucket_bounds;
use super::{Labels, MetricEntry, MetricValue, MetricsSnapshot};
use std::fmt::Write as _;

/// Render an `f64` as a JSON-safe number token (non-finite values
/// collapse to `0`, which JSON cannot represent otherwise).
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Rust renders whole floats without a fractional part; keep them
        // valid JSON numbers as-is (e.g. "12" is fine).
        s
    } else {
        "0".to_string()
    }
}

fn labels_json(l: Labels) -> String {
    let mut parts = Vec::new();
    if let Some(d) = l.device {
        parts.push(format!("\"device\":{d}"));
    }
    if let Some(p) = l.partition {
        parts.push(format!("\"partition\":{p}"));
    }
    if let Some(s) = l.stream {
        parts.push(format!("\"stream\":{s}"));
    }
    if let Some(t) = l.tenant {
        parts.push(format!("\"tenant\":{t}"));
    }
    format!("{{{}}}", parts.join(","))
}

/// One series as a single-line JSON object — the unit of the JSONL log
/// and the element type of the embedded bench `metrics.series` array.
#[must_use]
pub fn entry_json(e: &MetricEntry) -> String {
    let mut s = format!(
        "{{\"name\":\"{}\",\"kind\":\"{}\",\"unit\":\"{}\",\"labels\":{}",
        e.name,
        e.kind.token(),
        e.unit.token(),
        labels_json(e.labels)
    );
    match &e.value {
        MetricValue::Counter(v) => {
            let _ = write!(s, ",\"value\":{v}");
        }
        MetricValue::Gauge(v) => {
            let _ = write!(s, ",\"value\":{}", json_f64(*v));
        }
        MetricValue::Histogram(h) => {
            let _ = write!(
                s,
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]",
                h.count,
                h.sum,
                h.min,
                h.max,
                json_f64(h.mean()),
                h.p50(),
                h.p95(),
                h.p99(),
                h.buckets
                    .iter()
                    .map(|&(i, n)| format!("[{i},{n}]"))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
    }
    s.push('}');
    s
}

impl MetricsSnapshot {
    /// Structured event log: one JSON object per line, one line per
    /// series, sorted by `(name, labels)`. Ends with a newline when
    /// non-empty.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&entry_json(e));
            out.push('\n');
        }
        out
    }

    /// OpenMetrics-style text snapshot: `# TYPE`/`# UNIT` metadata per
    /// metric, one sample line per series, histograms expanded into
    /// `_count`/`_sum`/quantile samples plus cumulative `le` buckets.
    #[must_use]
    pub fn to_openmetrics(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for e in &self.entries {
            if last_name != Some(e.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {}", e.name, e.kind.token());
                let _ = writeln!(out, "# UNIT {} {}", e.name, e.unit.token());
                last_name = Some(e.name.as_str());
            }
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", e.name, e.labels);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", e.name, e.labels, json_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "{}_count{} {}", e.name, e.labels, h.count);
                    let _ = writeln!(out, "{}_sum{} {}", e.name, e.labels, h.sum);
                    for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
                        let _ = writeln!(
                            out,
                            "{}{} {v}",
                            e.name,
                            with_extra(e.labels, &format!("quantile=\"{q}\""))
                        );
                    }
                    let mut cum = 0u64;
                    for &(idx, n) in &h.buckets {
                        cum += n;
                        let (_, hi) = bucket_bounds(idx);
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}",
                            e.name,
                            with_extra(e.labels, &format!("le=\"{hi}\""))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        e.name,
                        with_extra(e.labels, "le=\"+Inf\""),
                        h.count
                    );
                }
            }
        }
        if matches!(self.entries.last(), Some(e) if !e.name.is_empty()) {
            out.push_str("# EOF\n");
        }
        out
    }

    /// JSON value for embedding under a `"metrics"` key in bench result
    /// files: `{"series":[ ... ]}` with one [`entry_json`] object per
    /// series, indented for readability inside the bench files.
    #[must_use]
    pub fn to_json_value(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        if self.entries.is_empty() {
            return "{\"series\":[]}".to_string();
        }
        let rows = self
            .entries
            .iter()
            .map(|e| format!("{inner}{}", entry_json(e)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\"series\":[\n{rows}\n{pad}]}}")
    }
}

fn with_extra(l: Labels, extra: &str) -> String {
    let base = l.to_string();
    if base.is_empty() {
        format!("{{{extra}}}")
    } else {
        // Insert before the closing brace.
        format!("{},{extra}}}", &base[..base.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Labels, MetricsRegistry, Unit};

    fn sample() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("events_total", Unit::Count, Labels::GLOBAL)
            .add(5);
        reg.gauge("frac", Unit::Ratio, Labels::GLOBAL).set(0.25);
        let h = reg.histogram("lat_us", Unit::Micros, Labels::device(0));
        h.record(10);
        h.record(300);
        reg
    }

    #[test]
    fn jsonl_one_line_per_series() {
        let text = sample().snapshot().to_jsonl();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("\"name\":\"events_total\""));
        assert!(text.contains("\"value\":5"));
        assert!(text.contains("\"labels\":{\"device\":0}"));
        assert!(text.contains("\"p50\":"));
    }

    #[test]
    fn openmetrics_has_type_unit_and_quantiles() {
        let text = sample().snapshot().to_openmetrics();
        assert!(text.contains("# TYPE events_total counter"));
        assert!(text.contains("# UNIT lat_us us"));
        assert!(text.contains("quantile=\"0.5\""));
        assert!(text.contains("le=\"+Inf\"} 2"));
        assert!(text.contains("frac 0.25"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample().snapshot();
        let b = sample().snapshot();
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.to_openmetrics(), b.to_openmetrics());
        assert_eq!(a.to_json_value(2), b.to_json_value(2));
    }

    #[test]
    fn json_f64_guards_non_finite() {
        assert_eq!(super::json_f64(f64::NAN), "0");
        assert_eq!(super::json_f64(f64::INFINITY), "0");
        assert_eq!(super::json_f64(1.5), "1.5");
    }
}
