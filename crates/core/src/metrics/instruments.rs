//! The shared run-instrument catalog.
//!
//! Both executors observe a run through one [`RunInstruments`] value,
//! registered **up front** from the platform geometry — never lazily at
//! the first sample — so the instrument *set* an executor exports is a
//! pure function of the context, not of what happened to execute. The
//! native executor fills the instruments from real clocks and the fault
//! tallies; the simulator prices the identical names from its timeline.
//! Any instrument one executor emits and the other does not is a bug,
//! and `native_vs_sim_trace` fails on it (metric-shape parity as a
//! differential check).
//!
//! | name | kind | labels | unit | meaning |
//! |---|---|---|---|---|
//! | `launch_overhead_us` | histogram | device, partition | us | dispatch → kernel body start (locks, views) |
//! | `kernel_time_us` | histogram | device, partition | us | device kernel occupation of its partition |
//! | `host_kernel_time_us` | histogram | — | us | host-side kernel duration |
//! | `transfer_time_us` | histogram | device | us | copy-engine wire time per transfer |
//! | `queue_wait_us` | histogram | device | us | transfer submit → engine pickup |
//! | `bytes_transferred` | counter | device | bytes | payload moved over the link |
//! | `actions_executed` | counter | — | count | kernels + transfers that ran |
//! | `transfer_retries` | counter | — | count | failed attempts retried with backoff |
//! | `transfers_failed` | counter | — | count | transfers that exhausted the retry budget |
//! | `kernel_panics` | counter | — | count | kernel bodies that panicked (incl. injected) |
//! | `partition_losses` | counter | — | count | partitions poisoned under isolation |
//! | `skipped_actions` | counter | — | count | actions skipped for replay under isolation |
//! | `replayed_actions` | counter | — | count | actions rerun by degraded replay passes |
//! | `steals` | counter | — | count | kernels moved cross-partition by the scheduler |
//! | `makespan_us` | gauge | — | us | end-to-end run time |
//! | `partition_busy_us` | gauge | device, partition | us | kernel occupation per partition (pool busy) |
//! | `partition_idle_us` | gauge | device, partition | us | makespan minus busy (pool idle) |
//! | `link_busy_us` | gauge | device | us | total wire time per device link |
//! | `hidden_transfer_fraction` | gauge | — | ratio | link time overlapped with compute (derived) |

use super::{Counter, Gauge, Histogram, Labels, MetricsRegistry, Unit};

/// Metric names, in one place so executors, tests, and docs agree.
pub mod name {
    /// Dispatch-to-body-start overhead histogram.
    pub const LAUNCH_OVERHEAD_US: &str = "launch_overhead_us";
    /// Device-kernel duration histogram.
    pub const KERNEL_TIME_US: &str = "kernel_time_us";
    /// Host-kernel duration histogram.
    pub const HOST_KERNEL_TIME_US: &str = "host_kernel_time_us";
    /// Transfer wire-time histogram.
    pub const TRANSFER_TIME_US: &str = "transfer_time_us";
    /// Transfer queue-wait histogram.
    pub const QUEUE_WAIT_US: &str = "queue_wait_us";
    /// Link payload counter.
    pub const BYTES_TRANSFERRED: &str = "bytes_transferred";
    /// Executed-action counter.
    pub const ACTIONS_EXECUTED: &str = "actions_executed";
    /// Retried-transfer counter.
    pub const TRANSFER_RETRIES: &str = "transfer_retries";
    /// Exhausted-retry counter.
    pub const TRANSFERS_FAILED: &str = "transfers_failed";
    /// Kernel-panic counter.
    pub const KERNEL_PANICS: &str = "kernel_panics";
    /// Poisoned-partition counter.
    pub const PARTITION_LOSSES: &str = "partition_losses";
    /// Isolation-skip counter.
    pub const SKIPPED_ACTIONS: &str = "skipped_actions";
    /// Degraded-replay counter.
    pub const REPLAYED_ACTIONS: &str = "replayed_actions";
    /// Cross-partition steal counter.
    pub const STEALS: &str = "steals";
    /// Run makespan gauge.
    pub const MAKESPAN_US: &str = "makespan_us";
    /// Per-partition busy gauge.
    pub const PARTITION_BUSY_US: &str = "partition_busy_us";
    /// Per-partition idle gauge.
    pub const PARTITION_IDLE_US: &str = "partition_idle_us";
    /// Per-device link busy gauge.
    pub const LINK_BUSY_US: &str = "link_busy_us";
    /// Transfer-overlap gauge.
    pub const HIDDEN_TRANSFER_FRACTION: &str = "hidden_transfer_fraction";
}

/// One row of the instrument catalog, for docs and parity tooling.
pub struct CatalogRow {
    /// Metric name.
    pub name: &'static str,
    /// Instrument kind token (`counter`/`gauge`/`histogram`).
    pub kind: &'static str,
    /// Label dimensions, comma-separated (`""` for a global series).
    pub labels: &'static str,
    /// Unit token.
    pub unit: &'static str,
    /// One-line meaning.
    pub what: &'static str,
}

/// The full catalog, in registration order.
#[must_use]
pub fn catalog() -> Vec<CatalogRow> {
    let row = |name, kind, labels, unit, what| CatalogRow {
        name,
        kind,
        labels,
        unit,
        what,
    };
    vec![
        row(
            name::LAUNCH_OVERHEAD_US,
            "histogram",
            "device, partition",
            "us",
            "dispatch → kernel body start (partition + buffer locks, view setup)",
        ),
        row(
            name::KERNEL_TIME_US,
            "histogram",
            "device, partition",
            "us",
            "device kernel occupation of its partition",
        ),
        row(
            name::HOST_KERNEL_TIME_US,
            "histogram",
            "",
            "us",
            "host-side kernel duration",
        ),
        row(
            name::TRANSFER_TIME_US,
            "histogram",
            "device",
            "us",
            "copy-engine wire time per successful transfer",
        ),
        row(
            name::QUEUE_WAIT_US,
            "histogram",
            "device",
            "us",
            "transfer submit → copy-engine pickup",
        ),
        row(
            name::BYTES_TRANSFERRED,
            "counter",
            "device",
            "bytes",
            "payload moved over the link",
        ),
        row(
            name::ACTIONS_EXECUTED,
            "counter",
            "",
            "count",
            "kernels + transfers that ran",
        ),
        row(
            name::TRANSFER_RETRIES,
            "counter",
            "",
            "count",
            "failed transfer attempts retried with backoff",
        ),
        row(
            name::TRANSFERS_FAILED,
            "counter",
            "",
            "count",
            "transfers that exhausted the retry budget",
        ),
        row(
            name::KERNEL_PANICS,
            "counter",
            "",
            "count",
            "kernel bodies that panicked (including injected)",
        ),
        row(
            name::PARTITION_LOSSES,
            "counter",
            "",
            "count",
            "partitions poisoned under isolation",
        ),
        row(
            name::SKIPPED_ACTIONS,
            "counter",
            "",
            "count",
            "actions skipped for replay under isolation",
        ),
        row(
            name::REPLAYED_ACTIONS,
            "counter",
            "",
            "count",
            "actions rerun by degraded replay passes",
        ),
        row(
            name::STEALS,
            "counter",
            "",
            "count",
            "kernels moved cross-partition by the scheduler",
        ),
        row(name::MAKESPAN_US, "gauge", "", "us", "end-to-end run time"),
        row(
            name::PARTITION_BUSY_US,
            "gauge",
            "device, partition",
            "us",
            "kernel occupation per partition (pool busy time)",
        ),
        row(
            name::PARTITION_IDLE_US,
            "gauge",
            "device, partition",
            "us",
            "makespan minus busy (pool idle time)",
        ),
        row(
            name::LINK_BUSY_US,
            "gauge",
            "device",
            "us",
            "total wire time per device link",
        ),
        row(
            name::HIDDEN_TRANSFER_FRACTION,
            "gauge",
            "",
            "ratio",
            "link time overlapped with compute, derived from the busy sums",
        ),
    ]
}

/// Handles to every run instrument, indexed by geometry. Built by
/// [`RunInstruments::register`]; both executors hold one for the duration
/// of a run and record through the (lock-free) handles.
pub struct RunInstruments {
    /// `[device][partition]` dispatch-overhead histograms.
    pub launch_overhead: Vec<Vec<Histogram>>,
    /// `[device][partition]` kernel-duration histograms.
    pub kernel_time: Vec<Vec<Histogram>>,
    /// Host-kernel duration histogram.
    pub host_kernel_time: Histogram,
    /// `[device]` transfer wire-time histograms.
    pub transfer_time: Vec<Histogram>,
    /// `[device]` transfer queue-wait histograms.
    pub queue_wait: Vec<Histogram>,
    /// `[device]` payload counters.
    pub bytes_transferred: Vec<Counter>,
    /// Executed-action counter.
    pub actions_executed: Counter,
    /// Retried-transfer counter.
    pub transfer_retries: Counter,
    /// Exhausted-retry counter.
    pub transfers_failed: Counter,
    /// Kernel-panic counter.
    pub kernel_panics: Counter,
    /// Poisoned-partition counter.
    pub partition_losses: Counter,
    /// Isolation-skip counter.
    pub skipped_actions: Counter,
    /// Degraded-replay counter.
    pub replayed_actions: Counter,
    /// Cross-partition steal counter.
    pub steals: Counter,
    /// Run makespan gauge.
    pub makespan_us: Gauge,
    /// `[device][partition]` busy gauges.
    pub partition_busy: Vec<Vec<Gauge>>,
    /// `[device][partition]` idle gauges.
    pub partition_idle: Vec<Vec<Gauge>>,
    /// `[device]` link busy gauges.
    pub link_busy: Vec<Gauge>,
    /// Transfer-overlap gauge.
    pub hidden_transfer_fraction: Gauge,
}

impl RunInstruments {
    /// Register the complete catalog for a `devices x partitions`
    /// geometry. Every series exists after this call, so snapshot shape
    /// does not depend on which code paths executed.
    #[must_use]
    pub fn register(reg: &MetricsRegistry, devices: usize, partitions: usize) -> RunInstruments {
        let per_partition_hist = |n: &str| -> Vec<Vec<Histogram>> {
            (0..devices)
                .map(|d| {
                    (0..partitions)
                        .map(|p| {
                            reg.histogram(n, Unit::Micros, Labels::partition(d as u16, p as u16))
                        })
                        .collect()
                })
                .collect()
        };
        let per_partition_gauge = |n: &str| -> Vec<Vec<Gauge>> {
            (0..devices)
                .map(|d| {
                    (0..partitions)
                        .map(|p| reg.gauge(n, Unit::Micros, Labels::partition(d as u16, p as u16)))
                        .collect()
                })
                .collect()
        };
        RunInstruments {
            launch_overhead: per_partition_hist(name::LAUNCH_OVERHEAD_US),
            kernel_time: per_partition_hist(name::KERNEL_TIME_US),
            host_kernel_time: reg.histogram(
                name::HOST_KERNEL_TIME_US,
                Unit::Micros,
                Labels::GLOBAL,
            ),
            transfer_time: (0..devices)
                .map(|d| {
                    reg.histogram(
                        name::TRANSFER_TIME_US,
                        Unit::Micros,
                        Labels::device(d as u16),
                    )
                })
                .collect(),
            queue_wait: (0..devices)
                .map(|d| reg.histogram(name::QUEUE_WAIT_US, Unit::Micros, Labels::device(d as u16)))
                .collect(),
            bytes_transferred: (0..devices)
                .map(|d| {
                    reg.counter(
                        name::BYTES_TRANSFERRED,
                        Unit::Bytes,
                        Labels::device(d as u16),
                    )
                })
                .collect(),
            actions_executed: reg.counter(name::ACTIONS_EXECUTED, Unit::Count, Labels::GLOBAL),
            transfer_retries: reg.counter(name::TRANSFER_RETRIES, Unit::Count, Labels::GLOBAL),
            transfers_failed: reg.counter(name::TRANSFERS_FAILED, Unit::Count, Labels::GLOBAL),
            kernel_panics: reg.counter(name::KERNEL_PANICS, Unit::Count, Labels::GLOBAL),
            partition_losses: reg.counter(name::PARTITION_LOSSES, Unit::Count, Labels::GLOBAL),
            skipped_actions: reg.counter(name::SKIPPED_ACTIONS, Unit::Count, Labels::GLOBAL),
            replayed_actions: reg.counter(name::REPLAYED_ACTIONS, Unit::Count, Labels::GLOBAL),
            steals: reg.counter(name::STEALS, Unit::Count, Labels::GLOBAL),
            makespan_us: reg.gauge(name::MAKESPAN_US, Unit::Micros, Labels::GLOBAL),
            partition_busy: per_partition_gauge(name::PARTITION_BUSY_US),
            partition_idle: per_partition_gauge(name::PARTITION_IDLE_US),
            link_busy: (0..devices)
                .map(|d| reg.gauge(name::LINK_BUSY_US, Unit::Micros, Labels::device(d as u16)))
                .collect(),
            hidden_transfer_fraction: reg.gauge(
                name::HIDDEN_TRANSFER_FRACTION,
                Unit::Ratio,
                Labels::GLOBAL,
            ),
        }
    }

    /// Derive the end-of-run gauges from the recorded histograms and the
    /// measured makespan. Both executors call this same derivation, so
    /// busy/idle/overlap semantics cannot drift between them:
    /// `partition_busy` is the kernel-time sum, `partition_idle` the
    /// remainder of the makespan, `link_busy` the wire-time sum, and
    /// `hidden_transfer_fraction` the share of link time that must have
    /// overlapped with compute given those sums
    /// (`(link + compute - makespan) / link`, clamped to `[0, 1]`).
    pub fn finish(&self, makespan_us: f64) {
        self.makespan_us.set(makespan_us);
        let mut compute_total = 0.0;
        for (d, parts) in self.kernel_time.iter().enumerate() {
            for (p, hist) in parts.iter().enumerate() {
                let busy = hist.snapshot().sum as f64;
                compute_total += busy;
                self.partition_busy[d][p].set(busy);
                self.partition_idle[d][p].set((makespan_us - busy).max(0.0));
            }
        }
        let mut link_total = 0.0;
        for (d, hist) in self.transfer_time.iter().enumerate() {
            let busy = hist.snapshot().sum as f64;
            link_total += busy;
            self.link_busy[d].set(busy);
        }
        let hidden = if link_total > 0.0 {
            ((link_total + compute_total - makespan_us) / link_total).clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.hidden_transfer_fraction.set(hidden);
    }
}

/// A registry with its full run catalog registered, bundled for reuse.
///
/// Registering the catalog costs several microseconds of map inserts and
/// cell allocations; resetting the cells is a few thousand relaxed
/// stores. The native executor therefore caches one `RunMetrics` per
/// [`Context`](crate::context::Context) and resets it between runs, so
/// the per-run metrics cost is dominated by the samples actually
/// recorded, not by setup (gated in `bench_native_runtime`).
pub struct RunMetrics {
    /// Backing registry — the snapshot source.
    pub registry: MetricsRegistry,
    /// Lock-free handles into the registry.
    pub instruments: RunInstruments,
    /// Device count the catalog was registered for.
    pub devices: usize,
    /// Partitions per device the catalog was registered for.
    pub partitions: usize,
}

impl RunMetrics {
    /// Build a fresh registry and register the full catalog on it.
    #[must_use]
    pub fn new(devices: usize, partitions: usize) -> RunMetrics {
        let registry = MetricsRegistry::new();
        let instruments = RunInstruments::register(&registry, devices, partitions);
        RunMetrics {
            registry,
            instruments,
            devices,
            partitions,
        }
    }

    /// Clear every cell for the next run. A reset registry snapshots
    /// byte-identically to a freshly registered one (pinned by a test).
    pub fn reset(&self) {
        self.registry.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_registry_snapshots_like_fresh() {
        let reused = RunMetrics::new(1, 2);
        reused.instruments.kernel_time[0][1].record(40);
        reused.instruments.steals.add(3);
        reused.instruments.finish(100.0);
        reused.reset();
        reused.instruments.kernel_time[0][0].record(7);
        reused.instruments.finish(50.0);

        let fresh = RunMetrics::new(1, 2);
        fresh.instruments.kernel_time[0][0].record(7);
        fresh.instruments.finish(50.0);

        let a = reused.registry.snapshot();
        let b = fresh.registry.snapshot();
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }

    #[test]
    fn register_creates_full_catalog_up_front() {
        let reg = MetricsRegistry::new();
        let _ri = RunInstruments::register(&reg, 2, 3);
        let snap = reg.snapshot();
        let names = snap.instrument_names();
        assert_eq!(names.len(), catalog().len());
        for row in catalog() {
            assert!(
                names.contains(&row.name.to_string()),
                "missing {}",
                row.name
            );
        }
        // Per-partition metrics expand to device x partition series.
        assert_eq!(
            snap.entries
                .iter()
                .filter(|e| e.name == name::KERNEL_TIME_US)
                .count(),
            6
        );
    }

    #[test]
    fn same_geometry_same_shape() {
        let shape = |devs, parts| {
            let reg = MetricsRegistry::new();
            let _ri = RunInstruments::register(&reg, devs, parts);
            reg.snapshot().series_names()
        };
        assert_eq!(shape(1, 4), shape(1, 4));
        assert_ne!(shape(1, 4), shape(2, 4));
    }

    #[test]
    fn finish_derives_busy_idle_and_overlap() {
        let reg = MetricsRegistry::new();
        let ri = RunInstruments::register(&reg, 1, 2);
        ri.kernel_time[0][0].record(600);
        ri.kernel_time[0][1].record(400);
        ri.transfer_time[0].record(500);
        // Makespan 1000 with 1000us of compute and 500us of link time:
        // at least 500us of the link had to overlap compute -> fraction 1.
        ri.finish(1000.0);
        let snap = reg.snapshot();
        use crate::metrics::Labels;
        assert!(
            (snap.gauge(name::PARTITION_BUSY_US, Labels::partition(0, 0)) - 600.0).abs() < 1e-9
        );
        assert!(
            (snap.gauge(name::PARTITION_IDLE_US, Labels::partition(0, 1)) - 600.0).abs() < 1e-9
        );
        assert!((snap.gauge(name::LINK_BUSY_US, Labels::device(0)) - 500.0).abs() < 1e-9);
        assert!((snap.gauge(name::HIDDEN_TRANSFER_FRACTION, Labels::GLOBAL) - 1.0).abs() < 1e-9);
        assert!((snap.gauge(name::MAKESPAN_US, Labels::GLOBAL) - 1000.0).abs() < 1e-9);
    }
}
