//! Unified telemetry: a deterministic registry of typed instruments.
//!
//! Every run-level measurement in the workspace — launch overhead, queue
//! wait, transfer volume, fault/retry activity, pool busy/idle time —
//! flows through one [`MetricsRegistry`] of typed instruments
//! ([`Counter`], [`Gauge`], [`Histogram`]) keyed by metric name plus
//! `(device, partition, stream)` labels. Both executors register the
//! *same* instrument set (see [`instruments::RunInstruments`]): the
//! native executor fills it from real clocks, the simulator prices the
//! identical names from its timeline, and the shared shape is itself a
//! differential check alongside stream-check and the trace comparator.
//!
//! Determinism: nothing in this module reads a wall clock or RNG. A
//! snapshot's content is a pure function of the recorded samples, and all
//! iteration orders are `BTreeMap`-sorted, so two identical sim runs
//! export byte-identical JSONL/OpenMetrics text (pinned by a test).
//!
//! Overhead: instrument handles are `Arc`-shared atomic cells; recording
//! is lock-free (`Relaxed` atomics). The registry lock is taken only at
//! registration and snapshot time, never per-sample. When metrics are
//! disabled the executors skip every recording site behind an
//! `Option` check, keeping the hot path zero-cost (gated in
//! `bench_native_runtime`).

pub mod export;
pub mod hist;
pub mod instruments;

pub use hist::HistogramSnapshot;
pub use instruments::{RunInstruments, RunMetrics};

use hist::HistCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What an instrument measures — exported as the OpenMetrics unit suffix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Microseconds.
    Micros,
    /// Bytes.
    Bytes,
    /// Dimensionless event count.
    Count,
    /// Dimensionless fraction in `[0, 1]`.
    Ratio,
}

impl Unit {
    /// Stable lowercase token used by the exporters.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Unit::Micros => "us",
            Unit::Bytes => "bytes",
            Unit::Count => "count",
            Unit::Ratio => "ratio",
        }
    }
}

/// Instrument type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Last-write-wins `f64`.
    Gauge,
    /// Log-bucketed distribution ([`hist`]).
    Histogram,
}

impl Kind {
    /// Stable lowercase token used by the exporters.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// Dimension labels attached to a time series. All optional; `None`
/// means the dimension does not apply (e.g. host-side work has no
/// device). Ordering is derived so snapshots sort deterministically;
/// `tenant` sorts last, so adding the dimension did not reorder any
/// pre-existing (tenant-free) catalog.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Labels {
    /// Device ordinal (0-based); `None` for host-side series.
    pub device: Option<u16>,
    /// Partition ordinal within the device.
    pub partition: Option<u16>,
    /// Logical stream id.
    pub stream: Option<u16>,
    /// Serving tenant (see the `stream-serve` crate); `None` outside
    /// multi-tenant contexts, which keeps single-run catalogs unchanged.
    pub tenant: Option<u16>,
}

impl Labels {
    /// No labels — a single global series.
    pub const GLOBAL: Labels = Labels {
        device: None,
        partition: None,
        stream: None,
        tenant: None,
    };

    /// Series keyed by device only.
    #[must_use]
    pub fn device(device: u16) -> Labels {
        Labels {
            device: Some(device),
            ..Labels::GLOBAL
        }
    }

    /// Series keyed by `(device, partition)`.
    #[must_use]
    pub fn partition(device: u16, partition: u16) -> Labels {
        Labels {
            device: Some(device),
            partition: Some(partition),
            ..Labels::GLOBAL
        }
    }

    /// Series keyed by `(device, stream)`.
    #[must_use]
    pub fn stream(device: u16, stream: u16) -> Labels {
        Labels {
            device: Some(device),
            stream: Some(stream),
            ..Labels::GLOBAL
        }
    }

    /// Series keyed by tenant only (service-level instruments).
    #[must_use]
    pub fn tenant(tenant: u16) -> Labels {
        Labels {
            tenant: Some(tenant),
            ..Labels::GLOBAL
        }
    }

    /// This labelling with the tenant dimension set — how the serving
    /// layer scopes any per-run series to the tenant that owns it.
    #[must_use]
    pub fn for_tenant(mut self, tenant: u16) -> Labels {
        self.tenant = Some(tenant);
        self
    }

    /// True when every dimension is `None`.
    #[must_use]
    pub fn is_global(&self) -> bool {
        *self == Labels::GLOBAL
    }
}

impl fmt::Display for Labels {
    /// OpenMetrics-style `{k="v",...}` rendering; empty string when global.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_global() {
            return Ok(());
        }
        let mut parts = Vec::new();
        if let Some(d) = self.device {
            parts.push(format!("device=\"{d}\""));
        }
        if let Some(p) = self.partition {
            parts.push(format!("partition=\"{p}\""));
        }
        if let Some(s) = self.stream {
            parts.push(format!("stream=\"{s}\""));
        }
        if let Some(t) = self.tenant {
            parts.push(format!("tenant=\"{t}\""));
        }
        write!(f, "{{{}}}", parts.join(","))
    }
}

/// Monotonic counter handle. Cheap to clone; clones share the cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (registry reuse between runs; the caller must not
    /// be recording concurrently).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins gauge handle storing an `f64`.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Overwrite the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Reset to zero (registry reuse between runs).
    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// Histogram handle over a shared [`HistCell`].
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistCell>);

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// Record a `Duration` in whole microseconds.
    pub fn record_micros(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Snapshot the current distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }

    /// Clear all recorded samples (registry reuse between runs).
    pub fn reset(&self) {
        self.0.reset();
    }
}

enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Registered {
    kind: Kind,
    unit: Unit,
    series: BTreeMap<Labels, Cell>,
}

/// Registry of named instruments. Registration and snapshotting lock a
/// `Mutex`; recording through the returned handles does not.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Registered>>,
}

impl MetricsRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(&self, name: &str, kind: Kind, unit: Unit, labels: Labels) -> Cell {
        let mut inner = self.inner.lock().unwrap();
        // Look up by `&str` first: registration happens on every run, and
        // the common case (name already present) should not allocate.
        if !inner.contains_key(name) {
            inner.insert(
                name.to_string(),
                Registered {
                    kind,
                    unit,
                    series: BTreeMap::new(),
                },
            );
        }
        let reg = inner.get_mut(name).expect("just inserted");
        assert!(
            reg.kind == kind && reg.unit == unit,
            "metric `{name}` re-registered as {:?}/{:?} (was {:?}/{:?})",
            kind,
            unit,
            reg.kind,
            reg.unit,
        );
        let cell = reg.series.entry(labels).or_insert_with(|| match kind {
            Kind::Counter => Cell::Counter(Counter::default()),
            Kind::Gauge => Cell::Gauge(Gauge::default()),
            Kind::Histogram => Cell::Histogram(Histogram::default()),
        });
        match cell {
            Cell::Counter(c) => Cell::Counter(c.clone()),
            Cell::Gauge(g) => Cell::Gauge(g.clone()),
            Cell::Histogram(h) => Cell::Histogram(h.clone()),
        }
    }

    /// Register (or fetch) a counter series. Panics if `name` already
    /// exists with a different kind or unit.
    pub fn counter(&self, name: &str, unit: Unit, labels: Labels) -> Counter {
        match self.register(name, Kind::Counter, unit, labels) {
            Cell::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Register (or fetch) a gauge series.
    pub fn gauge(&self, name: &str, unit: Unit, labels: Labels) -> Gauge {
        match self.register(name, Kind::Gauge, unit, labels) {
            Cell::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Register (or fetch) a histogram series.
    pub fn histogram(&self, name: &str, unit: Unit, labels: Labels) -> Histogram {
        match self.register(name, Kind::Histogram, unit, labels) {
            Cell::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Reset every registered cell to its empty state, keeping the
    /// instrument catalog intact. This is what makes per-run registry
    /// reuse cheap: registration costs several microseconds of maps and
    /// allocations, a reset is a few thousand relaxed stores. Callers
    /// must ensure no handle is recording concurrently (the native
    /// executor serializes runs, so reuse between runs is safe).
    pub fn reset(&self) {
        let inner = self.inner.lock().unwrap();
        for reg in inner.values() {
            for cell in reg.series.values() {
                match cell {
                    Cell::Counter(c) => c.reset(),
                    Cell::Gauge(g) => g.reset(),
                    Cell::Histogram(h) => h.reset(),
                }
            }
        }
    }

    /// Freeze the registry into a sorted, immutable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut entries = Vec::new();
        for (name, reg) in inner.iter() {
            for (labels, cell) in &reg.series {
                entries.push(MetricEntry {
                    name: name.clone(),
                    kind: reg.kind,
                    unit: reg.unit,
                    labels: *labels,
                    value: match cell {
                        Cell::Counter(c) => MetricValue::Counter(c.get()),
                        Cell::Gauge(g) => MetricValue::Gauge(g.get()),
                        Cell::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                });
            }
        }
        MetricsSnapshot { entries }
    }
}

/// Recorded value of one series at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One `(name, labels)` series with its metadata and value.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricEntry {
    /// Metric name (snake_case, unit-suffixed where applicable).
    pub name: String,
    /// Instrument type.
    pub kind: Kind,
    /// Measurement unit.
    pub unit: Unit,
    /// Series labels.
    pub labels: Labels,
    /// Recorded value.
    pub value: MetricValue,
}

/// Immutable, deterministically ordered view of a whole registry.
/// Entries are sorted by `(name, labels)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All series, sorted by `(name, labels)`.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Distinct instrument names, sorted.
    #[must_use]
    pub fn instrument_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.iter().map(|e| e.name.clone()).collect();
        names.dedup();
        names
    }

    /// Full series identities as `name{labels}` strings, sorted — the
    /// shape the parity check compares across executors.
    #[must_use]
    pub fn series_names(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| format!("{}{}", e.name, e.labels))
            .collect()
    }

    /// Look up one series.
    #[must_use]
    pub fn get(&self, name: &str, labels: Labels) -> Option<&MetricEntry> {
        self.entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
    }

    /// Counter total for a series (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str, labels: Labels) -> u64 {
        match self.get(name, labels).map(|e| &e.value) {
            Some(&MetricValue::Counter(v)) => v,
            _ => 0,
        }
    }

    /// Gauge value for a series (0.0 when absent).
    #[must_use]
    pub fn gauge(&self, name: &str, labels: Labels) -> f64 {
        match self.get(name, labels).map(|e| &e.value) {
            Some(&MetricValue::Gauge(v)) => v,
            _ => 0.0,
        }
    }

    /// Histogram state for a series (`None` when absent or not a
    /// histogram).
    #[must_use]
    pub fn histogram(&self, name: &str, labels: Labels) -> Option<&HistogramSnapshot> {
        match self.get(name, labels).map(|e| &e.value) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Counter total summed over every labelling of `name`.
    #[must_use]
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .map(|e| match &e.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// Merge all histogram series of `name` (across labels) into one
    /// distribution — e.g. overall launch overhead across partitions.
    #[must_use]
    pub fn histogram_merged(&self, name: &str) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for e in self.entries.iter().filter(|e| e.name == name) {
            if let MetricValue::Histogram(h) = &e.value {
                out.merge(h);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("events_total", Unit::Count, Labels::GLOBAL);
        let g = reg.gauge("makespan_us", Unit::Micros, Labels::GLOBAL);
        let h = reg.histogram("latency_us", Unit::Micros, Labels::partition(0, 1));
        c.add(3);
        g.set(12.5);
        h.record(100);
        h.record(200);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("events_total", Labels::GLOBAL), 3);
        assert!((snap.gauge("makespan_us", Labels::GLOBAL) - 12.5).abs() < 1e-12);
        let hist = snap
            .histogram("latency_us", Labels::partition(0, 1))
            .unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 300);
    }

    #[test]
    fn handles_share_cells() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("n", Unit::Count, Labels::GLOBAL);
        let b = reg.counter("n", Unit::Count, Labels::GLOBAL);
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("n", Labels::GLOBAL), 2);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_conflict_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x", Unit::Count, Labels::GLOBAL);
        let _ = reg.gauge("x", Unit::Count, Labels::GLOBAL);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        // Register out of order; snapshot must sort by (name, labels).
        let _ = reg.counter("z_total", Unit::Count, Labels::GLOBAL);
        let _ = reg.counter("a_total", Unit::Count, Labels::device(1));
        let _ = reg.counter("a_total", Unit::Count, Labels::device(0));
        let names = reg.snapshot().series_names();
        assert_eq!(
            names,
            vec![
                "a_total{device=\"0\"}".to_string(),
                "a_total{device=\"1\"}".to_string(),
                "z_total".to_string(),
            ]
        );
    }

    #[test]
    fn labels_display() {
        assert_eq!(Labels::GLOBAL.to_string(), "");
        assert_eq!(Labels::device(2).to_string(), "{device=\"2\"}");
        assert_eq!(
            Labels::partition(0, 3).to_string(),
            "{device=\"0\",partition=\"3\"}"
        );
        assert_eq!(
            Labels::stream(1, 7).to_string(),
            "{device=\"1\",stream=\"7\"}"
        );
        assert_eq!(Labels::tenant(4).to_string(), "{tenant=\"4\"}");
        assert_eq!(
            Labels::partition(0, 3).for_tenant(2).to_string(),
            "{device=\"0\",partition=\"3\",tenant=\"2\"}"
        );
    }

    #[test]
    fn tenant_dimension_sorts_after_tenant_free_series() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("n", Unit::Count, Labels::partition(0, 1).for_tenant(0));
        let _ = reg.counter("n", Unit::Count, Labels::partition(0, 1));
        let names = reg.snapshot().series_names();
        assert_eq!(
            names,
            vec![
                "n{device=\"0\",partition=\"1\"}".to_string(),
                "n{device=\"0\",partition=\"1\",tenant=\"0\"}".to_string(),
            ],
            "a tenant-free series must keep its pre-tenant sort position"
        );
    }
}
