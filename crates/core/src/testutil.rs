//! Shared test-support machinery: program generators, deterministic
//! dual-face kernels, and a reference interpreter.
//!
//! Three consumers share this module so they agree on what a "random
//! well-synchronized program" is and on what the kernels in one compute:
//!
//! * the **proptest suites** (`proptest_check`, `proptest_sched`) generate
//!   programs with [`build_synced`] / [`build_chained`] and break them with
//!   [`drop_one_wait`];
//! * the **`stream-fuzz` crate** seeds its corpus from the same generators
//!   and replays mutated programs through both executors;
//! * the **differential harnesses** check executor output against
//!   [`RefExec`], the sequential reference interpreter, which executes
//!   [`mix_kernel`] bodies with bit-identical arithmetic.
//!
//! Everything here is deterministic: no wall clock, no global RNG —
//! streams of pseudo-randomness come from [`splitmix64`] over caller-held
//! seeds.
//!
//! The module ships in the library (rather than under `#[cfg(test)]`) so
//! integration tests and sibling crates can use it; it has no cost for
//! users who never call it.

use std::collections::BTreeMap;

use micsim::compute::KernelProfile;
use micsim::device::DeviceId;
use micsim::pcie::Direction;

use crate::action::Action;
use crate::buffer::Elem;
use crate::kernel::{KernelCtx, KernelDesc};
use crate::program::{EventSite, Program, StreamPlacement, StreamRecord};
use crate::types::{BufId, EventId, StreamId};

// ---------------------------------------------------------------------------
// Deterministic bit mixing
// ---------------------------------------------------------------------------

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixer. This is
/// the only randomness primitive the test/fuzz machinery uses — feeding it
/// a seed and a counter yields a reproducible stream.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a string — stable label hashing for kernel salts.
pub fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Deterministic dual-face kernels
// ---------------------------------------------------------------------------

/// One element of the mix kernel's output: a bounded, deterministic
/// function of the kernel salt, the write-slot index, the element index,
/// and the accumulated input value. Order-sensitive by design — executing
/// conflicting kernels in a different order produces different bits, which
/// is what lets race witnesses *observe* misordering.
pub fn mix_elem(salt: u64, write_idx: usize, elem_idx: usize, acc: Elem) -> Elem {
    let h = splitmix64(
        salt ^ ((write_idx as u64) << 48) ^ ((elem_idx as u64) << 16) ^ u64::from(acc.to_bits()),
    );
    ((h % 4096) as Elem) / 4096.0
}

/// The shared kernel semantics: for every write slot `w` and element `i`,
/// fold the current value and one element from each read slice into
/// [`mix_elem`]. Both the native kernel body and [`RefExec`] call exactly
/// this function, so their outputs are bit-comparable.
pub fn mix_into(salt: u64, reads: &[&[Elem]], writes: &mut [&mut [Elem]]) {
    for (wi, w) in writes.iter_mut().enumerate() {
        for i in 0..w.len() {
            let mut acc = w[i];
            for r in reads {
                if !r.is_empty() {
                    acc += r[i % r.len()];
                }
            }
            w[i] = mix_elem(salt, wi, i, acc);
        }
    }
}

/// Build a kernel with **both** faces: a streaming cost profile for the
/// simulator and a deterministic native body implementing [`mix_into`]
/// (salted by the label), so generated programs run on either executor and
/// on the reference interpreter with bit-identical results.
pub fn mix_kernel(
    label: impl Into<String>,
    reads: impl IntoIterator<Item = BufId>,
    writes: impl IntoIterator<Item = BufId>,
    work: f64,
) -> KernelDesc {
    let label = label.into();
    let salt = fnv64(&label);
    KernelDesc::simulated(label, KernelProfile::streaming("mix", 1e9), work)
        .reading(reads)
        .writing(writes)
        .with_native(move |kctx: &mut KernelCtx<'_>| {
            let reads: Vec<&[Elem]> = kctx.reads.clone();
            let mut writes: Vec<&mut [Elem]> = kctx.writes.iter_mut().map(|w| &mut **w).collect();
            mix_into(salt, &reads, &mut writes);
        })
}

// ---------------------------------------------------------------------------
// Program generators (shared by proptests and the fuzzer's seed corpus)
// ---------------------------------------------------------------------------

/// Build the stream skeleton: `n_streams` streams on device 0, stream `i`
/// placed on partition `i % partitions`.
pub fn stream_skeleton(n_streams: usize, partitions: usize) -> Program {
    let mut p = Program::default();
    for i in 0..n_streams {
        p.streams.push(StreamRecord {
            id: StreamId(i),
            placement: StreamPlacement {
                device: DeviceId(0),
                partition: i % partitions.max(1),
            },
            actions: vec![],
        });
    }
    p
}

/// One producer/consumer conflict per entry: a fresh buffer uploaded,
/// **written by a producer kernel** and event-recorded on the producer
/// stream, then waited on and read by a consumer kernel that mixes it
/// into a private result buffer. Every cross-stream ordering flows
/// through exactly one wait, so each wait is load-bearing — and because
/// the producer writes nonzero bits and the consumer folds them into its
/// result, executing the pair in the wrong order changes observable
/// state (a [`RefExec`] fingerprint), not just the analyzer's verdict.
///
/// `conflicts[k] = (a, b)` picks producer `a % n_streams` and a consumer
/// distinct from it by construction. Conflict `k` uses buffer `k`, result
/// buffer `conflicts.len() + k` and event `k`. Kernels carry native
/// [`mix_kernel`] bodies, so the generated programs are executable, not
/// just analyzable.
pub fn build_synced(n_streams: usize, conflicts: &[(usize, usize)]) -> Program {
    let mut p = stream_skeleton(n_streams, n_streams);
    for (k, &(a, b)) in conflicts.iter().enumerate() {
        let producer = a % n_streams;
        // Distinct from the producer by construction.
        let consumer = (producer + 1 + b % (n_streams - 1)) % n_streams;
        let buf = BufId(k);
        let out = BufId(conflicts.len() + k);
        let event = EventId(k);
        p.streams[producer].actions.push(Action::Transfer {
            dir: Direction::HostToDevice,
            buf,
        });
        p.streams[producer].actions.push(Action::Kernel(mix_kernel(
            format!("w{k}"),
            [],
            [buf],
            1.0,
        )));
        p.events.push(EventSite {
            stream: StreamId(producer),
            action_index: p.streams[producer].actions.len(),
        });
        p.streams[producer].actions.push(Action::RecordEvent(event));
        p.streams[consumer].actions.push(Action::WaitEvent(event));
        p.streams[consumer].actions.push(Action::Kernel(mix_kernel(
            format!("r{k}"),
            [buf],
            [out],
            1.0,
        )));
    }
    p
}

/// Per-stream tile chains plus event-synchronized cross-stream conflicts —
/// the scheduler proptest's generator. `tiles[s]` private
/// `h2d -> kernel -> d2h` chains run on stream `s` (buffers `2i`/`2i+1`
/// below `chain_buf_limit`), then one conflict per entry of `conflicts`
/// with the same producer/consumer event pattern as [`build_synced`] but
/// a read-only consumer (buffers `chain_buf_limit..`).
///
/// Stream `s` is placed on partition `s % partitions`.
pub fn build_chained(
    tiles: &[usize],
    conflicts: &[(usize, usize)],
    partitions: usize,
    chain_buf_limit: usize,
) -> Program {
    let n_streams = tiles.len();
    let mut p = stream_skeleton(n_streams, partitions);
    let mut next_buf = 0usize;
    for (s, &n) in tiles.iter().enumerate() {
        for t in 0..n {
            let a = BufId(next_buf);
            let b = BufId(next_buf + 1);
            next_buf += 2;
            p.streams[s].actions.push(Action::Transfer {
                dir: Direction::HostToDevice,
                buf: a,
            });
            p.streams[s].actions.push(Action::Kernel(mix_kernel(
                format!("tile{s}_{t}"),
                [a],
                [b],
                1e7,
            )));
            p.streams[s].actions.push(Action::Transfer {
                dir: Direction::DeviceToHost,
                buf: b,
            });
        }
    }
    debug_assert!(next_buf <= chain_buf_limit, "tile chains overflow buffers");
    for (k, &(a, b)) in conflicts.iter().enumerate() {
        let producer = a % n_streams;
        let consumer = (producer + 1 + b % (n_streams - 1)) % n_streams;
        let buf = BufId(chain_buf_limit + k);
        let event = EventId(k);
        p.streams[producer].actions.push(Action::Transfer {
            dir: Direction::HostToDevice,
            buf,
        });
        p.events.push(EventSite {
            stream: StreamId(producer),
            action_index: p.streams[producer].actions.len(),
        });
        p.streams[producer].actions.push(Action::RecordEvent(event));
        p.streams[consumer].actions.push(Action::WaitEvent(event));
        p.streams[consumer].actions.push(Action::Kernel(mix_kernel(
            format!("use{k}"),
            [buf],
            [],
            1e7,
        )));
    }
    p
}

/// Remove the `pick`-th `WaitEvent` (in stream order) and re-point the
/// event table at the shifted `RecordEvent` sites so the program stays
/// structurally valid — only the synchronization edge is gone. Wraps
/// [`Program::remove_action`]. Panics if the program has no waits.
pub fn drop_one_wait(p: &Program, pick: usize) -> Program {
    let mut out = p.clone();
    let mut seen = 0usize;
    for s in 0..out.streams.len() {
        for i in 0..out.streams[s].actions.len() {
            if matches!(out.streams[s].actions[i], Action::WaitEvent(_)) {
                if seen == pick {
                    out.remove_action(StreamId(s), i);
                    return out;
                }
                seen += 1;
            }
        }
    }
    unreachable!("pick is always in range: one wait per conflict");
}

/// Multiset fingerprint of the non-control actions: scheduling may reorder
/// and re-home work, never change it.
pub fn work_fingerprint(p: &Program) -> Vec<String> {
    let mut work: Vec<String> = p
        .streams
        .iter()
        .flat_map(|s| s.actions.iter())
        .filter_map(|a| match a {
            Action::Transfer { dir, buf } => Some(format!("{dir:?} {buf:?}")),
            Action::Kernel(desc) => Some(format!("kernel {}", desc.label)),
            _ => None,
        })
        .collect();
    work.sort();
    work
}

// ---------------------------------------------------------------------------
// Reference interpreter
// ---------------------------------------------------------------------------

/// Why a stream's head action cannot execute in [`RefExec::run_fifo`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting on an event whose `RecordEvent` has not executed.
    EventNotFired(EventId),
    /// Waiting at a barrier other streams have not reached.
    BarrierIncomplete(usize),
}

/// A FIFO interpretation got stuck: every unfinished stream is blocked.
/// This is the runtime face of a checker deadlock verdict.
#[derive(Clone, Debug)]
pub struct Stuck {
    /// Each blocked stream's head site and why it cannot advance.
    pub frontier: Vec<(crate::check::Site, BlockReason)>,
    /// Actions executed before the interpretation wedged.
    pub executed: usize,
}

/// Sequential reference interpreter over a [`Program`]: models the host
/// memory space and one device space per card, executes transfers as
/// copies and kernels as [`mix_into`] with the same salts the native
/// bodies use. Two entry points:
///
/// * [`RefExec::run_fifo`] — round-robin FIFO with blocking waits and
///   barriers, the executors' semantics; detects stuck states (deadlock
///   witness validation);
/// * [`RefExec::run_order`] — execute actions in an explicit total order
///   (a linear extension of happens-before), used to demonstrate that two
///   HB-consistent schedules of a racy program reach different states.
///
/// Only kernels built by [`mix_kernel`] (or sharing its exact semantics)
/// interpret faithfully against the native executor; arbitrary native
/// bodies are opaque to the interpreter.
#[derive(Clone, Debug)]
pub struct RefExec {
    /// Host copy of each buffer.
    pub host: Vec<Vec<Elem>>,
    /// Device copies: `device[dev][buf]`.
    pub device: Vec<Vec<Vec<Elem>>>,
}

impl RefExec {
    /// Fresh zero-filled state for `lens[b]`-element buffers across
    /// `devices` cards.
    pub fn new(lens: &[usize], devices: usize) -> RefExec {
        RefExec {
            host: lens.iter().map(|&l| vec![0.0; l]).collect(),
            device: (0..devices.max(1))
                .map(|_| lens.iter().map(|&l| vec![0.0; l]).collect())
                .collect(),
        }
    }

    /// Execute one action of `program` at `site` against this state.
    /// Control actions (events, barriers) are value-level no-ops.
    fn exec_action(&mut self, program: &Program, site: crate::check::Site) {
        let stream = &program.streams[site.stream.0];
        let dev = stream.placement.device.0;
        match &stream.actions[site.action_index] {
            Action::Transfer {
                dir: Direction::HostToDevice,
                buf,
            } => {
                let src = self.host[buf.0].clone();
                self.device[dev][buf.0] = src;
            }
            Action::Transfer {
                dir: Direction::DeviceToHost,
                buf,
            } => {
                let src = self.device[dev][buf.0].clone();
                self.host[buf.0] = src;
            }
            Action::Kernel(desc) => {
                let salt = fnv64(&desc.label);
                let space: &mut Vec<Vec<Elem>> = if desc.host {
                    &mut self.host
                } else {
                    &mut self.device[dev]
                };
                // Snapshot reads (kernel read/write sets are disjoint by
                // `KernelDesc::validate`, but snapshotting keeps this
                // correct even for aliasing write slots).
                let reads: Vec<Vec<Elem>> = desc.reads.iter().map(|r| space[r.0].clone()).collect();
                let read_refs: Vec<&[Elem]> = reads.iter().map(Vec::as_slice).collect();
                let mut writes: Vec<Vec<Elem>> =
                    desc.writes.iter().map(|w| space[w.0].clone()).collect();
                let mut write_refs: Vec<&mut [Elem]> =
                    writes.iter_mut().map(Vec::as_mut_slice).collect();
                mix_into(salt, &read_refs, &mut write_refs);
                for (w, data) in desc.writes.iter().zip(writes) {
                    space[w.0] = data;
                }
            }
            Action::RecordEvent(_) | Action::WaitEvent(_) | Action::Barrier(_) => {}
        }
    }

    /// Execute `order` (a total order over every action site of
    /// `program`) and return the final state. The caller is responsible
    /// for `order` being happens-before-consistent; the interpreter
    /// executes it blindly — that is the point when demonstrating races.
    pub fn run_order(program: &Program, lens: &[usize], order: &[crate::check::Site]) -> RefExec {
        let devices = program
            .streams
            .iter()
            .map(|s| s.placement.device.0 + 1)
            .max()
            .unwrap_or(1);
        let mut state = RefExec::new(lens, devices);
        for &site in order {
            state.exec_action(program, site);
        }
        state
    }

    /// Round-robin FIFO interpretation with blocking waits and barriers —
    /// the executors' scheduling semantics, serialized. Returns the final
    /// state, or [`Stuck`] when no stream can advance (a deadlock made
    /// observable).
    pub fn run_fifo(program: &Program, lens: &[usize]) -> Result<RefExec, Stuck> {
        let devices = program
            .streams
            .iter()
            .map(|s| s.placement.device.0 + 1)
            .max()
            .unwrap_or(1);
        let mut state = RefExec::new(lens, devices);
        let mut cursor = vec![0usize; program.streams.len()];
        let mut fired = vec![false; program.events.len()];
        let mut executed = 0usize;
        loop {
            let mut progressed = false;
            let mut done = true;
            for (si, stream) in program.streams.iter().enumerate() {
                while cursor[si] < stream.actions.len() {
                    let ai = cursor[si];
                    match &stream.actions[ai] {
                        Action::WaitEvent(e) if !fired.get(e.0).copied().unwrap_or(false) => {
                            break;
                        }
                        Action::Barrier(n) => {
                            // A barrier opens once every stream that
                            // participates in barrier `n` has reached it.
                            let all_reached = program.streams.iter().enumerate().all(|(sj, t)| {
                                let pos = t
                                    .actions
                                    .iter()
                                    .position(|a| matches!(a, Action::Barrier(m) if m == n));
                                match pos {
                                    Some(p) => cursor[sj] >= p,
                                    None => true,
                                }
                            });
                            if !all_reached {
                                break;
                            }
                        }
                        Action::RecordEvent(e) if e.0 < fired.len() => {
                            fired[e.0] = true;
                        }
                        _ => {}
                    }
                    state.exec_action(program, crate::check::Site::new(si, ai));
                    cursor[si] += 1;
                    executed += 1;
                    progressed = true;
                }
                if cursor[si] < stream.actions.len() {
                    done = false;
                }
            }
            if done {
                return Ok(state);
            }
            if !progressed {
                let frontier = program
                    .streams
                    .iter()
                    .enumerate()
                    .filter(|(si, s)| cursor[*si] < s.actions.len())
                    .map(|(si, s)| {
                        let ai = cursor[si];
                        let reason = match &s.actions[ai] {
                            Action::WaitEvent(e) => BlockReason::EventNotFired(*e),
                            Action::Barrier(n) => BlockReason::BarrierIncomplete(*n),
                            _ => unreachable!("only waits and barriers block"),
                        };
                        (crate::check::Site::new(si, ai), reason)
                    })
                    .collect();
                return Err(Stuck { frontier, executed });
            }
        }
    }

    /// Bit-exact fingerprint of the full state (host and device spaces),
    /// for cheap divergence checks.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: &Vec<Elem>| {
            for x in v {
                h ^= u64::from(x.to_bits());
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for v in &self.host {
            eat(v);
        }
        for dev in &self.device {
            for v in dev {
                eat(v);
            }
        }
        h
    }

    /// The host copies as a map `BufId index -> bits`, for readable
    /// mismatch reports.
    pub fn host_bits(&self) -> BTreeMap<usize, Vec<u32>> {
        self.host
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.iter().map(|x| x.to_bits()).collect()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{analyze, CheckEnv};

    #[test]
    fn splitmix_and_fnv_are_stable() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_eq!(fnv64("k"), fnv64("k"));
        assert_ne!(fnv64("k0"), fnv64("k1"));
    }

    #[test]
    fn build_synced_is_valid_and_clean() {
        let p = build_synced(3, &[(0, 0), (1, 1), (5, 3)]);
        p.validate().expect("generator emits valid programs");
        let env = CheckEnv::permissive(&p);
        let a = analyze(&p, &env);
        assert!(a.report.is_clean(), "{}", a.report.render());
    }

    #[test]
    fn build_chained_is_valid_and_clean() {
        let p = build_chained(&[2, 0, 1], &[(0, 0), (2, 1)], 2, 32);
        p.validate().expect("valid");
        let env = CheckEnv::permissive(&p);
        let a = analyze(&p, &env);
        assert!(a.report.is_clean(), "{}", a.report.render());
        assert_eq!(work_fingerprint(&p).len(), 3 * 3 + 2 * 2);
    }

    #[test]
    fn drop_one_wait_surfaces_a_race() {
        let p = build_synced(2, &[(0, 0)]);
        let broken = drop_one_wait(&p, 0);
        broken.validate().expect("still structurally valid");
        let a = analyze(&broken, &CheckEnv::permissive(&broken));
        assert!(!a.report.is_clean());
    }

    #[test]
    fn fifo_interpretation_of_clean_program_completes() {
        let p = build_synced(3, &[(0, 0), (1, 1)]);
        // Conflict buffers 0..2, result buffers 2..4.
        let lens = vec![8usize; 4];
        let state = RefExec::run_fifo(&p, &lens).expect("clean programs complete");
        // Producer kernels wrote nonzero bits the consumers folded into
        // their result buffers — the conflicts are value-carrying.
        assert_ne!(state.device[0][0], vec![0.0; 8]);
        assert_ne!(state.device[0][2], vec![0.0; 8]);
    }

    #[test]
    fn mutual_wait_program_gets_stuck() {
        let mut p = stream_skeleton(2, 2);
        p.streams[0].actions.push(Action::WaitEvent(EventId(1)));
        p.streams[0].actions.push(Action::RecordEvent(EventId(0)));
        p.streams[1].actions.push(Action::WaitEvent(EventId(0)));
        p.streams[1].actions.push(Action::RecordEvent(EventId(1)));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 1,
        });
        p.events.push(EventSite {
            stream: StreamId(1),
            action_index: 1,
        });
        let err = RefExec::run_fifo(&p, &[]).expect_err("mutual wait wedges");
        assert_eq!(err.frontier.len(), 2);
        assert_eq!(err.executed, 0);
    }

    #[test]
    fn interpreter_matches_itself_and_orders_matter_for_races() {
        // One buffer, two unordered writers with different salts: the two
        // serialization orders must produce different bits.
        let mut p = stream_skeleton(2, 2);
        p.streams[0]
            .actions
            .push(Action::Kernel(mix_kernel("w0", [], [BufId(0)], 1.0)));
        p.streams[1]
            .actions
            .push(Action::Kernel(mix_kernel("w1", [], [BufId(0)], 1.0)));
        let lens = vec![4usize];
        let ab = RefExec::run_order(
            &p,
            &lens,
            &[crate::check::Site::new(0, 0), crate::check::Site::new(1, 0)],
        );
        let ba = RefExec::run_order(
            &p,
            &lens,
            &[crate::check::Site::new(1, 0), crate::check::Site::new(0, 0)],
        );
        assert_ne!(
            ab.fingerprint(),
            ba.fingerprint(),
            "last-writer-wins must be observable"
        );
        // Same order twice → identical bits.
        let ab2 = RefExec::run_order(
            &p,
            &lens,
            &[crate::check::Site::new(0, 0), crate::check::Site::new(1, 0)],
        );
        assert_eq!(ab.fingerprint(), ab2.fingerprint());
    }

    #[test]
    fn barrier_blocks_until_all_participants_arrive() {
        let mut p = stream_skeleton(2, 2);
        p.barriers = 1;
        p.streams[0].actions.push(Action::Transfer {
            dir: Direction::HostToDevice,
            buf: BufId(0),
        });
        p.streams[0].actions.push(Action::Barrier(0));
        p.streams[1].actions.push(Action::Barrier(0));
        p.streams[1].actions.push(Action::Transfer {
            dir: Direction::DeviceToHost,
            buf: BufId(0),
        });
        p.validate().expect("valid barrier program");
        let state = RefExec::run_fifo(&p, &[4]).expect("completes");
        assert_eq!(state.host[0], vec![0.0; 4]);
    }
}
