//! Per-action cost estimates for the schedulers.
//!
//! Prices come from the **same calibrated platform model the simulator
//! executes against** ([`micsim::PlatformConfig`]): a transfer costs its
//! wire time plus the enqueue overhead, a device kernel costs what the
//! SMT-scaling compute model says the tile's flops take on the candidate
//! partition, a host kernel runs at the host's aggregate rate. This keeps
//! the schedulers' decisions consistent with what the simulator will then
//! measure — and, because the simulator is calibrated against the native
//! executor, reasonable for native runs too.

use micsim::calibrate::PlatformConfig;
use micsim::compute::KernelInvocation;
use micsim::partition::Partition;

use crate::action::Action;
use crate::kernel::KernelDesc;

/// Prices actions on the platform's calibrated cost model.
pub struct CostModel {
    cfg: PlatformConfig,
    /// Partition geometry per device, indexed `[device][partition]`.
    plans: Vec<Vec<Partition>>,
    /// Byte size of each buffer, indexed by `BufId.0`.
    buffer_bytes: Vec<u64>,
}

impl CostModel {
    /// Build a cost model for `cfg` with the given per-device partition
    /// plans and buffer sizes.
    pub fn new(cfg: &PlatformConfig, plans: &[Vec<Partition>], buffer_bytes: &[u64]) -> CostModel {
        CostModel {
            cfg: cfg.clone(),
            plans: plans.to_vec(),
            buffer_bytes: buffer_bytes.to_vec(),
        }
    }

    /// Number of link channels per device (1 serial, 2 full duplex).
    pub fn channels(&self) -> usize {
        self.cfg.link.channels()
    }

    /// Link channel a transfer in `dir` uses.
    pub fn channel_for(&self, dir: micsim::pcie::Direction) -> usize {
        self.cfg.link.channel_for(dir)
    }

    /// Partitions per device in the plan (0 when no devices were planned).
    pub fn partitions(&self) -> usize {
        self.plans.first().map(Vec::len).unwrap_or(0)
    }

    /// Number of planned devices.
    pub fn devices(&self) -> usize {
        self.plans.len()
    }

    /// Byte size of buffer `buf` (0 for unknown ids).
    pub fn bytes_of(&self, buf: crate::types::BufId) -> u64 {
        self.buffer_bytes.get(buf.0).copied().unwrap_or(0)
    }

    /// Wire + enqueue seconds for moving `bytes` over the link.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        (self.cfg.link.transfer_time(bytes) + self.cfg.enqueue_overhead).as_secs_f64()
    }

    /// Seconds for `desc` on `partition` of `device`, or `None` when the
    /// compute model rejects the launch (empty partition, bad index).
    pub fn device_kernel_seconds(
        &self,
        desc: &KernelDesc,
        device: usize,
        partition: usize,
    ) -> Option<f64> {
        let part = self.plans.get(device)?.get(partition)?;
        let inv = KernelInvocation {
            profile: &desc.profile,
            work: desc.work,
        };
        let body = self.cfg.compute.kernel_time(&inv, part).ok()?;
        Some((body + self.cfg.enqueue_overhead).as_secs_f64())
    }

    /// Seconds for `desc` executed host-side.
    pub fn host_kernel_seconds(&self, desc: &KernelDesc) -> f64 {
        let secs = desc.work / (desc.profile.thread_rate * self.cfg.host_equivalents);
        secs + self.cfg.enqueue_overhead.as_secs_f64()
    }

    /// Estimated seconds for `action` if it ran on `(device, partition)`.
    /// Control actions are free; `None` when a kernel cannot be priced.
    pub fn action_seconds(&self, action: &Action, device: usize, partition: usize) -> Option<f64> {
        match action {
            Action::Transfer { buf, .. } => Some(self.transfer_seconds(self.bytes_of(*buf))),
            Action::Kernel(desc) if desc.host => Some(self.host_kernel_seconds(desc)),
            Action::Kernel(desc) => self.device_kernel_seconds(desc, device, partition),
            Action::RecordEvent(_) | Action::WaitEvent(_) | Action::Barrier(_) => Some(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micsim::compute::KernelProfile;
    use micsim::fabric::SimPlatform;

    fn model(partitions: usize) -> CostModel {
        let cfg = PlatformConfig::phi_31sp();
        let mut platform = SimPlatform::new(cfg.clone()).unwrap();
        let devices: Vec<_> = platform.devices().collect();
        for &d in &devices {
            platform.init_partitions(d, partitions).unwrap();
        }
        let plans: Vec<Vec<Partition>> = devices
            .iter()
            .map(|&d| platform.plan(d).unwrap().partitions.clone())
            .collect();
        CostModel::new(&cfg, &plans, &[1 << 20, 1 << 10])
    }

    #[test]
    fn transfers_scale_with_bytes() {
        let m = model(4);
        let small = m.transfer_seconds(1 << 10);
        let big = m.transfer_seconds(1 << 24);
        assert!(big > small);
        assert!(small > 0.0, "even tiny copies pay latency + enqueue");
    }

    #[test]
    fn kernels_price_on_the_partition_geometry() {
        let m = model(4);
        let wide = model(2);
        let k = KernelDesc::simulated("k", KernelProfile::streaming("k", 0.32e9), 1e9);
        let quarter = m.device_kernel_seconds(&k, 0, 0).unwrap();
        let half = wide.device_kernel_seconds(&k, 0, 0).unwrap();
        assert!(
            half < quarter,
            "bigger partitions run the same tile faster: {half} vs {quarter}"
        );
        assert!(m.device_kernel_seconds(&k, 0, 99).is_none(), "bad index");
        assert!(m.host_kernel_seconds(&k) > 0.0);
    }

    #[test]
    fn action_seconds_covers_every_arm() {
        let m = model(2);
        let t = Action::Transfer {
            dir: micsim::pcie::Direction::HostToDevice,
            buf: crate::types::BufId(0),
        };
        assert!(m.action_seconds(&t, 0, 0).unwrap() > 0.0);
        let host = Action::Kernel(
            KernelDesc::simulated("h", KernelProfile::streaming("h", 1e9), 1e6).on_host(),
        );
        assert!(m.action_seconds(&host, 0, 0).unwrap() > 0.0);
        let ctrl = Action::Barrier(0);
        assert_eq!(m.action_seconds(&ctrl, 0, 0), Some(0.0));
    }
}
