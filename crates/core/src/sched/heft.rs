//! HEFT-style list scheduling with locality-aware placement.
//!
//! Classic Heterogeneous Earliest Finish Time, adapted to the MIC lane
//! model: tasks are ordered by *upward rank* (task cost plus the heaviest
//! downstream chain — i.e. distance from the DAG's exit along the critical
//! path) and placed greedily, highest rank first, on the candidate lane
//! with the earliest finish time. Transfers are pinned to their link
//! channel and host kernels to the host, so the real placement freedom —
//! and the win over FIFO — is in spreading device kernels across
//! partitions regardless of which stream they were recorded on.
//!
//! Ties between partitions with equal finish times are broken by a
//! *locality penalty*: candidates are charged the re-transfer seconds of
//! every input whose producer was placed on a different partition (see
//! `common::locality_penalty`). The penalty is scaled far below
//! real cost differences so it only decides ties — partitions of one card
//! share physical memory, so locality is an affinity, not a correctness
//! constraint.

use super::common::{self, Placed};
use super::{Lane, SchedInput, Schedule, SchedulerKind};

/// Weight of the locality penalty relative to finish-time seconds. Small
/// enough to never override a genuinely earlier finish, large enough to
/// decide exact ties deterministically toward data-local partitions.
const LOCALITY_WEIGHT: f64 = 1e-4;

/// Run HEFT list scheduling over `input`. Returns `None` on empty graphs,
/// unpriceable kernels, or (defensively) cyclic dependence structure.
pub fn schedule(input: &SchedInput<'_>) -> Option<Schedule> {
    let graph = input.graph;
    let n = graph.len();
    if n == 0 {
        return None;
    }
    let costs = common::base_costs(input)?;
    let topo = graph.topo_order();
    if topo.len() != n {
        return None;
    }

    // Upward rank: cost of the task plus the heaviest successor rank.
    let mut rank = vec![0.0f64; n];
    for &u in topo.iter().rev() {
        let tail = graph.succs[u]
            .iter()
            .map(|&v| rank[v])
            .fold(0.0f64, f64::max);
        rank[u] = costs[u] + tail;
    }

    // List order: rank descending (ties by node index, i.e. site order).
    // Rank strictly decreases along every edge (costs include the enqueue
    // overhead, so they are positive), which makes this a topological
    // order — predecessors are always placed before their successors.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| rank[b].total_cmp(&rank[a]).then_with(|| a.cmp(&b)));

    let mut lane_avail: std::collections::HashMap<Lane, f64> = std::collections::HashMap::new();
    let mut placed: Vec<Option<Placed>> = vec![None; n];
    let mut lane_of: Vec<Option<Lane>> = vec![None; n];

    for &u in &order {
        let ready = graph.preds[u]
            .iter()
            .map(|&p| placed[p].expect("preds placed first").finish)
            .fold(0.0f64, f64::max);
        let mut best: Option<(f64, f64, Lane)> = None; // (score, finish, lane)
        for lane in common::candidate_lanes(input, u) {
            let Some(cost) = common::lane_cost(input, u, lane) else {
                continue;
            };
            let start = ready.max(lane_avail.get(&lane).copied().unwrap_or(0.0));
            let finish = start + cost;
            let penalty = match lane {
                Lane::Partition { partition, .. } => {
                    common::locality_penalty(input, u, partition, &lane_of)
                }
                _ => 0.0,
            };
            let score = finish + LOCALITY_WEIGHT * penalty;
            let better = match &best {
                None => true,
                Some((s, _, l)) => score < *s || (score == *s && lane < *l),
            };
            if better {
                best = Some((score, finish, lane));
            }
        }
        let (_, finish, lane) = best?;
        let start = finish - common::lane_cost(input, u, lane)?;
        lane_avail.insert(lane, finish);
        lane_of[u] = Some(lane);
        placed[u] = Some(Placed {
            lane,
            start,
            finish,
        });
    }

    let placed: Vec<Placed> = placed.into_iter().map(Option::unwrap).collect();
    Some(common::finalize(input, SchedulerKind::ListHeft, &placed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::kernel::KernelDesc;
    use crate::program::{Program, StreamPlacement, StreamRecord};
    use crate::sched::{CostModel, TaskGraph};
    use crate::types::{BufId, StreamId};
    use micsim::compute::KernelProfile;
    use micsim::device::DeviceId;
    use micsim::pcie::Direction;

    fn cost_model(partitions: usize) -> CostModel {
        let cfg = micsim::PlatformConfig::phi_31sp();
        let mut platform = micsim::SimPlatform::new(cfg.clone()).unwrap();
        platform.init_partitions(DeviceId(0), partitions).unwrap();
        let plan = platform.plan(DeviceId(0)).unwrap().partitions.clone();
        CostModel::new(&cfg, &[plan], &[1u64 << 20; 16])
    }

    fn tile_program(tiles: usize, streams: usize, work: impl Fn(usize) -> f64) -> Program {
        let mut p = Program::default();
        for s in 0..streams {
            p.streams.push(StreamRecord {
                id: StreamId(s),
                placement: StreamPlacement {
                    device: DeviceId(0),
                    partition: s,
                },
                actions: Vec::new(),
            });
        }
        for t in 0..tiles {
            let s = t % streams;
            p.streams[s].actions.push(Action::Transfer {
                dir: Direction::HostToDevice,
                buf: BufId(t),
            });
            p.streams[s].actions.push(Action::Kernel(
                KernelDesc::simulated(format!("k{t}"), KernelProfile::streaming("k", 1e9), work(t))
                    .reading([BufId(t)]),
            ));
        }
        p
    }

    fn plan(p: &Program, cost: &CostModel) -> Schedule {
        let env = crate::check::CheckEnv::permissive(p);
        let analysis = crate::check::analyze(p, &env);
        assert!(analysis.report.is_clean());
        let graph = TaskGraph::build(p, &analysis).unwrap();
        let input = SchedInput {
            program: p,
            graph: &graph,
            cost,
        };
        schedule(&input).expect("heft schedules clean program")
    }

    #[test]
    fn spreads_starved_streams_across_partitions() {
        // 8 tiles recorded on 2 streams, 4 partitions available: HEFT
        // should use more than the 2 recorded partitions.
        let cost = cost_model(4);
        let p = tile_program(8, 2, |_| 1e9);
        let sched = plan(&p, &cost);
        let used: std::collections::HashSet<usize> = sched
            .tasks
            .iter()
            .filter_map(|t| match t.lane {
                Lane::Partition { partition, .. } => Some(partition),
                _ => None,
            })
            .collect();
        assert!(used.len() > 2, "used partitions {used:?}");
        assert!(sched.steals > 0, "moved kernels off recorded partitions");
        assert_eq!(sched.kind, SchedulerKind::ListHeft);
        assert_eq!(sched.tasks.len(), 16);
    }

    #[test]
    fn respects_dependence_order() {
        let cost = cost_model(4);
        let mut p = Program::default();
        p.streams.push(StreamRecord {
            id: StreamId(0),
            placement: StreamPlacement {
                device: DeviceId(0),
                partition: 0,
            },
            actions: vec![
                Action::Transfer {
                    dir: Direction::HostToDevice,
                    buf: BufId(0),
                },
                Action::Kernel(
                    KernelDesc::simulated("a", KernelProfile::streaming("k", 1e9), 1e9)
                        .reading([BufId(0)])
                        .writing([BufId(1)]),
                ),
                Action::Kernel(
                    KernelDesc::simulated("b", KernelProfile::streaming("k", 1e9), 1e9)
                        .reading([BufId(1)])
                        .writing([BufId(2)]),
                ),
            ],
        });
        let sched = plan(&p, &cost);
        let find = |ai: usize| {
            sched
                .tasks
                .iter()
                .find(|t| t.site.action_index == ai)
                .unwrap()
        };
        assert!(find(1).start >= find(0).finish - 1e-12);
        assert!(find(2).start >= find(1).finish - 1e-12);
        assert!(sched.makespan >= find(2).finish - 1e-12);
    }

    #[test]
    fn dump_scheduled_lists_placements() {
        let cost = cost_model(4);
        let p = tile_program(4, 2, |_| 1e9);
        let sched = plan(&p, &cost);
        let dump = p.dump_scheduled(&sched);
        assert!(dump.starts_with("schedule: heft"), "{dump}");
        assert!(dump.contains("-> mic0.link0 @"), "transfer lanes:\n{dump}");
        assert!(dump.contains("-> mic0.p"), "kernel lanes:\n{dump}");
        assert!(dump.contains("(stolen)"), "starved config steals:\n{dump}");
        assert!(dump.contains("8 actions scheduled onto"), "{dump}");
    }

    #[test]
    fn locality_breaks_ties_toward_producer_partition() {
        // Chain: k_a writes b1 on some partition; k_b reads b1. All
        // partitions finish-tie for k_b (they are all idle at k_a's
        // finish), so locality must pick k_a's partition.
        let cost = cost_model(4);
        let mut p = Program::default();
        p.streams.push(StreamRecord {
            id: StreamId(0),
            placement: StreamPlacement {
                device: DeviceId(0),
                partition: 0,
            },
            actions: vec![
                Action::Kernel(
                    KernelDesc::simulated("a", KernelProfile::streaming("k", 1e9), 1e9)
                        .writing([BufId(1)]),
                ),
                Action::Kernel(
                    KernelDesc::simulated("b", KernelProfile::streaming("k", 1e9), 1e9)
                        .reading([BufId(1)]),
                ),
            ],
        });
        let sched = plan(&p, &cost);
        let lane_a = sched.lane_of(crate::check::Site::new(0, 0)).unwrap();
        let lane_b = sched.lane_of(crate::check::Site::new(0, 1)).unwrap();
        assert_eq!(lane_a, lane_b, "consumer follows producer on ties");
    }
}
