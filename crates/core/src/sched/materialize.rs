//! Lower a [`Schedule`] back into a runnable [`Program`] for the
//! simulator.
//!
//! The simulator executes programs, not schedules, so the scheduled
//! placement + order is expressed in program form: one stream per *used
//! lane* (link-channel streams carry the transfers, one stream per device
//! partition carries its kernels, a host stream carries host kernels),
//! each stream holding its lane's tasks in global start order. In-lane
//! dependences are implied by stream FIFO order; every cross-lane
//! dependence edge becomes a `RecordEvent` after the producer and a
//! `WaitEvent` before the consumer, pruned per producer lane to the
//! latest producer (stream FIFO order implies the earlier ones).
//!
//! The result is a valid, analyzer-clean program: every conflicting pair
//! that was HB-ordered in the original is HB-ordered here too, via the
//! lane FIFO chains plus the emitted events. Barriers vanish — their
//! ordering role was already captured as dependence edges, which is where
//! a scheduled run's win over FIFO partly comes from.

use crate::action::Action;
use crate::program::{EventSite, Program, StreamPlacement, StreamRecord};
use crate::types::{EventId, StreamId};
use micsim::device::DeviceId;

use super::graph::TaskGraph;
use super::{Lane, Schedule};

/// Rewrite `program` into the lane-per-stream form dictated by
/// `schedule`. `graph` must be the task graph the schedule was planned
/// over (same program).
pub fn materialize(program: &Program, graph: &TaskGraph, schedule: &Schedule) -> Program {
    // Used lanes in deterministic (Ord) order become the new streams.
    let mut lanes: Vec<Lane> = schedule.tasks.iter().map(|t| t.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    let lane_index = |lane: Lane| lanes.iter().position(|&l| l == lane).expect("lane is used");

    // Per-lane task lists in global start order; node -> (lane, position).
    let mut lane_tasks: Vec<Vec<usize>> = vec![Vec::new(); lanes.len()];
    let mut pos: Vec<(usize, usize)> = vec![(0, 0); graph.len()];
    for task in &schedule.tasks {
        let u = graph.node_of(task.site).expect("scheduled task is a node");
        let li = lane_index(task.lane);
        pos[u] = (li, lane_tasks[li].len());
        lane_tasks[li].push(u);
    }

    // Cross-lane waits: for each consumer, keep only the latest producer
    // per producer lane (FIFO implies the earlier ones).
    let mut waits: Vec<Vec<usize>> = vec![Vec::new(); graph.len()];
    let mut needs_event: Vec<bool> = vec![false; graph.len()];
    for u in 0..graph.len() {
        let (u_lane, _) = pos[u];
        let mut latest: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for &p in &graph.preds[u] {
            let (p_lane, p_pos) = pos[p];
            if p_lane == u_lane {
                continue;
            }
            let entry = latest.entry(p_lane).or_insert(p);
            if pos[*entry].1 < p_pos {
                *entry = p;
            }
        }
        let mut chosen: Vec<usize> = latest.into_values().collect();
        chosen.sort_unstable();
        for &p in &chosen {
            needs_event[p] = true;
        }
        waits[u] = chosen;
    }

    // Deterministic event ids, in global schedule order of the producer.
    let mut event_id: Vec<Option<EventId>> = vec![None; graph.len()];
    let mut next_event = 0usize;
    for task in &schedule.tasks {
        let u = graph.node_of(task.site).expect("scheduled task is a node");
        if needs_event[u] {
            event_id[u] = Some(EventId(next_event));
            next_event += 1;
        }
    }

    // Emit the lane streams.
    let mut out = Program {
        events: vec![
            EventSite {
                stream: StreamId(0),
                action_index: 0,
            };
            next_event
        ],
        ..Program::default()
    };
    for (li, &lane) in lanes.iter().enumerate() {
        let placement = match lane {
            Lane::Link { device, .. } => StreamPlacement {
                device: DeviceId(device),
                partition: 0,
            },
            Lane::Host => StreamPlacement {
                device: DeviceId(0),
                partition: 0,
            },
            Lane::Partition { device, partition } => StreamPlacement {
                device: DeviceId(device),
                partition,
            },
        };
        let mut actions = Vec::new();
        for &u in &lane_tasks[li] {
            for &p in &waits[u] {
                actions.push(Action::WaitEvent(event_id[p].expect("producer has event")));
            }
            let site = graph.nodes[u].site;
            actions.push(program.streams[site.stream.0].actions[site.action_index].clone());
            if let Some(eid) = event_id[u] {
                out.events[eid.0] = EventSite {
                    stream: StreamId(li),
                    action_index: actions.len(),
                };
                actions.push(Action::RecordEvent(eid));
            }
        }
        out.streams.push(StreamRecord {
            id: StreamId(li),
            placement,
            actions,
        });
    }
    out.barriers = 0;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelDesc;
    use crate::sched::{CostModel, SchedInput, SchedulerKind};
    use crate::types::BufId;
    use micsim::compute::KernelProfile;
    use micsim::pcie::Direction;

    fn cost_model(partitions: usize) -> CostModel {
        let cfg = micsim::PlatformConfig::phi_31sp();
        let mut platform = micsim::SimPlatform::new(cfg.clone()).unwrap();
        platform.init_partitions(DeviceId(0), partitions).unwrap();
        let plan = platform.plan(DeviceId(0)).unwrap().partitions.clone();
        CostModel::new(&cfg, &[plan], &[1u64 << 20; 32])
    }

    fn tile_program(tiles: usize, streams: usize) -> Program {
        let mut p = Program::default();
        for s in 0..streams {
            p.streams.push(StreamRecord {
                id: StreamId(s),
                placement: StreamPlacement {
                    device: DeviceId(0),
                    partition: s,
                },
                actions: Vec::new(),
            });
        }
        for t in 0..tiles {
            let s = t % streams;
            p.streams[s].actions.push(Action::Transfer {
                dir: Direction::HostToDevice,
                buf: BufId(t),
            });
            p.streams[s].actions.push(Action::Kernel(
                KernelDesc::simulated(format!("k{t}"), KernelProfile::streaming("k", 1e9), 1e9)
                    .reading([BufId(t)])
                    .writing([BufId(tiles + t)]),
            ));
        }
        p
    }

    fn materialized(p: &Program, kind: SchedulerKind) -> (Schedule, Program) {
        let cost = cost_model(4);
        let env = crate::check::CheckEnv::permissive(p);
        let analysis = crate::check::analyze(p, &env);
        assert!(analysis.report.is_clean());
        let graph = TaskGraph::build(p, &analysis).unwrap();
        let input = SchedInput {
            program: p,
            graph: &graph,
            cost: &cost,
        };
        let sched = crate::sched::scheduler_for(kind)
            .schedule(&input)
            .expect("schedules");
        let out = materialize(p, &graph, &sched);
        (sched, out)
    }

    #[test]
    fn materialized_program_is_valid_and_clean() {
        let p = tile_program(8, 2);
        for kind in [SchedulerKind::ListHeft, SchedulerKind::WorkSteal] {
            let (sched, out) = materialized(&p, kind);
            out.validate().expect("materialized program validates");
            let env = crate::check::CheckEnv::permissive(&out);
            let analysis = crate::check::analyze(&out, &env);
            assert!(
                analysis.report.is_clean(),
                "{kind}: scheduled program unclean"
            );
            // Every non-control action survives.
            let count = |prog: &Program| {
                prog.streams
                    .iter()
                    .flat_map(|s| &s.actions)
                    .filter(|a| !a.is_control())
                    .count()
            };
            assert_eq!(count(&out), count(&p));
            assert_eq!(out.barriers, 0);
            assert_eq!(sched.tasks.len(), count(&p));
        }
    }

    #[test]
    fn cross_lane_edges_become_events() {
        // A chain h2d -> kernel always crosses lanes (link vs partition),
        // so at least one event per tile must appear.
        let p = tile_program(4, 2);
        let (_, out) = materialized(&p, SchedulerKind::ListHeft);
        assert!(out.events.len() >= 4, "events: {}", out.events.len());
        for (eid, site) in out.events.iter().enumerate() {
            let a = &out.streams[site.stream.0].actions[site.action_index];
            assert!(
                matches!(a, Action::RecordEvent(e) if e.0 == eid),
                "event {eid} site points at {a:?}"
            );
        }
        // No same-stream waits (validate checks this too, but be explicit).
        for (si, s) in out.streams.iter().enumerate() {
            for a in &s.actions {
                if let Action::WaitEvent(e) = a {
                    assert_ne!(out.events[e.0].stream.0, si, "self-wait");
                }
            }
        }
    }

    #[test]
    fn lane_streams_match_lane_placements() {
        let p = tile_program(8, 2);
        let (sched, out) = materialized(&p, SchedulerKind::WorkSteal);
        // Each kernel sits on the stream whose placement matches its lane.
        for task in &sched.tasks {
            if let Lane::Partition { device, partition } = task.lane {
                let found = out.streams.iter().any(|s| {
                    s.placement.device.0 == device
                        && s.placement.partition == partition
                        && s.actions
                            .iter()
                            .any(|a| matches!(a, Action::Kernel(k) if k.label.starts_with('k')))
                });
                assert!(found, "lane {} has a kernel stream", task.lane);
            }
        }
    }
}
