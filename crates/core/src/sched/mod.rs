//! Pluggable DAG schedulers over the recorded program IR.
//!
//! The executors historically replayed the paper's baked-in FIFO stream
//! order: stream `i` runs its actions in record order on the partition it
//! was placed on, full stop. That reproduces the paper's numbers — and its
//! pathologies: a straggler tile leaves whole partitions idle, and a
//! program recorded onto `T < P` streams starves `P - T` partitions
//! outright (the Fig. 10 cliff).
//!
//! This module lifts scheduling out of the executors into a [`Scheduler`]
//! trait. A scheduler consumes:
//!
//! * the **task graph** ([`TaskGraph`]) — every non-control action as a
//!   node, with an edge per conflicting buffer access pair, oriented by the
//!   check module's happens-before relation (events and barriers are
//!   *subsumed* by these edges: an analyzer-clean program has every
//!   conflicting pair ordered, so the data edges alone reproduce its
//!   semantics);
//! * a **cost model** ([`CostModel`]) pricing each action from the same
//!   calibrated platform the simulator uses (tile bytes on the link,
//!   tile flops on a partition);
//!
//! and emits a [`Schedule`]: per-task placement + order decisions that both
//! executors honor — the simulator by materializing the schedule back into
//! a [`Program`] (one stream per resource lane,
//! events for the cross-lane edges; see [`materialize`]), the native
//! executor through its graph dispatcher (one driver per partition, queues
//! seeded from the schedule).
//!
//! Three implementations ship behind the trait:
//!
//! * [`Fifo`] — the default. Declines to schedule ([`Scheduler::schedule`]
//!   returns `None`), which routes both executors through their original,
//!   bit-identical code paths. This is the differential baseline.
//! * [`ListHeft`] — HEFT-style list scheduling: tasks ordered by critical-
//!   path *upward rank*, each placed on the candidate partition with the
//!   earliest finish time, with locality-aware tie-breaking that scores
//!   candidates by the re-transfer bytes they avoid (inputs whose producer
//!   ran elsewhere).
//! * [`WorkSteal`] — greedy work-conserving placement: ready tasks go to
//!   whichever partition frees up first, modeling idle partitions stealing
//!   ready tiles cross-partition. The native executor implements this
//!   *dynamically* (real deque stealing in the partition pool, stolen-task
//!   counters surfaced in the trace); the simulator prices the equivalent
//!   earliest-ready placement deterministically.
//!
//! Scheduling is only attempted on analyzer-clean programs; anything else
//! (races, deadlocks, unknown references) falls back to FIFO execution,
//! where the executors' own gates handle it.

mod common;
pub mod cost;
pub mod graph;
pub mod heft;
pub mod materialize;
pub mod steal;

use crate::check::Site;
use crate::program::Program;

pub use cost::CostModel;
pub use graph::TaskGraph;

/// Which scheduler a context or native run uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Replay recorded stream order on recorded placements (the paper's
    /// semantics; the default and the differential baseline).
    #[default]
    Fifo,
    /// Critical-path list scheduling with locality-aware placement.
    ListHeft,
    /// Idle partitions steal ready tasks cross-partition.
    WorkSteal,
}

impl SchedulerKind {
    /// Stable lowercase label, used in cache keys, bench JSON and traces.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::ListHeft => "heft",
            SchedulerKind::WorkSteal => "steal",
        }
    }

    /// All shipped schedulers, FIFO first.
    pub fn all() -> [SchedulerKind; 3] {
        [
            SchedulerKind::Fifo,
            SchedulerKind::ListHeft,
            SchedulerKind::WorkSteal,
        ]
    }

    /// Parse a [`label`](SchedulerKind::label) back into a kind.
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s {
            "fifo" => Some(SchedulerKind::Fifo),
            "heft" | "listheft" => Some(SchedulerKind::ListHeft),
            "steal" | "worksteal" => Some(SchedulerKind::WorkSteal),
            _ => None,
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The resource a scheduled task occupies — mirrors the simulator's
/// resource layout (per-device link channels, the host, per-device
/// partitions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// Link channel `channel` of device `device` (transfers).
    Link {
        /// Device index.
        device: usize,
        /// Channel index (`0` for serial duplex, direction-split for full).
        channel: usize,
    },
    /// The host CPU (host-side kernels).
    Host,
    /// Partition `partition` of device `device` (device kernels).
    Partition {
        /// Device index.
        device: usize,
        /// Partition index.
        partition: usize,
    },
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lane::Link { device, channel } => write!(f, "mic{device}.link{channel}"),
            Lane::Host => write!(f, "host"),
            Lane::Partition { device, partition } => write!(f, "mic{device}.p{partition}"),
        }
    }
}

/// One placed, ordered task of a [`Schedule`].
#[derive(Clone, Copy, Debug)]
pub struct ScheduledTask {
    /// The action this decision is about, in the *original* program.
    pub site: Site,
    /// The resource it was placed on.
    pub lane: Lane,
    /// Estimated start time, seconds from run start.
    pub start: f64,
    /// Estimated finish time, seconds from run start.
    pub finish: f64,
    /// Which `(device, partition)` driver should issue this task on the
    /// native executor (transfers and host kernels are issued by a
    /// partition's driver even though they occupy the link / the host).
    pub driver: (usize, usize),
    /// `true` when a kernel ended up on a different partition than the
    /// stream it was recorded on — a cross-partition move ("steal").
    pub stolen: bool,
}

/// Placement + order decisions for every non-control action of a program,
/// in estimated start order (a topological order of the task graph).
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Which scheduler produced this.
    pub kind: SchedulerKind,
    /// The decisions, in global start order.
    pub tasks: Vec<ScheduledTask>,
    /// Estimated makespan, seconds.
    pub makespan: f64,
    /// Kernels moved off their recorded partition.
    pub steals: usize,
}

impl Schedule {
    /// The scheduled lane for the action at `site`, if it was scheduled.
    pub fn lane_of(&self, site: Site) -> Option<Lane> {
        self.tasks.iter().find(|t| t.site == site).map(|t| t.lane)
    }
}

/// Everything a scheduler gets to work with.
pub struct SchedInput<'a> {
    /// The recorded program (placements here are the FIFO baseline).
    pub program: &'a Program,
    /// Its dependence structure.
    pub graph: &'a TaskGraph,
    /// Per-action cost estimates.
    pub cost: &'a CostModel,
}

/// A placement + ordering policy over the task graph.
///
/// Returning `None` means "execute the recorded program as-is" — the
/// executors then run their original FIFO paths untouched. [`Fifo`] always
/// declines; the others decline only on empty programs.
pub trait Scheduler {
    /// Which [`SchedulerKind`] this implements.
    fn kind(&self) -> SchedulerKind;

    /// Produce placement + order decisions, or decline.
    fn schedule(&self, input: &SchedInput<'_>) -> Option<Schedule>;
}

/// The FIFO baseline: always declines, so executors replay the recorded
/// program bit-identically to the pre-scheduler runtime.
pub struct Fifo;

impl Scheduler for Fifo {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Fifo
    }

    fn schedule(&self, _input: &SchedInput<'_>) -> Option<Schedule> {
        None
    }
}

/// HEFT-style list scheduler — see [`heft`].
pub struct ListHeft;

impl Scheduler for ListHeft {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::ListHeft
    }

    fn schedule(&self, input: &SchedInput<'_>) -> Option<Schedule> {
        heft::schedule(input)
    }
}

/// Work-stealing scheduler — see [`steal`].
pub struct WorkSteal;

impl Scheduler for WorkSteal {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::WorkSteal
    }

    fn schedule(&self, input: &SchedInput<'_>) -> Option<Schedule> {
        steal::schedule(input)
    }
}

/// Instantiate the scheduler for `kind`.
pub fn scheduler_for(kind: SchedulerKind) -> Box<dyn Scheduler> {
    match kind {
        SchedulerKind::Fifo => Box::new(Fifo),
        SchedulerKind::ListHeft => Box::new(ListHeft),
        SchedulerKind::WorkSteal => Box::new(WorkSteal),
    }
}

/// [`plan`], also handing back the [`TaskGraph`] the schedule was planned
/// over — the native executor's graph dispatcher needs both.
pub(crate) fn plan_with_graph(
    program: &Program,
    cost: &CostModel,
    kind: SchedulerKind,
) -> Option<(Schedule, TaskGraph)> {
    plan_inner(program, cost, kind)
}

fn plan_inner(
    program: &Program,
    cost: &CostModel,
    kind: SchedulerKind,
) -> Option<(Schedule, TaskGraph)> {
    if kind == SchedulerKind::Fifo || program.action_count() == 0 {
        return None;
    }
    let env = crate::check::CheckEnv::permissive(program);
    let analysis = crate::check::analyze(program, &env);
    if !analysis.report.is_clean() {
        return None;
    }
    let graph = TaskGraph::build(program, &analysis)?;
    let input = SchedInput {
        program,
        graph: &graph,
        cost,
    };
    let schedule = scheduler_for(kind).schedule(&input)?;
    Some((schedule, graph))
}

/// Compute a schedule for `program` under `kind`, or `None` when the kind
/// declines (FIFO), the program is empty, or it is not analyzer-clean
/// (racy/deadlocked programs keep FIFO semantics and let the executors'
/// check gates deal with them).
pub fn plan(program: &Program, cost: &CostModel, kind: SchedulerKind) -> Option<Schedule> {
    plan_inner(program, cost, kind).map(|(schedule, _)| schedule)
}

/// [`plan`], then [`materialize`](materialize::materialize) the result
/// into the lane-per-stream program the simulator executes. `None` under
/// the same conditions as [`plan`].
pub fn plan_program(
    program: &Program,
    cost: &CostModel,
    kind: SchedulerKind,
) -> Option<(Schedule, Program)> {
    let (schedule, graph) = plan_inner(program, cost, kind)?;
    let scheduled = materialize::materialize(program, &graph, &schedule);
    Some((schedule, scheduled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_round_trip() {
        for kind in SchedulerKind::all() {
            assert_eq!(SchedulerKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(SchedulerKind::parse("nope"), None);
        assert_eq!(SchedulerKind::default(), SchedulerKind::Fifo);
    }

    #[test]
    fn lanes_display_like_sim_resources() {
        let l = Lane::Link {
            device: 0,
            channel: 1,
        };
        assert_eq!(l.to_string(), "mic0.link1");
        assert_eq!(Lane::Host.to_string(), "host");
        assert_eq!(
            Lane::Partition {
                device: 1,
                partition: 3
            }
            .to_string(),
            "mic1.p3"
        );
    }

    #[test]
    fn fifo_always_declines() {
        let program = Program::default();
        let cost = CostModel::new(&micsim::PlatformConfig::phi_31sp(), &[], &[]);
        assert!(plan(&program, &cost, SchedulerKind::Fifo).is_none());
        assert!(
            plan(&program, &cost, SchedulerKind::ListHeft).is_none(),
            "empty program declines"
        );
    }
}
