//! Shared machinery for the list and stealing schedulers: candidate lane
//! enumeration, per-lane pricing, and schedule finalization (native driver
//! hints, steal counting, global ordering).

use crate::action::Action;

use super::{Lane, SchedInput, Schedule, ScheduledTask, SchedulerKind};

/// One node's placement decision before finalization.
#[derive(Clone, Copy, Debug)]
pub(super) struct Placed {
    pub lane: Lane,
    pub start: f64,
    pub finish: f64,
}

/// Cost of every node on its *recorded* placement, in node order. `None`
/// when any kernel cannot be priced (decline to schedule).
pub(super) fn base_costs(input: &SchedInput<'_>) -> Option<Vec<f64>> {
    (0..input.graph.len())
        .map(|u| {
            let node = input.graph.nodes[u];
            let action = input.graph.action(input.program, u);
            input
                .cost
                .action_seconds(action, node.device, node.partition)
        })
        .collect()
}

/// Lanes node `u` may legally run on: transfers are pinned to their link
/// channel, host kernels to the host, device kernels may move to any
/// partition of their recorded device.
pub(super) fn candidate_lanes(input: &SchedInput<'_>, u: usize) -> Vec<Lane> {
    let node = input.graph.nodes[u];
    match input.graph.action(input.program, u) {
        Action::Transfer { dir, .. } => vec![Lane::Link {
            device: node.device,
            channel: input.cost.channel_for(*dir),
        }],
        Action::Kernel(k) if k.host => vec![Lane::Host],
        Action::Kernel(_) => (0..input.cost.partitions().max(1))
            .map(|p| Lane::Partition {
                device: node.device,
                partition: p,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Price node `u` on `lane`. `None` for impossible combinations.
pub(super) fn lane_cost(input: &SchedInput<'_>, u: usize, lane: Lane) -> Option<f64> {
    match (input.graph.action(input.program, u), lane) {
        (Action::Transfer { buf, .. }, Lane::Link { .. }) => {
            Some(input.cost.transfer_seconds(input.cost.bytes_of(*buf)))
        }
        (Action::Kernel(k), Lane::Host) if k.host => Some(input.cost.host_kernel_seconds(k)),
        (Action::Kernel(k), Lane::Partition { device, partition }) if !k.host => {
            input.cost.device_kernel_seconds(k, device, partition)
        }
        _ => None,
    }
}

/// Buffers node `u` produces (transfer payloads and kernel writes) — the
/// residency a consumer would rather stay next to.
fn produces(input: &SchedInput<'_>, u: usize) -> Vec<crate::types::BufId> {
    match input.graph.action(input.program, u) {
        Action::Transfer { buf, .. } => vec![*buf],
        Action::Kernel(k) => k.writes.clone(),
        _ => Vec::new(),
    }
}

/// Locality score of placing device-kernel `u` on partition `candidate`:
/// the re-transfer seconds its inputs would cost if they had to move from
/// the partitions that produced them. Zero when every input producer sits
/// on `candidate` (or on no partition at all — host/link producers are
/// equidistant). Used as a tie-break, not a hard constraint: partitions
/// of one card share memory, so the penalty models cache/locality affinity
/// rather than a mandatory copy.
pub(super) fn locality_penalty(
    input: &SchedInput<'_>,
    u: usize,
    candidate: usize,
    lane_of: &[Option<Lane>],
) -> f64 {
    let Action::Kernel(k) = input.graph.action(input.program, u) else {
        return 0.0;
    };
    let mut penalty = 0.0;
    for &p in &input.graph.preds[u] {
        let Some(Lane::Partition { partition, .. }) = lane_of[p] else {
            continue;
        };
        if partition == candidate {
            continue;
        }
        for buf in produces(input, p) {
            if k.reads.contains(&buf) {
                penalty += input.cost.transfer_seconds(input.cost.bytes_of(buf));
            }
        }
    }
    penalty
}

/// Turn raw placements into a [`Schedule`]: count steals, derive native
/// driver hints, and sort into global start order.
pub(super) fn finalize(input: &SchedInput<'_>, kind: SchedulerKind, placed: &[Placed]) -> Schedule {
    let graph = input.graph;
    let part_of = |u: usize| match placed[u].lane {
        Lane::Partition { device, partition } => Some((device, partition)),
        _ => None,
    };

    let mut tasks = Vec::with_capacity(graph.len());
    let mut steals = 0usize;
    for (u, pl) in placed.iter().enumerate() {
        let node = graph.nodes[u];
        let stolen = match part_of(u) {
            Some((_, partition)) => partition != node.partition,
            None => false,
        };
        if stolen {
            steals += 1;
        }
        // Native driver hint: kernels issue from their own partition's
        // driver; transfers from the partition of the kernel they feed
        // (or came from); host kernels from driver (0, 0).
        let driver = part_of(u)
            .or_else(|| graph.succs[u].iter().find_map(|&v| part_of(v)))
            .or_else(|| graph.preds[u].iter().find_map(|&v| part_of(v)))
            .unwrap_or((node.device, 0));
        tasks.push(ScheduledTask {
            site: node.site,
            lane: pl.lane,
            start: pl.start,
            finish: pl.finish,
            driver,
            stolen,
        });
    }
    tasks.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then_with(|| a.site.stream.cmp(&b.site.stream))
            .then_with(|| a.site.action_index.cmp(&b.site.action_index))
    });
    let makespan = placed.iter().map(|p| p.finish).fold(0.0, f64::max);
    Schedule {
        kind,
        tasks,
        makespan,
        steals,
    }
}
