//! Work-stealing schedule: greedy earliest-ready, work-conserving
//! placement.
//!
//! Models what the native executor's graph dispatcher does dynamically:
//! every partition drains its own recorded queue, and the moment it goes
//! idle it steals the next ready tile from a loaded sibling. The simulator
//! cannot observe "idle at runtime", so this module prices the equivalent
//! deterministic policy: repeatedly pick, over all ready tasks and all
//! candidate lanes, the `(task, lane)` pair that can *start* earliest —
//! i.e. no lane ever sits idle while a ready task exists. A kernel whose
//! chosen partition differs from the one its stream was recorded on counts
//! as a steal ([`Schedule::steals`], and per-task
//! [`ScheduledTask::stolen`](super::ScheduledTask::stolen)).
//!
//! Preference order on start-time ties: the task's *recorded* partition
//! first (don't steal without cause), then lane order, then site order —
//! keeping the schedule deterministic and minimally disruptive.

use std::collections::HashMap;

use super::common::{self, Placed};
use super::{Lane, SchedInput, Schedule, SchedulerKind};

/// Run the earliest-ready stealing policy over `input`. Returns `None` on
/// empty graphs, unpriceable kernels, or cyclic dependence structure.
pub fn schedule(input: &SchedInput<'_>) -> Option<Schedule> {
    let graph = input.graph;
    let n = graph.len();
    if n == 0 {
        return None;
    }
    // Validate costs (and acyclicity) up front so failures decline cleanly.
    common::base_costs(input)?;
    if graph.topo_order().len() != n {
        return None;
    }

    let mut indeg: Vec<usize> = graph.preds.iter().map(Vec::len).collect();
    let mut ready_time = vec![0.0f64; n];
    let mut ready: Vec<usize> = (0..n).filter(|&u| indeg[u] == 0).collect();
    let mut lane_avail: HashMap<Lane, f64> = HashMap::new();
    let mut placed: Vec<Option<Placed>> = vec![None; n];

    while !ready.is_empty() {
        // Best (start, prefers-home, lane, site order) over ready × lanes.
        let mut best: Option<(f64, bool, Lane, usize, f64)> = None;
        for &u in &ready {
            for lane in common::candidate_lanes(input, u) {
                let Some(cost) = common::lane_cost(input, u, lane) else {
                    continue;
                };
                let start = ready_time[u].max(lane_avail.get(&lane).copied().unwrap_or(0.0));
                let home = match lane {
                    Lane::Partition { partition, .. } => partition == graph.nodes[u].partition,
                    _ => true,
                };
                let better = match &best {
                    None => true,
                    Some((s, h, l, b, _)) => (start, !home, lane, u) < (*s, !*h, *l, *b),
                };
                if better {
                    best = Some((start, home, lane, u, cost));
                }
            }
        }
        let (start, _, lane, u, cost) = best?;
        let finish = start + cost;
        lane_avail.insert(lane, finish);
        placed[u] = Some(Placed {
            lane,
            start,
            finish,
        });
        ready.retain(|&r| r != u);
        for &v in &graph.succs[u] {
            indeg[v] -= 1;
            ready_time[v] = ready_time[v].max(finish);
            if indeg[v] == 0 {
                ready.push(v);
            }
        }
    }

    // Every node placed (graph is acyclic, checked above).
    let placed: Vec<Placed> = placed.into_iter().collect::<Option<_>>()?;
    Some(common::finalize(input, SchedulerKind::WorkSteal, &placed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::kernel::KernelDesc;
    use crate::program::{Program, StreamPlacement, StreamRecord};
    use crate::sched::{CostModel, TaskGraph};
    use crate::types::{BufId, StreamId};
    use micsim::compute::KernelProfile;
    use micsim::device::DeviceId;

    fn cost_model(partitions: usize) -> CostModel {
        let cfg = micsim::PlatformConfig::phi_31sp();
        let mut platform = micsim::SimPlatform::new(cfg.clone()).unwrap();
        platform.init_partitions(DeviceId(0), partitions).unwrap();
        let plan = platform.plan(DeviceId(0)).unwrap().partitions.clone();
        CostModel::new(&cfg, &[plan], &[1u64 << 20; 32])
    }

    fn kernels_on_streams(tiles: usize, streams: usize, work: impl Fn(usize) -> f64) -> Program {
        let mut p = Program::default();
        for s in 0..streams {
            p.streams.push(StreamRecord {
                id: StreamId(s),
                placement: StreamPlacement {
                    device: DeviceId(0),
                    partition: s,
                },
                actions: Vec::new(),
            });
        }
        for t in 0..tiles {
            p.streams[t % streams].actions.push(Action::Kernel(
                KernelDesc::simulated(format!("k{t}"), KernelProfile::streaming("k", 1e9), work(t))
                    .writing([BufId(t)]),
            ));
        }
        p
    }

    fn plan(p: &Program, cost: &CostModel) -> Schedule {
        let env = crate::check::CheckEnv::permissive(p);
        let analysis = crate::check::analyze(p, &env);
        assert!(analysis.report.is_clean());
        let graph = TaskGraph::build(p, &analysis).unwrap();
        let input = SchedInput {
            program: p,
            graph: &graph,
            cost,
        };
        schedule(&input).expect("steal schedules clean program")
    }

    #[test]
    fn idle_partitions_steal_from_starved_streams() {
        // 8 independent kernels recorded on 2 streams, 4 partitions: the
        // 2 idle partitions must pick up work.
        let cost = cost_model(4);
        let p = kernels_on_streams(8, 2, |_| 1e9);
        let sched = plan(&p, &cost);
        let used: std::collections::HashSet<usize> = sched
            .tasks
            .iter()
            .filter_map(|t| match t.lane {
                Lane::Partition { partition, .. } => Some(partition),
                _ => None,
            })
            .collect();
        assert_eq!(used.len(), 4, "all partitions busy: {used:?}");
        assert!(sched.steals >= 2, "steals = {}", sched.steals);
        assert_eq!(
            sched.tasks.iter().filter(|t| t.stolen).count(),
            sched.steals
        );
    }

    #[test]
    fn balanced_load_does_not_steal() {
        // 8 equal kernels on 4 streams over 4 partitions: home placement
        // is already optimal, so the tie-break keeps everything home.
        let cost = cost_model(4);
        let p = kernels_on_streams(8, 4, |_| 1e9);
        let sched = plan(&p, &cost);
        assert_eq!(sched.steals, 0, "balanced load stays home");
    }

    #[test]
    fn imbalanced_tiles_beat_fifo_makespan() {
        // One heavy tile per stream-0 slot: FIFO serializes the heavies on
        // partition 0 while others idle; stealing spreads them.
        let cost = cost_model(4);
        let p = kernels_on_streams(8, 4, |t| if t % 4 == 0 { 8e9 } else { 1e9 });
        let sched = plan(&p, &cost);
        // FIFO lower bound on partition 0: two heavy kernels back to back.
        let heavy = cost
            .device_kernel_seconds(
                &KernelDesc::simulated("h", KernelProfile::streaming("k", 1e9), 8e9),
                0,
                0,
            )
            .unwrap();
        assert!(
            sched.makespan < 2.0 * heavy,
            "makespan {} vs fifo-ish {}",
            sched.makespan,
            2.0 * heavy
        );
        assert!(sched.steals > 0);
    }
}
