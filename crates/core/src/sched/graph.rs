//! The task graph schedulers plan over.
//!
//! Nodes are the program's non-control actions (transfers and kernels —
//! the things that occupy hardware). Edges are *data dependences*: one
//! edge per conflicting access pair (same buffer, same memory space, at
//! least one write), oriented by the check module's happens-before
//! relation. Events and barriers do not appear as nodes; on an
//! analyzer-clean program every conflicting pair is HB-ordered, so the
//! data edges alone carry the program's semantics — which is exactly what
//! lets a scheduler drop the recorded stream structure and re-place work
//! freely without changing any buffer's final contents.
//!
//! Construction refuses unclean programs: if any conflicting pair is
//! unordered (a race), [`TaskGraph::build`] returns `None` and the caller
//! falls back to FIFO execution.

use std::collections::{HashMap, HashSet};

use crate::check::{Analysis, Site};
use crate::program::Program;

/// One schedulable action.
#[derive(Clone, Copy, Debug)]
pub struct TaskNode {
    /// Where the action lives in the original program.
    pub site: Site,
    /// Device of the stream it was recorded on.
    pub device: usize,
    /// Partition of the stream it was recorded on — the FIFO baseline
    /// placement, and the seed placement for work stealing.
    pub partition: usize,
}

/// Dependence DAG over a program's non-control actions.
pub struct TaskGraph {
    /// The nodes, in site order (stream-major, then action index).
    pub nodes: Vec<TaskNode>,
    /// `preds[i]` = node indices that must finish before node `i` starts.
    pub preds: Vec<Vec<usize>>,
    /// `succs[i]` = node indices waiting on node `i`.
    pub succs: Vec<Vec<usize>>,
    node_index: HashMap<Site, usize>,
}

impl TaskGraph {
    /// Build the dependence DAG for `program` using `analysis` (the result
    /// of [`analyze`](crate::check::analyze) over the same program).
    /// Returns `None` when a conflicting access pair is unordered — the
    /// program is racy and must keep its recorded FIFO semantics.
    pub fn build(program: &Program, analysis: &Analysis) -> Option<TaskGraph> {
        let mut nodes = Vec::new();
        let mut node_index = HashMap::new();
        for (si, stream) in program.streams.iter().enumerate() {
            for (ai, action) in stream.actions.iter().enumerate() {
                if action.is_control() {
                    continue;
                }
                let site = Site::new(si, ai);
                node_index.insert(site, nodes.len());
                nodes.push(TaskNode {
                    site,
                    device: stream.placement.device.0,
                    partition: stream.placement.partition,
                });
            }
        }

        let n = nodes.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut seen: HashSet<(usize, usize)> = HashSet::new();

        let accesses = crate::check::collect_accesses(program);
        // Deterministic group order (same key the race checker sorts by).
        let mut groups: Vec<_> = accesses.iter().collect();
        groups.sort_by_key(|((buf, space), _)| {
            let skey = match space {
                crate::check::Space::Host => 0usize,
                crate::check::Space::Device(d) => d + 1,
            };
            (buf.0, skey)
        });

        for (_, group) in groups {
            for (i, a) in group.iter().enumerate() {
                for b in &group[i + 1..] {
                    if !a.write && !b.write {
                        continue;
                    }
                    if a.site == b.site {
                        continue;
                    }
                    let (from, to) = if analysis.happens_before(a.site, b.site) {
                        (a.site, b.site)
                    } else if analysis.happens_before(b.site, a.site) {
                        (b.site, a.site)
                    } else {
                        // Unordered conflict: a race. Refuse to schedule.
                        return None;
                    };
                    let (u, v) = (node_index[&from], node_index[&to]);
                    if seen.insert((u, v)) {
                        succs[u].push(v);
                        preds[v].push(u);
                    }
                }
            }
        }

        Some(TaskGraph {
            nodes,
            preds,
            succs,
            node_index,
        })
    }

    /// Number of schedulable tasks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node index of the task at `site`, if `site` is a non-control action.
    pub fn node_of(&self, site: Site) -> Option<usize> {
        self.node_index.get(&site).copied()
    }

    /// Borrow the action behind node `n` from its program.
    pub fn action<'a>(&self, program: &'a Program, n: usize) -> &'a crate::action::Action {
        let site = self.nodes[n].site;
        &program.streams[site.stream.0].actions[site.action_index]
    }

    /// A deterministic topological order (Kahn's algorithm, smallest node
    /// index first). Always complete for graphs built from an acyclic HB
    /// relation; truncated if a cycle sneaks in (callers should treat a
    /// short order as "decline to schedule").
    pub fn topo_order(&self) -> Vec<usize> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut ready: BinaryHeap<Reverse<usize>> = indeg
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| Reverse(i))
            .collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(Reverse(u)) = ready.pop() {
            order.push(u);
            for &v in &self.succs[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    ready.push(Reverse(v));
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::kernel::KernelDesc;
    use crate::program::{EventSite, StreamPlacement, StreamRecord};
    use crate::types::{BufId, EventId, StreamId};
    use micsim::compute::KernelProfile;
    use micsim::device::DeviceId;
    use micsim::pcie::Direction;

    fn stream(id: usize, partition: usize, actions: Vec<Action>) -> StreamRecord {
        StreamRecord {
            id: StreamId(id),
            placement: StreamPlacement {
                device: DeviceId(0),
                partition,
            },
            actions,
        }
    }

    fn h2d(buf: usize) -> Action {
        Action::Transfer {
            dir: Direction::HostToDevice,
            buf: BufId(buf),
        }
    }

    fn kernel(label: &str, reads: &[usize], writes: &[usize]) -> Action {
        Action::Kernel(
            KernelDesc::simulated(label, KernelProfile::streaming("k", 1e9), 1.0)
                .reading(reads.iter().map(|&b| BufId(b)))
                .writing(writes.iter().map(|&b| BufId(b))),
        )
    }

    fn analyzed(p: &Program) -> Analysis {
        let env = crate::check::CheckEnv::permissive(p);
        crate::check::analyze(p, &env)
    }

    #[test]
    fn fifo_chain_becomes_dependence_chain() {
        // h2d b0 -> kernel(b0 -> b1) -> kernel(b1 -> b2): two data edges.
        let mut p = Program::default();
        p.streams.push(stream(
            0,
            0,
            vec![h2d(0), kernel("k1", &[0], &[1]), kernel("k2", &[1], &[2])],
        ));
        let a = analyzed(&p);
        assert!(a.report.is_clean());
        let g = TaskGraph::build(&p, &a).expect("clean program builds");
        assert_eq!(g.len(), 3);
        assert_eq!(g.succs[0], vec![1]);
        assert_eq!(g.succs[1], vec![2]);
        assert_eq!(g.preds[2], vec![1]);
        assert_eq!(g.topo_order(), vec![0, 1, 2]);
    }

    #[test]
    fn event_ordered_cross_stream_conflict_gets_an_edge() {
        let mut p = Program::default();
        p.streams
            .push(stream(0, 0, vec![h2d(0), Action::RecordEvent(EventId(0))]));
        p.streams.push(stream(
            1,
            1,
            vec![Action::WaitEvent(EventId(0)), kernel("k", &[0], &[1])],
        ));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 1,
        });
        let a = analyzed(&p);
        let g = TaskGraph::build(&p, &a).unwrap();
        // Control actions are not nodes.
        assert_eq!(g.len(), 2);
        let up = g.node_of(Site::new(0, 0)).unwrap();
        let k = g.node_of(Site::new(1, 1)).unwrap();
        assert_eq!(g.succs[up], vec![k]);
        assert!(g.node_of(Site::new(0, 1)).is_none(), "record is control");
    }

    #[test]
    fn racy_program_refuses_to_build() {
        // Cross-stream write/read of b0 with no event: unordered conflict.
        let mut p = Program::default();
        p.streams.push(stream(0, 0, vec![h2d(0)]));
        p.streams.push(stream(1, 1, vec![kernel("k", &[0], &[1])]));
        let a = analyzed(&p);
        assert!(!a.report.is_clean());
        assert!(TaskGraph::build(&p, &a).is_none());
    }

    #[test]
    fn independent_tiles_share_no_edges() {
        let mut p = Program::default();
        p.streams
            .push(stream(0, 0, vec![h2d(0), kernel("k0", &[0], &[1])]));
        p.streams
            .push(stream(1, 1, vec![h2d(2), kernel("k1", &[2], &[3])]));
        let a = analyzed(&p);
        let g = TaskGraph::build(&p, &a).unwrap();
        assert_eq!(g.len(), 4);
        let cross: usize = g
            .succs
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| g.nodes[u].site.stream != g.nodes[v].site.stream)
            .count();
        assert_eq!(cross, 0, "tiles are independent");
        assert_eq!(g.topo_order().len(), 4);
    }
}
