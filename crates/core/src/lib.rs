//! # hstreams — a multiple-streams runtime for MIC-style platforms
//!
//! A from-scratch Rust implementation of the *multiple streams* programming
//! mechanism evaluated in *"Evaluating the Performance Impact of Multiple
//! Streams on the MIC-based Heterogeneous Platform"* (Li et al., 2016) —
//! the mechanism Intel shipped as **hStreams** for the Xeon Phi.
//!
//! ## The model
//!
//! * A [`Context`] partitions each card's cores into `P`
//!   **partitions** (spatial sharing) and binds **streams** to partitions.
//! * Work is enqueued on streams: `H2D` / `D2H` transfers, kernel launches,
//!   events and barriers. Actions in one stream run in FIFO order; actions
//!   in different streams run concurrently unless ordered by an event or a
//!   barrier (temporal sharing).
//! * The recorded program runs on either of two executors:
//!   - the **simulator** ([`executor::sim`]) prices it on a calibrated
//!     model of the Xeon Phi 31SP platform (serial PCIe link, SMT scaling,
//!     launch overheads) and returns an exact, reproducible timeline;
//!   - the **native** backend ([`executor::native`]) really executes it on
//!     partitioned host thread pools with a serialized copy engine, so the
//!     kernels' numerics can be validated end to end.
//!
//! ## Quick start
//!
//! ```
//! use hstreams::context::Context;
//! use hstreams::kernel::KernelDesc;
//! use micsim::compute::KernelProfile;
//! use micsim::PlatformConfig;
//!
//! // 4 partitions on a simulated Phi 31SP, one stream each.
//! let mut ctx = Context::builder(PlatformConfig::phi_31sp())
//!     .partitions(4)
//!     .build()?;
//!
//! // Tile a vector workload over the streams.
//! for t in 0..8 {
//!     let a = ctx.alloc(format!("a{t}"), 1 << 20);
//!     let b = ctx.alloc(format!("b{t}"), 1 << 20);
//!     let s = ctx.stream(t % 4)?;
//!     ctx.h2d(s, a)?;
//!     ctx.kernel(s, KernelDesc::simulated(
//!         format!("saxpy{t}"),
//!         KernelProfile::streaming("saxpy", 0.32e9),
//!         (1 << 20) as f64 * 40.0,
//!     ).reading([a]).writing([b]))?;
//!     ctx.d2h(s, b)?;
//! }
//!
//! let report = ctx.run_sim()?;
//! println!("makespan {}, {:.0}% of transfers hidden",
//!     report.makespan(),
//!     report.overlap().hidden_fraction() * 100.0);
//! # Ok::<(), hstreams::types::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod action;
pub mod api;
pub mod buffer;
pub mod check;
pub mod context;
pub mod executor;
pub mod fault;
pub mod kernel;
pub mod lease;
pub mod metrics;
pub mod opt;
pub mod parallel;
pub mod place;
pub mod plan;
pub mod pool;
pub mod program;
pub mod residency;
pub mod sched;
pub mod testutil;
pub mod trace;
pub mod types;

pub use buffer::{Buffer, Elem};
pub use check::{
    Analysis, CheckClass, CheckCode, CheckEnv, CheckMode, CheckReport, HazardWitness, Severity,
    WitnessKind,
};
pub use context::Context;
pub use executor::native::{NativeConfig, NativeReport};
pub use executor::sim::SimReport;
pub use fault::{FaultCounters, FaultPlan, RecoveryState, ResilientReport, RetryPolicy};
pub use kernel::{KernelCtx, KernelDesc, KernelFn};
pub use lease::{Lease, LeaseTable, TenantId};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot, RunInstruments};
pub use opt::{Certificate, OptReport, Optimized, StaticCost};
pub use place::ResourceView;
pub use plan::{enqueue_tiles, FlowMode, TileTask};
pub use residency::ResidencyTracker;
pub use sched::{Schedule, SchedulerKind};
pub use trace::{LaunchHistogram, NativeCounters, NativeTrace};
pub use types::{BufId, Error, EventId, Result, StreamId};
