//! Flat, hStreams-flavoured convenience API.
//!
//! Intel's hStreams exposes a C "app API" (`hStreams_app_init`,
//! `hStreams_app_xfer_memory`, `hStreams_app_invoke`, ...). This module
//! offers the same vocabulary over [`Context`] for people porting hStreams
//! code; new code should use `Context` directly.
//!
//! | hStreams C call                  | here                      |
//! |----------------------------------|---------------------------|
//! | `hStreams_app_init(P, S)`        | [`app_init`]              |
//! | `hStreams_app_create_buf`        | [`app_create_buf`]        |
//! | `hStreams_app_xfer_memory(..., HSTR_SRC_TO_SINK)` | [`app_xfer_h2d`] |
//! | `hStreams_app_xfer_memory(..., HSTR_SINK_TO_SRC)` | [`app_xfer_d2h`] |
//! | `hStreams_app_invoke`            | [`app_invoke`]            |
//! | `hStreams_app_event_wait`        | [`app_event_wait`]        |
//! | `hStreams_app_thread_sync`       | [`app_sync`]              |
//! | `hStreams_app_fini`              | drop the `Context`        |

use micsim::calibrate::PlatformConfig;

use crate::context::Context;
use crate::kernel::KernelDesc;
use crate::types::{BufId, EventId, Result, StreamId};

/// Initialize a context with `partitions` core groups and
/// `streams_per_partition` streams in each (hStreams' "places" × "streams
/// per place").
pub fn app_init(
    cfg: PlatformConfig,
    partitions: usize,
    streams_per_partition: usize,
) -> Result<Context> {
    Context::builder(cfg)
        .partitions(partitions)
        .streams_per_partition(streams_per_partition)
        .build()
}

/// Allocate a buffer of `len` `f32` elements.
pub fn app_create_buf(ctx: &mut Context, name: &str, len: usize) -> BufId {
    ctx.alloc(name, len)
}

/// Enqueue a host→device transfer.
pub fn app_xfer_h2d(ctx: &mut Context, stream: StreamId, buf: BufId) -> Result<()> {
    ctx.h2d(stream, buf)
}

/// Enqueue a device→host transfer.
pub fn app_xfer_d2h(ctx: &mut Context, stream: StreamId, buf: BufId) -> Result<()> {
    ctx.d2h(stream, buf)
}

/// Enqueue a kernel.
pub fn app_invoke(ctx: &mut Context, stream: StreamId, kernel: KernelDesc) -> Result<()> {
    ctx.kernel(stream, kernel)
}

/// Record an event on `stream`.
pub fn app_event_record(ctx: &mut Context, stream: StreamId) -> Result<EventId> {
    ctx.record_event(stream)
}

/// Make `stream` wait on `event`.
pub fn app_event_wait(ctx: &mut Context, stream: StreamId, event: EventId) -> Result<()> {
    ctx.wait_event(stream, event)
}

/// Device-wide synchronization across all streams.
pub fn app_sync(ctx: &mut Context) {
    ctx.barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use micsim::compute::KernelProfile;

    #[test]
    fn flat_api_mirrors_context() {
        let mut ctx = app_init(PlatformConfig::phi_31sp(), 4, 1).unwrap();
        assert_eq!(ctx.stream_count(), 4);
        let a = app_create_buf(&mut ctx, "a", 256);
        let s = ctx.stream(0).unwrap();
        app_xfer_h2d(&mut ctx, s, a).unwrap();
        app_invoke(
            &mut ctx,
            s,
            KernelDesc::simulated("k", KernelProfile::streaming("k", 1e9), 1e6).reading([a]),
        )
        .unwrap();
        let e = app_event_record(&mut ctx, s).unwrap();
        let s1 = ctx.stream(1).unwrap();
        app_event_wait(&mut ctx, s1, e).unwrap();
        app_xfer_d2h(&mut ctx, s1, a).unwrap();
        app_sync(&mut ctx);
        ctx.program().validate().unwrap();
        let report = ctx.run_sim().unwrap();
        assert!(report.makespan().nanos() > 0);
    }
}
