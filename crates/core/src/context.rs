//! The streaming context — the crate's main entry point.
//!
//! A [`Context`] is the analogue of `hStreams_app_init`: it partitions each
//! card's cores into `P` groups, creates `S` streams per partition, and then
//! records buffer allocations and stream actions into a
//! [`Program`]. The recorded program runs on either
//! executor:
//!
//! * [`Context::run_sim`] prices it on the calibrated platform simulator and
//!   returns a full timeline;
//! * [`Context::run_native`](crate::executor::native) executes it for real
//!   on partitioned host thread pools.
//!
//! ```
//! use hstreams::context::Context;
//! use hstreams::kernel::KernelDesc;
//! use micsim::compute::KernelProfile;
//! use micsim::PlatformConfig;
//!
//! let mut ctx = Context::builder(PlatformConfig::phi_31sp())
//!     .partitions(4)
//!     .build()
//!     .unwrap();
//! let a = ctx.alloc("A", 1 << 20);
//! let s0 = ctx.stream(0).unwrap();
//! ctx.h2d(s0, a).unwrap();
//! let k = KernelDesc::simulated("scale", KernelProfile::streaming("scale", 0.32e9), 1e6)
//!     .reading([a]);
//! ctx.kernel(s0, k).unwrap();
//! let report = ctx.run_sim().unwrap();
//! assert!(report.timeline.makespan.nanos() > 0);
//! ```

use micsim::calibrate::PlatformConfig;
use micsim::device::DeviceId;
use micsim::fabric::SimPlatform;
use micsim::partition::Partition;
use micsim::pcie::Direction;

use crate::action::Action;
use crate::buffer::{Buffer, Elem};
use crate::kernel::KernelDesc;
use crate::program::{EventSite, Program, StreamPlacement, StreamRecord};
// (Program is also the module-doc link target above.)
use crate::types::{BufId, Error, EventId, Result, StreamId};

/// Builder for [`Context`].
pub struct ContextBuilder {
    cfg: PlatformConfig,
    partitions: usize,
    streams_per_partition: usize,
    replan_capacity: Option<usize>,
    check_mode: crate::check::CheckMode,
    scheduler: crate::sched::SchedulerKind,
    metrics: bool,
    optimize: bool,
}

impl ContextBuilder {
    /// Number of core partitions per card (the paper's `P`). Default 1.
    pub fn partitions(mut self, p: usize) -> ContextBuilder {
        self.partitions = p;
        self
    }

    /// Streams bound to each partition. Default 1 (the paper's setup).
    pub fn streams_per_partition(mut self, s: usize) -> ContextBuilder {
        self.streams_per_partition = s;
        self
    }

    /// What both executors do with static-analyzer findings before
    /// running a program (see [`crate::check`]). Defaults to
    /// [`CheckMode::Enforce`](crate::check::CheckMode): error-severity
    /// findings refuse the run.
    pub fn check_mode(mut self, mode: crate::check::CheckMode) -> ContextBuilder {
        self.check_mode = mode;
        self
    }

    /// Which scheduler both executors use (see [`crate::sched`]). Defaults
    /// to [`SchedulerKind::Fifo`](crate::sched::SchedulerKind): replay the
    /// recorded stream order on the recorded placements, exactly as the
    /// pre-scheduler runtime did.
    pub fn scheduler(mut self, kind: crate::sched::SchedulerKind) -> ContextBuilder {
        self.scheduler = kind;
        self
    }

    /// Collect run metrics (see [`crate::metrics`]) on both executors:
    /// every run registers the full
    /// [`RunInstruments`](crate::metrics::RunInstruments) catalog and
    /// attaches a [`MetricsSnapshot`](crate::metrics::MetricsSnapshot) to
    /// its report. Off by default — the executors then pay one branch per
    /// instrumentation site (gated by `bench_native_runtime`).
    pub fn metrics(mut self, on: bool) -> ContextBuilder {
        self.metrics = on;
        self
    }

    /// Run [sync elision](crate::opt::optimize) on every program
    /// installed via [`Context::install_program`]: redundant waits, dead
    /// records and implied barriers are removed under an equivalence
    /// certificate before the program is stored. Off by default. Callers
    /// that address actions by `(stream, action index)` — e.g. fault
    /// injection sites — must translate coordinates through
    /// [`Context::take_opt_report`]. Incrementally recorded programs are
    /// not rewritten implicitly; opt in per program with
    /// [`Context::apply_optimizer`].
    pub fn optimize(mut self, on: bool) -> ContextBuilder {
        self.optimize = on;
        self
    }

    /// Largest partition count a later [`Context::replan`] may switch to.
    /// The persistent native runtime sizes its driver group, worker pools
    /// and partition locks for this capacity, so one runtime serves trials
    /// at any `P <= capacity` without respawning threads. Defaults to the
    /// initial partition count (no headroom).
    pub fn replan_capacity(mut self, p: usize) -> ContextBuilder {
        self.replan_capacity = Some(p);
        self
    }

    /// Initialize the context: partition every card and create the streams.
    pub fn build(self) -> Result<Context> {
        if self.streams_per_partition == 0 {
            return Err(Error::Config(
                "streams_per_partition must be positive".into(),
            ));
        }
        let replan_capacity = self.replan_capacity.unwrap_or(self.partitions);
        if replan_capacity < self.partitions {
            return Err(Error::Config(format!(
                "replan_capacity {} below initial partition count {}",
                replan_capacity, self.partitions
            )));
        }
        let mut platform = SimPlatform::new(self.cfg).map_err(Error::Config)?;
        let devices: Vec<DeviceId> = platform.devices().collect();
        for &dev in &devices {
            platform.init_partitions(dev, self.partitions)?;
        }
        let program = streams_for(&devices, self.partitions, self.streams_per_partition);
        Ok(Context {
            platform,
            partitions: self.partitions,
            streams_per_partition: self.streams_per_partition,
            replan_capacity,
            buffers: Vec::new(),
            program,
            native_rt: std::sync::OnceLock::new(),
            run_metrics_cache: parking_lot::Mutex::new(std::collections::HashMap::new()),
            last_native_trace: parking_lot::Mutex::new(None),
            recovery: parking_lot::Mutex::new(None),
            check_mode: self.check_mode,
            last_check: parking_lot::Mutex::new(None),
            scheduler: self.scheduler,
            metrics: self.metrics,
            optimize: self.optimize,
            last_opt: parking_lot::Mutex::new(None),
        })
    }
}

/// Device-major stream layout for a partition count: every device gets
/// `partitions * streams_per_partition` streams, partition-major.
fn streams_for(devices: &[DeviceId], partitions: usize, streams_per_partition: usize) -> Program {
    let mut program = Program::default();
    for &dev in devices {
        for part in 0..partitions {
            for _ in 0..streams_per_partition {
                let id = StreamId(program.streams.len());
                program.streams.push(StreamRecord {
                    id,
                    placement: StreamPlacement {
                        device: dev,
                        partition: part,
                    },
                    actions: Vec::new(),
                });
            }
        }
    }
    program
}

/// A live streaming context. See the [module docs](self).
pub struct Context {
    pub(crate) platform: SimPlatform,
    partitions: usize,
    streams_per_partition: usize,
    replan_capacity: usize,
    pub(crate) buffers: Vec<Buffer>,
    pub(crate) program: Program,
    /// Persistent native execution state (drivers, worker pools, copy
    /// engines), built lazily on the first persistent native run and torn
    /// down when the context drops.
    native_rt: std::sync::OnceLock<crate::executor::native::NativeRuntime>,
    /// Registry + instrument bundles reused across metered native runs,
    /// keyed by `(devices, partitions)`: registration costs microseconds,
    /// resetting costs relaxed stores, and launch-overhead runs are
    /// themselves only microseconds long. One bundle **per geometry** —
    /// a single shared registry would keep a larger geometry's stale
    /// `(device, partition, stream)` series alive in a smaller one's
    /// catalog (`register` reuses existing cells), so interleaved reuse
    /// across replans could alias instruments between shapes.
    run_metrics_cache:
        parking_lot::Mutex<std::collections::HashMap<(usize, usize), crate::metrics::RunMetrics>>,
    /// The most recent traced native run's timeline, published even when the
    /// run failed partway (see [`Context::take_native_trace`]).
    last_native_trace: parking_lot::Mutex<Option<crate::trace::NativeTrace>>,
    /// Recovery material left by the most recent failed native run (lost
    /// partitions, skipped actions, fault counters); consumed by
    /// [`Context::run_native_resilient`].
    recovery: parking_lot::Mutex<Option<crate::fault::RecoveryState>>,
    /// What the executors do with static-analyzer findings.
    check_mode: crate::check::CheckMode,
    /// Report of the most recent pre-run analysis (any mode but `Off`).
    last_check: parking_lot::Mutex<Option<crate::check::CheckReport>>,
    /// Which scheduler both executors use (see [`crate::sched`]).
    scheduler: crate::sched::SchedulerKind,
    /// Collect run metrics on both executors (see [`crate::metrics`]).
    metrics: bool,
    /// Elide redundant sync on program install (see
    /// [`ContextBuilder::optimize`]).
    optimize: bool,
    /// Report of the most recent sync-elision pass (install-time or
    /// [`Context::apply_optimizer`]).
    last_opt: parking_lot::Mutex<Option<crate::opt::OptReport>>,
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("devices", &self.platform.device_count())
            .field("partitions", &self.partitions)
            .field("streams_per_partition", &self.streams_per_partition)
            .field("buffers", &self.buffers.len())
            .field("actions", &self.program.action_count())
            .finish()
    }
}

impl Context {
    /// Start building a context for `cfg`.
    pub fn builder(cfg: PlatformConfig) -> ContextBuilder {
        ContextBuilder {
            cfg,
            partitions: 1,
            streams_per_partition: 1,
            replan_capacity: None,
            check_mode: crate::check::CheckMode::default(),
            scheduler: crate::sched::SchedulerKind::default(),
            metrics: false,
            optimize: false,
        }
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        self.platform.config()
    }

    /// Partitions per card.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Streams per partition.
    pub fn streams_per_partition(&self) -> usize {
        self.streams_per_partition
    }

    /// Largest partition count [`Context::replan`] may switch to (see
    /// [`ContextBuilder::replan_capacity`]).
    pub fn replan_capacity(&self) -> usize {
        self.replan_capacity
    }

    /// Re-partition every card to a new `P` **without touching buffers**:
    /// partitions are re-initialized, the stream set is rebuilt
    /// (device-major, same streams-per-partition), and the recorded program
    /// — actions, events, barriers — is discarded so a new one can be
    /// recorded against the new geometry. Buffer ids, host copies and any
    /// materialized native storage all survive, which is what makes an
    /// autotuning sweep over `(T, P)` cheap: allocate and fill once, replan
    /// and re-record per trial.
    ///
    /// Once the persistent native runtime exists (after the first
    /// persistent `run_native`), `partitions` must not exceed
    /// [`replan_capacity`](Context::replan_capacity) — the runtime's driver
    /// group and partition pools were sized for that capacity. Before the
    /// runtime is built, replanning past the capacity simply raises it.
    ///
    /// On error (e.g. more partitions than cores) the context keeps its
    /// previous geometry — including any pending
    /// [recovery state](Context::take_recovery_state), which stays
    /// consumable. A **successful** replan discards pending recovery
    /// state along with the program: its skipped-action coordinates and
    /// poisoned-partition taint index into the geometry being thrown
    /// away, so replaying them against the new stream set would replay
    /// the wrong actions (or panic on out-of-range streams).
    pub fn replan(&mut self, partitions: usize) -> Result<()> {
        if partitions > self.replan_capacity && self.native_rt.get().is_some() {
            return Err(Error::Config(format!(
                "replan to {} partitions exceeds the native runtime's capacity {} \
                 (set ContextBuilder::replan_capacity before the first native run)",
                partitions, self.replan_capacity
            )));
        }
        let devices: Vec<DeviceId> = self.platform.devices().collect();
        // Validate the geometry on the first device before committing
        // anything — including the capacity raise: a rejected geometry must
        // leave `replan_capacity` (which sizes the future native runtime)
        // exactly as it was. All devices share one DeviceSpec, so success on
        // the first means success everywhere and the loop below cannot leave
        // a partial state.
        if let Some(&first) = devices.first() {
            self.platform.init_partitions(first, partitions)?;
        }
        self.replan_capacity = self.replan_capacity.max(partitions);
        for &dev in devices.iter().skip(1) {
            self.platform.init_partitions(dev, partitions)?;
        }
        self.partitions = partitions;
        self.program = streams_for(&devices, partitions, self.streams_per_partition);
        // The taint in a pending RecoveryState is keyed by (stream,
        // action-index) pairs of the program just discarded; stranding it
        // would hand a later resilient replay coordinates into the wrong
        // program. Same reasoning in install_program / reset_program.
        self.recovery.lock().take();
        Ok(())
    }

    /// Total streams across all cards.
    pub fn stream_count(&self) -> usize {
        self.program.streams.len()
    }

    /// Number of cards.
    pub fn device_count(&self) -> usize {
        self.platform.device_count()
    }

    /// The `idx`-th stream (creation order: device-major, then partition,
    /// then stream-within-partition).
    pub fn stream(&self, idx: usize) -> Result<StreamId> {
        if idx < self.program.streams.len() {
            Ok(StreamId(idx))
        } else {
            Err(Error::UnknownStream(StreamId(idx)))
        }
    }

    /// Where `stream` is placed.
    pub fn placement(&self, stream: StreamId) -> Result<StreamPlacement> {
        self.program
            .streams
            .get(stream.0)
            .map(|s| s.placement)
            .ok_or(Error::UnknownStream(stream))
    }

    /// Geometry of the partition `stream` runs on.
    pub fn partition_of(&self, stream: StreamId) -> Result<Partition> {
        let placement = self.placement(stream)?;
        let plan = self.platform.plan(placement.device)?;
        Ok(plan.partitions[placement.partition].clone())
    }

    // ----- buffers ---------------------------------------------------------

    /// Allocate a zero-filled logical buffer of `len` elements, with an
    /// instance reserved in every card's device memory.
    pub fn alloc(&mut self, name: impl Into<String>, len: usize) -> BufId {
        let id = BufId(self.buffers.len());
        self.buffers.push(Buffer::new(id, name, len));
        id
    }

    /// Overwrite a buffer's host copy.
    pub fn write_host(&self, buf: BufId, data: &[Elem]) -> Result<()> {
        self.buffer(buf)?.write_host(data)
    }

    /// Clone a buffer's host copy out.
    pub fn read_host(&self, buf: BufId) -> Result<Vec<Elem>> {
        Ok(self.buffer(buf)?.read_host())
    }

    /// Borrow a buffer.
    pub fn buffer(&self, buf: BufId) -> Result<&Buffer> {
        self.buffers.get(buf.0).ok_or(Error::UnknownBuffer(buf))
    }

    /// Number of allocated buffers.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    // ----- recording -------------------------------------------------------

    fn stream_mut(&mut self, stream: StreamId) -> Result<&mut StreamRecord> {
        self.program
            .streams
            .get_mut(stream.0)
            .ok_or(Error::UnknownStream(stream))
    }

    fn check_buf(&self, buf: BufId) -> Result<()> {
        if buf.0 < self.buffers.len() {
            Ok(())
        } else {
            Err(Error::UnknownBuffer(buf))
        }
    }

    /// Enqueue a host→device transfer of `buf` on `stream`.
    pub fn h2d(&mut self, stream: StreamId, buf: BufId) -> Result<()> {
        self.check_buf(buf)?;
        self.stream_mut(stream)?.actions.push(Action::Transfer {
            dir: Direction::HostToDevice,
            buf,
        });
        Ok(())
    }

    /// Enqueue a device→host transfer of `buf` on `stream`.
    pub fn d2h(&mut self, stream: StreamId, buf: BufId) -> Result<()> {
        self.check_buf(buf)?;
        self.stream_mut(stream)?.actions.push(Action::Transfer {
            dir: Direction::DeviceToHost,
            buf,
        });
        Ok(())
    }

    /// Enqueue a kernel launch on `stream`.
    pub fn kernel(&mut self, stream: StreamId, desc: KernelDesc) -> Result<()> {
        desc.validate()?;
        for b in desc.reads.iter().chain(&desc.writes) {
            self.check_buf(*b)?;
        }
        self.stream_mut(stream)?.actions.push(Action::Kernel(desc));
        Ok(())
    }

    /// Record an event on `stream`: it fires when all work enqueued on
    /// `stream` before this call has completed.
    pub fn record_event(&mut self, stream: StreamId) -> Result<EventId> {
        let event = EventId(self.program.events.len());
        let s = self.stream_mut(stream)?;
        let action_index = s.actions.len();
        s.actions.push(Action::RecordEvent(event));
        let sid = s.id;
        self.program.events.push(EventSite {
            stream: sid,
            action_index,
        });
        Ok(event)
    }

    /// Make `stream` wait for `event` before running anything enqueued after
    /// this call.
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) -> Result<()> {
        let site = *self
            .program
            .events
            .get(event.0)
            .ok_or(Error::UnknownEvent(event))?;
        if site.stream == stream {
            return Err(Error::InvalidEventWait { stream, event });
        }
        self.stream_mut(stream)?
            .actions
            .push(Action::WaitEvent(event));
        Ok(())
    }

    /// Device-wide barrier across **all** streams: no stream runs anything
    /// enqueued after the barrier until every stream has drained everything
    /// enqueued before it. This is how the paper's non-overlappable flows
    /// (Hotspot, Kmeans, SRAD) separate their stages.
    pub fn barrier(&mut self) {
        let n = self.program.barriers;
        self.program.barriers += 1;
        for s in &mut self.program.streams {
            s.actions.push(Action::Barrier(n));
        }
    }

    /// The recorded program (read-only).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Replace the recorded program wholesale — the fuzzing and
    /// differential-testing entry point: build or mutate a bare
    /// [`Program`] elsewhere, install it here, run it on either executor.
    ///
    /// Beyond [`Program::validate`], this enforces the **hard safety
    /// bounds** that keep the executors panic-free even with the static
    /// checker [off](crate::check::CheckMode): every buffer reference must
    /// be allocated in this context, every placement must name a real
    /// device and a partition inside the **current** geometry, and the
    /// stream count must fit what the native runtime was (or will be)
    /// sized for. Violations are typed [`Error`]s, never panics — the
    /// checker still runs at execution time under the context's
    /// [`CheckMode`](crate::check::CheckMode) and may reject more.
    pub fn install_program(&mut self, program: Program) -> Result<()> {
        program.validate()?;
        let devices = self.platform.device_count();
        let max_streams = devices * self.replan_capacity * self.streams_per_partition;
        if program.streams.len() > max_streams {
            return Err(Error::Config(format!(
                "program has {} streams; this context can drive at most {max_streams}",
                program.streams.len()
            )));
        }
        for s in &program.streams {
            if s.placement.device.0 >= devices {
                return Err(Error::Config(format!(
                    "stream {} placed on {} but the platform has {devices} device(s)",
                    s.id, s.placement.device
                )));
            }
            if s.placement.partition >= self.partitions {
                return Err(Error::Config(format!(
                    "stream {} placed on partition {} but the current plan has {}",
                    s.id, s.placement.partition, self.partitions
                )));
            }
            for a in &s.actions {
                for b in a.buffers() {
                    self.check_buf(b)?;
                }
            }
        }
        self.program = if self.optimize {
            let optimized = crate::opt::optimize(&program, &self.check_env());
            *self.last_opt.lock() = Some(optimized.report);
            optimized.program
        } else {
            program
        };
        // Pending recovery coordinates referenced the replaced program.
        self.recovery.lock().take();
        Ok(())
    }

    /// Reset every allocated buffer's host **and** device storage to zeros
    /// (materialized storage is zeroed in place; still-lazy storage stays
    /// lazy, which already reads as zeros). Between two native runs this
    /// restores the initial memory state, making their outputs comparable
    /// bit for bit — the differential harness's reset button.
    pub fn zero_buffers(&self) {
        for b in &self.buffers {
            for side in [&b.host, &b.device] {
                for x in side.write().iter_mut() {
                    *x = 0.0;
                }
            }
        }
    }

    /// Discard all recorded actions, events and barriers, keeping streams,
    /// partitions and buffers. Handy for sweeping a parameter with the same
    /// buffers.
    pub fn reset_program(&mut self) {
        for s in &mut self.program.streams {
            s.actions.clear();
        }
        self.program.events.clear();
        self.program.barriers = 0;
        // Pending recovery coordinates referenced the cleared actions.
        self.recovery.lock().take();
    }

    // ----- static analysis -------------------------------------------------

    /// What both executors do with analyzer findings (see
    /// [`crate::check`]).
    pub fn check_mode(&self) -> crate::check::CheckMode {
        self.check_mode
    }

    /// Change the analyzer policy for subsequent runs — e.g.
    /// [`CheckMode::WarnOnly`](crate::check::CheckMode) for a
    /// deliberately-racy experiment.
    pub fn set_check_mode(&mut self, mode: crate::check::CheckMode) {
        self.check_mode = mode;
    }

    /// The plan the analyzer checks programs against.
    pub fn check_env(&self) -> crate::check::CheckEnv {
        crate::check::CheckEnv {
            buffers: self.buffers.len(),
            devices: self.platform.device_count(),
            partitions: self.partitions,
            streams_per_partition: self.streams_per_partition,
        }
    }

    /// Statically analyze the recorded program against this context's
    /// plan, regardless of the check mode. See [`crate::check`].
    pub fn analyze(&self) -> crate::check::Analysis {
        crate::check::analyze(&self.program, &self.check_env())
    }

    /// The report of the most recent pre-run analysis (both executors
    /// leave one behind unless the mode is
    /// [`CheckMode::Off`](crate::check::CheckMode)) — including the run
    /// that was just *refused*, so callers can render the findings.
    pub fn take_check_report(&self) -> Option<crate::check::CheckReport> {
        self.last_check.lock().take()
    }

    // ----- optimizer -------------------------------------------------------

    /// Whether [`Context::install_program`] runs the sync-elision
    /// optimizer (the builder's [`ContextBuilder::optimize`], post-build).
    pub fn optimize_enabled(&self) -> bool {
        self.optimize
    }

    /// Turn install-time sync elision on or off for subsequent
    /// [`Context::install_program`] calls.
    pub fn set_optimize(&mut self, on: bool) {
        self.optimize = on;
    }

    /// Run the sync-elision optimizer ([`crate::opt::optimize`]) over the
    /// **recorded** program in place and return how many actions it
    /// removed. The report — including the equivalence
    /// [`Certificate`](crate::opt::Certificate) and the site map for
    /// translating optimized coordinates back to recorded ones — is
    /// stashed for [`Context::take_opt_report`]. Unclean or already
    /// minimal programs are left untouched (zero is returned).
    pub fn apply_optimizer(&mut self) -> usize {
        let optimized = crate::opt::optimize(&self.program, &self.check_env());
        let elided = optimized.report.elided_actions();
        self.program = optimized.program;
        *self.last_opt.lock() = Some(optimized.report);
        elided
    }

    /// The report of the most recent sync-elision pass — install-time
    /// (when [built](ContextBuilder::optimize) with the optimizer on) or
    /// explicit [`Context::apply_optimizer`]. Taking it clears the slot.
    pub fn take_opt_report(&self) -> Option<crate::opt::OptReport> {
        self.last_opt.lock().take()
    }

    /// Static cost bounds for the recorded program under the context's
    /// calibrated cost model (see [`crate::opt::static_cost`]). `None`
    /// when the program is empty, cyclic, or prices an action the model
    /// cannot (it mirrors the simulator's pricing exactly, so in practice
    /// this means a malformed program).
    pub fn static_cost(&self) -> Option<crate::opt::StaticCost> {
        let model = self.cost_model().ok()?;
        crate::opt::static_cost(&self.program, &model, &self.check_env())
    }

    /// Advisory performance lints for the recorded program (see
    /// [`crate::opt::lint`]): over-synchronization, statically-detectable
    /// starvation, serialized transfer/kernel pairs that could overlap.
    pub fn lint(&self) -> crate::check::CheckReport {
        let model = self.cost_model().ok();
        crate::opt::lint(&self.program, &self.check_env(), model.as_ref())
    }

    /// Pre-run analyzer gate shared by both executors: analyze under the
    /// context's [`CheckMode`](crate::check::CheckMode), stash the report,
    /// and refuse error-severity findings when enforcing.
    pub(crate) fn enforce_check(&self) -> Result<()> {
        match self.check_mode {
            crate::check::CheckMode::Off => Ok(()),
            mode => {
                let analysis = self.analyze();
                let clean = analysis.report.is_clean();
                *self.last_check.lock() = Some(analysis.report.clone());
                if !clean && mode == crate::check::CheckMode::Enforce {
                    Err(Error::Check(Box::new(analysis.report)))
                } else {
                    Ok(())
                }
            }
        }
    }

    // ----- scheduling ------------------------------------------------------

    /// Which scheduler both executors use (see [`crate::sched`]).
    pub fn scheduler(&self) -> crate::sched::SchedulerKind {
        self.scheduler
    }

    /// Whether both executors collect run metrics (see [`crate::metrics`]).
    pub fn metrics_enabled(&self) -> bool {
        self.metrics
    }

    /// Turn run-metrics collection on or off for subsequent runs on either
    /// executor (the builder's [`ContextBuilder::metrics`], post-build).
    pub fn set_metrics(&mut self, on: bool) {
        self.metrics = on;
    }

    /// Select the scheduler for subsequent runs — e.g.
    /// [`SchedulerKind::ListHeft`](crate::sched::SchedulerKind) to re-place
    /// the recorded tiles by critical-path rank instead of replaying the
    /// recorded stream order.
    pub fn set_scheduler(&mut self, kind: crate::sched::SchedulerKind) {
        self.scheduler = kind;
    }

    /// The cost model the schedulers price actions with: the context's own
    /// calibrated platform configuration, partition geometry and buffer
    /// sizes — the same numbers the simulator executes against.
    pub fn cost_model(&self) -> Result<crate::sched::CostModel> {
        let devices: Vec<DeviceId> = self.platform.devices().collect();
        let mut plans = Vec::with_capacity(devices.len());
        for dev in devices {
            plans.push(self.platform.plan(dev)?.partitions.clone());
        }
        let bytes: Vec<u64> = self.buffers.iter().map(Buffer::bytes).collect();
        Ok(crate::sched::CostModel::new(self.config(), &plans, &bytes))
    }

    /// Plan the recorded program under the context's scheduler. `None`
    /// when the scheduler declines — FIFO always does; the others decline
    /// on empty or non-analyzer-clean programs (see [`crate::sched::plan`]).
    pub fn plan_schedule(&self) -> Option<crate::sched::Schedule> {
        let cost = self.cost_model().ok()?;
        crate::sched::plan(&self.program, &cost, self.scheduler)
    }

    /// Plan under `kind` (ignoring the context's configured scheduler) and
    /// materialize the result into the lane-per-stream program the
    /// simulator executes. `None` under the same conditions as
    /// [`Context::plan_schedule`].
    pub fn plan_scheduled_program(
        &self,
        kind: crate::sched::SchedulerKind,
    ) -> Option<(crate::sched::Schedule, Program)> {
        let cost = self.cost_model().ok()?;
        crate::sched::plan_program(&self.program, &cost, kind)
    }

    /// Plan the program under the context's scheduler and render the
    /// per-action placement listing
    /// ([`Program::dump_scheduled`](crate::program::Program::dump_scheduled)).
    /// `None` when the scheduler declines (FIFO, empty or unclean program).
    pub fn dump_schedule(&self) -> Option<String> {
        self.plan_schedule()
            .map(|schedule| self.program.dump_scheduled(&schedule))
    }

    /// Plan under `kind` keeping the task graph alongside — the native
    /// executor's graph dispatcher drives the original program through the
    /// graph directly instead of materializing a new one.
    pub(crate) fn plan_schedule_graph(
        &self,
        kind: crate::sched::SchedulerKind,
    ) -> Option<(crate::sched::Schedule, crate::sched::TaskGraph)> {
        let cost = self.cost_model().ok()?;
        crate::sched::plan_with_graph(&self.program, &cost, kind)
    }

    // ----- execution -------------------------------------------------------

    /// Validate and price the recorded program on the platform simulator.
    ///
    /// When a non-FIFO [scheduler](Context::set_scheduler) is selected and
    /// the program is analyzer-clean, the simulator executes the scheduled
    /// (re-placed, re-ordered) form of the program instead of the recorded
    /// stream order; otherwise it runs the recorded program exactly as the
    /// pre-scheduler runtime did.
    pub fn run_sim(&self) -> Result<crate::executor::sim::SimReport> {
        crate::executor::sim::run(self)
    }

    /// Validate and execute the recorded program on the native host
    /// executor, with default native settings.
    pub fn run_native(&self) -> Result<crate::executor::native::NativeReport> {
        crate::executor::native::run(self, &crate::executor::native::NativeConfig::default())
    }

    /// Native execution with explicit settings.
    pub fn run_native_with(
        &self,
        cfg: &crate::executor::native::NativeConfig,
    ) -> Result<crate::executor::native::NativeReport> {
        crate::executor::native::run(self, cfg)
    }

    /// The persistent native runtime, built on first use.
    pub(crate) fn native_runtime(&self) -> &crate::executor::native::NativeRuntime {
        self.native_rt
            .get_or_init(|| crate::executor::native::NativeRuntime::new(self))
    }

    /// A cleared [`RunMetrics`](crate::metrics::RunMetrics) bundle for a
    /// metered native run: the cached one for this exact geometry (reset),
    /// a fresh registration otherwise. Bundles are cached **per geometry**
    /// so interleaved runs at different partition counts (replan sweeps,
    /// multi-tenant lease changes) neither thrash re-registration nor
    /// share a registry whose catalog would alias the shapes. Taken, not
    /// borrowed — a concurrent second run at the same geometry simply
    /// builds its own and the last
    /// [`stash_run_metrics`](Context::stash_run_metrics) wins.
    pub(crate) fn take_run_metrics(
        &self,
        devices: usize,
        partitions: usize,
    ) -> crate::metrics::RunMetrics {
        if let Some(rm) = self.run_metrics_cache.lock().remove(&(devices, partitions)) {
            rm.reset();
            return rm;
        }
        crate::metrics::RunMetrics::new(devices, partitions)
    }

    /// Return a [`RunMetrics`](crate::metrics::RunMetrics) bundle to the
    /// cache after its snapshot has been taken.
    pub(crate) fn stash_run_metrics(&self, rm: crate::metrics::RunMetrics) {
        self.run_metrics_cache
            .lock()
            .insert((rm.devices, rm.partitions), rm);
    }

    /// Number of persistent threads owned by this context's native runtime
    /// (stream drivers, partition pool workers, copy engines), or `None`
    /// before the first persistent native run builds it. Repeated
    /// `run_native` calls reuse these threads; this count must not grow.
    pub fn native_thread_count(&self) -> Option<usize> {
        self.native_rt
            .get()
            .map(super::executor::native::NativeRuntime::thread_count)
    }

    /// Stash the trace of the latest traced native run (called from the
    /// executor's trace guard on every exit path, including panics).
    pub(crate) fn store_native_trace(&self, trace: crate::trace::NativeTrace) {
        *self.last_native_trace.lock() = Some(trace);
    }

    /// Take the trace of the most recent traced native run, if any. This is
    /// how a **partial** timeline is recovered when `run_native_with` (with
    /// [`NativeConfig::trace`](crate::executor::native::NativeConfig) set)
    /// returned an error: every span recorded before the failure is there,
    /// so the Gantt chart names the kernel that blew up. Successful runs
    /// also attach the same trace to the report directly.
    pub fn take_native_trace(&self) -> Option<crate::trace::NativeTrace> {
        self.last_native_trace.lock().take()
    }

    // ----- fault injection & recovery --------------------------------------

    /// Simulate the program under a [`FaultPlan`](crate::fault::FaultPlan):
    /// failed transfer attempts and their backoffs are priced on the link,
    /// slow transfers and partitions stretch their tasks, and unrecoverable
    /// faults (retry budget exhausted, kernel panics, allocation failures)
    /// surface as typed errors. The default
    /// [`RetryPolicy`](crate::fault::RetryPolicy) prices the retries.
    pub fn run_sim_faulted(
        &self,
        plan: &crate::fault::FaultPlan,
    ) -> Result<crate::executor::sim::SimReport> {
        crate::executor::sim::run_with(self, Some(plan), &crate::fault::RetryPolicy::default())
    }

    /// Stash the recovery material of a failed native run (called by the
    /// native executor on its error path).
    pub(crate) fn store_recovery(&self, state: crate::fault::RecoveryState) {
        *self.recovery.lock() = Some(state);
    }

    /// Take the recovery material of the most recent failed native run, if
    /// any: which partitions a kernel panic poisoned, and which actions were
    /// skipped. [`Context::run_native_resilient`] consumes this; it is
    /// exposed for callers that implement their own recovery policy.
    pub fn take_recovery_state(&self) -> Option<crate::fault::RecoveryState> {
        self.recovery.lock().take()
    }

    /// Execute natively with **graceful degradation**: partition isolation
    /// is forced on, and when a pass loses partitions to kernel panics (or
    /// taints buffers through exhausted transfer retries), the skipped
    /// actions are replayed — in their recorded skip order, which respects
    /// the program's happens-before edges — on a surviving partition's
    /// stream. Replay passes run with fault injection disabled (the plan's
    /// sites are keyed by `(stream, action-index)` against the *original*
    /// program) and are bounded by
    /// [`NativeConfig::max_degraded_runs`](crate::executor::native::NativeConfig).
    ///
    /// On success the returned [`ResilientReport`](crate::fault::ResilientReport)
    /// carries the final pass's report plus fault counters accumulated
    /// across every pass. Unrecoverable failures — allocation faults, host
    /// kernel panics, every partition lost, replay budget exhausted — surface
    /// the underlying error. The recorded program is restored afterwards
    /// either way.
    pub fn run_native_resilient(
        &mut self,
        cfg: &crate::executor::native::NativeConfig,
    ) -> Result<crate::fault::ResilientReport> {
        let mut cfg = cfg.clone();
        cfg.isolate_partitions = true;
        let max_degraded = cfg.max_degraded_runs;
        let mut total = crate::fault::FaultCounters::default();
        let mut lost_all: Vec<(usize, usize, String)> = Vec::new();
        let original = self.program.clone();
        let mut passes = 0usize;
        let result = loop {
            match crate::executor::native::run(self, &cfg) {
                Ok(report) => {
                    total.absorb(&report.faults);
                    break Ok(report);
                }
                Err(err) => {
                    let Some(state) = self.take_recovery_state() else {
                        break Err(err);
                    };
                    total.absorb(&state.faults);
                    lost_all.extend(state.lost.iter().cloned());
                    if state.skipped.is_empty() || passes >= max_degraded {
                        break Err(err);
                    }
                    let Some(replay) = self.build_replay_program(&state, &lost_all) else {
                        // No surviving partition to replay on.
                        break Err(err);
                    };
                    passes += 1;
                    total.degraded_runs += 1;
                    total.replayed_actions += state.skipped.len() as u64;
                    self.program = replay;
                    // Replay indices don't line up with the plan's sites;
                    // re-injecting would fault arbitrary replayed actions.
                    cfg.fault = None;
                }
            }
        };
        self.program = original;
        result.map(|report| crate::fault::ResilientReport {
            report,
            faults: total,
            lost_partitions: lost_all,
        })
    }

    /// Build the replay program for a degraded pass: every skipped action,
    /// in recorded skip order, cloned onto the first stream whose partition
    /// survived. The skip order is a valid serial order (see
    /// [`RecoveryState::skipped`](crate::fault::RecoveryState)), and a
    /// single stream executes FIFO, so no events or barriers are needed.
    /// Returns `None` when every partition is lost.
    fn build_replay_program(
        &self,
        state: &crate::fault::RecoveryState,
        lost: &[(usize, usize, String)],
    ) -> Option<Program> {
        use std::collections::HashSet;
        let dead: HashSet<(usize, usize)> = lost.iter().map(|&(d, p, _)| (d, p)).collect();
        let target = self
            .program
            .streams
            .iter()
            .position(|s| !dead.contains(&(s.placement.device.0, s.placement.partition)))?;
        let mut replay = Program::default();
        for s in &self.program.streams {
            replay.streams.push(StreamRecord {
                id: s.id,
                placement: s.placement,
                actions: Vec::new(),
            });
        }
        for &(si, ai) in &state.skipped {
            let action = self.program.streams[si].actions[ai].clone();
            replay.streams[target].actions.push(action);
        }
        Some(replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micsim::compute::KernelProfile;

    fn ctx(p: usize, spp: usize) -> Context {
        Context::builder(PlatformConfig::phi_31sp())
            .partitions(p)
            .streams_per_partition(spp)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_creates_streams_per_partition() {
        let c = ctx(4, 2);
        assert_eq!(c.stream_count(), 8);
        assert_eq!(c.partitions(), 4);
        assert_eq!(c.streams_per_partition(), 2);
        // Streams 0,1 on partition 0; 2,3 on partition 1; ...
        assert_eq!(c.placement(StreamId(0)).unwrap().partition, 0);
        assert_eq!(c.placement(StreamId(1)).unwrap().partition, 0);
        assert_eq!(c.placement(StreamId(2)).unwrap().partition, 1);
    }

    #[test]
    fn multi_device_streams_are_device_major() {
        let c = Context::builder(PlatformConfig::phi_31sp_multi(2))
            .partitions(2)
            .build()
            .unwrap();
        assert_eq!(c.stream_count(), 4);
        assert_eq!(c.device_count(), 2);
        assert_eq!(c.placement(StreamId(0)).unwrap().device, DeviceId(0));
        assert_eq!(c.placement(StreamId(2)).unwrap().device, DeviceId(1));
    }

    #[test]
    fn zero_streams_per_partition_rejected() {
        let err = Context::builder(PlatformConfig::phi_31sp())
            .streams_per_partition(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn bad_partition_count_surfaces_platform_error() {
        let err = Context::builder(PlatformConfig::phi_31sp())
            .partitions(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Platform(_)));
    }

    #[test]
    fn recording_validates_handles() {
        let mut c = ctx(2, 1);
        let s0 = c.stream(0).unwrap();
        assert!(c.stream(99).is_err());
        assert!(c.h2d(s0, BufId(0)).is_err(), "buffer not allocated yet");
        let a = c.alloc("a", 16);
        c.h2d(s0, a).unwrap();
        c.d2h(s0, a).unwrap();
        assert_eq!(c.program().action_count(), 2);
        assert!(c.h2d(StreamId(42), a).is_err());
    }

    #[test]
    fn kernel_buffers_checked_at_enqueue() {
        let mut c = ctx(1, 1);
        let s0 = c.stream(0).unwrap();
        let a = c.alloc("a", 4);
        let bad = KernelDesc::simulated("k", KernelProfile::streaming("k", 1e9), 1.0)
            .reading([BufId(33)]);
        assert!(c.kernel(s0, bad).is_err());
        let good = KernelDesc::simulated("k", KernelProfile::streaming("k", 1e9), 1.0).reading([a]);
        c.kernel(s0, good).unwrap();
    }

    #[test]
    fn events_wire_across_streams() {
        let mut c = ctx(2, 1);
        let (s0, s1) = (c.stream(0).unwrap(), c.stream(1).unwrap());
        let a = c.alloc("a", 4);
        c.h2d(s0, a).unwrap();
        let e = c.record_event(s0).unwrap();
        c.wait_event(s1, e).unwrap();
        assert!(matches!(
            c.wait_event(s0, e),
            Err(Error::InvalidEventWait { .. })
        ));
        c.program().validate().unwrap();
    }

    #[test]
    fn barrier_lands_in_every_stream() {
        let mut c = ctx(3, 1);
        c.barrier();
        c.barrier();
        for s in &c.program().streams {
            assert_eq!(s.actions.len(), 2);
        }
        assert_eq!(c.program().barriers, 2);
        c.program().validate().unwrap();
    }

    #[test]
    fn reset_program_keeps_buffers() {
        let mut c = ctx(2, 1);
        let a = c.alloc("a", 8);
        let s0 = c.stream(0).unwrap();
        c.h2d(s0, a).unwrap();
        c.barrier();
        c.reset_program();
        assert_eq!(c.program().action_count(), 0);
        assert_eq!(c.program().barriers, 0);
        assert_eq!(c.buffer_count(), 1);
        assert_eq!(c.stream_count(), 2);
    }

    #[test]
    fn failed_replan_leaves_capacity_and_geometry_untouched() {
        let mut c = ctx(2, 1);
        assert_eq!(c.replan_capacity(), 2);
        // 999 partitions cannot fit 224 usable threads: geometry rejected.
        assert!(c.replan(999).is_err());
        assert_eq!(
            c.replan_capacity(),
            2,
            "capacity must not move on a rejected replan"
        );
        assert_eq!(c.partitions(), 2);
        assert_eq!(c.stream_count(), 2);
        // A later valid replan still works and raises capacity.
        c.replan(4).unwrap();
        assert_eq!(c.replan_capacity(), 4);
        assert_eq!(c.partitions(), 4);
    }

    #[test]
    fn install_program_enforces_hard_bounds() {
        use crate::program::{StreamPlacement, StreamRecord};
        let mut c = ctx(2, 1);
        let a = c.alloc("a", 8);

        // A well-formed program referencing allocated buffers installs.
        let mut good = Program::default();
        good.streams.push(StreamRecord {
            id: StreamId(0),
            placement: StreamPlacement {
                device: DeviceId(0),
                partition: 1,
            },
            actions: vec![Action::Transfer {
                dir: Direction::HostToDevice,
                buf: a,
            }],
        });
        c.install_program(good.clone()).unwrap();
        assert_eq!(c.program().action_count(), 1);

        // Unknown buffer.
        let mut bad_buf = good.clone();
        bad_buf.streams[0].actions.push(Action::Transfer {
            dir: Direction::HostToDevice,
            buf: BufId(7),
        });
        assert!(matches!(
            c.install_program(bad_buf),
            Err(Error::UnknownBuffer(BufId(7)))
        ));

        // Partition outside the current geometry.
        let mut bad_part = good.clone();
        bad_part.streams[0].placement.partition = 5;
        assert!(matches!(c.install_program(bad_part), Err(Error::Config(_))));

        // Device outside the platform.
        let mut bad_dev = good.clone();
        bad_dev.streams[0].placement.device = DeviceId(3);
        assert!(matches!(c.install_program(bad_dev), Err(Error::Config(_))));

        // More streams than the runtime can drive.
        let mut too_wide = good;
        for i in 1..40 {
            too_wide.streams.push(StreamRecord {
                id: StreamId(i),
                placement: StreamPlacement {
                    device: DeviceId(0),
                    partition: 0,
                },
                actions: vec![],
            });
        }
        assert!(matches!(c.install_program(too_wide), Err(Error::Config(_))));
        // The rejected installs left the good program in place.
        assert_eq!(c.program().action_count(), 1);
    }

    #[test]
    fn run_metrics_cache_keeps_one_bundle_per_geometry() {
        let c = ctx(2, 1);
        let rm2 = c.take_run_metrics(1, 2);
        let rm4 = c.take_run_metrics(1, 4);
        let probe = rm2.instruments.actions_executed.clone();
        c.stash_run_metrics(rm2);
        c.stash_run_metrics(rm4);
        // Taking the (1, 2) bundle back hands out the same cells — the
        // stale handle observes the increment — so alternating geometries
        // no longer discard each other's registrations.
        let rm2b = c.take_run_metrics(1, 2);
        probe.inc();
        assert_eq!(rm2b.instruments.actions_executed.get(), 1);
        // The (1, 4) bundle survived alongside it.
        let rm4b = c.take_run_metrics(1, 4);
        assert_eq!((rm4b.devices, rm4b.partitions), (1, 4));
        assert_eq!(rm4b.instruments.actions_executed.get(), 0);
    }

    #[test]
    fn zero_buffers_resets_materialized_storage() {
        let mut c = ctx(1, 1);
        let a = c.alloc("a", 4);
        c.write_host(a, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        c.buffer(a).unwrap().ensure_materialized();
        c.buffer(a).unwrap().device.write()[0] = 9.0;
        c.zero_buffers();
        assert_eq!(c.read_host(a).unwrap(), vec![0.0; 4]);
        assert_eq!(*c.buffer(a).unwrap().device.read(), vec![0.0; 4]);
    }

    #[test]
    fn partition_of_reports_geometry() {
        let c = ctx(4, 1);
        let part = c.partition_of(StreamId(0)).unwrap();
        assert_eq!(part.threads, 56);
        assert!(!part.shares_core);
    }

    #[test]
    fn write_read_host_roundtrip() {
        let mut c = ctx(1, 1);
        let a = c.alloc("a", 3);
        c.write_host(a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(c.read_host(a).unwrap(), vec![1.0, 2.0, 3.0]);
        assert!(c.write_host(a, &[0.0]).is_err());
        assert!(c.read_host(BufId(9)).is_err());
    }
}
