//! Persistent partition-pinned worker pool for the native executor.
//!
//! The paper's methodology is *repeated* execution: every `(P, T)` point is
//! run many times and averaged, and the Sec. V-C tuning loop replays
//! hundreds of configurations. A runtime that spawns OS threads on every
//! kernel launch therefore measures its own spawn cost, not the modeled
//! platform's launch overhead. This module keeps the threads alive instead:
//!
//! * a [`WorkerGroup`] is a set of long-lived threads parked on a condvar
//!   between jobs, with a chunked-task submit API (the submitting thread
//!   participates in the job, so a group of size `n` brings `n - 1` extra
//!   threads);
//! * a [`WorkerPool`] owns one group per `(device, partition)` pair — the
//!   *partition-pinned* groups kernels split their work across — plus one
//!   group for host-side kernels, sized from `available_parallelism` and
//!   the partition geometry exactly like the per-kernel `threads` hint;
//! * a thread-local **current group** lets
//!   [`par_chunks_mut`](crate::parallel::par_chunks_mut) and
//!   [`par_reduce`](crate::parallel::par_reduce) route work onto the pool
//!   with unchanged signatures: the native executor installs the kernel's
//!   partition group around the kernel body, and the helpers fall back to
//!   scoped spawning when no group is installed.
//!
//! # Panic behaviour
//!
//! A panic inside a submitted task is caught on the worker, the job is
//! still driven to completion on every thread (the borrowed data must
//! outlive all workers), and the first payload is re-raised on the
//! submitting thread — the same observable behaviour as
//! `std::thread::scope`.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// A lifetime-erased pointer to the current job's task. Only dereferenced
/// between job publication and the `remaining == 0` handshake, during which
/// the submitting call keeps the referent alive.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the submit protocol bounds its use to the submitting call's lifetime.
unsafe impl Send for TaskPtr {}

#[derive(Clone, Copy)]
struct Job {
    task: TaskPtr,
    /// Number of task indices in this job.
    parts: usize,
    /// `true`: worker `i` runs exactly index `i + 1` (the submitter runs
    /// index 0) — used for stream drivers, which may block on each other
    /// and therefore need one dedicated thread per index. `false`: all
    /// threads claim indices from a shared counter until none remain.
    fixed: bool,
}

struct GroupState {
    /// Incremented once per submitted job; workers detect work by epoch.
    epoch: u64,
    job: Option<Job>,
    /// Workers still executing the current job.
    remaining: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<GroupState>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The submitter parks here until `remaining == 0`.
    done_cv: Condvar,
    /// Claim counter for non-fixed (chunked) jobs.
    next: AtomicUsize,
    /// First panic payload raised by a worker during the current job.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Lifetime count of task panics caught on this group's threads (the
    /// submitter's own share included). Diagnostic for chaos runs: the
    /// fault counters say what the runtime *did* about panics, this says
    /// how many the pool ever swallowed-and-reraised.
    panics_observed: AtomicU64,
}

/// A set of persistent threads executing chunked jobs. See module docs.
pub struct WorkerGroup {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerGroup {
    /// Create a group contributing `extra_workers` persistent threads; with
    /// the submitting thread, jobs run `extra_workers + 1` wide. `label`
    /// names the OS threads (visible in debuggers and `/proc`).
    pub fn new(label: &str, extra_workers: usize) -> WorkerGroup {
        let shared = Arc::new(Shared {
            state: Mutex::new(GroupState {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            panic: Mutex::new(None),
            panics_observed: AtomicU64::new(0),
        });
        let handles = (0..extra_workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("hsp-{label}-w{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerGroup { shared, handles }
    }

    /// Persistent threads owned by this group.
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Task panics this group has caught over its lifetime (each one was
    /// re-raised on the submitting thread; see module docs).
    pub fn panics_observed(&self) -> u64 {
        self.shared.panics_observed.load(Ordering::Relaxed)
    }

    /// Run `task(idx)` for every `idx in 0..parts`, splitting the indices
    /// across this group's threads and the calling thread. Returns when all
    /// parts completed. Indices are claimed dynamically, so `parts` may be
    /// smaller or larger than the thread count.
    ///
    /// When the calling thread has a trace sink installed (native tracing
    /// on), the whole job is stamped as one span; otherwise the only added
    /// cost is a thread-local read.
    pub fn run_chunked(&self, parts: usize, task: &(dyn Fn(usize) + Sync)) {
        let traced = crate::trace::pool_job_start();
        if parts <= 1 || self.handles.is_empty() {
            for idx in 0..parts {
                task(idx);
            }
        } else {
            self.run_protocol(parts, false, task);
        }
        if let Some(start) = traced {
            crate::trace::record_pool_job(start, parts, self.handles.len() + 1);
        }
    }

    /// Run `task(idx)` for every `idx in 0..parts` with a **dedicated**
    /// thread per index (the caller takes index 0), so tasks may block on
    /// one another. Requires `parts <= worker_count() + 1`.
    pub fn run_fixed(&self, parts: usize, task: &(dyn Fn(usize) + Sync)) {
        assert!(
            parts <= self.handles.len() + 1,
            "fixed job of {} parts exceeds group width {}",
            parts,
            self.handles.len() + 1
        );
        if parts == 0 {
            return;
        }
        if parts == 1 {
            task(0);
            return;
        }
        self.run_protocol(parts, true, task);
    }

    fn run_protocol(&self, parts: usize, fixed: bool, task: &(dyn Fn(usize) + Sync)) {
        let shared = &self.shared;
        // SAFETY (lifetime erasure): workers dereference `task` only while
        // `remaining > 0` for this job, and this function does not return —
        // even when the submitter's own share panics — until `remaining`
        // reaches 0. The borrow therefore strictly outlives every use.
        let erased = TaskPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        });
        {
            let mut st = self.shared.state.lock();
            debug_assert!(st.remaining == 0 && st.job.is_none(), "group job overlap");
            shared.next.store(0, Ordering::Relaxed);
            st.job = Some(Job {
                task: erased,
                parts,
                fixed,
            });
            st.remaining = self.handles.len();
            st.epoch += 1;
        }
        shared.work_cv.notify_all();
        // The submitting thread works too: index 0 when fixed, otherwise
        // claiming chunks like any worker.
        let own = catch_unwind(AssertUnwindSafe(|| {
            if fixed {
                task(0);
            } else {
                claim_loop(shared, parts, task);
            }
        }));
        {
            let mut st = shared.state.lock();
            while st.remaining != 0 {
                shared.done_cv.wait(&mut st);
            }
            st.job = None;
        }
        // Take the stored payload *before* unwinding: `resume_unwind` inside
        // an `if let` on `panic.lock().take()` would hold the guard across
        // the unwind and poison the mutex, killing the next panicking job's
        // worker outside its catch (and deadlocking the group).
        let stored = shared.panic.lock().take();
        if let Err(payload) = own {
            shared.panics_observed.fetch_add(1, Ordering::Relaxed);
            resume_unwind(payload);
        }
        if let Some(payload) = stored {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerGroup {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn claim_loop(shared: &Shared, parts: usize, task: &(dyn Fn(usize) + Sync)) {
    loop {
        let idx = shared.next.fetch_add(1, Ordering::Relaxed);
        if idx >= parts {
            return;
        }
        task(idx);
    }
}

fn worker_loop(shared: &Shared, worker_idx: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("epoch advanced with job published");
                }
                shared.work_cv.wait(&mut st);
            }
        };
        // SAFETY: see `run_protocol` — the submitter keeps the task alive
        // until this thread decrements `remaining` below.
        let task = unsafe { &*job.task.0 };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if job.fixed {
                let idx = worker_idx + 1;
                if idx < job.parts {
                    task(idx);
                }
            } else {
                claim_loop(shared, job.parts, task);
            }
        }));
        if let Err(payload) = outcome {
            shared.panics_observed.fetch_add(1, Ordering::Relaxed);
            let mut slot = shared.panic.lock();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut st = shared.state.lock();
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

// ----- the pool ------------------------------------------------------------

/// One [`WorkerGroup`] per `(device, partition)` pair plus a host group.
/// Owned by a `Context` and reused for every native run. See module docs.
pub struct WorkerPool {
    partition_groups: Vec<Vec<Arc<WorkerGroup>>>,
    host_group: Arc<WorkerGroup>,
    threads_per_partition: usize,
}

impl WorkerPool {
    /// Build groups for `devices × partitions`, each `threads_per_partition`
    /// wide (one of which is the submitting driver thread), mirroring how
    /// partitions share the card — and the host.
    pub fn for_geometry(
        devices: usize,
        partitions: usize,
        threads_per_partition: usize,
    ) -> WorkerPool {
        let width = threads_per_partition.max(1);
        let partition_groups = (0..devices)
            .map(|d| {
                (0..partitions)
                    .map(|p| Arc::new(WorkerGroup::new(&format!("d{d}p{p}"), width - 1)))
                    .collect()
            })
            .collect();
        WorkerPool {
            partition_groups,
            host_group: Arc::new(WorkerGroup::new("host", width - 1)),
            threads_per_partition: width,
        }
    }

    /// The group pinned to `(device, partition)`.
    pub fn partition(&self, device: usize, partition: usize) -> &Arc<WorkerGroup> {
        &self.partition_groups[device][partition]
    }

    /// The group host-side kernels split across.
    pub fn host(&self) -> &Arc<WorkerGroup> {
        &self.host_group
    }

    /// Worker width each group was built with (including the submitter).
    pub fn threads_per_partition(&self) -> usize {
        self.threads_per_partition
    }

    /// Total persistent threads owned by the pool.
    pub fn thread_count(&self) -> usize {
        self.partition_groups
            .iter()
            .flatten()
            .map(|g| g.worker_count())
            .sum::<usize>()
            + self.host_group.worker_count()
    }
}

// ----- thread-local current group ------------------------------------------

thread_local! {
    static CURRENT_GROUP: RefCell<Option<Arc<WorkerGroup>>> = const { RefCell::new(None) };
}

/// Installs `group` as the calling thread's current group for the guard's
/// lifetime; restores the previous value on drop.
pub struct InstallGuard {
    previous: Option<Arc<WorkerGroup>>,
}

/// Make `group` the pool the parallel helpers on this thread submit to.
pub fn install(group: Arc<WorkerGroup>) -> InstallGuard {
    let previous = CURRENT_GROUP.with(|c| c.borrow_mut().replace(group));
    InstallGuard { previous }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT_GROUP.with(|c| *c.borrow_mut() = self.previous.take());
    }
}

/// The current group, *removed* from the thread-local for the returned
/// guard's lifetime (restored on drop). Taking instead of peeking makes a
/// nested parallel call from inside a chunk fall back to scoped spawning
/// rather than deadlocking on its own group.
pub struct CurrentGroup {
    group: Arc<WorkerGroup>,
}

impl CurrentGroup {
    /// Take the calling thread's current group, if one is installed.
    pub fn take() -> Option<CurrentGroup> {
        CURRENT_GROUP
            .with(|c| c.borrow_mut().take())
            .map(|group| CurrentGroup { group })
    }
}

impl std::ops::Deref for CurrentGroup {
    type Target = WorkerGroup;
    fn deref(&self) -> &WorkerGroup {
        &self.group
    }
}

impl Drop for CurrentGroup {
    fn drop(&mut self) {
        CURRENT_GROUP.with(|c| *c.borrow_mut() = Some(self.group.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn chunked_covers_every_index_once() {
        let group = WorkerGroup::new("t0", 3);
        let hits: Vec<AtomicUsize> = (0..17).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..50 {
            group.run_chunked(hits.len(), &|idx| {
                hits[idx].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 50);
        }
    }

    #[test]
    fn chunked_runs_inline_without_workers() {
        let group = WorkerGroup::new("t1", 0);
        let main_thread = std::thread::current().id();
        group.run_chunked(4, &|_| {
            assert_eq!(std::thread::current().id(), main_thread);
        });
    }

    #[test]
    fn fixed_gives_each_index_a_dedicated_thread() {
        // Tasks block on each other pairwise: only per-index threads work.
        let group = WorkerGroup::new("t2", 1);
        let turn = AtomicUsize::new(0);
        group.run_fixed(2, &|idx| {
            if idx == 0 {
                while turn.load(Ordering::Acquire) == 0 {
                    std::thread::yield_now();
                }
            } else {
                turn.store(1, Ordering::Release);
            }
        });
        assert_eq!(turn.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds group width")]
    fn fixed_rejects_oversized_jobs() {
        WorkerGroup::new("t3", 1).run_fixed(3, &|_| {});
    }

    #[test]
    fn worker_panic_resurfaces_on_submitter_and_group_survives() {
        let group = WorkerGroup::new("t4", 2);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            group.run_chunked(8, &|idx| {
                if idx == 5 {
                    panic!("chunk 5 exploded");
                }
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("chunk 5"), "unexpected payload: {msg}");
        assert!(group.panics_observed() >= 1, "panic was counted");
        // The group still works after the panic.
        let count = AtomicU64::new(0);
        group.run_chunked(8, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn panics_observed_counts_across_jobs() {
        let group = WorkerGroup::new("t8", 2);
        assert_eq!(group.panics_observed(), 0);
        for round in 0..3 {
            let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                group.run_chunked(4, &|idx| {
                    if idx == 0 {
                        panic!("round {round}");
                    }
                });
            }));
        }
        // Exactly one payload per job is counted on whichever thread ran
        // index 0; healthy jobs add nothing.
        assert_eq!(group.panics_observed(), 3);
        group.run_chunked(4, &|_| {});
        assert_eq!(group.panics_observed(), 3);
    }

    #[test]
    fn jobs_borrow_stack_data() {
        let group = WorkerGroup::new("t5", 3);
        let data: Vec<u64> = (0..1000).collect();
        let total = AtomicU64::new(0);
        group.run_chunked(10, &|idx| {
            let sum: u64 = data[idx * 100..(idx + 1) * 100].iter().sum();
            total.fetch_add(sum, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 499_500);
    }

    #[test]
    fn pool_geometry_and_thread_count() {
        let pool = WorkerPool::for_geometry(2, 3, 4);
        assert_eq!(pool.threads_per_partition(), 4);
        // 6 partition groups × 3 extra workers + host group × 3.
        assert_eq!(pool.thread_count(), 21);
        assert_eq!(pool.partition(1, 2).worker_count(), 3);
        assert_eq!(pool.host().worker_count(), 3);
    }

    #[test]
    fn current_group_take_and_restore() {
        assert!(CurrentGroup::take().is_none());
        let group = Arc::new(WorkerGroup::new("t6", 0));
        let guard = install(group.clone());
        {
            let taken = CurrentGroup::take().expect("installed");
            // While taken, a nested take sees nothing (deadlock guard).
            assert!(CurrentGroup::take().is_none());
            drop(taken);
        }
        assert!(CurrentGroup::take().is_some(), "restored after drop");
        drop(guard);
        assert!(CurrentGroup::take().is_none(), "uninstalled with guard");
    }

    #[test]
    fn parked_workers_cost_no_cpu_to_resubmit() {
        // Smoke test that repeated submits complete quickly (no respawn).
        let group = WorkerGroup::new("t7", 2);
        let start = std::time::Instant::now();
        for _ in 0..1000 {
            group.run_chunked(3, &|_| {});
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "1000 submits took {:?}",
            start.elapsed()
        );
    }
}
