//! Core identifier types and the crate-wide error enum.

use std::fmt;

pub use micsim::device::DeviceId;

/// Handle to a stream created by a [`crate::context::Context`].
///
/// Streams are numbered densely from 0 in creation order across the whole
/// context (all devices).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StreamId(pub usize);

/// Handle to a logical buffer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BufId(pub usize);

/// Handle to a recorded event.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub usize);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for BufId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Errors produced by the runtime.
#[derive(Debug)]
pub enum Error {
    /// Referenced a stream that does not exist.
    UnknownStream(StreamId),
    /// Referenced a buffer that does not exist.
    UnknownBuffer(BufId),
    /// Referenced an event that was never recorded.
    UnknownEvent(EventId),
    /// Waiting on an event in the same stream that records it (or an event
    /// recorded *after* the wait), which can never complete.
    InvalidEventWait {
        /// The waiting stream.
        stream: StreamId,
        /// The event waited on.
        event: EventId,
    },
    /// A kernel listed the same buffer in both `reads` and `writes`.
    ReadWriteConflict {
        /// Offending buffer.
        buf: BufId,
        /// Kernel label.
        kernel: String,
    },
    /// Host data length does not match the buffer's length.
    SizeMismatch {
        /// The buffer.
        buf: BufId,
        /// Buffer length in elements.
        expected: usize,
        /// Provided length in elements.
        got: usize,
    },
    /// Platform-level failure (partitioning, device memory, bad device id).
    Platform(micsim::fabric::FabricError),
    /// Configuration rejected at context build time.
    Config(String),
    /// A kernel was enqueued for native execution without a native body.
    MissingNativeBody {
        /// Kernel label.
        kernel: String,
    },
    /// A native kernel panicked; the run was aborted.
    KernelPanicked {
        /// Kernel label.
        kernel: String,
    },
    /// An injected or real fault exhausted its recovery budget.
    Fault {
        /// Where the fault fired (e.g. `"transfer s2#5"`, `"alloc b7"`).
        site: String,
        /// Attempts made before giving up (1 = no retries granted).
        attempts: u32,
    },
    /// A partition was poisoned by a kernel panic and taken out of service.
    PartitionLost {
        /// Device index of the lost partition.
        device: usize,
        /// Partition index on that device.
        partition: usize,
        /// Label of the kernel whose panic poisoned it.
        kernel: String,
    },
    /// A buffer was consumed on-device before any action produced it there.
    BufferNotProduced {
        /// The unproduced buffer.
        buf: BufId,
        /// The stream that tried to consume it.
        stream: StreamId,
    },
    /// Kernel cost model rejected a launch (e.g. an empty partition).
    Compute(micsim::compute::ComputeError),
    /// The static analyzer found error-severity defects (deadlocks, races,
    /// dangling references); the full report is attached. See
    /// [`crate::check`] and
    /// [`CheckMode`](crate::check::CheckMode) for the opt-out knob.
    Check(Box<crate::check::CheckReport>),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownStream(s) => write!(f, "unknown stream {s}"),
            Error::UnknownBuffer(b) => write!(f, "unknown buffer {b}"),
            Error::UnknownEvent(e) => write!(f, "unknown event {e}"),
            Error::InvalidEventWait { stream, event } => {
                write!(
                    f,
                    "stream {stream} waits on event {event} it cannot observe"
                )
            }
            Error::ReadWriteConflict { buf, kernel } => {
                write!(
                    f,
                    "kernel {kernel:?} lists buffer {buf} as both read and write"
                )
            }
            Error::SizeMismatch { buf, expected, got } => {
                write!(f, "buffer {buf} holds {expected} elements, data has {got}")
            }
            Error::Platform(e) => write!(f, "platform error: {e}"),
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::MissingNativeBody { kernel } => {
                write!(
                    f,
                    "kernel {kernel:?} has no native body; cannot run on the native executor"
                )
            }
            Error::KernelPanicked { kernel } => {
                write!(f, "kernel {kernel:?} panicked during native execution")
            }
            Error::Fault { site, attempts } => {
                write!(
                    f,
                    "fault at {site} not recovered after {attempts} attempt(s)"
                )
            }
            Error::PartitionLost {
                device,
                partition,
                kernel,
            } => {
                write!(
                    f,
                    "partition {partition} on device {device} lost to a panic in kernel {kernel:?}"
                )
            }
            Error::BufferNotProduced { buf, stream } => {
                write!(
                    f,
                    "stream {stream} consumes buffer {buf} before any action produced it"
                )
            }
            Error::Compute(e) => write!(f, "compute model error: {e}"),
            Error::Check(report) => {
                write!(f, "static check rejected the program: {}", report.summary())
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Platform(e) => Some(e),
            Error::Compute(e) => Some(e),
            _ => None,
        }
    }
}

impl From<micsim::fabric::FabricError> for Error {
    fn from(e: micsim::fabric::FabricError) -> Self {
        Error::Platform(e)
    }
}

impl From<micsim::compute::ComputeError> for Error {
    fn from(e: micsim::compute::ComputeError) -> Self {
        Error::Compute(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_compactly() {
        assert_eq!(StreamId(3).to_string(), "s3");
        assert_eq!(BufId(0).to_string(), "b0");
        assert_eq!(EventId(12).to_string(), "e12");
    }

    #[test]
    fn errors_format_usefully() {
        let e = Error::SizeMismatch {
            buf: BufId(2),
            expected: 10,
            got: 7,
        };
        let msg = e.to_string();
        assert!(msg.contains("b2") && msg.contains("10") && msg.contains('7'));

        let e = Error::InvalidEventWait {
            stream: StreamId(1),
            event: EventId(4),
        };
        assert!(e.to_string().contains("s1"));
    }

    #[test]
    fn fault_errors_format_usefully() {
        let e = Error::Fault {
            site: "transfer s2#5".into(),
            attempts: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("transfer s2#5") && msg.contains('4'));

        let e = Error::PartitionLost {
            device: 0,
            partition: 3,
            kernel: "gemm".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("partition 3") && msg.contains("gemm"));

        let e = Error::BufferNotProduced {
            buf: BufId(7),
            stream: StreamId(1),
        };
        let msg = e.to_string();
        assert!(msg.contains("b7") && msg.contains("s1"));
    }

    #[test]
    fn compute_errors_convert_with_source() {
        let ce = micsim::compute::ComputeError::EmptyPartition { kernel: "k".into() };
        let e: Error = ce.into();
        assert!(matches!(e, Error::Compute(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("empty partition"));
    }

    #[test]
    fn platform_errors_convert() {
        let fe = micsim::fabric::FabricError::NoSuchDevice(DeviceId(9));
        let e: Error = fe.into();
        assert!(matches!(e, Error::Platform(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
