//! Logical buffers.
//!
//! A [`Buffer`] is a named, fixed-length array of `f32` with a host copy and
//! (conceptually) one instance in each device's memory. The simulator
//! executor only uses the byte size; the native executor materializes both
//! copies and really moves the bytes through its copy engine.
//!
//! Buffers are allocated at *tile granularity* by applications: one logical
//! buffer per tile, so different streams can write different tiles without
//! aliasing (the native executor locks whole buffers).
//!
//! Storage is **lazy**: a freshly allocated buffer holds no bytes until it
//! is first written or a native run materializes it. Simulator-only
//! programs can therefore describe multi-gigabyte device datasets without
//! allocating them on the host.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::types::{BufId, Error, Result};

/// Element type of all buffers (the paper's workloads are single-precision).
pub type Elem = f32;

/// Bytes per element.
pub const ELEM_BYTES: u64 = std::mem::size_of::<Elem>() as u64;

/// One logical buffer.
pub struct Buffer {
    /// The handle.
    pub id: BufId,
    /// Debug name.
    pub name: String,
    /// Length in elements.
    pub len: usize,
    /// Host-side storage.
    pub host: Arc<RwLock<Vec<Elem>>>,
    /// Device-side storage (materialized by the native executor; the sim
    /// executor tracks only capacity in `micsim`'s device memory).
    pub device: Arc<RwLock<Vec<Elem>>>,
}

impl Buffer {
    /// Create a logically zero-filled buffer (storage is lazy).
    pub fn new(id: BufId, name: impl Into<String>, len: usize) -> Buffer {
        Buffer {
            id,
            name: name.into(),
            len,
            host: Arc::new(RwLock::new(Vec::new())),
            device: Arc::new(RwLock::new(Vec::new())),
        }
    }

    /// Materialize both copies (zero-filled) if they are still lazy. The
    /// native executor calls this for every buffer its program touches.
    pub fn ensure_materialized(&self) {
        for side in [&self.host, &self.device] {
            let mut guard = side.write();
            if guard.len() != self.len {
                guard.resize(self.len, 0.0);
            }
        }
    }

    /// Size in bytes (what a transfer of this buffer moves).
    pub fn bytes(&self) -> u64 {
        self.len as u64 * ELEM_BYTES
    }

    /// Overwrite the host copy.
    pub fn write_host(&self, data: &[Elem]) -> Result<()> {
        if data.len() != self.len {
            return Err(Error::SizeMismatch {
                buf: self.id,
                expected: self.len,
                got: data.len(),
            });
        }
        let mut host = self.host.write();
        if host.len() != self.len {
            host.resize(self.len, 0.0);
        }
        host.copy_from_slice(data);
        Ok(())
    }

    /// Clone the host copy out (zeros if never written or transferred).
    pub fn read_host(&self) -> Vec<Elem> {
        let host = self.host.read();
        if host.len() == self.len {
            host.clone()
        } else {
            vec![0.0; self.len]
        }
    }

    /// Read the host copy through a closure without cloning. A still-lazy
    /// buffer is materialized first so the closure always sees `len`
    /// elements.
    pub fn with_host<R>(&self, f: impl FnOnce(&[Elem]) -> R) -> R {
        {
            let host = self.host.read();
            if host.len() == self.len {
                return f(&host);
            }
        }
        self.ensure_materialized();
        f(&self.host.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_buffer_is_logically_zero_but_lazy() {
        let b = Buffer::new(BufId(0), "a", 4);
        assert_eq!(b.read_host(), vec![0.0; 4]);
        assert_eq!(b.device.read().len(), 0, "no storage until materialized");
        assert_eq!(b.bytes(), 16);
        b.ensure_materialized();
        assert_eq!(b.device.read().len(), 4);
        assert_eq!(b.host.read().len(), 4);
        // Idempotent.
        b.ensure_materialized();
        assert_eq!(b.host.read().len(), 4);
    }

    #[test]
    fn with_host_materializes_lazily() {
        let b = Buffer::new(BufId(9), "lazy", 3);
        assert_eq!(b.with_host(<[f32]>::len), 3);
        assert_eq!(b.with_host(|h| h.iter().sum::<f32>()), 0.0);
    }

    #[test]
    fn write_and_read_host() {
        let b = Buffer::new(BufId(1), "a", 3);
        b.write_host(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(b.read_host(), vec![1.0, 2.0, 3.0]);
        assert_eq!(b.with_host(|h| h.iter().sum::<f32>()), 6.0);
    }

    #[test]
    fn write_host_length_checked() {
        let b = Buffer::new(BufId(2), "a", 3);
        assert!(matches!(
            b.write_host(&[1.0]),
            Err(Error::SizeMismatch {
                expected: 3,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn zero_length_buffer_is_legal() {
        let b = Buffer::new(BufId(3), "empty", 0);
        assert_eq!(b.bytes(), 0);
        b.write_host(&[]).unwrap();
        assert!(b.read_host().is_empty());
    }
}
