//! Deterministic fault injection and the recovery policy knobs.
//!
//! The platform the paper evaluates — a Xeon Phi over PCIe — is exactly the
//! kind of accelerator where transfers stall, partitions underperform, and
//! offloaded kernels die. A [`FaultPlan`] lets tests and benches inject
//! those pathologies into **both** executors from one seed:
//!
//! * **transfer failures** — a transfer's first `k` attempts fail; the
//!   native executor retries with backoff under a [`RetryPolicy`], the sim
//!   executor prices the failed attempts and backoffs on the link;
//! * **transfer slowdowns** — a transfer's bandwidth term is stretched;
//! * **kernel panics** — a kernel dies on launch; with partition isolation
//!   on, only its partition is poisoned and the skipped work is replayed on
//!   the survivors (see `Context::run_native_resilient`);
//! * **slow partitions** — every kernel on a `(device, partition)` pair
//!   runs a factor slower;
//! * **allocation failures** — materializing a device buffer fails, typed
//!   as [`Error::Fault`](crate::types::Error) before the run starts.
//!
//! Every decision is a pure function of `(seed, site)` through
//! [`micsim::fault::FaultDie`] — no wall clock, no shared RNG state — so
//! the same plan fails the same program in the same places on every run and
//! every thread interleaving. Sites can also be **forced** explicitly
//! (`fail_transfer_at`, `panic_kernel_at`, ...) for tests that need a fault
//! at one exact action.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use micsim::fault::FaultDie;

// Site tags keep the per-fault-kind hash streams independent.
const TAG_TRANSFER_FAIL: u64 = 0x51;
const TAG_TRANSFER_SLOW: u64 = 0x52;
const TAG_KERNEL_PANIC: u64 = 0x53;
const TAG_ALLOC_FAIL: u64 = 0x54;

/// A seeded, deterministic description of what to break. See module docs.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    die: FaultDie,
    transfer_fail_rate: f64,
    transfer_fail_attempts: u32,
    transfer_slow_rate: f64,
    transfer_slow_factor: f64,
    kernel_panic_rate: f64,
    alloc_fail_rate: f64,
    slow_partitions: Vec<(usize, usize, f64)>,
    forced_transfer_sites: BTreeSet<(usize, usize)>,
    forced_panic_sites: BTreeSet<(usize, usize)>,
    forced_alloc_sites: BTreeSet<usize>,
}

impl FaultPlan {
    /// A plan that injects nothing until configured, rolling its dice under
    /// `seed`.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            die: FaultDie::new(seed),
            transfer_fail_rate: 0.0,
            transfer_fail_attempts: 1,
            transfer_slow_rate: 0.0,
            transfer_slow_factor: 1.0,
            kernel_panic_rate: 0.0,
            alloc_fail_rate: 0.0,
            slow_partitions: Vec::new(),
            forced_transfer_sites: BTreeSet::new(),
            forced_panic_sites: BTreeSet::new(),
            forced_alloc_sites: BTreeSet::new(),
        }
    }

    /// The seed this plan rolls under.
    pub fn seed(&self) -> u64 {
        self.die.seed()
    }

    /// Fail each transfer with probability `rate`; a failing transfer's
    /// first `attempts` tries all fail before it succeeds (so with a retry
    /// budget `>= attempts` the run recovers, below it the transfer faults
    /// out).
    pub fn transfer_failures(mut self, rate: f64, attempts: u32) -> FaultPlan {
        self.transfer_fail_rate = rate;
        self.transfer_fail_attempts = attempts.max(1);
        self
    }

    /// Force the transfer at `(stream, action_index)` to fail its first
    /// `attempts` tries (independent of the rate-based dice).
    pub fn fail_transfer_at(mut self, stream: usize, action_index: usize) -> FaultPlan {
        self.forced_transfer_sites.insert((stream, action_index));
        self
    }

    /// Stretch each transfer's bandwidth term by `factor` with probability
    /// `rate` (a congested link).
    pub fn transfer_slowdowns(mut self, rate: f64, factor: f64) -> FaultPlan {
        self.transfer_slow_rate = rate;
        self.transfer_slow_factor = factor.max(1.0);
        self
    }

    /// Panic each kernel launch with probability `rate`.
    pub fn kernel_panics(mut self, rate: f64) -> FaultPlan {
        self.kernel_panic_rate = rate;
        self
    }

    /// Force the kernel at `(stream, action_index)` to panic.
    pub fn panic_kernel_at(mut self, stream: usize, action_index: usize) -> FaultPlan {
        self.forced_panic_sites.insert((stream, action_index));
        self
    }

    /// Fail each device-buffer materialization with probability `rate`.
    pub fn alloc_failures(mut self, rate: f64) -> FaultPlan {
        self.alloc_fail_rate = rate;
        self
    }

    /// Force materialization of buffer index `buf` to fail.
    pub fn fail_alloc(mut self, buf: usize) -> FaultPlan {
        self.forced_alloc_sites.insert(buf);
        self
    }

    /// Make every kernel on `(device, partition)` run `factor`× slower — an
    /// underperforming partition (thermal throttling, a straggling core).
    pub fn slow_partition(mut self, device: usize, partition: usize, factor: f64) -> FaultPlan {
        self.slow_partitions
            .push((device, partition, factor.max(1.0)));
        self
    }

    // ----- decisions (pure per-site functions) -----------------------------

    /// How many leading attempts of the transfer at `(stream, action_index)`
    /// fail (0 = healthy).
    pub fn transfer_fail_attempts(&self, stream: usize, action_index: usize) -> u32 {
        if self.forced_transfer_sites.contains(&(stream, action_index)) {
            return self.transfer_fail_attempts;
        }
        let site = [TAG_TRANSFER_FAIL, stream as u64, action_index as u64];
        if self.die.hits(&site, self.transfer_fail_rate) {
            self.transfer_fail_attempts
        } else {
            0
        }
    }

    /// Bandwidth-stretch factor for the transfer at `(stream,
    /// action_index)` (1.0 = healthy).
    pub fn transfer_slowdown(&self, stream: usize, action_index: usize) -> f64 {
        let site = [TAG_TRANSFER_SLOW, stream as u64, action_index as u64];
        if self.die.hits(&site, self.transfer_slow_rate) {
            self.transfer_slow_factor
        } else {
            1.0
        }
    }

    /// Whether the kernel at `(stream, action_index)` is injected to panic.
    pub fn kernel_panics_at(&self, stream: usize, action_index: usize) -> bool {
        if self.forced_panic_sites.contains(&(stream, action_index)) {
            return true;
        }
        let site = [TAG_KERNEL_PANIC, stream as u64, action_index as u64];
        self.die.hits(&site, self.kernel_panic_rate)
    }

    /// Whether materializing buffer index `buf` fails.
    pub fn alloc_fails(&self, buf: usize) -> bool {
        if self.forced_alloc_sites.contains(&buf) {
            return true;
        }
        self.die
            .hits(&[TAG_ALLOC_FAIL, buf as u64], self.alloc_fail_rate)
    }

    /// Slowdown factor for kernels on `(device, partition)` (1.0 = healthy).
    pub fn partition_slowdown(&self, device: usize, partition: usize) -> f64 {
        self.slow_partitions
            .iter()
            .filter(|&&(d, p, _)| d == device && p == partition)
            .map(|&(_, _, f)| f)
            .fold(1.0, f64::max)
    }
}

/// Retry-with-backoff policy for failed transfers on the native executor
/// (and the pricing the sim executor gives the same recovery).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt before the transfer faults out.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff: Duration,
    /// Multiplier applied to the backoff per further retry.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff: Duration::from_micros(50),
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (0-based), capped at 100 ms so a
    /// chaos run cannot stall unboundedly.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        let secs = self.backoff.as_secs_f64() * self.multiplier.powi(retry.min(32) as i32);
        Duration::from_secs_f64(secs.min(0.1))
    }
}

/// Fault-path totals for one native run (or a whole resilient run, where
/// the passes' counters are accumulated). Mirrored into
/// [`NativeCounters`](crate::trace::NativeCounters) on traced runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transfer retry attempts performed (backoff + resubmit).
    pub transfer_retries: u64,
    /// Transfers that exhausted their retry budget.
    pub transfers_failed: u64,
    /// Kernel panics injected by the fault plan.
    pub injected_kernel_panics: u64,
    /// Kernel panics observed in total (injected + real).
    pub kernel_panics: u64,
    /// Partitions poisoned by a kernel panic under isolation.
    pub lost_partitions: u64,
    /// Actions skipped because their partition was poisoned or their data
    /// was tainted by skipped upstream work.
    pub skipped_actions: u64,
    /// Device-buffer materializations failed by the fault plan.
    pub alloc_faults: u64,
    /// Degraded (replay) passes a resilient run needed.
    pub degraded_runs: u64,
    /// Actions re-executed on surviving partitions by replay passes.
    pub replayed_actions: u64,
}

impl FaultCounters {
    /// Accumulate another pass's counters into this one.
    pub fn absorb(&mut self, other: &FaultCounters) {
        self.transfer_retries += other.transfer_retries;
        self.transfers_failed += other.transfers_failed;
        self.injected_kernel_panics += other.injected_kernel_panics;
        self.kernel_panics += other.kernel_panics;
        self.lost_partitions += other.lost_partitions;
        self.skipped_actions += other.skipped_actions;
        self.alloc_faults += other.alloc_faults;
        self.degraded_runs += other.degraded_runs;
        self.replayed_actions += other.replayed_actions;
    }
}

/// What a degraded native run left behind: which partitions were lost, which
/// actions were skipped (in a replay-valid order), and the pass's fault
/// counters. Stored on the [`Context`](crate::context::Context) by a failed
/// isolated run and consumed by `run_native_resilient` to build the replay.
#[derive(Clone, Debug, Default)]
pub struct RecoveryState {
    /// `(device, partition, kernel label)` for each partition poisoned by a
    /// kernel panic.
    pub lost: Vec<(usize, usize, String)>,
    /// `(stream index, action index)` of every skipped action, in an order
    /// that respects the program's happens-before edges (taint is published
    /// before the skipping stream fires its events, and consumers skip only
    /// after waiting on those events — so observed skip order is a valid
    /// replay order).
    pub skipped: Vec<(usize, usize)>,
    /// Counters of the failing pass.
    pub faults: FaultCounters,
}

/// Outcome of [`Context::run_native_resilient`](crate::context::Context):
/// the final (successful) pass's report plus the fault totals accumulated
/// across every pass.
#[derive(Debug)]
pub struct ResilientReport {
    /// Report of the last (clean) pass.
    pub report: crate::executor::native::NativeReport,
    /// Fault counters accumulated over the initial run and all replays.
    pub faults: FaultCounters,
    /// Partitions lost across the whole resilient run.
    pub lost_partitions: Vec<(usize, usize, String)>,
}

impl ResilientReport {
    /// Replay passes the run needed (0 = the first pass was clean).
    pub fn degraded_runs(&self) -> u64 {
        self.faults.degraded_runs
    }

    /// Actions re-executed on surviving partitions.
    pub fn replayed_actions(&self) -> u64 {
        self.faults.replayed_actions
    }
}

/// Atomic accumulator the concurrent stream drivers tally into; snapshotted
/// into a [`FaultCounters`] when the run finishes.
#[derive(Debug, Default)]
pub(crate) struct FaultTallies {
    pub(crate) transfer_retries: AtomicU64,
    pub(crate) transfers_failed: AtomicU64,
    pub(crate) injected_kernel_panics: AtomicU64,
    pub(crate) kernel_panics: AtomicU64,
    pub(crate) lost_partitions: AtomicU64,
    pub(crate) skipped_actions: AtomicU64,
    pub(crate) alloc_faults: AtomicU64,
}

impl FaultTallies {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> FaultCounters {
        FaultCounters {
            transfer_retries: self.transfer_retries.load(Ordering::Relaxed),
            transfers_failed: self.transfers_failed.load(Ordering::Relaxed),
            injected_kernel_panics: self.injected_kernel_panics.load(Ordering::Relaxed),
            kernel_panics: self.kernel_panics.load(Ordering::Relaxed),
            lost_partitions: self.lost_partitions.load(Ordering::Relaxed),
            skipped_actions: self.skipped_actions.load(Ordering::Relaxed),
            alloc_faults: self.alloc_faults.load(Ordering::Relaxed),
            degraded_runs: 0,
            replayed_actions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::seeded(11)
            .transfer_failures(0.3, 2)
            .kernel_panics(0.1);
        let b = FaultPlan::seeded(11)
            .transfer_failures(0.3, 2)
            .kernel_panics(0.1);
        for s in 0..8 {
            for i in 0..64 {
                assert_eq!(
                    a.transfer_fail_attempts(s, i),
                    b.transfer_fail_attempts(s, i)
                );
                assert_eq!(a.kernel_panics_at(s, i), b.kernel_panics_at(s, i));
            }
        }
    }

    #[test]
    fn forced_sites_always_fire() {
        let plan = FaultPlan::seeded(0)
            .transfer_failures(0.0, 3)
            .fail_transfer_at(2, 5)
            .panic_kernel_at(1, 1)
            .fail_alloc(7);
        assert_eq!(plan.transfer_fail_attempts(2, 5), 3);
        assert_eq!(plan.transfer_fail_attempts(2, 4), 0);
        assert!(plan.kernel_panics_at(1, 1));
        assert!(!plan.kernel_panics_at(1, 2));
        assert!(plan.alloc_fails(7));
        assert!(!plan.alloc_fails(6));
    }

    #[test]
    fn rates_hit_roughly_proportionally() {
        let plan = FaultPlan::seeded(3).transfer_failures(0.25, 1);
        let hits = (0..4000)
            .filter(|&i| plan.transfer_fail_attempts(0, i) > 0)
            .count();
        let frac = hits as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.03, "fail rate {frac}");
    }

    #[test]
    fn partition_slowdown_takes_the_worst_factor() {
        let plan = FaultPlan::seeded(0)
            .slow_partition(0, 1, 2.0)
            .slow_partition(0, 1, 3.0)
            .slow_partition(0, 2, 1.5);
        assert_eq!(plan.partition_slowdown(0, 1), 3.0);
        assert_eq!(plan.partition_slowdown(0, 2), 1.5);
        assert_eq!(plan.partition_slowdown(0, 0), 1.0);
        assert_eq!(plan.partition_slowdown(1, 1), 1.0);
    }

    #[test]
    fn backoff_grows_geometrically_and_caps() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_for(0), Duration::from_micros(50));
        assert_eq!(r.backoff_for(1), Duration::from_micros(100));
        assert!(r.backoff_for(63) <= Duration::from_millis(100));
    }

    #[test]
    fn counters_absorb_adds_fields() {
        let mut a = FaultCounters {
            transfer_retries: 2,
            ..FaultCounters::default()
        };
        let b = FaultCounters {
            transfer_retries: 3,
            lost_partitions: 1,
            ..FaultCounters::default()
        };
        a.absorb(&b);
        assert_eq!(a.transfer_retries, 5);
        assert_eq!(a.lost_partitions, 1);
    }

    #[test]
    fn tallies_snapshot_roundtrip() {
        let t = FaultTallies::default();
        FaultTallies::bump(&t.transfer_retries);
        FaultTallies::bump(&t.transfer_retries);
        FaultTallies::bump(&t.kernel_panics);
        let snap = t.snapshot();
        assert_eq!(snap.transfer_retries, 2);
        assert_eq!(snap.kernel_panics, 1);
        assert_eq!(snap.lost_partitions, 0);
    }
}
