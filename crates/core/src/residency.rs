//! Multi-card data-residency tracking.
//!
//! On a platform with several cards, each card has its own memory: a tile
//! produced on card 0 must be transferred again before card 1 can read it
//! (the paper's Sec. VI observation that multi-MIC runs "need to transfer
//! more data blocks"). This module captures the bookkeeping every
//! distributed application needs:
//!
//! * which `(buffer, card)` pairs hold a current copy, and the event that
//!   fires when that copy is ready;
//! * demand-driven **mirroring**: when a consumer stream's card lacks a
//!   copy, enqueue the extra H2D on the consumer's own stream (FIFO gives
//!   local ordering) after waiting on the producer's event;
//! * single-writer invalidation: a new version on one card invalidates all
//!   other copies.
//!
//! The Cholesky application drives its whole tile DAG through this type;
//! see `mic_apps::cholesky`.
//!
//! The tracker assumes the program has no write-after-read hazards (a
//! buffer version that is read concurrently is never overwritten later) —
//! true for producer/consumer tile DAGs like CF and MM. Programs that
//! rewrite buffers that other streams still read must order those reads
//! with explicit events or barriers.

use std::collections::HashMap;

use crate::context::Context;
use crate::types::{BufId, Error, EventId, Result, StreamId};

/// Tracks, per `(buffer, card)`, the stream holding the current copy and
/// the event marking its readiness.
#[derive(Debug, Default)]
pub struct ResidencyTracker {
    ready: HashMap<(BufId, usize), (StreamId, EventId)>,
}

impl ResidencyTracker {
    /// Fresh tracker (nothing resident anywhere).
    ///
    /// ```
    /// use hstreams::{Context, ResidencyTracker};
    /// use micsim::PlatformConfig;
    /// let mut ctx = Context::builder(PlatformConfig::phi_31sp_multi(2))
    ///     .partitions(1)
    ///     .build()?;
    /// let mut tracker = ResidencyTracker::new();
    /// let buf = ctx.alloc("tile", 1024);
    /// let (s0, s1) = (ctx.stream(0)?, ctx.stream(1)?); // different cards
    /// ctx.h2d(s0, buf)?;
    /// tracker.produced(&mut ctx, buf, s0)?;
    /// // Reading from the other card mirrors the tile there.
    /// tracker.ensure_readable(&mut ctx, buf, s1)?;
    /// assert_eq!(tracker.copies(), 2);
    /// # Ok::<(), hstreams::Error>(())
    /// ```
    pub fn new() -> ResidencyTracker {
        ResidencyTracker::default()
    }

    /// Number of live `(buffer, card)` copies.
    pub fn copies(&self) -> usize {
        self.ready.len()
    }

    /// Whether `buf` has a current copy on `stream`'s card.
    pub fn resident_on(&self, ctx: &Context, buf: BufId, stream: StreamId) -> Result<bool> {
        let dev = ctx.placement(stream)?.device.0;
        Ok(self.ready.contains_key(&(buf, dev)))
    }

    /// Record that `stream` just produced a new version of `buf` (enqueue a
    /// `record_event` and invalidate all other cards' copies). Call this
    /// right after the producing action.
    pub fn produced(&mut self, ctx: &mut Context, buf: BufId, stream: StreamId) -> Result<EventId> {
        let e = ctx.record_event(stream)?;
        let dev = ctx.placement(stream)?.device.0;
        self.ready.retain(|&(b, _), _| b != buf);
        self.ready.insert((buf, dev), (stream, e));
        Ok(e)
    }

    /// Make `buf` readable from `stream`: wait on the producing event if it
    /// lives on another stream of the same card, or mirror it with an extra
    /// H2D if it only exists on another card.
    ///
    /// # Errors
    /// Returns [`Error::BufferNotProduced`] if `buf` was never
    /// [`produced`](Self::produced) — consuming a buffer before any producer
    /// is a program bug, reported as a typed error so tile generators (and
    /// the tuner driving them) can surface it instead of crashing.
    pub fn ensure_readable(
        &mut self,
        ctx: &mut Context,
        buf: BufId,
        stream: StreamId,
    ) -> Result<()> {
        let dev = ctx.placement(stream)?.device.0;
        if let Some(&(owner, e)) = self.ready.get(&(buf, dev)) {
            if owner != stream {
                ctx.wait_event(stream, e)?;
            }
            return Ok(());
        }
        // Not resident on this card: mirror from a resident copy. The
        // source is chosen deterministically (lowest owning stream id) —
        // HashMap iteration order varies between processes and would make
        // multi-card timelines nondeterministic.
        let src = self
            .ready
            .iter()
            .filter(|((b, _), _)| *b == buf)
            .map(|(_, &(owner, e))| (owner, e))
            .min_by_key(|&(owner, _)| owner)
            .ok_or(Error::BufferNotProduced { buf, stream })?;
        if src.0 != stream {
            ctx.wait_event(stream, src.1)?;
        }
        ctx.h2d(stream, buf)?;
        let e = ctx.record_event(stream)?;
        self.ready.insert((buf, dev), (stream, e));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelDesc;
    use micsim::compute::KernelProfile;
    use micsim::PlatformConfig;

    fn prof() -> KernelProfile {
        KernelProfile::streaming("k", 1e9)
    }

    #[test]
    fn same_card_consumers_wait_on_events_only() {
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let mut tracker = ResidencyTracker::new();
        let b = ctx.alloc("b", 8);
        let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
        ctx.h2d(s0, b).unwrap();
        tracker.produced(&mut ctx, b, s0).unwrap();
        let actions_before = ctx.program().action_count();
        tracker.ensure_readable(&mut ctx, b, s1).unwrap();
        // One wait action, no extra transfer.
        assert_eq!(ctx.program().action_count(), actions_before + 1);
        assert_eq!(tracker.copies(), 1);
        assert!(tracker.resident_on(&ctx, b, s0).unwrap());
    }

    #[test]
    fn cross_card_consumers_trigger_a_mirror() {
        let mut ctx = Context::builder(PlatformConfig::phi_31sp_multi(2))
            .partitions(1)
            .build()
            .unwrap();
        let mut tracker = ResidencyTracker::new();
        let b = ctx.alloc("b", 1 << 20);
        let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
        assert_ne!(
            ctx.placement(s0).unwrap().device,
            ctx.placement(s1).unwrap().device
        );
        ctx.h2d(s0, b).unwrap();
        tracker.produced(&mut ctx, b, s0).unwrap();
        tracker.ensure_readable(&mut ctx, b, s1).unwrap();
        assert_eq!(tracker.copies(), 2, "a mirror copy now exists");
        // A second consumer on card 1 must NOT mirror again.
        let before = ctx.program().action_count();
        tracker.ensure_readable(&mut ctx, b, s1).unwrap();
        assert_eq!(ctx.program().action_count(), before, "same stream: free");
        // The program simulates: mirror transfer shows up on card 1's link.
        let report = ctx.run_sim().unwrap();
        let transfers = report
            .timeline
            .records
            .iter()
            .filter(|r| r.label.starts_with("h2d"))
            .count();
        assert_eq!(transfers, 2, "original + mirror");
    }

    #[test]
    fn new_version_invalidates_other_cards() {
        let mut ctx = Context::builder(PlatformConfig::phi_31sp_multi(2))
            .partitions(1)
            .build()
            .unwrap();
        let mut tracker = ResidencyTracker::new();
        let b = ctx.alloc("b", 64);
        let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
        ctx.h2d(s0, b).unwrap();
        tracker.produced(&mut ctx, b, s0).unwrap();
        tracker.ensure_readable(&mut ctx, b, s1).unwrap();
        assert_eq!(tracker.copies(), 2);
        // Card 1 writes a new version.
        ctx.kernel(s1, KernelDesc::simulated("w", prof(), 1.0).writing([b]))
            .unwrap();
        tracker.produced(&mut ctx, b, s1).unwrap();
        assert_eq!(tracker.copies(), 1, "card 0's copy is stale");
        // Card 0 reading again needs a fresh mirror.
        let before = ctx.program().action_count();
        tracker.ensure_readable(&mut ctx, b, s0).unwrap();
        assert!(ctx.program().action_count() > before);
        assert_eq!(tracker.copies(), 2);
    }

    #[test]
    fn consuming_unproduced_buffer_is_a_typed_error() {
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(1)
            .build()
            .unwrap();
        let mut tracker = ResidencyTracker::new();
        let b = ctx.alloc("b", 8);
        let s0 = ctx.stream(0).unwrap();
        let err = tracker.ensure_readable(&mut ctx, b, s0).unwrap_err();
        assert!(
            matches!(err, Error::BufferNotProduced { buf, stream } if buf == b && stream == s0),
            "{err}"
        );
        // The program is untouched: no half-recorded wait/transfer.
        assert_eq!(ctx.program().action_count(), 0);
        assert_eq!(tracker.copies(), 0);
    }
}
