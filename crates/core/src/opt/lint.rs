//! Advisory performance lints derived from the optimizer's analyses.
//!
//! These are `Severity::Warning` findings in the [`CheckClass::Perf`]
//! class, deliberately **not** part of [`analyze`](crate::check::analyze):
//! they never affect enforcement, and the exact-count expectations of the
//! core analyzer's tests stay untouched. Render the report with
//! [`Program::dump_annotated`](crate::program::Program::dump_annotated).

use std::time::Instant;

use crate::action::Action;
use crate::check::{analyze, CheckClass, CheckCode, CheckEnv, CheckReport, Diagnostic, Site};
use crate::program::Program;
use crate::sched::CostModel;

use super::elide;

/// Cap on serialized-overlap pair diagnostics, mirroring the race
/// reporter's per-group cap: the first few sites localize the problem,
/// the rest is noise.
const MAX_SERIALIZED_PAIRS: usize = 4;

/// Run the advisory performance lints on `program`.
///
/// * `redundant-sync` — waits the HB transitive reduction can elide, and
///   barriers implied by existing event edges (one finding per wait site
///   / per barrier, with the recording site related where applicable);
/// * `starved-partitions` — the program statically leaves partitions idle
///   (`T < P`, the paper's starvation class): fewer busy placements than
///   the environment provides;
/// * `serialized-overlap` — transfer/kernel pairs in different streams
///   that touch no common buffer yet are HB-ordered: the sync that orders
///   them costs overlap without adding safety.
///
/// `model` enables cost-weighted messages (how many seconds of transfer
/// the serialization hides); pass `None` to lint without a platform.
#[must_use]
pub fn lint(program: &Program, env: &CheckEnv, model: Option<&CostModel>) -> CheckReport {
    let t0 = Instant::now();
    let mut report = CheckReport::default();
    let analysis = analyze(program, env);
    if !analysis.report.is_clean() {
        // Perf advice on a refused program would point at sites the user
        // must change anyway; report nothing.
        report.stats.elapsed = t0.elapsed();
        return report;
    }

    // Over-synchronization: exactly what sync elision would remove.
    let optimized = elide::optimize(program, env);
    for &w in &optimized.report.elided_waits {
        let recorded_at = wait_record_site(program, w);
        report.push(Diagnostic {
            code: CheckCode::RedundantSync,
            site: w,
            related: recorded_at.into_iter().collect(),
            message: "wait is implied by existing happens-before edges; eliding it costs nothing"
                .to_string(),
        });
    }
    for &r in &optimized.report.elided_records {
        report.push(Diagnostic {
            code: CheckCode::RedundantSync,
            site: r,
            related: Vec::new(),
            message: "event is never awaited once redundant waits are elided".to_string(),
        });
    }
    if optimized.report.elided_barriers > 0 {
        let site = program
            .streams
            .iter()
            .enumerate()
            .find_map(|(si, s)| {
                s.actions
                    .iter()
                    .position(|a| matches!(a, Action::Barrier(_)))
                    .map(|ai| Site::new(si, ai))
            })
            .unwrap_or(Site::new(0, 0));
        report.push(Diagnostic {
            code: CheckCode::RedundantSync,
            site,
            related: Vec::new(),
            message: format!(
                "{} barrier(s) are implied by existing event edges",
                optimized.report.elided_barriers
            ),
        });
    }

    // T < P starvation: busy placements vs the environment's partitions.
    let busy: std::collections::BTreeSet<(usize, usize)> = program
        .streams
        .iter()
        .filter(|s| s.actions.iter().any(super::is_payload))
        .map(|s| (s.placement.device.0, s.placement.partition))
        .collect();
    let provided = env.devices.max(1) * env.partitions;
    if !busy.is_empty() && busy.len() < provided {
        report.push(Diagnostic {
            code: CheckCode::StarvedPartitions,
            site: Site::new(0, 0),
            related: Vec::new(),
            message: format!(
                "work reaches {} of {} partitions; the rest are statically idle (T < P)",
                busy.len(),
                provided
            ),
        });
    }

    // Serialized transfer/kernel pairs that could overlap: HB-ordered,
    // cross-stream, no shared buffer.
    let mut pairs = 0usize;
    let mut emitted = 0usize;
    for (si, s) in program.streams.iter().enumerate() {
        for (ai, a) in s.actions.iter().enumerate() {
            let Action::Transfer { buf, .. } = a else {
                continue;
            };
            let t = Site::new(si, ai);
            for (sj, sk) in program.streams.iter().enumerate() {
                if sj == si {
                    continue;
                }
                for (aj, b) in sk.actions.iter().enumerate() {
                    let Action::Kernel(desc) = b else { continue };
                    let k = Site::new(sj, aj);
                    let ordered = analysis.happens_before(t, k) || analysis.happens_before(k, t);
                    let independent = !desc.reads.contains(buf) && !desc.writes.contains(buf);
                    if ordered && independent {
                        pairs += 1;
                        if emitted < MAX_SERIALIZED_PAIRS {
                            emitted += 1;
                            let cost = model
                                .and_then(|m| {
                                    m.action_seconds(a, s.placement.device.0, s.placement.partition)
                                })
                                .map(|secs| format!(" ({:.1} us of transfer)", secs * 1e6))
                                .unwrap_or_default();
                            report.push(Diagnostic {
                                code: CheckCode::SerializedOverlap,
                                site: t,
                                related: vec![k],
                                message: format!(
                                    "transfer is serialized against an independent kernel{cost}; \
                                     the ordering adds no safety"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    if pairs > emitted {
        report.push(Diagnostic {
            code: CheckCode::SerializedOverlap,
            site: Site::new(0, 0),
            related: Vec::new(),
            message: format!(
                "{} more serialized transfer/kernel pair(s) not shown",
                pairs - emitted
            ),
        });
    }

    debug_assert!(report
        .diagnostics
        .iter()
        .all(|d| d.class() == CheckClass::Perf));
    report.stats.actions = program.action_count();
    report.stats.elapsed = t0.elapsed();
    report.finish();
    report
}

/// The recording site of the event a wait at `w` references.
fn wait_record_site(program: &Program, w: Site) -> Option<Site> {
    let a = program
        .streams
        .get(w.stream.0)?
        .actions
        .get(w.action_index)?;
    let Action::WaitEvent(e) = a else { return None };
    let site = program.events.get(e.0)?;
    Some(Site::new(site.stream.0, site.action_index))
}
