//! Sync elision: HB transitive reduction with an equivalence certificate.
//!
//! Three passes run to a joint fixpoint, each provably closure-preserving
//! over payload actions:
//!
//! 1. **Redundant waits.** A `WaitEvent` is an edge `record → wait` in the
//!    HB graph; it is redundant exactly when `record` still reaches `wait`
//!    with that one edge filtered out. Removing a transitively-implied
//!    edge leaves the closure untouched, so this is the classical
//!    transitive reduction, applied one wait at a time (two waits can be
//!    mutually redundant — removing both would lose an edge, so the scan
//!    restarts after every removal).
//! 2. **Dead records.** A `RecordEvent` nobody waits on (possibly because
//!    pass 1 just removed its last waiter) orders nothing; removing it
//!    bridges its FIFO neighbors and leaves the payload closure intact.
//! 3. **Implied barriers.** A barrier is removed when a trial program
//!    without it still analyzes clean and has the *same* payload closure —
//!    the all-to-all ordering it enforced was already implied by event
//!    edges (or by another barrier, which collapses adjacent barriers).
//!
//! The passes only ever delete control actions, so the payload of every
//! stream is untouched by construction; [`certify`] re-derives that plus
//! closure equality from the two programs alone, making the certificate
//! independent of the transformation that produced it.

use std::time::Instant;

use crate::action::Action;
use crate::check::{analyze, collect_accesses, CheckEnv, Site};
use crate::check::{HbEdges, HbGraph};
use crate::program::Program;
use crate::types::{EventId, StreamId};

use super::is_payload;

/// Machine-checkable evidence that an optimized program is equivalent to
/// the original it was derived from. Produced by [`optimize`]; can be
/// re-derived from the two programs with [`certify`].
#[derive(Clone, Debug)]
pub struct Certificate {
    /// The input analyzed clean (elision only runs on clean programs).
    pub original_clean: bool,
    /// The output re-analyzes clean under the same environment.
    pub optimized_clean: bool,
    /// Every stream's payload action sequence (labels + buffer sets, in
    /// order) is byte-for-byte the one it started with.
    pub payload_preserved: bool,
    /// Ordered payload pairs whose happens-before orientation was
    /// compared between the two programs.
    pub payload_pairs: usize,
    /// The happens-before closure over payload actions is identical —
    /// which subsumes the conflicting pairs below.
    pub closure_preserved: bool,
    /// Conflicting pairs (same buffer, same memory space, at least one
    /// write) explicitly re-checked pair-by-pair.
    pub conflict_pairs: usize,
    /// Every conflicting pair kept its orientation.
    pub conflicts_preserved: bool,
}

impl Certificate {
    /// True when every obligation checked out.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.original_clean
            && self.optimized_clean
            && self.payload_preserved
            && self.closure_preserved
            && self.conflicts_preserved
    }
}

/// What one [`optimize`] run did, in the *original* program's coordinates.
#[derive(Clone, Debug, Default)]
pub struct OptReport {
    /// The input did not analyze clean (or was empty): elision refused to
    /// touch it and the output is an untouched clone.
    pub skipped: bool,
    /// Defensive fallback: the certificate failed to verify, so the
    /// transformation was discarded and the output is the original.
    pub reverted: bool,
    /// Elided `WaitEvent` sites.
    pub elided_waits: Vec<Site>,
    /// Removed dead `RecordEvent` sites.
    pub elided_records: Vec<Site>,
    /// Barrier ids removed (each removal deletes one action per stream).
    pub elided_barriers: usize,
    /// The equivalence evidence, absent when `skipped`.
    pub certificate: Option<Certificate>,
    /// Analyzer + optimizer wall time, microseconds.
    pub elapsed_us: u64,
    /// `site_map[stream][original index]` = index in the optimized
    /// program, `None` for elided actions.
    site_map: Vec<Vec<Option<usize>>>,
}

impl OptReport {
    /// Total actions removed from the program.
    #[must_use]
    pub fn elided_actions(&self) -> usize {
        self.site_map
            .iter()
            .flatten()
            .filter(|m| m.is_none())
            .count()
    }

    /// Translate an original-coordinates site into the optimized program;
    /// `None` when the action was elided or the site is out of range.
    #[must_use]
    pub fn map_site(&self, site: Site) -> Option<Site> {
        let idx = (*self.site_map.get(site.stream.0)?.get(site.action_index)?)?;
        Some(Site::new(site.stream.0, idx))
    }
}

/// An optimized program together with the report describing how it was
/// derived.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The (possibly) transformed program.
    pub program: Program,
    /// What was elided, and the equivalence certificate.
    pub report: OptReport,
}

/// Per-stream map from current action indices back to original ones,
/// maintained across removals so the final report speaks original
/// coordinates.
struct Edits {
    cur_to_orig: Vec<Vec<usize>>,
    orig_len: Vec<usize>,
}

impl Edits {
    fn new(p: &Program) -> Edits {
        Edits {
            cur_to_orig: p
                .streams
                .iter()
                .map(|s| (0..s.actions.len()).collect())
                .collect(),
            orig_len: p.streams.iter().map(|s| s.actions.len()).collect(),
        }
    }

    /// Record the removal of the action currently at `(si, ai)`, returning
    /// its original site.
    fn removed(&mut self, si: usize, ai: usize) -> Site {
        Site::new(si, self.cur_to_orig[si].remove(ai))
    }

    fn site_map(&self) -> Vec<Vec<Option<usize>>> {
        self.orig_len
            .iter()
            .zip(&self.cur_to_orig)
            .map(|(&n, kept)| {
                let mut m = vec![None; n];
                for (cur, &orig) in kept.iter().enumerate() {
                    m[orig] = Some(cur);
                }
                m
            })
            .collect()
    }
}

/// Run sync elision on `program`. Non-clean (or empty) programs come back
/// untouched with [`OptReport::skipped`] set — the optimizer never papers
/// over a program the analyzer would refuse. If the certificate somehow
/// fails to verify, the transformation is discarded
/// ([`OptReport::reverted`]) rather than shipped unproven.
#[must_use]
pub fn optimize(program: &Program, env: &CheckEnv) -> Optimized {
    let t0 = Instant::now();
    let original = analyze(program, env);
    let elapsed_us = |t: Instant| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
    // Untouched outputs still carry an identity site map, so `map_site`
    // is total: callers translating coordinates (e.g. fault injection
    // sites) need not care whether elision actually ran.
    let identity = || Edits::new(program).site_map();
    if !original.report.is_clean() || program.streams.is_empty() {
        return Optimized {
            program: program.clone(),
            report: OptReport {
                skipped: true,
                elapsed_us: elapsed_us(t0),
                site_map: identity(),
                ..OptReport::default()
            },
        };
    }

    let base_closure = payload_closure(program).expect("clean program is acyclic");
    let mut cur = program.clone();
    let mut edits = Edits::new(program);
    let mut elided_waits = Vec::new();
    let mut elided_records = Vec::new();
    let mut elided_barriers = 0usize;

    // Pass 1: transitive reduction over event edges, one wait at a time.
    while let Some((si, ai)) = find_redundant_wait(&cur) {
        cur.remove_action(StreamId(si), ai);
        elided_waits.push(edits.removed(si, ai));
    }

    // Pass 2: records with no remaining waiters.
    while let Some(e) = find_dead_record(&cur) {
        let site = cur.events[e.0];
        let (si, ai) = (site.stream.0, site.action_index);
        cur.remove_event(e);
        elided_records.push(edits.removed(si, ai));
    }

    // Pass 3: barriers whose all-to-all ordering is already implied.
    // Removing one can make its neighbor removable, so scan to fixpoint.
    'barriers: loop {
        for n in 0..cur.barriers {
            let mut trial = cur.clone();
            let removed = remove_barrier(&mut trial, n);
            let trial_ok = analyze(&trial, env).report.is_clean()
                && payload_closure(&trial).as_ref() == Some(&base_closure);
            if trial_ok {
                let removed_now = remove_barrier(&mut cur, n);
                debug_assert_eq!(removed, removed_now);
                for &(si, ai) in removed_now.iter().rev() {
                    // Reverse order keeps earlier indices valid... they are
                    // in distinct streams, so order is immaterial; reverse
                    // only for symmetry with the collection order.
                    edits.removed(si, ai);
                }
                elided_barriers += 1;
                continue 'barriers;
            }
        }
        break;
    }

    let certificate = certify(program, &cur, env);
    if !certificate.holds() {
        return Optimized {
            program: program.clone(),
            report: OptReport {
                reverted: true,
                certificate: Some(certificate),
                elapsed_us: elapsed_us(t0),
                site_map: identity(),
                ..OptReport::default()
            },
        };
    }
    Optimized {
        program: cur,
        report: OptReport {
            skipped: false,
            reverted: false,
            elided_waits,
            elided_records,
            elided_barriers,
            certificate: Some(certificate),
            elapsed_us: elapsed_us(t0),
            site_map: edits.site_map(),
        },
    }
}

/// Check the equivalence obligations between `original` and `optimized`
/// under `env`, independent of how `optimized` was produced.
#[must_use]
pub fn certify(original: &Program, optimized: &Program, env: &CheckEnv) -> Certificate {
    let a_orig = analyze(original, env);
    let a_opt = analyze(optimized, env);
    let original_clean = a_orig.report.is_clean();
    let optimized_clean = a_opt.report.is_clean();

    let payload_preserved = original.streams.len() == optimized.streams.len()
        && original
            .streams
            .iter()
            .zip(&optimized.streams)
            .all(|(so, sn)| {
                so.placement == sn.placement
                    && payload_keys(&so.actions).eq(payload_keys(&sn.actions))
            });

    let co = payload_closure(original);
    let cn = payload_closure(optimized);
    let payload_pairs = co.as_ref().map_or(0, |c| c.matrix.len());
    let closure_preserved = match (&co, &cn) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    };

    // Explicit conflicting-pair re-check: every pair of accesses to the
    // same (buffer, space) with at least one write must keep its
    // orientation. Identified by payload ordinal, which control-only edits
    // cannot shift.
    let (mut conflict_pairs, mut conflicts_preserved) = (0usize, true);
    if payload_preserved {
        let ord_orig = payload_ordinals(original);
        let by_ordinal: Vec<Vec<usize>> = payload_sites(optimized);
        let groups = collect_accesses(original);
        for accesses in groups.values() {
            for (i, a) in accesses.iter().enumerate() {
                for b in &accesses[i + 1..] {
                    if !a.write && !b.write {
                        continue;
                    }
                    conflict_pairs += 1;
                    let (sa, sb) = (a.site, b.site);
                    let oa = ord_orig[sa.stream.0][sa.action_index];
                    let ob = ord_orig[sb.stream.0][sb.action_index];
                    let na = Site::new(sa.stream.0, by_ordinal[sa.stream.0][oa]);
                    let nb = Site::new(sb.stream.0, by_ordinal[sb.stream.0][ob]);
                    let before = (a_orig.happens_before(sa, sb), a_orig.happens_before(sb, sa));
                    let after = (a_opt.happens_before(na, nb), a_opt.happens_before(nb, na));
                    if before != after {
                        conflicts_preserved = false;
                    }
                }
            }
        }
    } else {
        conflicts_preserved = false;
    }

    Certificate {
        original_clean,
        optimized_clean,
        payload_preserved,
        payload_pairs,
        closure_preserved,
        conflict_pairs,
        conflicts_preserved,
    }
}

/// The comparable identity of a stream's payload actions, in order.
fn payload_keys(
    actions: &[Action],
) -> impl Iterator<Item = (String, Vec<crate::types::BufId>)> + '_ {
    actions
        .iter()
        .filter(|a| is_payload(a))
        .map(|a| (a.label(), a.buffers()))
}

/// `ordinals[stream][action index]` = payload ordinal within the stream
/// (meaningless for control actions).
fn payload_ordinals(p: &Program) -> Vec<Vec<usize>> {
    p.streams
        .iter()
        .map(|s| {
            let mut next = 0usize;
            s.actions
                .iter()
                .map(|a| {
                    let o = next;
                    if is_payload(a) {
                        next += 1;
                    }
                    o
                })
                .collect()
        })
        .collect()
}

/// `sites[stream][payload ordinal]` = action index.
fn payload_sites(p: &Program) -> Vec<Vec<usize>> {
    p.streams
        .iter()
        .map(|s| {
            s.actions
                .iter()
                .enumerate()
                .filter(|(_, a)| is_payload(a))
                .map(|(i, _)| i)
                .collect()
        })
        .collect()
}

/// Happens-before closure restricted to payload actions. The matrix is
/// indexed by global payload ordinal pairs; `None` for cyclic graphs.
#[derive(PartialEq)]
struct PayloadClosure {
    /// Payload count per stream, to guard against shape drift.
    shape: Vec<usize>,
    matrix: Vec<bool>,
}

fn payload_closure(p: &Program) -> Option<PayloadClosure> {
    let hb = HbGraph::build(p);
    if hb.cycle().is_some() {
        return None;
    }
    let sites: Vec<Site> = p
        .streams
        .iter()
        .enumerate()
        .flat_map(|(si, s)| {
            s.actions
                .iter()
                .enumerate()
                .filter(|(_, a)| is_payload(a))
                .map(move |(ai, _)| Site::new(si, ai))
        })
        .collect();
    let n = sites.len();
    let mut matrix = vec![false; n * n];
    for (i, &a) in sites.iter().enumerate() {
        for (j, &b) in sites.iter().enumerate() {
            if i != j {
                matrix[i * n + j] = hb.happens_before(a, b);
            }
        }
    }
    Some(PayloadClosure {
        shape: payload_sites(p).iter().map(Vec::len).collect(),
        matrix,
    })
}

/// First wait (in stream, then program order) whose record still reaches
/// it with the direct event edge filtered out.
fn find_redundant_wait(p: &Program) -> Option<(usize, usize)> {
    let edges = HbEdges::build(p);
    for (si, s) in p.streams.iter().enumerate() {
        for (ai, a) in s.actions.iter().enumerate() {
            if let Action::WaitEvent(e) = a {
                let Some(site) = p.events.get(e.0) else {
                    continue;
                };
                let vr = edges.offsets[site.stream.0] + site.action_index;
                let vw = edges.offsets[si] + ai;
                if reaches_without_direct_edge(&edges, vr, vw) {
                    return Some((si, ai));
                }
            }
        }
    }
    None
}

/// Reverse reachability `vr →* vw` skipping the direct edge `vr → vw`.
/// The direct edge is the event edge; the FIFO predecessor is same-stream
/// and `validate()` forbids self-waits, so filtering `vr` from `vw`'s
/// predecessor list removes exactly that one edge.
fn reaches_without_direct_edge(edges: &HbEdges, vr: usize, vw: usize) -> bool {
    let mut seen = vec![false; edges.nodes];
    let mut stack: Vec<usize> = edges.preds[vw]
        .iter()
        .map(|&x| x as usize)
        .filter(|&x| x != vr)
        .collect();
    while let Some(v) = stack.pop() {
        if v == vr {
            return true;
        }
        if !seen[v] {
            seen[v] = true;
            stack.extend(edges.preds[v].iter().map(|&x| x as usize));
        }
    }
    false
}

/// First event no stream waits on.
fn find_dead_record(p: &Program) -> Option<EventId> {
    let mut waited = vec![false; p.events.len()];
    for s in &p.streams {
        for a in &s.actions {
            if let Action::WaitEvent(e) = a {
                if let Some(w) = waited.get_mut(e.0) {
                    *w = true;
                }
            }
        }
    }
    waited.iter().position(|&w| !w).map(EventId)
}

/// Remove barrier `n` from every stream, renumber the rest, and return
/// the removed `(stream, action index)` sites in stream order.
fn remove_barrier(p: &mut Program, n: usize) -> Vec<(usize, usize)> {
    let mut removed = Vec::new();
    for si in 0..p.streams.len() {
        if let Some(ai) = p.streams[si]
            .actions
            .iter()
            .position(|a| matches!(a, Action::Barrier(m) if *m == n))
        {
            p.remove_action(StreamId(si), ai);
            removed.push((si, ai));
        }
    }
    for s in &mut p.streams {
        for a in &mut s.actions {
            if let Action::Barrier(m) = a {
                if *m > n {
                    *m -= 1;
                }
            }
        }
    }
    p.barriers -= 1;
    removed
}
