//! Static cost analysis: interval bounds and a sound makespan lower bound.
//!
//! Prices come from [`CostModel`], which uses the exact per-action
//! formulas the simulator charges (wire + enqueue for transfers, the
//! SMT-scaling compute model for kernels). The simulator's dependency
//! edges are a superset of the HB edges (it adds resource serialization),
//! its control tasks are free or positively priced (barrier sync
//! overhead), and every lane (a link channel, a partition, the host, a
//! stream's FIFO) is a serial resource — so both bounds below hold
//! against any simulated execution of the program:
//!
//! * **critical path**: the longest HB chain, weighted by action cost;
//! * **lane load**: the busiest serial resource's total assigned work.

use std::collections::BTreeMap;

use crate::action::Action;
use crate::check::HbEdges;
use crate::check::{analyze, CheckEnv, Site};
use crate::program::Program;
use crate::sched::CostModel;

use super::is_payload;

/// Static interval bounds for one stream.
#[derive(Clone, Debug)]
pub struct StreamBound {
    /// Stream index.
    pub stream: usize,
    /// Sum of the stream's own action costs — its serial floor.
    pub busy_seconds: f64,
    /// Earliest the stream's last action can finish: the longest HB path
    /// ending at it.
    pub finish_seconds: f64,
}

/// The static cost profile of a program; see [`static_cost`].
#[derive(Clone, Debug)]
pub struct StaticCost {
    /// Per-stream interval bounds.
    pub per_stream: Vec<StreamBound>,
    /// Longest cost-weighted happens-before chain.
    pub critical_path_seconds: f64,
    /// Busiest serial lane (link channel / partition / host / stream).
    pub lane_bound_seconds: f64,
    /// `max(critical path, lane bound)` — a sound lower bound on the
    /// simulated makespan.
    pub makespan_lower_bound: f64,
    /// Total transfer seconds across the program.
    pub transfer_seconds: f64,
    /// Total kernel seconds across the program.
    pub kernel_seconds: f64,
    /// Fraction of transfer time that is HB-concurrent with at least one
    /// kernel of another stream — the statically overlappable ("hidden")
    /// share. An estimate, not a bound: resource contention can still
    /// serialize statically-concurrent work.
    pub hidden_fraction_estimate: f64,
}

/// Price `program` statically under `model` and `env`. `None` when the HB
/// graph is cyclic (the analyzer would reject the program) or a kernel
/// cannot be priced on its recorded placement.
#[must_use]
pub fn static_cost(program: &Program, model: &CostModel, env: &CheckEnv) -> Option<StaticCost> {
    let edges = HbEdges::build(program);
    let n_streams = program.streams.len();

    // Per-node weights from the recorded placements.
    let mut weight = vec![0.0f64; edges.nodes];
    let mut transfer_seconds = 0.0;
    let mut kernel_seconds = 0.0;
    for (si, s) in program.streams.iter().enumerate() {
        for (ai, a) in s.actions.iter().enumerate() {
            let w = model.action_seconds(a, s.placement.device.0, s.placement.partition)?;
            weight[edges.offsets[si] + ai] = w;
            match a {
                Action::Transfer { .. } => transfer_seconds += w,
                Action::Kernel(_) => kernel_seconds += w,
                _ => {}
            }
        }
    }

    // Forward pass in topological order: earliest finish per node.
    let mut indeg = vec![0u32; edges.nodes];
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); edges.nodes];
    for (v, ps) in edges.preds.iter().enumerate() {
        indeg[v] = u32::try_from(ps.len()).ok()?;
        for &p in ps {
            succs[p as usize].push(u32::try_from(v).ok()?);
        }
    }
    let mut queue: Vec<usize> = (0..edges.nodes).filter(|&v| indeg[v] == 0).collect();
    let mut finish = vec![0.0f64; edges.nodes];
    let mut done = 0usize;
    while let Some(v) = queue.pop() {
        done += 1;
        let f = edges.preds[v]
            .iter()
            .map(|&p| finish[p as usize])
            .fold(0.0f64, f64::max)
            + weight[v];
        finish[v] = f;
        for &s in &succs[v] {
            let s = s as usize;
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
    }
    if done != edges.nodes {
        return None; // cyclic
    }
    let critical_path_seconds = finish.iter().copied().fold(0.0f64, f64::max);

    // Serial-lane load: every resource the simulator serializes on.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    enum Lane {
        Link(usize, usize),
        Partition(usize, usize),
        Host,
        Stream(usize),
    }
    let mut lanes: BTreeMap<Lane, f64> = BTreeMap::new();
    let mut per_stream = Vec::with_capacity(n_streams);
    for (si, s) in program.streams.iter().enumerate() {
        let mut busy = 0.0f64;
        for (ai, a) in s.actions.iter().enumerate() {
            let w = weight[edges.offsets[si] + ai];
            busy += w;
            let lane = match a {
                Action::Transfer { dir, .. } => {
                    Some(Lane::Link(s.placement.device.0, model.channel_for(*dir)))
                }
                Action::Kernel(k) if k.host => Some(Lane::Host),
                Action::Kernel(_) => {
                    Some(Lane::Partition(s.placement.device.0, s.placement.partition))
                }
                _ => None,
            };
            if let Some(lane) = lane {
                *lanes.entry(lane).or_insert(0.0) += w;
            }
        }
        *lanes.entry(Lane::Stream(si)).or_insert(0.0) += busy;
        let finish_seconds = if s.actions.is_empty() {
            0.0
        } else {
            finish[edges.offsets[si] + s.actions.len() - 1]
        };
        per_stream.push(StreamBound {
            stream: si,
            busy_seconds: busy,
            finish_seconds,
        });
    }
    let lane_bound_seconds = lanes.values().copied().fold(0.0f64, f64::max);

    // Hidden-fraction estimate needs pairwise concurrency — reuse the
    // analyzer's clock matrix.
    let analysis = analyze(program, env);
    let mut hidden = 0.0f64;
    for (si, s) in program.streams.iter().enumerate() {
        for (ai, a) in s.actions.iter().enumerate() {
            if !matches!(a, Action::Transfer { .. }) {
                continue;
            }
            let t = Site::new(si, ai);
            let overlappable = program.streams.iter().enumerate().any(|(sj, sk)| {
                sj != si
                    && sk.actions.iter().enumerate().any(|(aj, b)| {
                        matches!(b, Action::Kernel(_))
                            && is_payload(b)
                            && analysis.concurrent(t, Site::new(sj, aj))
                    })
            });
            if overlappable {
                hidden += weight[edges.offsets[si] + ai];
            }
        }
    }
    let hidden_fraction_estimate = if transfer_seconds > 0.0 {
        hidden / transfer_seconds
    } else {
        0.0
    };

    Some(StaticCost {
        per_stream,
        critical_path_seconds,
        lane_bound_seconds,
        makespan_lower_bound: critical_path_seconds.max(lane_bound_seconds),
        transfer_seconds,
        kernel_seconds,
        hidden_fraction_estimate,
    })
}
