//! Static optimization passes over the [`Program`](crate::program::Program) IR.
//!
//! The paper's streamed speedups come entirely from *overlap* — transfers
//! hidden behind kernels — and overlap is destroyed by over-synchronization:
//! waits, records, and barriers whose ordering is already implied by other
//! happens-before edges serialize work without adding any safety. The
//! analyzer ([`crate::check`]) rejects programs with *missing* sync; this
//! module handles the dual failure mode:
//!
//! * [`optimize`] — **sync elision**: an HB transitive reduction over the
//!   analyzer's vector-clock graph that removes redundant `WaitEvent`s,
//!   dead `RecordEvent`s, and barriers implied by existing event edges.
//!   Every run emits a machine-checkable [`Certificate`]: the optimized
//!   program re-analyzes clean and its happens-before closure over
//!   payload actions (transfers and kernels) — in particular over every
//!   *conflicting* pair — is identical to the original's.
//! * [`static_cost`] — **static cost analysis** on the same graph, priced
//!   by [`sched::CostModel`](crate::sched::CostModel): per-stream busy and
//!   finish bounds, a critical-path / lane-load makespan lower bound that
//!   is sound against the simulator (the model prices actions with the
//!   exact formulas the simulator executes, and the simulator's dependency
//!   edges are a superset of the HB edges), and a static estimate of the
//!   hidden (overlappable) transfer fraction.
//! * [`lint`] — **advisory diagnostics** built from both: redundant sync
//!   sites, statically-detectable `T < P` partition starvation, and
//!   transfer/kernel pairs serialized by sync that could overlap. These
//!   are [`Severity::Warning`](crate::check::Severity::Warning) findings
//!   in the [`CheckClass::Perf`](crate::check::CheckClass::Perf) class,
//!   kept out of [`analyze`](crate::check::analyze) so enforcement
//!   semantics never change; render them with
//!   [`Program::dump_annotated`](crate::program::Program::dump_annotated).
//!
//! Opt-in wiring: [`ContextBuilder::optimize`](crate::context::ContextBuilder::optimize)
//! makes [`Context::install_program`](crate::context::Context::install_program)
//! elide on install (the serve layer's post-merge path), and
//! [`Context::apply_optimizer`](crate::context::Context::apply_optimizer)
//! elides an incrementally recorded program in place (the tuner's path).

mod cost;
mod elide;
mod lint;

pub use cost::{static_cost, StaticCost, StreamBound};
pub use elide::{certify, optimize, Certificate, OptReport, Optimized};
pub use lint::lint;

use crate::action::Action;

/// Payload actions are the ones that move data or compute — everything
/// the optimizer must preserve, as opposed to the control actions
/// (records, waits, barriers) it is allowed to remove.
pub(crate) fn is_payload(a: &Action) -> bool {
    matches!(a, Action::Transfer { .. } | Action::Kernel(_))
}
