//! The recorded program: streams, their action queues, and events.
//!
//! A [`Context`](crate::context::Context) records user calls into a
//! `Program` — an executor-independent intermediate representation. Both
//! executors interpret the same `Program`, which is what guarantees the
//! simulator and the native backend agree on ordering semantics.

use micsim::device::DeviceId;

use crate::action::Action;
use crate::types::{Error, EventId, Result, StreamId};

/// Where a stream runs: which card and which partition on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamPlacement {
    /// The card.
    pub device: DeviceId,
    /// Partition index within that card's plan.
    pub partition: usize,
}

/// One stream: a FIFO queue of actions bound to a placement.
#[derive(Clone, Debug)]
pub struct StreamRecord {
    /// The stream's id.
    pub id: StreamId,
    /// Where it executes.
    pub placement: StreamPlacement,
    /// Enqueued actions, in FIFO order.
    pub actions: Vec<Action>,
}

/// Where an event is recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventSite {
    /// Stream that records the event.
    pub stream: StreamId,
    /// Index of the `RecordEvent` action within that stream.
    pub action_index: usize,
}

/// A fully recorded streamed program.
///
/// `Clone` exists so
/// [`Context::run_native_resilient`](crate::context::Context::run_native_resilient)
/// can swap in a replay program and restore the original afterwards.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// All streams, indexed by `StreamId.0`.
    pub streams: Vec<StreamRecord>,
    /// Recording site of each event, indexed by `EventId.0`.
    pub events: Vec<EventSite>,
    /// Number of barriers recorded.
    pub barriers: usize,
}

impl Program {
    /// Total number of enqueued actions across all streams.
    pub fn action_count(&self) -> usize {
        self.streams.iter().map(|s| s.actions.len()).sum()
    }

    /// Streams placed on `device`.
    pub fn streams_on(&self, device: DeviceId) -> impl Iterator<Item = &StreamRecord> {
        self.streams
            .iter()
            .filter(move |s| s.placement.device == device)
    }

    /// Distinct devices used by the program, ascending.
    pub fn devices(&self) -> Vec<DeviceId> {
        let mut devs: Vec<DeviceId> = self.streams.iter().map(|s| s.placement.device).collect();
        devs.sort_unstable();
        devs.dedup();
        devs
    }

    /// Render a human-readable listing of the program, one block per
    /// stream — the runtime's analogue of a disassembly, used in debugging
    /// and docs.
    pub fn dump(&self) -> String {
        self.render(None)
    }

    /// Like [`Program::dump`], but with each analyzer finding interleaved
    /// under its offending action line, compiler-style:
    ///
    /// ```text
    /// stream s1 @ dev0#p1 (2 actions)
    ///   [  0] wait e1
    ///         ^ error[deadlock-cycle]: cross-stream wait cycle: ...
    /// ```
    ///
    /// Pass the report from [`analyze`](crate::check::analyze) (or
    /// [`Context::analyze`](crate::context::Context::analyze)) over this
    /// same program.
    pub fn dump_annotated(&self, report: &crate::check::CheckReport) -> String {
        self.render(Some(report))
    }

    /// Like [`Program::dump`], but with each scheduled action's chosen
    /// placement interleaved under its line — where a non-FIFO
    /// [`Schedule`](crate::sched::Schedule) put it, when it is estimated to
    /// run, and whether it was moved off its recorded partition:
    ///
    /// ```text
    /// stream s0 @ mic0#p0 (2 actions)
    ///   [  0] h2d b0
    ///         -> mic0.link0 @ 0.000..0.351 ms
    ///   [  1] kernel tile0
    ///         -> mic0.p2 @ 0.351..1.204 ms (stolen)
    /// ```
    ///
    /// Pass the schedule from [`crate::sched::plan`] (or
    /// [`Context::plan_schedule`](crate::context::Context::plan_schedule))
    /// over this same program. Control actions (events, barriers) carry no
    /// placement — the schedule's dependence edges subsume them.
    pub fn dump_scheduled(&self, schedule: &crate::sched::Schedule) -> String {
        let mut out = format!(
            "schedule: {} (est. makespan {:.3} ms, {} steal(s))\n",
            schedule.kind,
            schedule.makespan * 1e3,
            schedule.steals
        );
        for s in &self.streams {
            out.push_str(&format!(
                "stream {} @ {}#p{} ({} actions)\n",
                s.id,
                s.placement.device,
                s.placement.partition,
                s.actions.len()
            ));
            for (i, a) in s.actions.iter().enumerate() {
                out.push_str(&format!("  [{i:>3}] {}\n", a.label()));
                let site = crate::check::Site::new(s.id.0, i);
                if let Some(task) = schedule.tasks.iter().find(|t| t.site == site) {
                    out.push_str(&format!(
                        "        -> {} @ {:.3}..{:.3} ms{}\n",
                        task.lane,
                        task.start * 1e3,
                        task.finish * 1e3,
                        if task.stolen { " (stolen)" } else { "" }
                    ));
                }
            }
        }
        out.push_str(&format!(
            "{} streams, {} actions scheduled onto {} lane(s)\n",
            self.streams.len(),
            schedule.tasks.len(),
            {
                let mut lanes: Vec<_> = schedule.tasks.iter().map(|t| t.lane).collect();
                lanes.sort_unstable();
                lanes.dedup();
                lanes.len()
            }
        ));
        out
    }

    fn render(&self, report: Option<&crate::check::CheckReport>) -> String {
        use std::collections::HashMap;
        let mut notes: HashMap<(usize, usize), Vec<&crate::check::Diagnostic>> = HashMap::new();
        if let Some(r) = report {
            for d in &r.diagnostics {
                notes
                    .entry((d.site.stream.0, d.site.action_index))
                    .or_default()
                    .push(d);
            }
        }
        let mut out = String::new();
        for (si, s) in self.streams.iter().enumerate() {
            out.push_str(&format!(
                "stream {} @ {}#p{} ({} actions)\n",
                s.id,
                s.placement.device,
                s.placement.partition,
                s.actions.len()
            ));
            for (i, a) in s.actions.iter().enumerate() {
                out.push_str(&format!("  [{i:>3}] {}\n", a.label()));
                // Diagnostic sites index streams by *position* (the
                // analyzer enumerates), not by declared id — the two
                // differ for relocated tenant parts, where ids are
                // rebased into merged coordinates. Key the lookup the
                // same way the sites were built.
                if let Some(ds) = notes.get(&(si, i)) {
                    for d in ds {
                        out.push_str(&format!("        ^ {}\n", d.render()));
                    }
                }
            }
        }
        out.push_str(&format!(
            "{} streams, {} actions, {} events, {} barriers\n",
            self.streams.len(),
            self.action_count(),
            self.events.len(),
            self.barriers
        ));
        if let Some(r) = report {
            out.push_str(&format!(
                "check: {} error(s), {} warning(s)\n",
                r.error_count(),
                r.warnings().count()
            ));
        }
        out
    }

    // ----- mutation-safe editing -------------------------------------------
    //
    // The fuzzer and the test tooling edit recorded programs structurally.
    // The invariant these accessors preserve is the events table: every
    // `EventSite` keeps pointing at its `RecordEvent` action as actions
    // shift around it, and removing a record cascades to its waits so the
    // program never references a dangling event. Barrier completeness
    // (`validate()`'s all-streams rule) is the caller's to maintain —
    // barriers are a whole-program construct, not a per-stream edit.

    /// Re-point event sites in `stream` after an insertion (`delta = +1`)
    /// or removal (`delta = -1`) at `index`. For removals the site *at*
    /// `index` must already be gone from the table.
    fn shift_event_sites(&mut self, stream: StreamId, index: usize, delta: isize) {
        for site in &mut self.events {
            let moved = site.stream == stream
                && if delta > 0 {
                    site.action_index >= index
                } else {
                    site.action_index > index
                };
            if moved {
                site.action_index = site.action_index.wrapping_add_signed(delta);
            }
        }
    }

    /// Insert `action` at `index` in `stream`'s queue, keeping the events
    /// table pointing at the right sites.
    ///
    /// # Panics
    /// On an out-of-range stream or index (like `Vec::insert`), and on a
    /// [`Action::RecordEvent`] — records allocate table entries, use
    /// [`Program::insert_record_event`]. A `WaitEvent` is fine here; it is
    /// the caller's job that the event exists (`validate()` checks).
    pub fn insert_action(&mut self, stream: StreamId, index: usize, action: Action) {
        assert!(
            !matches!(action, Action::RecordEvent(_)),
            "insert RecordEvent via Program::insert_record_event"
        );
        self.shift_event_sites(stream, index, 1);
        self.streams[stream.0].actions.insert(index, action);
    }

    /// Insert a fresh `RecordEvent` at `index` in `stream`'s queue and
    /// register it in the events table. Returns the new event's id.
    ///
    /// # Panics
    /// On an out-of-range stream or index.
    pub fn insert_record_event(&mut self, stream: StreamId, index: usize) -> EventId {
        let event = EventId(self.events.len());
        self.shift_event_sites(stream, index, 1);
        self.streams[stream.0]
            .actions
            .insert(index, Action::RecordEvent(event));
        self.events.push(EventSite {
            stream,
            action_index: index,
        });
        event
    }

    /// Remove the action at `index` in `stream` and return it, keeping the
    /// events table consistent. Removing a `RecordEvent` **cascades**: every
    /// `WaitEvent` on it (in any stream) is removed too, the event leaves
    /// the table, and higher event ids are renumbered down — so the result
    /// still satisfies `validate()`'s event rules.
    ///
    /// # Panics
    /// On an out-of-range stream or index (like `Vec::remove`).
    pub fn remove_action(&mut self, stream: StreamId, index: usize) -> Action {
        let removed = self.streams[stream.0].actions.remove(index);
        if let Action::RecordEvent(e) = removed {
            // The record's own site leaves the table before the shift so
            // `shift_event_sites`'s strict `>` never misses it.
            self.events.remove(e.0);
            self.shift_event_sites(stream, index, -1);
            // Cascade: drop every wait on the now-gone event.
            for si in 0..self.streams.len() {
                let mut ai = 0;
                while ai < self.streams[si].actions.len() {
                    if matches!(self.streams[si].actions[ai], Action::WaitEvent(x) if x == e) {
                        self.streams[si].actions.remove(ai);
                        self.shift_event_sites(StreamId(si), ai, -1);
                    } else {
                        ai += 1;
                    }
                }
            }
            // Renumber the ids above the removed slot.
            for s in &mut self.streams {
                for a in &mut s.actions {
                    if let Action::RecordEvent(x) | Action::WaitEvent(x) = a {
                        if x.0 > e.0 {
                            x.0 -= 1;
                        }
                    }
                }
            }
        } else {
            self.shift_event_sites(stream, index, -1);
        }
        removed
    }

    /// Remove event `e` entirely: its `RecordEvent`, every wait on it, and
    /// its table entry (with renumbering) — [`Program::remove_action`] at
    /// the record site.
    ///
    /// # Panics
    /// On an unknown event id.
    pub fn remove_event(&mut self, e: EventId) -> Action {
        let site = self.events[e.0];
        self.remove_action(site.stream, site.action_index)
    }

    /// Re-home `stream` onto `placement`. Pure metadata — the action queue
    /// and events are untouched.
    ///
    /// # Panics
    /// On an out-of-range stream.
    pub fn set_placement(&mut self, stream: StreamId, placement: StreamPlacement) {
        self.streams[stream.0].placement = placement;
    }

    /// Validate cross-stream structure:
    ///
    /// * every `WaitEvent` references a recorded event;
    /// * no stream waits on an event it records itself (deadlock);
    /// * every kernel's read/write sets are disjoint;
    /// * every stream contains the same barrier sequence `0..barriers`
    ///   (the context API enforces this by construction; executors rely
    ///   on it for their barrier implementations).
    pub fn validate(&self) -> Result<()> {
        for s in &self.streams {
            let mut barrier_cursor = 0usize;
            for action in &s.actions {
                match action {
                    Action::WaitEvent(e) => {
                        let site = self.events.get(e.0).ok_or(Error::UnknownEvent(*e))?;
                        if site.stream == s.id {
                            return Err(Error::InvalidEventWait {
                                stream: s.id,
                                event: *e,
                            });
                        }
                    }
                    Action::RecordEvent(e) => {
                        if self.events.get(e.0).is_none() {
                            return Err(Error::UnknownEvent(*e));
                        }
                    }
                    Action::Kernel(k) => k.validate()?,
                    Action::Barrier(n) => {
                        if *n != barrier_cursor {
                            return Err(Error::Config(format!(
                                "stream {} sees barrier #{n}, expected #{barrier_cursor}",
                                s.id
                            )));
                        }
                        barrier_cursor += 1;
                    }
                    Action::Transfer { .. } => {}
                }
            }
            if barrier_cursor != self.barriers {
                return Err(Error::Config(format!(
                    "stream {} participates in {barrier_cursor} of {} barriers",
                    s.id, self.barriers
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::types::EventId;
    use micsim::pcie::Direction;

    fn stream(id: usize, actions: Vec<Action>) -> StreamRecord {
        StreamRecord {
            id: StreamId(id),
            placement: StreamPlacement {
                device: DeviceId(0),
                partition: id,
            },
            actions,
        }
    }

    #[test]
    fn counting_and_device_queries() {
        let mut p = Program::default();
        p.streams.push(stream(
            0,
            vec![Action::Transfer {
                dir: Direction::HostToDevice,
                buf: crate::types::BufId(0),
            }],
        ));
        p.streams.push(StreamRecord {
            id: StreamId(1),
            placement: StreamPlacement {
                device: DeviceId(1),
                partition: 0,
            },
            actions: vec![],
        });
        assert_eq!(p.action_count(), 1);
        assert_eq!(p.devices(), vec![DeviceId(0), DeviceId(1)]);
        assert_eq!(p.streams_on(DeviceId(0)).count(), 1);
    }

    #[test]
    fn dump_lists_streams_and_actions() {
        let mut p = Program::default();
        p.streams.push(stream(
            0,
            vec![
                Action::Transfer {
                    dir: Direction::HostToDevice,
                    buf: crate::types::BufId(3),
                },
                Action::Barrier(0),
            ],
        ));
        p.barriers = 1;
        let text = p.dump();
        assert!(text.contains("stream s0"));
        assert!(text.contains("h2d b3"));
        assert!(text.contains("barrier#0"));
        assert!(text.contains("1 streams, 2 actions, 0 events, 1 barriers"));
    }

    #[test]
    fn wait_on_unknown_event_rejected() {
        let mut p = Program::default();
        p.streams
            .push(stream(0, vec![Action::WaitEvent(EventId(0))]));
        assert!(matches!(p.validate(), Err(Error::UnknownEvent(_))));
    }

    #[test]
    fn self_wait_rejected() {
        let mut p = Program::default();
        p.streams.push(stream(
            0,
            vec![
                Action::RecordEvent(EventId(0)),
                Action::WaitEvent(EventId(0)),
            ],
        ));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 0,
        });
        assert!(matches!(p.validate(), Err(Error::InvalidEventWait { .. })));
    }

    #[test]
    fn cross_stream_wait_accepted() {
        let mut p = Program::default();
        p.streams
            .push(stream(0, vec![Action::RecordEvent(EventId(0))]));
        p.streams
            .push(stream(1, vec![Action::WaitEvent(EventId(0))]));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 0,
        });
        p.validate().unwrap();
    }

    #[test]
    fn mutual_cross_stream_wait_passes_validate_but_fails_the_analyzer() {
        // Regression for the hole in `validate()`: stream 0 waits on an
        // event stream 1 records only after waiting on stream 0's event.
        // Both executors would deadlock, yet the shallow structural pass
        // accepts it — the deadlock detection lives in `crate::check`,
        // which subsumes this case (and executors run it by default).
        let mut p = Program::default();
        p.streams.push(stream(
            0,
            vec![
                Action::WaitEvent(EventId(1)),
                Action::RecordEvent(EventId(0)),
            ],
        ));
        p.streams.push(stream(
            1,
            vec![
                Action::WaitEvent(EventId(0)),
                Action::RecordEvent(EventId(1)),
            ],
        ));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 1,
        });
        p.events.push(EventSite {
            stream: StreamId(1),
            action_index: 1,
        });
        p.validate().unwrap();
        let env = crate::check::CheckEnv::permissive(&p);
        let analysis = crate::check::analyze(&p, &env);
        assert!(
            analysis
                .report
                .errors()
                .any(|d| d.code == crate::check::CheckCode::DeadlockCycle),
            "{}",
            analysis.report.render()
        );
    }

    #[test]
    fn dump_annotated_interleaves_diagnostics() {
        let mut p = Program::default();
        p.streams
            .push(stream(0, vec![Action::WaitEvent(EventId(3))]));
        let env = crate::check::CheckEnv::permissive(&p);
        let analysis = crate::check::analyze(&p, &env);
        let text = p.dump_annotated(&analysis.report);
        let lines: Vec<&str> = text.lines().collect();
        let wait_line = lines
            .iter()
            .position(|l| l.contains("wait e3"))
            .expect("action line");
        assert!(
            lines[wait_line + 1].contains("^ error[unknown-event]"),
            "annotation follows the offending line:\n{text}"
        );
        assert!(text.ends_with("check: 1 error(s), 0 warning(s)\n"));
        // The plain dump stays annotation-free.
        assert!(!p.dump().contains('^'));
    }

    #[test]
    fn insert_and_remove_keep_event_sites_pointed_at_their_records() {
        // s0: h2d b0, record e0 ; s1: wait e0.
        let mut p = Program::default();
        p.streams.push(stream(
            0,
            vec![
                Action::Transfer {
                    dir: Direction::HostToDevice,
                    buf: crate::types::BufId(0),
                },
                Action::RecordEvent(EventId(0)),
            ],
        ));
        p.streams
            .push(stream(1, vec![Action::WaitEvent(EventId(0))]));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 1,
        });
        p.validate().unwrap();

        // Inserting before the record shifts its site.
        p.insert_action(
            StreamId(0),
            0,
            Action::Transfer {
                dir: Direction::HostToDevice,
                buf: crate::types::BufId(1),
            },
        );
        assert_eq!(p.events[0].action_index, 2);
        p.validate().unwrap();

        // Removing before the record shifts it back.
        p.remove_action(StreamId(0), 0);
        assert_eq!(p.events[0].action_index, 1);
        p.validate().unwrap();

        // A second record inserted *before* the first renumbers nothing
        // (fresh id) but shifts the existing site.
        let e1 = p.insert_record_event(StreamId(0), 0);
        assert_eq!(e1, EventId(1));
        assert_eq!(p.events[0].action_index, 2);
        assert_eq!(p.events[1].action_index, 0);
        p.validate().unwrap();
    }

    #[test]
    fn removing_a_record_cascades_to_waits_and_renumbers() {
        // Two events; the waiter waits on both; remove event 0's record.
        let mut p = Program::default();
        p.streams.push(stream(
            0,
            vec![
                Action::RecordEvent(EventId(0)),
                Action::RecordEvent(EventId(1)),
            ],
        ));
        p.streams.push(stream(
            1,
            vec![Action::WaitEvent(EventId(0)), Action::WaitEvent(EventId(1))],
        ));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 0,
        });
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 1,
        });
        p.validate().unwrap();

        let removed = p.remove_event(EventId(0));
        assert!(matches!(removed, Action::RecordEvent(EventId(0))));
        // Event 1 became event 0 everywhere.
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].action_index, 0);
        assert_eq!(p.streams[1].actions.len(), 1);
        assert!(matches!(
            p.streams[1].actions[0],
            Action::WaitEvent(EventId(0))
        ));
        assert!(matches!(
            p.streams[0].actions[0],
            Action::RecordEvent(EventId(0))
        ));
        p.validate().unwrap();
    }

    #[test]
    fn set_placement_rehomes_a_stream() {
        let mut p = Program::default();
        p.streams.push(stream(0, vec![]));
        p.set_placement(
            StreamId(0),
            StreamPlacement {
                device: DeviceId(0),
                partition: 3,
            },
        );
        assert_eq!(p.streams[0].placement.partition, 3);
    }

    #[test]
    fn barrier_sequence_must_be_complete_and_ordered() {
        let mut p = Program {
            barriers: 2,
            ..Default::default()
        };
        p.streams
            .push(stream(0, vec![Action::Barrier(0), Action::Barrier(1)]));
        p.streams.push(stream(1, vec![Action::Barrier(0)]));
        // Stream 1 misses barrier #1.
        assert!(matches!(p.validate(), Err(Error::Config(_))));

        let mut good = Program {
            barriers: 1,
            ..Default::default()
        };
        good.streams.push(stream(0, vec![Action::Barrier(0)]));
        good.streams.push(stream(1, vec![Action::Barrier(0)]));
        good.validate().unwrap();
    }
}
