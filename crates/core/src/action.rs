//! Stream actions — the instructions of a streamed program.

use micsim::pcie::Direction;

use crate::kernel::KernelDesc;
use crate::types::{BufId, EventId};

/// One enqueued operation.
///
/// `Clone` exists so recovery can build replay programs from the skipped
/// actions of a degraded run (kernel descriptors share their native body
/// `Arc`, so cloning is cheap).
#[derive(Clone, Debug)]
pub enum Action {
    /// Move a whole buffer between host and device memory.
    Transfer {
        /// Direction of the copy.
        dir: Direction,
        /// The buffer moved.
        buf: BufId,
    },
    /// Launch a kernel on this stream's partition.
    Kernel(KernelDesc),
    /// Record an event that fires when all prior work in this stream is done.
    RecordEvent(EventId),
    /// Block this stream until the event fires.
    WaitEvent(EventId),
    /// Device-wide barrier: this stream waits until *every* stream has
    /// finished all work enqueued before the barrier. The context enqueues
    /// one `Barrier(n)` action with the same index `n` into every stream.
    Barrier(usize),
}

impl Action {
    /// Short label for traces.
    pub fn label(&self) -> String {
        match self {
            Action::Transfer { dir, buf } => format!("{} {buf}", dir.label()),
            Action::Kernel(k) => k.label.clone(),
            Action::RecordEvent(e) => format!("record {e}"),
            Action::WaitEvent(e) => format!("wait {e}"),
            Action::Barrier(n) => format!("barrier#{n}"),
        }
    }

    /// Whether this action occupies a hardware resource (vs pure control).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Action::RecordEvent(_) | Action::WaitEvent(_) | Action::Barrier(_)
        )
    }

    /// Every buffer this action touches: the transfer payload, or a
    /// kernel's reads followed by its writes. Control actions touch none.
    pub fn buffers(&self) -> Vec<BufId> {
        match self {
            Action::Transfer { buf, .. } => vec![*buf],
            Action::Kernel(k) => k.reads.iter().chain(&k.writes).copied().collect(),
            Action::RecordEvent(_) | Action::WaitEvent(_) | Action::Barrier(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micsim::compute::KernelProfile;

    #[test]
    fn labels_are_descriptive() {
        let a = Action::Transfer {
            dir: Direction::HostToDevice,
            buf: BufId(4),
        };
        assert_eq!(a.label(), "h2d b4");
        assert!(!a.is_control());

        let k = Action::Kernel(crate::kernel::KernelDesc::simulated(
            "gemm(0,1)",
            KernelProfile::streaming("gemm", 1e9),
            10.0,
        ));
        assert_eq!(k.label(), "gemm(0,1)");

        assert_eq!(Action::RecordEvent(EventId(2)).label(), "record e2");
        assert_eq!(Action::WaitEvent(EventId(2)).label(), "wait e2");
        assert_eq!(Action::Barrier(7).label(), "barrier#7");
        assert!(Action::Barrier(7).is_control());
    }
}
