//! Minimal data-parallel helpers for native kernels.
//!
//! A kernel body in this runtime plays the role of an OpenMP region in the
//! paper's benchmarks: it receives a `threads` hint (its partition's width)
//! and splits its own output across that many workers. These helpers do the
//! splitting with `std::thread::scope`, so everything stays safe borrowed
//! code — no `unsafe`, no shared-mutable aliasing.

/// Split `data` into `parts` contiguous chunks and run `f(chunk_index,
/// element_offset, chunk)` on each, in parallel.
///
/// `parts` is clamped to `1..=data.len()` (empty data runs nothing). Chunks
/// differ in length by at most one element.
pub fn par_chunks_mut<T, F>(data: &mut [T], parts: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let parts = parts.clamp(1, len);
    if parts == 1 {
        f(0, 0, data);
        return;
    }
    let base = len / parts;
    let extra = len % parts;
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut offset = 0usize;
        for idx in 0..parts {
            let take = base + usize::from(idx < extra);
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let f = &f;
            scope.spawn(move || f(idx, offset, chunk));
            offset += take;
        }
    });
}

/// Parallel map-reduce over index ranges: split `0..len` into `parts`
/// contiguous ranges, compute `map(range)` on each in parallel, and fold the
/// partial results with `reduce`.
pub fn par_reduce<R, M, F>(len: usize, parts: usize, map: M, reduce: F, identity: R) -> R
where
    R: Send,
    M: Fn(std::ops::Range<usize>) -> R + Sync,
    F: Fn(R, R) -> R,
{
    if len == 0 {
        return identity;
    }
    let parts = parts.clamp(1, len);
    if parts == 1 {
        return reduce(identity, map(0..len));
    }
    let base = len / parts;
    let extra = len % parts;
    let partials: Vec<R> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(parts);
        let mut start = 0usize;
        for idx in 0..parts {
            let take = base + usize::from(idx < extra);
            let range = start..start + take;
            start += take;
            let map = &map;
            handles.push(scope.spawn(move || map(range)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("par_reduce worker panicked"))
            .collect()
    });
    partials.into_iter().fold(identity, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_everything_once() {
        let mut data = vec![0u32; 103];
        par_chunks_mut(&mut data, 7, |_, offset, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (offset + i) as u32;
            }
        });
        let expect: Vec<u32> = (0..103).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn chunk_indices_are_distinct() {
        let counter = AtomicUsize::new(0);
        let mut data = vec![0u8; 16];
        par_chunks_mut(&mut data, 4, |_, _, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn parts_clamp_to_len() {
        let mut data = vec![1.0f32; 3];
        // 100 parts over 3 elements = 3 single-element chunks.
        par_chunks_mut(&mut data, 100, |_, _, chunk| {
            assert_eq!(chunk.len(), 1);
            chunk[0] *= 2.0;
        });
        assert_eq!(data, vec![2.0; 3]);
    }

    #[test]
    fn empty_and_single() {
        let mut empty: Vec<f32> = vec![];
        par_chunks_mut(&mut empty, 4, |_, _, _| panic!("must not run"));
        let mut one = vec![5.0f32];
        par_chunks_mut(&mut one, 1, |idx, off, chunk| {
            assert_eq!((idx, off), (0, 0));
            chunk[0] = 6.0;
        });
        assert_eq!(one, vec![6.0]);
    }

    #[test]
    fn reduce_sums_ranges() {
        let sum = par_reduce(
            1000,
            8,
            |range| range.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
            0u64,
        );
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn reduce_of_empty_is_identity() {
        let r = par_reduce(0, 4, |_| 1u32, |a, b| a + b, 42u32);
        assert_eq!(r, 42);
    }

    #[test]
    fn reduce_single_part() {
        let r = par_reduce(5, 1, |range| range.len(), |a, b| a + b, 0);
        assert_eq!(r, 5);
    }
}
