//! Minimal data-parallel helpers for native kernels.
//!
//! A kernel body in this runtime plays the role of an OpenMP region in the
//! paper's benchmarks: it receives a `threads` hint (its partition's width)
//! and splits its own output across that many workers.
//!
//! When the native executor runs a kernel it installs the kernel's
//! partition-pinned [`WorkerGroup`](crate::pool::WorkerGroup) as the
//! thread's current group, and both helpers route their chunks onto those
//! persistent, parked threads — no OS thread is spawned per launch. Called
//! from anywhere else (unit tests, the scoped baseline executor, a nested
//! call inside a chunk) they fall back to `std::thread::scope`, preserving
//! the original spawn-per-call semantics. Chunk boundaries and reduce fold
//! order are identical on both paths, so results are bit-for-bit the same.

use crate::pool::CurrentGroup;

/// Split `data` into `parts` contiguous chunks and run `f(chunk_index,
/// element_offset, chunk)` on each, in parallel.
///
/// `parts` is clamped to `1..=data.len()` (empty data runs nothing). Chunks
/// differ in length by at most one element.
pub fn par_chunks_mut<T, F>(data: &mut [T], parts: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let parts = parts.clamp(1, len);
    if parts == 1 {
        f(0, 0, data);
        return;
    }
    let split = Splits::new(len, parts);
    if let Some(group) = CurrentGroup::take() {
        let chunks = PtrChunks {
            ptr: data.as_mut_ptr(),
            split,
        };
        group.run_chunked(parts, &|idx| {
            let (offset, ptr, len) = chunks.raw_chunk(idx);
            // SAFETY: the pool hands out each index at most once, so the
            // slices materialized across workers are pairwise disjoint
            // views into the exclusive borrow held by this call.
            let chunk = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
            f(idx, offset, chunk);
        });
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut offset = 0usize;
        for idx in 0..parts {
            let take = split.take(idx);
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let f = &f;
            scope.spawn(move || f(idx, offset, chunk));
            offset += take;
        }
    });
}

/// Parallel map-reduce over index ranges: split `0..len` into `parts`
/// contiguous ranges, compute `map(range)` on each in parallel, and fold the
/// partial results with `reduce`.
pub fn par_reduce<R, M, F>(len: usize, parts: usize, map: M, reduce: F, identity: R) -> R
where
    R: Send,
    M: Fn(std::ops::Range<usize>) -> R + Sync,
    F: Fn(R, R) -> R,
{
    if len == 0 {
        return identity;
    }
    let parts = parts.clamp(1, len);
    if parts == 1 {
        return reduce(identity, map(0..len));
    }
    let split = Splits::new(len, parts);
    let partials: Vec<R> = if let Some(group) = CurrentGroup::take() {
        let slots: Vec<parking_lot::Mutex<Option<R>>> =
            (0..parts).map(|_| parking_lot::Mutex::new(None)).collect();
        group.run_chunked(parts, &|idx| {
            *slots[idx].lock() = Some(map(split.range(idx)));
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("chunk ran"))
            .collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..parts)
                .map(|idx| {
                    let range = split.range(idx);
                    let map = &map;
                    scope.spawn(move || map(range))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("par_reduce worker panicked"))
                .collect()
        })
    };
    partials.into_iter().fold(identity, reduce)
}

/// Chunk geometry shared by both execution paths: `parts` contiguous pieces
/// of `len` elements, the first `len % parts` one element longer.
#[derive(Clone, Copy)]
struct Splits {
    base: usize,
    extra: usize,
}

impl Splits {
    fn new(len: usize, parts: usize) -> Splits {
        Splits {
            base: len / parts,
            extra: len % parts,
        }
    }

    fn take(&self, idx: usize) -> usize {
        self.base + usize::from(idx < self.extra)
    }

    fn start(&self, idx: usize) -> usize {
        idx * self.base + idx.min(self.extra)
    }

    fn range(&self, idx: usize) -> std::ops::Range<usize> {
        let start = self.start(idx);
        start..start + self.take(idx)
    }
}

/// Raw-pointer view of a `&mut [T]` handed across pool workers.
struct PtrChunks<T> {
    ptr: *mut T,
    split: Splits,
}

// SAFETY: workers access disjoint chunks (the pool hands out each index at
// most once), and `T: Send` in `par_chunks_mut` makes moving element access
// across threads sound.
unsafe impl<T: Send> Sync for PtrChunks<T> {}

impl<T> PtrChunks<T> {
    /// The `(offset, pointer, length)` of chunk `idx`. Materializing the
    /// slice is the caller's obligation: it must do so at most once per
    /// `idx` across all threads while the underlying exclusive borrow is
    /// alive, so no two slices alias.
    fn raw_chunk(&self, idx: usize) -> (usize, *mut T, usize) {
        let start = self.split.start(idx);
        // SAFETY: `start` is a split boundary of the slice whose exclusive
        // borrow `par_chunks_mut` holds, so the offset pointer stays within
        // that same allocation.
        (start, unsafe { self.ptr.add(start) }, self.split.take(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{self, WorkerGroup};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn chunks_cover_everything_once() {
        let mut data = vec![0u32; 103];
        par_chunks_mut(&mut data, 7, |_, offset, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (offset + i) as u32;
            }
        });
        let expect: Vec<u32> = (0..103).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn chunk_indices_are_distinct() {
        let counter = AtomicUsize::new(0);
        let mut data = vec![0u8; 16];
        par_chunks_mut(&mut data, 4, |_, _, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn parts_clamp_to_len() {
        let mut data = vec![1.0f32; 3];
        // 100 parts over 3 elements = 3 single-element chunks.
        par_chunks_mut(&mut data, 100, |_, _, chunk| {
            assert_eq!(chunk.len(), 1);
            chunk[0] *= 2.0;
        });
        assert_eq!(data, vec![2.0; 3]);
    }

    #[test]
    fn empty_and_single() {
        let mut empty: Vec<f32> = vec![];
        par_chunks_mut(&mut empty, 4, |_, _, _| panic!("must not run"));
        let mut one = vec![5.0f32];
        par_chunks_mut(&mut one, 1, |idx, off, chunk| {
            assert_eq!((idx, off), (0, 0));
            chunk[0] = 6.0;
        });
        assert_eq!(one, vec![6.0]);
    }

    #[test]
    fn reduce_sums_ranges() {
        let sum = par_reduce(
            1000,
            8,
            |range| range.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
            0u64,
        );
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn reduce_of_empty_is_identity() {
        let r = par_reduce(0, 4, |_| 1u32, |a, b| a + b, 42u32);
        assert_eq!(r, 42);
    }

    #[test]
    fn reduce_single_part() {
        let r = par_reduce(5, 1, |range| range.len(), |a, b| a + b, 0);
        assert_eq!(r, 5);
    }

    #[test]
    fn pooled_chunks_match_scoped_chunks() {
        let fill = |data: &mut [u32], parts| {
            par_chunks_mut(data, parts, |idx, offset, chunk| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = (idx * 100_000 + offset + i) as u32;
                }
            });
        };
        let mut scoped = vec![0u32; 103];
        fill(&mut scoped, 7);
        let group = Arc::new(WorkerGroup::new("pt0", 3));
        let _g = pool::install(group);
        let mut pooled = vec![0u32; 103];
        fill(&mut pooled, 7);
        assert_eq!(pooled, scoped);
    }

    #[test]
    fn pooled_reduce_matches_scoped_reduce() {
        let run = || {
            par_reduce(
                1003,
                6,
                |range| range.map(|i| (i as f32).sqrt()).sum::<f32>(),
                |a, b| a + b,
                0.0f32,
            )
        };
        let scoped = run();
        let group = Arc::new(WorkerGroup::new("pt1", 3));
        let _g = pool::install(group);
        let pooled = run();
        // Same chunking and fold order: results are bit-identical.
        assert_eq!(pooled.to_bits(), scoped.to_bits());
    }

    #[test]
    fn nested_call_inside_pooled_chunk_does_not_deadlock() {
        let group = Arc::new(WorkerGroup::new("pt2", 1));
        let _g = pool::install(group);
        let mut outer = vec![0u64; 8];
        par_chunks_mut(&mut outer, 2, |_, _, chunk| {
            // Nested helper inside a pool chunk: must take the scoped
            // fallback (the group is busy with the outer job).
            let s = par_reduce(64, 4, |r| r.map(|i| i as u64).sum(), |a, b| a + b, 0);
            for x in chunk.iter_mut() {
                *x = s;
            }
        });
        assert!(outer.iter().all(|&x| x == 2016));
    }
}
