//! The hStreams logical resource view (paper Fig. 3).
//!
//! hStreams exposes a hierarchy to programmers — a card is one or more
//! **domains**, each domain holds **places** (one per core partition), and
//! each place hosts one or more **streams** — while the physical mapping
//! stays transparent. This module derives that view from a built
//! [`Context`], so tools and user code can reason
//! in the paper's vocabulary.

use crate::context::Context;
use crate::types::{Result, StreamId};
use micsim::device::DeviceId;
use micsim::partition::Partition;

/// One place: a core partition hosting streams.
#[derive(Clone, Debug)]
pub struct Place {
    /// Index of the place within its domain (= partition index).
    pub index: usize,
    /// Physical geometry of the backing partition.
    pub partition: Partition,
    /// Streams bound to this place, in creation order.
    pub streams: Vec<StreamId>,
}

/// One domain: a card.
#[derive(Clone, Debug)]
pub struct Domain {
    /// The backing card.
    pub device: DeviceId,
    /// Places of this domain, in partition order.
    pub places: Vec<Place>,
}

/// The full logical view of a context.
#[derive(Clone, Debug)]
pub struct ResourceView {
    /// One domain per card.
    pub domains: Vec<Domain>,
}

impl ResourceView {
    /// Derive the logical view from a context.
    pub fn of(ctx: &Context) -> Result<ResourceView> {
        let mut domains: Vec<Domain> = Vec::with_capacity(ctx.device_count());
        for d in 0..ctx.device_count() {
            domains.push(Domain {
                device: DeviceId(d),
                places: Vec::new(),
            });
        }
        for idx in 0..ctx.stream_count() {
            let s = ctx.stream(idx)?;
            let placement = ctx.placement(s)?;
            let domain = &mut domains[placement.device.0];
            while domain.places.len() <= placement.partition {
                let index = domain.places.len();
                // Geometry comes from any stream on that partition; fill it
                // in when we first see one.
                domain.places.push(Place {
                    index,
                    partition: ctx.partition_of(s)?, // placeholder, fixed below
                    streams: Vec::new(),
                });
            }
            let place = &mut domain.places[placement.partition];
            place.partition = ctx.partition_of(s)?;
            place.streams.push(s);
        }
        Ok(ResourceView { domains })
    }

    /// Total streams across all domains.
    pub fn stream_count(&self) -> usize {
        self.domains
            .iter()
            .flat_map(|d| &d.places)
            .map(|p| p.streams.len())
            .sum()
    }

    /// Total places (partitions) across all domains.
    pub fn place_count(&self) -> usize {
        self.domains.iter().map(|d| d.places.len()).sum()
    }

    /// Render the hierarchy as an indented tree (Fig. 3 in ASCII).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.domains {
            out.push_str(&format!("domain {} ({})\n", d.device.0, d.device));
            for p in &d.places {
                out.push_str(&format!(
                    "  place {} — threads {}..{} ({} cores{})\n",
                    p.index,
                    p.partition.first_thread,
                    p.partition.first_thread + p.partition.threads,
                    p.partition.cores_spanned,
                    if p.partition.shares_core {
                        ", shares a core"
                    } else {
                        ""
                    }
                ));
                for s in &p.streams {
                    out.push_str(&format!("    stream {s}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micsim::PlatformConfig;

    #[test]
    fn view_mirrors_context_geometry() {
        let ctx = Context::builder(PlatformConfig::phi_31sp_multi(2))
            .partitions(4)
            .streams_per_partition(2)
            .build()
            .unwrap();
        let view = ResourceView::of(&ctx).unwrap();
        assert_eq!(view.domains.len(), 2);
        assert_eq!(view.place_count(), 8);
        assert_eq!(view.stream_count(), 16);
        for d in &view.domains {
            assert_eq!(d.places.len(), 4);
            for p in &d.places {
                assert_eq!(p.streams.len(), 2);
                assert_eq!(p.partition.threads, 56);
            }
        }
    }

    #[test]
    fn streams_listed_in_creation_order() {
        let ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .streams_per_partition(2)
            .build()
            .unwrap();
        let view = ResourceView::of(&ctx).unwrap();
        let p0 = &view.domains[0].places[0];
        assert_eq!(p0.streams, vec![StreamId(0), StreamId(1)]);
        let p1 = &view.domains[0].places[1];
        assert_eq!(p1.streams, vec![StreamId(2), StreamId(3)]);
    }

    #[test]
    fn render_shows_hierarchy() {
        let ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(3)
            .build()
            .unwrap();
        let view = ResourceView::of(&ctx).unwrap();
        let s = view.render();
        assert!(s.contains("domain 0"));
        assert!(s.contains("place 2"));
        assert!(s.contains("stream s2"));
        // P=3 on 56 cores splits cores.
        assert!(s.contains("shares a core"));
    }
}
