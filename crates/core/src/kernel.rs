//! Kernel descriptors.
//!
//! A kernel in this runtime has two faces:
//!
//! * a **cost face** ([`micsim::compute::KernelProfile`] + a work amount)
//!   used by the simulator executor to price the launch, and
//! * a **native face** (a Rust closure over typed buffer slices) executed
//!   for real by the native executor.
//!
//! Applications provide both so the same program runs on either backend.

use std::fmt;
use std::sync::Arc;

use micsim::compute::KernelProfile;

use crate::types::{BufId, Error, Result};

/// Typed views of the buffers a kernel accesses, plus execution hints.
///
/// `reads[i]` corresponds to `KernelDesc::reads[i]` and `writes[i]` to
/// `KernelDesc::writes[i]`, in declaration order.
pub struct KernelCtx<'a> {
    /// Read-only views of the declared read buffers.
    pub reads: Vec<&'a [f32]>,
    /// Mutable views of the declared write buffers.
    pub writes: Vec<&'a mut [f32]>,
    /// Hardware threads of the partition this kernel runs on — the
    /// parallelism hint (what `omp_get_max_threads()` would say on the Phi).
    pub threads: usize,
}

/// The native body of a kernel.
pub type KernelFn = Arc<dyn Fn(&mut KernelCtx<'_>) + Send + Sync>;

/// A complete kernel launch description.
#[derive(Clone)]
pub struct KernelDesc {
    /// Trace label, e.g. `"gemm(2,3)"`.
    pub label: String,
    /// Cost-model face.
    pub profile: KernelProfile,
    /// Work units this launch carries (same unit as `profile.thread_rate`).
    pub work: f64,
    /// Buffers read.
    pub reads: Vec<BufId>,
    /// Buffers written.
    pub writes: Vec<BufId>,
    /// Native face; `None` for simulate-only kernels.
    pub native: Option<KernelFn>,
    /// Run on the **host** instead of a device partition (hStreams supports
    /// host-side execution; e.g. its Cholesky sample factors diagonal tiles
    /// on the Xeon). Host kernels operate on the buffers' *host* copies, so
    /// the program must move data down/up around them explicitly.
    pub host: bool,
}

impl fmt::Debug for KernelDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelDesc")
            .field("label", &self.label)
            .field("work", &self.work)
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .field("native", &self.native.is_some())
            .field("host", &self.host)
            .finish()
    }
}

impl KernelDesc {
    /// Build a kernel with a cost face only (no native body).
    pub fn simulated(label: impl Into<String>, profile: KernelProfile, work: f64) -> KernelDesc {
        KernelDesc {
            label: label.into(),
            profile,
            work,
            reads: Vec::new(),
            writes: Vec::new(),
            native: None,
            host: false,
        }
    }

    /// Mark this kernel as host-executed.
    pub fn on_host(mut self) -> KernelDesc {
        self.host = true;
        self
    }

    /// Declare read buffers (replaces any previous list).
    pub fn reading(mut self, bufs: impl IntoIterator<Item = BufId>) -> KernelDesc {
        self.reads = bufs.into_iter().collect();
        self
    }

    /// Declare written buffers (replaces any previous list).
    pub fn writing(mut self, bufs: impl IntoIterator<Item = BufId>) -> KernelDesc {
        self.writes = bufs.into_iter().collect();
        self
    }

    /// Attach a native body.
    pub fn with_native(
        mut self,
        body: impl Fn(&mut KernelCtx<'_>) + Send + Sync + 'static,
    ) -> KernelDesc {
        self.native = Some(Arc::new(body));
        self
    }

    /// Declared buffer accesses as `(buffer, is_write)` pairs, reads
    /// first — the shape the static analyzer and the native executor's
    /// buffer materialization both consume.
    pub fn accesses(&self) -> impl Iterator<Item = (BufId, bool)> + '_ {
        self.reads
            .iter()
            .map(|&b| (b, false))
            .chain(self.writes.iter().map(|&b| (b, true)))
    }

    /// Check internal consistency: a buffer must not be both read and
    /// written (the native executor takes a write lock; read it through the
    /// write slice instead).
    pub fn validate(&self) -> Result<()> {
        for r in &self.reads {
            if self.writes.contains(r) {
                return Err(Error::ReadWriteConflict {
                    buf: *r,
                    kernel: self.label.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> KernelProfile {
        KernelProfile::streaming("test", 1e9)
    }

    #[test]
    fn builder_chains() {
        let k = KernelDesc::simulated("k", profile(), 100.0)
            .reading([BufId(0), BufId(1)])
            .writing([BufId(2)])
            .with_native(|ctx| {
                ctx.writes[0][0] = ctx.reads[0][0] + ctx.reads[1][0];
            });
        assert_eq!(k.reads, vec![BufId(0), BufId(1)]);
        assert_eq!(k.writes, vec![BufId(2)]);
        assert!(k.native.is_some());
        k.validate().unwrap();
        let dbg = format!("{k:?}");
        assert!(dbg.contains("native: true"));
        assert!(!k.host);
        let hk = KernelDesc::simulated("h", profile(), 1.0).on_host();
        assert!(hk.host);
    }

    #[test]
    fn validate_catches_read_write_overlap() {
        let k = KernelDesc::simulated("bad", profile(), 1.0)
            .reading([BufId(3)])
            .writing([BufId(3)]);
        assert!(matches!(
            k.validate(),
            Err(Error::ReadWriteConflict { buf: BufId(3), .. })
        ));
    }

    #[test]
    fn native_body_runs_against_ctx() {
        let k = KernelDesc::simulated("add", profile(), 1.0).with_native(|ctx| {
            for (o, i) in ctx.writes[0].iter_mut().zip(ctx.reads[0]) {
                *o = i + 1.0;
            }
        });
        let input = vec![1.0f32, 2.0];
        let mut output = vec![0.0f32; 2];
        let mut ctx = KernelCtx {
            reads: vec![&input],
            writes: vec![&mut output],
            threads: 4,
        };
        (k.native.as_ref().unwrap())(&mut ctx);
        assert_eq!(output, vec![2.0, 3.0]);
    }
}
