//! Dataflow diagnostics (use-before-produce, dead events, dangling buffer
//! references) and resource lints (placement range, partition budget).

use std::collections::HashMap;

use crate::action::Action;
use crate::program::Program;
use crate::types::BufId;

use super::diagnostics::{CheckCode, CheckReport, Diagnostic, Site};
use super::hb::HbGraph;
use super::races::{Access, Space};
use super::CheckEnv;

/// Device reads with no happens-before producer, and events nobody waits
/// on. Buffers are zero-filled on every card, so a missing producer is
/// legal (the kernels-only partition microbenchmark relies on it) — these
/// are warnings, not errors.
pub(super) fn check_dataflow(
    program: &Program,
    hb: &HbGraph,
    accesses: &HashMap<(BufId, Space), Vec<Access>>,
    report: &mut CheckReport,
) {
    if hb.cycle().is_none() {
        let label = |site: Site| program.streams[site.stream.0].actions[site.action_index].label();
        let mut groups: Vec<(&(BufId, Space), &Vec<Access>)> = accesses.iter().collect();
        groups.sort_by_key(|((buf, _), _)| buf.0);
        for ((buf, space), group) in groups {
            let Space::Device(d) = space else {
                // Host copies are initialized by `alloc`/`write_host`
                // before the program runs; reading one is always fine.
                continue;
            };
            for r in group.iter().filter(|a| !a.write) {
                let produced = group
                    .iter()
                    .any(|w| w.write && hb.happens_before(w.site, r.site));
                if !produced {
                    let what = if r.transfer {
                        format!("d2h of {buf} copies device memory nothing wrote")
                    } else {
                        format!(
                            "kernel `{}` reads {buf} before anything produced it",
                            label(r.site)
                        )
                    };
                    report.push(Diagnostic {
                        code: CheckCode::UseBeforeProduce,
                        site: r.site,
                        related: vec![],
                        message: format!(
                            "{what} on dev{d}; it reads zeros unless a prior run left data there"
                        ),
                    });
                }
            }
        }
    }

    let mut waited = vec![false; program.events.len()];
    for s in &program.streams {
        for a in &s.actions {
            if let Action::WaitEvent(e) = a {
                if let Some(w) = waited.get_mut(e.0) {
                    *w = true;
                }
            }
        }
    }
    for (e, rec) in program.events.iter().enumerate() {
        if !waited[e] {
            report.push(Diagnostic {
                code: CheckCode::DeadEvent,
                site: Site {
                    stream: rec.stream,
                    action_index: rec.action_index,
                },
                related: vec![],
                message: format!("event e{e} is recorded but never waited on"),
            });
        }
    }
}

/// Placement and buffer-table lints against the context's plan.
pub(super) fn check_resources(program: &Program, env: &CheckEnv, report: &mut CheckReport) {
    let mut per_partition: HashMap<(usize, usize), usize> = HashMap::new();
    for (si, s) in program.streams.iter().enumerate() {
        let (dev, part) = (s.placement.device.0, s.placement.partition);
        if dev >= env.devices || part >= env.partitions {
            report.push(Diagnostic {
                code: CheckCode::PlacementOutOfRange,
                site: Site::new(si, 0),
                related: vec![],
                message: format!(
                    "stream {} is placed on dev{dev}#p{part}, but the plan has {} device(s) \
                     x {} partition(s)",
                    s.id, env.devices, env.partitions
                ),
            });
            continue;
        }
        if !s.actions.is_empty() {
            *per_partition.entry((dev, part)).or_default() += 1;
        }
        for (ai, a) in s.actions.iter().enumerate() {
            for buf in a.buffers() {
                if buf.0 >= env.buffers {
                    report.push(Diagnostic {
                        code: CheckCode::UnknownBuffer,
                        site: Site::new(si, ai),
                        related: vec![],
                        message: format!(
                            "`{}` references {buf}, but only {} buffer(s) are allocated",
                            a.label(),
                            env.buffers
                        ),
                    });
                }
            }
        }
    }
    let mut over: Vec<(&(usize, usize), &usize)> = per_partition
        .iter()
        .filter(|(_, &n)| n > env.streams_per_partition)
        .collect();
    over.sort();
    for ((dev, part), n) in over {
        let site = program
            .streams
            .iter()
            .position(|s| s.placement.device.0 == *dev && s.placement.partition == *part)
            .map(|si| Site::new(si, 0))
            .unwrap_or(Site::new(0, 0));
        report.push(Diagnostic {
            code: CheckCode::PartitionOversubscribed,
            site,
            related: vec![],
            message: format!(
                "{n} active streams share dev{dev}#p{part}, planned for {} per partition",
                env.streams_per_partition
            ),
        });
    }
}
